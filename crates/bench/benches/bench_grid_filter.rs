//! Criterion bench: raw Grid-index classification throughput across
//! partition counts — the microbenchmark behind Table 4 and Figure
//! 15(b). Measures bound assembly + three-way classification per
//! `(p, w)` pair, isolated from query logic, against the dense
//! inner-product loop the grid replaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rrq_core::{ApproxVectors, Grid};
use rrq_data::DataSpec;
use rrq_types::dot;

const P: usize = 4000;
const W: usize = 64;
const D: usize = 6;

fn bench_grid_filter(c: &mut Criterion) {
    let spec = DataSpec {
        n_weights: W,
        ..DataSpec::uniform_default(D, P, 42)
    };
    let (p, w) = spec.generate().unwrap();
    let q = p.point(rrq_types::PointId(7)).to_vec();

    let mut group = c.benchmark_group("grid_classify");
    group.throughput(Throughput::Elements((P * W) as u64));
    for n in [4usize, 32, 128] {
        let grid = Grid::new(n, p.value_range());
        let pa = ApproxVectors::from_points(&grid, &p);
        let wa = ApproxVectors::from_weights(&grid, &w);
        // The production path: fused integer-MAC classification.
        group.bench_with_input(BenchmarkId::new("classify_fused", n), &n, |b, _| {
            use rrq_core::grid::{BoundCase, GridTable};
            b.iter(|| {
                let mut case3 = 0u64;
                for (wid, wv) in w.iter() {
                    let fq = dot(wv, &q);
                    let wrow = wa.row(wid.0);
                    for i in 0..pa.len() {
                        if grid.classify(pa.row(i), wrow, fq) == BoundCase::Incomparable {
                            case3 += 1;
                        }
                    }
                }
                std::hint::black_box(case3)
            })
        });
        // The paper-literal path: two table-lookup bound sums.
        group.bench_with_input(BenchmarkId::new("bounds_lookup", n), &n, |b, _| {
            b.iter(|| {
                let mut case3 = 0u64;
                for (wid, wv) in w.iter() {
                    let fq = dot(wv, &q);
                    let wrow = wa.row(wid.0);
                    for i in 0..pa.len() {
                        let prow = pa.row(i);
                        if grid.score_upper(prow, wrow) < fq {
                            continue; // Case 1
                        }
                        if grid.score_lower(prow, wrow) >= fq {
                            continue; // Case 2
                        }
                        case3 += 1;
                    }
                }
                std::hint::black_box(case3)
            })
        });
    }
    group.finish();

    // Reference: the dense multiply loop the grid replaces.
    let mut mul = c.benchmark_group("dense_dot_reference");
    mul.throughput(Throughput::Elements((P * W) as u64));
    mul.bench_function("dot_all_pairs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (_, wv) in w.iter() {
                for (_, pv) in p.iter() {
                    acc += dot(wv, pv);
                }
            }
            std::hint::black_box(acc)
        })
    });
    mul.finish();
}

criterion_group!(benches, bench_grid_filter);
criterion_main!(benches);
