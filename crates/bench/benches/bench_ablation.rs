//! Criterion bench: ablations of GIR design choices — Domin buffer,
//! bit-packed storage, adaptive grid, sparse-weight scan (DESIGN.md §6).

use criterion::{criterion_group, criterion_main, Criterion};
use rrq_core::{AdaptiveGrid, Gir, GirConfig, SparseGir};
use rrq_data::{DataSpec, PointDistribution, WeightDistribution};
use rrq_types::{PointId, QueryStats, RkrQuery, RtkQuery};

const P: usize = 4000;
const W: usize = 1000;
const K: usize = 50;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    // Domin buffer on/off.
    {
        let spec = DataSpec {
            n_weights: W,
            ..DataSpec::uniform_default(6, P, 42)
        };
        let (p, w) = spec.generate().unwrap();
        let q = p.point(PointId(9)).to_vec();
        let with = Gir::new(&p, &w, GirConfig::default());
        let without = Gir::new(
            &p,
            &w,
            GirConfig {
                use_domin: false,
                ..Default::default()
            },
        );
        group.bench_function("domin_on", |b| {
            b.iter(|| {
                let mut s = QueryStats::default();
                std::hint::black_box(with.reverse_top_k(&q, K, &mut s))
            })
        });
        group.bench_function("domin_off", |b| {
            b.iter(|| {
                let mut s = QueryStats::default();
                std::hint::black_box(without.reverse_top_k(&q, K, &mut s))
            })
        });

        // Packed vs byte approximate vectors.
        let packed = Gir::new(
            &p,
            &w,
            GirConfig {
                packed: true,
                ..Default::default()
            },
        );
        group.bench_function("store_bytes", |b| {
            b.iter(|| {
                let mut s = QueryStats::default();
                std::hint::black_box(with.reverse_k_ranks(&q, K, &mut s))
            })
        });
        group.bench_function("store_packed", |b| {
            b.iter(|| {
                let mut s = QueryStats::default();
                std::hint::black_box(packed.reverse_k_ranks(&q, K, &mut s))
            })
        });
    }

    // Uniform vs adaptive grid on skewed data.
    {
        let spec = DataSpec {
            points: PointDistribution::Exponential,
            weights: WeightDistribution::Uniform,
            dim: 6,
            n_points: P,
            n_weights: W,
            seed: 42,
        };
        let (p, w) = spec.generate().unwrap();
        let q = p.point(PointId(9)).to_vec();
        let cfg = GirConfig {
            partitions: 8,
            ..Default::default()
        };
        let uniform = Gir::new(&p, &w, cfg);
        let adaptive = Gir::with_grid(&p, &w, AdaptiveGrid::from_data(8, &p, &w), cfg);
        group.bench_function("grid_uniform_exp_data", |b| {
            b.iter(|| {
                let mut s = QueryStats::default();
                std::hint::black_box(uniform.reverse_k_ranks(&q, K, &mut s))
            })
        });
        group.bench_function("grid_adaptive_exp_data", |b| {
            b.iter(|| {
                let mut s = QueryStats::default();
                std::hint::black_box(adaptive.reverse_k_ranks(&q, K, &mut s))
            })
        });
    }

    // Dense vs sparse scan on sparse weights.
    {
        let spec = DataSpec {
            points: PointDistribution::Uniform,
            weights: WeightDistribution::Sparse { max_nonzero: 3 },
            dim: 12,
            n_points: P,
            n_weights: W,
            seed: 42,
        };
        let (p, w) = spec.generate().unwrap();
        let q = p.point(PointId(9)).to_vec();
        let dense = Gir::with_defaults(&p, &w);
        let sparse = SparseGir::new(&p, &w, 32);
        group.bench_function("dense_on_sparse_w", |b| {
            b.iter(|| {
                let mut s = QueryStats::default();
                std::hint::black_box(dense.reverse_k_ranks(&q, K, &mut s))
            })
        });
        group.bench_function("sparse_on_sparse_w", |b| {
            b.iter(|| {
                let mut s = QueryStats::default();
                std::hint::black_box(sparse.reverse_k_ranks(&q, K, &mut s))
            })
        });
    }

    // Aggregate reverse rank: GIR-accelerated vs naive oracle on a
    // three-product bundle.
    {
        use rrq_core::arr::aggregate_reverse_k_ranks_naive;
        use rrq_core::Aggregate;
        let spec = DataSpec {
            n_weights: W,
            ..DataSpec::uniform_default(6, P, 42)
        };
        let (p, w) = spec.generate().unwrap();
        let bundle: Vec<Vec<f64>> = [9usize, 1999, 3999]
            .iter()
            .map(|&i| p.point(PointId(i)).to_vec())
            .collect();
        let gir = Gir::with_defaults(&p, &w);
        group.bench_function("arr_gir_sum", |b| {
            b.iter(|| {
                let mut s = QueryStats::default();
                std::hint::black_box(gir.aggregate_reverse_k_ranks(
                    &bundle,
                    K,
                    Aggregate::Sum,
                    &mut s,
                ))
            })
        });
        group.bench_function("arr_naive_sum", |b| {
            b.iter(|| {
                let mut s = QueryStats::default();
                std::hint::black_box(aggregate_reverse_k_ranks_naive(
                    &p,
                    &w,
                    &bundle,
                    K,
                    Aggregate::Sum,
                    &mut s,
                ))
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
