//! Criterion bench: GIR and SIM across data set cardinality — the
//! rigorous counterpart of Figure 13 (scalability panels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrq_baselines::Sim;
use rrq_core::Gir;
use rrq_data::DataSpec;
use rrq_types::{PointId, QueryStats, RkrQuery, RtkQuery};

const K: usize = 50;
const D: usize = 6;

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability");
    group.sample_size(10);
    for n in [2000usize, 8000, 32000] {
        let spec = DataSpec {
            n_weights: n / 4,
            ..DataSpec::uniform_default(D, n, 42)
        };
        let (p, w) = spec.generate().unwrap();
        let q = p.point(PointId(3)).to_vec();
        let gir = Gir::with_defaults(&p, &w);
        let sim = Sim::new(&p, &w);
        group.bench_with_input(BenchmarkId::new("gir_rtk", n), &n, |b, _| {
            b.iter(|| {
                let mut s = QueryStats::default();
                std::hint::black_box(gir.reverse_top_k(&q, K, &mut s))
            })
        });
        group.bench_with_input(BenchmarkId::new("sim_rtk", n), &n, |b, _| {
            b.iter(|| {
                let mut s = QueryStats::default();
                std::hint::black_box(sim.reverse_top_k(&q, K, &mut s))
            })
        });
        group.bench_with_input(BenchmarkId::new("gir_rkr", n), &n, |b, _| {
            b.iter(|| {
                let mut s = QueryStats::default();
                std::hint::black_box(gir.reverse_k_ranks(&q, K, &mut s))
            })
        });
        group.bench_with_input(BenchmarkId::new("sim_rkr", n), &n, |b, _| {
            b.iter(|| {
                let mut s = QueryStats::default();
                std::hint::black_box(sim.reverse_k_ranks(&q, K, &mut s))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
