//! Criterion bench: GIR query latency across dimensionality — the
//! statistically rigorous counterpart of Figures 10 and 11 (GIR series).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrq_core::{Gir, GirConfig};
use rrq_data::DataSpec;
use rrq_types::{PointId, QueryStats, RkrQuery, RtkQuery};

const P: usize = 4000;
const W: usize = 1000;
const K: usize = 50;

fn bench_gir(c: &mut Criterion) {
    let mut group = c.benchmark_group("gir");
    group.sample_size(10);
    for d in [2usize, 6, 20, 50] {
        let spec = DataSpec {
            n_weights: W,
            ..DataSpec::uniform_default(d, P, 42)
        };
        let (p, w) = spec.generate().unwrap();
        let gir = Gir::new(&p, &w, GirConfig::default());
        let q = p.point(PointId(123)).to_vec();
        group.bench_with_input(BenchmarkId::new("rtk", d), &d, |b, _| {
            b.iter(|| {
                let mut stats = QueryStats::default();
                std::hint::black_box(gir.reverse_top_k(&q, K, &mut stats))
            })
        });
        group.bench_with_input(BenchmarkId::new("rkr", d), &d, |b, _| {
            b.iter(|| {
                let mut stats = QueryStats::default();
                std::hint::black_box(gir.reverse_k_ranks(&q, K, &mut stats))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gir);
criterion_main!(benches);
