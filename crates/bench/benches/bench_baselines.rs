//! Criterion bench: baseline algorithms across dimensionality — the
//! rigorous counterpart of Figure 2 (and the BBR/MPA/SIM series of
//! Figures 10–11). Expect the tree-based baselines to degrade sharply
//! with d while SIM grows gently.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrq_baselines::{Bbr, BbrConfig, Mpa, MpaConfig, Rta, Sim};
use rrq_data::DataSpec;
use rrq_types::{PointId, QueryStats, RkrQuery, RtkQuery};

const P: usize = 4000;
const W: usize = 1000;
const K: usize = 50;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    for d in [2usize, 6, 12, 20] {
        let spec = DataSpec {
            n_weights: W,
            ..DataSpec::uniform_default(d, P, 42)
        };
        let (p, w) = spec.generate().unwrap();
        let q = p.point(PointId(123)).to_vec();
        let sim = Sim::new(&p, &w);
        let bbr = Bbr::new(&p, &w, BbrConfig::default());
        let mpa = Mpa::new(&p, &w, MpaConfig::default());
        let rta = Rta::new(&p, &w);
        group.bench_with_input(BenchmarkId::new("rta_rtk", d), &d, |b, _| {
            b.iter(|| {
                let mut stats = QueryStats::default();
                std::hint::black_box(rta.reverse_top_k(&q, K, &mut stats))
            })
        });
        group.bench_with_input(BenchmarkId::new("sim_rtk", d), &d, |b, _| {
            b.iter(|| {
                let mut stats = QueryStats::default();
                std::hint::black_box(sim.reverse_top_k(&q, K, &mut stats))
            })
        });
        group.bench_with_input(BenchmarkId::new("bbr_rtk", d), &d, |b, _| {
            b.iter(|| {
                let mut stats = QueryStats::default();
                std::hint::black_box(bbr.reverse_top_k(&q, K, &mut stats))
            })
        });
        group.bench_with_input(BenchmarkId::new("sim_rkr", d), &d, |b, _| {
            b.iter(|| {
                let mut stats = QueryStats::default();
                std::hint::black_box(sim.reverse_k_ranks(&q, K, &mut stats))
            })
        });
        group.bench_with_input(BenchmarkId::new("mpa_rkr", d), &d, |b, _| {
            b.iter(|| {
                let mut stats = QueryStats::default();
                std::hint::black_box(mpa.reverse_k_ranks(&q, K, &mut stats))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
