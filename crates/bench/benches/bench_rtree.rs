//! Criterion bench: the R*-tree substrate — build paths, range counting
//! and score-bounded rank counting across dimensionality (the machinery
//! behind Table 3 and the tree-based baselines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrq_data::synthetic;
use rrq_rtree::{stats, RTree, RTreeConfig};
use rrq_types::{dot, PointId, QueryStats};

const N: usize = 8000;

fn bench_rtree(c: &mut Criterion) {
    let mut build = c.benchmark_group("rtree_build");
    build.sample_size(10);
    for d in [3usize, 9, 20] {
        let points = synthetic::uniform_points(d, N, 10_000.0, d as u64).unwrap();
        build.bench_with_input(BenchmarkId::new("insert", d), &d, |b, _| {
            b.iter(|| std::hint::black_box(RTree::build(&points, RTreeConfig::default())))
        });
        build.bench_with_input(BenchmarkId::new("bulk_load", d), &d, |b, _| {
            b.iter(|| std::hint::black_box(RTree::bulk_load(&points, RTreeConfig::default())))
        });
    }
    build.finish();

    let mut query = c.benchmark_group("rtree_query");
    query.sample_size(20);
    for d in [3usize, 9, 20] {
        let points = synthetic::uniform_points(d, N, 10_000.0, d as u64).unwrap();
        let weights = synthetic::uniform_weights(d, 1, 99).unwrap();
        let tree = RTree::bulk_load(&points, RTreeConfig::default());
        let w = weights.weight(rrq_types::WeightId(0)).to_vec();
        let q = points.point(PointId(17)).to_vec();
        let fq = dot(&w, &q);
        let range = stats::fractional_volume_query(d, 10_000.0, 0.01, &vec![0.5; d]);
        query.bench_with_input(BenchmarkId::new("range_count_1pct", d), &d, |b, _| {
            b.iter(|| {
                let mut s = QueryStats::default();
                std::hint::black_box(tree.range_count(&range, &mut s))
            })
        });
        query.bench_with_input(BenchmarkId::new("count_preceding", d), &d, |b, _| {
            b.iter(|| {
                let mut s = QueryStats::default();
                std::hint::black_box(tree.count_preceding(&w, fq, usize::MAX, &mut s))
            })
        });
    }
    query.finish();
}

criterion_group!(benches, bench_rtree);
criterion_main!(benches);
