//! Open/closed-loop load generator over the [`rrq_core::WorkerPool`],
//! measuring latency without coordinated omission.
//!
//! A fixed query stream (a pure function of the seed and configuration)
//! is replayed against a GIR index served by a persistent worker pool:
//!
//! * **Open loop** (`mode=open`): query `i` has an *intended* send time
//!   `t_i = i / rate`. The driver paces submissions to that schedule and
//!   measures each latency from the intended time, not the actual send —
//!   if the system falls behind, the queue delay the schedule implies is
//!   charged to the queries that suffered it. This is the standard
//!   defence against coordinated omission, where measuring from the
//!   (late) actual send silently forgives exactly the stalls a tail
//!   percentile exists to expose.
//! * **Closed loop** (`mode=closed`): a fixed number of outstanding
//!   queries (one per worker) is kept in flight; each completion
//!   triggers the next submission and latency is submit-to-complete.
//!   Closed loops cannot overload the system, so they measure service
//!   capacity rather than behaviour under a fixed offered rate.
//!
//! Both modes execute the *same* query set, so the merged
//! [`QueryStats`] counters are identical for identical seeds and
//! configurations — `rrq-benchdiff` gates them at its exact default
//! threshold. Everything that depends on wall-clock scheduling
//! (achieved rate, sampler rows, late sends) is exported under the
//! `sched_` prefix, which the diff classifies as informational.
//!
//! While the stream runs, a [`FlightRecorder`] ring captures the last
//! N per-query records and a [`Sampler`] snapshots pool telemetry
//! (queue depth, in-flight, per-worker progress) into a time series;
//! both can be exported as a Chrome/Perfetto `trace_event` document via
//! [`LoadgenReport::trace_json`].

use crate::table::Table;
use crate::ExpConfig;
use rrq_core::{pool_scope, Gir, WorkerPool};
use rrq_data::rng::{Rng, StdRng};
use rrq_data::DataSpec;
use rrq_obs::{
    ExperimentMetrics, ExplainDoc, FlightRecord, FlightRecorder, LogHistogram, QueryKind, Sampler,
    TraceBuilder,
};
use rrq_types::{PointId, PointSet, QueryStats, RtkQuery};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// Loop discipline of a load-generator run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Paced submissions at the offered rate; latency from intended
    /// send time (coordinated-omission-safe).
    Open,
    /// Fixed concurrency (one outstanding query per worker); latency
    /// from actual submission.
    Closed,
}

impl LoadMode {
    fn as_str(self) -> &'static str {
        match self {
            LoadMode::Open => "open",
            LoadMode::Closed => "closed",
        }
    }
}

/// Configuration of a load-generator run, parsed from the `--loadgen`
/// specification string.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenConfig {
    /// Offered rate in queries per second. Also sets the stream length:
    /// `n = ceil(rate * dur)` queries in both modes.
    pub rate: f64,
    /// Stream duration in seconds (fractions allowed: `dur=0.25`).
    pub dur_s: f64,
    /// Loop discipline.
    pub mode: LoadMode,
    /// Worker threads serving queries.
    pub workers: usize,
    /// Saturation-knee ladder: run this many open-loop steps at
    /// `rate, 2*rate, ..., scan*rate` and report offered vs achieved
    /// for each. `1` (the default) runs the single configured step.
    pub scan: usize,
    /// Sampler interval in milliseconds.
    pub sample_ms: u64,
    /// Flight-recorder ring capacity (records kept of the tail of the
    /// stream).
    pub ring: usize,
    /// Capture a full [`ExplainDoc`] for every `explain`-th stream
    /// query (0 = off). Sampled queries run the explained scan path —
    /// identical results and counters, observable provenance — and
    /// their documents come back in
    /// [`LoadgenReport::explain_docs`] plus as `explain` slices in the
    /// Perfetto trace.
    pub explain: usize,
    /// Optional path for a Chrome/Perfetto `trace_event` JSON export.
    pub trace: Option<String>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            rate: 200.0,
            dur_s: 1.0,
            mode: LoadMode::Closed,
            workers: 4,
            scan: 1,
            sample_ms: 1,
            ring: 1024,
            explain: 0,
            trace: None,
        }
    }
}

impl LoadgenConfig {
    /// Parses a `key=value,key=value` specification, e.g.
    /// `rate=500,dur=2,mode=open,workers=4,scan=3,trace=trace.json`.
    /// Unknown keys are errors; every key is optional.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut cfg = Self::default();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("loadgen spec `{part}` is not key=value"))?;
            let bad = |e: &dyn std::fmt::Display| format!("bad loadgen {key}={value}: {e}");
            match key {
                "rate" => {
                    cfg.rate = value.parse::<f64>().map_err(|e| bad(&e))?;
                    if !cfg.rate.is_finite() || cfg.rate <= 0.0 {
                        return Err(format!("loadgen rate must be positive, got {value}"));
                    }
                }
                "dur" => {
                    cfg.dur_s = value.parse::<f64>().map_err(|e| bad(&e))?;
                    if !cfg.dur_s.is_finite() || cfg.dur_s <= 0.0 {
                        return Err(format!("loadgen dur must be positive, got {value}"));
                    }
                }
                "mode" => {
                    cfg.mode = match value {
                        "open" => LoadMode::Open,
                        "closed" => LoadMode::Closed,
                        other => return Err(format!("loadgen mode must be open|closed: {other}")),
                    }
                }
                "workers" => cfg.workers = value.parse::<usize>().map_err(|e| bad(&e))?.max(1),
                "scan" => cfg.scan = value.parse::<usize>().map_err(|e| bad(&e))?.max(1),
                "sample_ms" => cfg.sample_ms = value.parse::<u64>().map_err(|e| bad(&e))?.max(1),
                "ring" => cfg.ring = value.parse::<usize>().map_err(|e| bad(&e))?.max(1),
                "explain" => cfg.explain = value.parse::<usize>().map_err(|e| bad(&e))?,
                "trace" => cfg.trace = Some(value.to_string()),
                other => return Err(format!("unknown loadgen key `{other}`")),
            }
        }
        Ok(cfg)
    }

    /// Stream length at the given rate: `ceil(rate * dur)`, at least 1.
    pub fn stream_len(&self, rate: f64) -> usize {
        ((rate * self.dur_s).ceil() as usize).max(1)
    }
}

/// Everything one `--loadgen` invocation produced.
pub struct LoadgenReport {
    /// Structured metrics (one run entry per ladder step), exported to
    /// `BENCH_loadgen.json`.
    pub metrics: ExperimentMetrics,
    /// Human-readable summary table.
    pub table: Table,
    /// Perfetto `trace_event` document of the final step's time series
    /// and flight records; present when the spec asked for `trace=`.
    pub trace_json: Option<String>,
    /// Explain documents sampled from the final ladder step
    /// (`explain=N`), as `(stream sequence number, pretty JSON)` pairs
    /// in stream order. Empty when sampling is off.
    pub explain_docs: Vec<(u64, String)>,
}

/// One sampled explained query of a step, keyed by its position in the
/// query stream.
struct ExplainSample {
    seq: u64,
    start_ns: u64,
    total_ns: u64,
    doc: ExplainDoc,
}

/// A completed query, reported by the pool job back to the driver.
/// `origin_ns` is the latency origin the driver chose at submission —
/// the *intended* send time in open mode (coordinated-omission-safe),
/// the actual submit instant in closed mode — echoed back so latency
/// needs no shared index table.
struct Done {
    origin_ns: u64,
    end_ns: u64,
    stats: QueryStats,
    results: u64,
    /// Present when this query was an `explain=N` sample.
    explain: Option<ExplainSample>,
}

/// Measurements of one ladder step.
struct StepOutcome {
    latency: LogHistogram,
    stats: QueryStats,
    results_total: u64,
    elapsed_ns: u64,
    late_sends: u64,
    sampler: Sampler,
    panicked: u64,
    explains: Vec<ExplainSample>,
}

/// Samples the query stream: `n` query points drawn from `P` with a
/// seed distinct from [`ExpConfig::sample_queries`] so the loadgen
/// stream and the figure batches are independent draws.
fn sample_stream(cfg: &ExpConfig, points: &PointSet, n: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x10AD_10AD);
    (0..n)
        .map(|_| {
            points
                .point(PointId(rng.gen_range(0..points.len())))
                .to_vec()
        })
        .collect()
}

/// Drains every ready completion without blocking.
fn drain_ready(rx: &Receiver<Done>, on_done: &mut impl FnMut(Done)) -> usize {
    let mut n = 0;
    while let Ok(done) = rx.try_recv() {
        on_done(done);
        n += 1;
    }
    n
}

/// Per-step context the submit path carries into every pool job: the
/// index, the query parameter, the step clock, the flight ring, and
/// the completion channel.
struct StreamCtx<'env> {
    gir: &'env Gir<'env>,
    k: usize,
    clock: Instant,
    ring: &'env FlightRecorder,
    done_tx: Sender<Done>,
    /// Capture an [`ExplainDoc`] for every this-many-th stream query
    /// (0 = never).
    explain_every: usize,
}

/// Submits one query to the pool. The job times itself on the worker
/// thread (the service interval for the flight recorder) and reports
/// completion through the channel; the driver owns the latency
/// definition (intended-send or submit-time origin, passed as
/// `origin_ns`).
fn submit_query<'env>(
    pool: &WorkerPool<'env>,
    ctx: &StreamCtx<'env>,
    query: &'env [f64],
    seq: usize,
    origin_ns: u64,
) -> Result<(), String> {
    let (gir, k, clock, ring) = (ctx.gir, ctx.k, ctx.clock, ctx.ring);
    let done_tx = ctx.done_tx.clone();
    let cell = gir.grid().point_cell(query.first().copied().unwrap_or(0.0));
    let explained = ctx.explain_every > 0 && seq.is_multiple_of(ctx.explain_every);
    pool.submit(Box::new(move || {
        let start_ns = clock.elapsed().as_nanos() as u64;
        let mut stats = QueryStats::default();
        // The explained path returns identical results and counters
        // (pinned by the core equivalence tests) — only the provenance
        // document is extra.
        let mut doc = None;
        let found = if explained {
            let mut d = ExplainDoc::new();
            let r = gir.reverse_top_k_explained(query, k, &mut stats, &mut d);
            doc = Some(d);
            r
        } else {
            gir.reverse_top_k(query, k, &mut stats)
        };
        let end_ns = clock.elapsed().as_nanos() as u64;
        ring.record(FlightRecord {
            kind: QueryKind::Rtk,
            cell: cell as u32,
            k: k as u32,
            start_ns,
            total_ns: end_ns.saturating_sub(start_ns),
            multiplications: stats.multiplications,
            results: found.len() as u64,
            ..FlightRecord::default()
        });
        // A dropped receiver means the driver already gave up on the
        // step; the worker just moves on.
        let _ = done_tx.send(Done {
            origin_ns,
            end_ns,
            stats,
            results: found.len() as u64,
            explain: doc.map(|doc| ExplainSample {
                seq: seq as u64,
                start_ns,
                total_ns: end_ns.saturating_sub(start_ns),
                doc,
            }),
        });
    }))
    .map_err(|e| format!("submit failed: {e}"))
}

/// Runs one ladder step at `rate` against an already-built index.
#[allow(clippy::too_many_arguments)]
fn run_step(
    lg: &LoadgenConfig,
    gir: &Gir<'_>,
    stream: &[Vec<f64>],
    k: usize,
    rate: f64,
    mode: LoadMode,
    ring: &FlightRecorder,
) -> Result<StepOutcome, String> {
    let n = stream.len();
    // Flow counters plus one jobs-completed column per worker (the
    // per-interval delta of `w<i>` is that worker's utilisation; the
    // delta of `finished` is the achieved-throughput time series).
    let mut names: Vec<String> = ["queue_depth", "in_flight", "finished"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    names.extend((0..lg.workers).map(|i| format!("w{i}")));
    let mut sampler = Sampler::new(&names, lg.sample_ms * 1_000_000, 65_536);
    let mut latency = LogHistogram::new();
    let mut stats = QueryStats::default();
    let mut results_total = 0u64;
    let mut late_sends = 0u64;
    let mut explains: Vec<ExplainSample> = Vec::new();
    // Intended send times: the open-loop latency origin (t_i = i/R).
    let intended: Vec<u64> = (0..n).map(|i| (i as f64 * 1e9 / rate) as u64).collect();

    let (elapsed_ns, panicked) = pool_scope(lg.workers, |pool| -> Result<(u64, u64), String> {
        let (done_tx, done_rx) = channel::<Done>();
        let clock = Instant::now();
        let ctx = StreamCtx {
            gir,
            k,
            clock,
            ring,
            done_tx,
            explain_every: lg.explain,
        };
        let mut completed = 0usize;
        {
            let mut on_done = |done: Done| {
                latency.record(done.end_ns.saturating_sub(done.origin_ns));
                stats.merge(&done.stats);
                results_total += done.results;
                if let Some(sample) = done.explain {
                    explains.push(sample);
                }
            };
            let tick = |sampler: &mut Sampler, now_ns: u64| {
                sampler.tick(now_ns, || {
                    let t = pool.telemetry();
                    let mut row = vec![t.queue_depth(), t.in_flight(), t.finished];
                    row.extend_from_slice(&t.per_worker);
                    row
                });
            };

            match mode {
                LoadMode::Open => {
                    for (i, q) in stream.iter().enumerate() {
                        // Pace to the schedule, servicing completions and
                        // the sampler while waiting.
                        loop {
                            let now_ns = clock.elapsed().as_nanos() as u64;
                            if now_ns >= intended[i] {
                                // A send more than one period late means
                                // the driver itself (not the pool) fell
                                // behind the offered rate.
                                if now_ns.saturating_sub(intended[i]) > (1e9 / rate) as u64 {
                                    late_sends += 1;
                                }
                                break;
                            }
                            completed += drain_ready(&done_rx, &mut on_done);
                            tick(&mut sampler, now_ns);
                            let wait_ns = (intended[i] - now_ns).min(200_000);
                            std::thread::sleep(Duration::from_nanos(wait_ns));
                        }
                        submit_query(pool, &ctx, q, i, intended[i])?;
                    }
                }
                LoadMode::Closed => {
                    // Keep one outstanding query per worker; each
                    // completion funds the next submission.
                    let mut next = 0usize;
                    while next < n.min(lg.workers) {
                        let now_ns = clock.elapsed().as_nanos() as u64;
                        submit_query(pool, &ctx, &stream[next], next, now_ns)?;
                        next += 1;
                    }
                    while completed < next {
                        match done_rx.recv_timeout(Duration::from_millis(lg.sample_ms)) {
                            Ok(done) => {
                                on_done(done);
                                completed += 1;
                                if next < n {
                                    let now_ns = clock.elapsed().as_nanos() as u64;
                                    submit_query(pool, &ctx, &stream[next], next, now_ns)?;
                                    next += 1;
                                }
                            }
                            Err(RecvTimeoutError::Timeout) => {}
                            Err(RecvTimeoutError::Disconnected) => {
                                return Err("pool workers disconnected".into());
                            }
                        }
                        let now_ns = clock.elapsed().as_nanos() as u64;
                        tick(&mut sampler, now_ns);
                    }
                }
            }

            // Drain the tail: everything submitted must complete before
            // the step's clock stops.
            while completed < n {
                match done_rx.recv_timeout(Duration::from_millis(lg.sample_ms)) {
                    Ok(done) => {
                        on_done(done);
                        completed += 1;
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err("pool workers disconnected".into());
                    }
                }
                let now_ns = clock.elapsed().as_nanos() as u64;
                tick(&mut sampler, now_ns);
            }
        }
        Ok((clock.elapsed().as_nanos() as u64, pool.telemetry().panicked))
    })?;

    // Workers push samples concurrently, so arrival order is racy;
    // stream order is the deterministic presentation.
    explains.sort_by_key(|s| s.seq);
    Ok(StepOutcome {
        latency,
        stats,
        results_total,
        elapsed_ns,
        late_sends,
        sampler,
        panicked,
        explains,
    })
}

/// Builds the Perfetto trace document for the final ladder step: the
/// sampler's counter series plus one complete (`X`) slice per retained
/// flight record, on a per-worker-anonymous timeline. Sampled explain
/// documents appear as `explain` slices on their own track, carrying
/// the filter→refine funnel as slice args.
fn build_trace(ring: &FlightRecorder, sampler: &Sampler, explains: &[ExplainSample]) -> String {
    let pid = 1u64;
    let mut tb = TraceBuilder::new();
    tb.add_process_name(pid, "rrq-loadgen");
    tb.add_thread_name(pid, 0, "queries");
    tb.add_counter_series(pid, "pool", sampler);
    for rec in ring.snapshot() {
        tb.add_slice(
            pid,
            0,
            rec.kind.as_str(),
            rec.start_ns,
            rec.total_ns,
            &[
                ("seq", rec.seq),
                ("cell", rec.cell as u64),
                ("k", rec.k as u64),
                ("multiplications", rec.multiplications),
                ("results", rec.results),
            ],
        );
    }
    if !explains.is_empty() {
        tb.add_thread_name(pid, 1, "explain");
        for s in explains {
            let f = &s.doc.funnel;
            tb.add_slice(
                pid,
                1,
                "explain",
                s.start_ns,
                s.total_ns,
                &[
                    ("seq", s.seq),
                    ("weights", f.weights),
                    ("scanned", f.scanned),
                    ("case1", f.case1),
                    ("case2", f.case2),
                    ("refined", f.refined),
                    ("domin_skips", f.domin_skips),
                    ("early_terminations", f.early_terminations),
                    ("bound_events", s.doc.timeline.len() as u64),
                ],
            );
        }
    }
    tb.to_json().to_pretty()
}

/// Runs the load generator: builds the dataset and index from `cfg`,
/// replays `scan` ladder steps, and returns metrics + table (+ trace).
pub fn run(cfg: &ExpConfig, lg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    let spec = DataSpec {
        n_weights: cfg.w_card,
        ..DataSpec::uniform_default(6, cfg.p_card, cfg.seed)
    };
    let (p, w) = spec.generate().map_err(|e| format!("generation: {e:?}"))?;
    let gir = Gir::with_defaults(&p, &w);

    let mut metrics = ExperimentMetrics::new("loadgen");
    metrics.config_pair("p_card", cfg.p_card);
    metrics.config_pair("w_card", cfg.w_card);
    metrics.config_pair("k", cfg.k);
    metrics.config_pair("partitions", cfg.partitions);
    metrics.config_pair("seed", cfg.seed);
    metrics.config_pair("mode", lg.mode.as_str());
    metrics.config_pair("rate_milli", (lg.rate * 1000.0) as u64);
    metrics.config_pair("dur_ms", (lg.dur_s * 1000.0) as u64);
    metrics.config_pair("workers", lg.workers);
    metrics.config_pair("scan", lg.scan);
    // Exported only when sampling is on, so older baseline documents
    // keep matching (`rrq-benchdiff` compares the base's config keys).
    if lg.explain > 0 {
        metrics.config_pair("explain", lg.explain);
    }

    let mut table = Table::new(
        "Load generator: offered vs achieved",
        &[
            "mode",
            "rate/s",
            "queries",
            "achieved/s",
            "p50 ms",
            "p99 ms",
            "p999 ms",
            "max ms",
        ],
    );

    let ring = FlightRecorder::new(lg.ring);
    let mut last_sampler = None;
    let mut last_explains: Vec<ExplainSample> = Vec::new();
    for step in 0..lg.scan {
        let rate = lg.rate * (step + 1) as f64;
        let n = lg.stream_len(rate);
        let stream = sample_stream(cfg, &p, n);
        let mut outcome = run_step(lg, &gir, &stream, cfg.k, rate, lg.mode, &ring)?;

        let achieved = n as f64 * 1e9 / outcome.elapsed_ns.max(1) as f64;
        let summary = outcome.latency.summary();
        table.push_row(vec![
            lg.mode.as_str().to_string(),
            format!("{rate:.0}"),
            n.to_string(),
            format!("{achieved:.0}"),
            format!("{:.3}", summary.p50_ns as f64 / 1e6),
            format!("{:.3}", summary.p99_ns as f64 / 1e6),
            format!("{:.3}", summary.p999_ns as f64 / 1e6),
            format!("{:.3}", summary.max_ns as f64 / 1e6),
        ]);

        // Deterministic counters first (same seed + config => exact),
        // then the scheduling-dependent ones under `sched_`.
        let mut counters: Vec<(String, u64)> = outcome
            .stats
            .counters()
            .iter()
            .map(|&(name, v)| (name.to_string(), v))
            .collect();
        counters.push(("results_total".to_string(), outcome.results_total));
        counters.push(("offered_qps_milli".to_string(), (rate * 1000.0) as u64));
        counters.push((
            "sched_achieved_qps_milli".to_string(),
            (achieved * 1000.0) as u64,
        ));
        counters.push(("sched_elapsed_ns".to_string(), outcome.elapsed_ns));
        counters.push(("sched_late_sends".to_string(), outcome.late_sends));
        counters.push((
            "sched_sampler_rows".to_string(),
            outcome.sampler.rows().len() as u64,
        ));
        counters.push((
            "sched_sampler_dropped".to_string(),
            outcome.sampler.dropped(),
        ));
        counters.push(("sched_pool_panicked".to_string(), outcome.panicked));

        metrics.push(rrq_obs::AlgoMetrics {
            algorithm: "GIR".to_string(),
            query_kind: "rtk".to_string(),
            label: format!("{} rate={rate:.0}", lg.mode.as_str()),
            queries: n as u64,
            mean_ms: outcome.elapsed_ns as f64 / 1e6 / n as f64,
            counters,
            latency: Some(summary),
            phases: Vec::new(),
        });
        last_sampler = Some(outcome.sampler);
        last_explains = std::mem::take(&mut outcome.explains);
    }

    let trace_json = match (&lg.trace, &last_sampler) {
        (Some(_), Some(sampler)) => Some(build_trace(&ring, sampler, &last_explains)),
        _ => None,
    };

    Ok(LoadgenReport {
        metrics,
        table,
        trace_json,
        explain_docs: last_explains
            .into_iter()
            .map(|s| (s.seq, s.doc.to_pretty()))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_round_trips_and_rejects_junk() {
        let lg = LoadgenConfig::parse(
            "rate=500,dur=2,mode=open,workers=8,scan=3,explain=16,trace=t.json",
        )
        .expect("valid spec");
        assert_eq!(lg.rate, 500.0);
        assert_eq!(lg.dur_s, 2.0);
        assert_eq!(lg.mode, LoadMode::Open);
        assert_eq!(lg.workers, 8);
        assert_eq!(lg.scan, 3);
        assert_eq!(lg.explain, 16);
        assert_eq!(lg.trace.as_deref(), Some("t.json"));
        assert_eq!(LoadgenConfig::parse("").unwrap(), LoadgenConfig::default());

        assert!(LoadgenConfig::parse("rate=0").is_err());
        assert!(LoadgenConfig::parse("rate=-5").is_err());
        assert!(LoadgenConfig::parse("dur=nan").is_err());
        assert!(LoadgenConfig::parse("mode=sideways").is_err());
        assert!(LoadgenConfig::parse("bogus=1").is_err());
        assert!(LoadgenConfig::parse("rate").is_err(), "not key=value");
    }

    #[test]
    fn stream_len_is_ceil_of_rate_times_duration() {
        let lg = LoadgenConfig {
            dur_s: 0.5,
            ..LoadgenConfig::default()
        };
        assert_eq!(lg.stream_len(10.0), 5);
        assert_eq!(lg.stream_len(10.1), 6, "partial query rounds up");
        assert_eq!(lg.stream_len(0.1), 1, "never an empty stream");
    }

    #[test]
    fn explain_sampling_returns_reconciled_docs_for_every_nth_query() {
        let cfg = crate::ExpConfig::smoke();
        let lg = LoadgenConfig {
            rate: 50.0,
            dur_s: 0.1, // 5 queries
            mode: LoadMode::Closed,
            workers: 2,
            explain: 2, // samples 0, 2, 4
            trace: Some("unused".into()),
            ..LoadgenConfig::default()
        };
        let report = run(&cfg, &lg).expect("loadgen runs");
        let seqs: Vec<u64> = report.explain_docs.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![0, 2, 4], "every Nth query, stream order");
        for (seq, json) in &report.explain_docs {
            let doc = ExplainDoc::parse(json).expect("valid explain JSON");
            assert_eq!(doc.engine, "GIR", "q{seq}");
            assert!(doc.funnel.weights > 0, "q{seq}: empty funnel");
        }
        // Sampled docs surface in the Perfetto trace as explain slices.
        let trace = report.trace_json.expect("trace requested");
        let parsed = rrq_obs::json::parse(&trace).expect("valid trace JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|j| j.items())
            .expect("trace events");
        let explains = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("explain"))
            .count();
        assert_eq!(explains, 3, "one slice per sampled query");
    }

    #[test]
    fn intended_send_schedule_is_uniform_in_rate() {
        // The open-loop origin array the driver builds: t_i = i/R.
        let rate = 250.0;
        let t: Vec<u64> = (0..5).map(|i| (i as f64 * 1e9 / rate) as u64).collect();
        assert_eq!(t, vec![0, 4_000_000, 8_000_000, 12_000_000, 16_000_000]);
    }
}
