//! Explain-document capture for `rrq-exp --explain`.
//!
//! Re-runs the first sampled query of the configured workload with full
//! pruning provenance ([`rrq_core::Gir::reverse_top_k_explained`] and
//! friends) and returns one versioned [`ExplainDoc`] per engine ×
//! query kind, already funnel-reconciled against the engine's
//! [`QueryStats`] — a capture whose explain layer missed an event the
//! engine counted is refused, not written.
//!
//! Captures are pure functions of the [`ExpConfig`]: same seed and
//! shape ⇒ byte-identical JSON (the `rrq-explain diff` smoke in
//! `check.sh` gates exactly that). With `par_query > 1` the parallel
//! engine is captured alongside the sequential one; deterministic
//! (local) and epoch bound modes reproduce byte-identically too, while
//! shared-atomic mode's bound timeline is scheduling-dependent (its
//! header and results still diff clean structurally).

use crate::ExpConfig;
use rrq_core::{BoundMode, Gir, GirConfig, ParConfig};
use rrq_data::DataSpec;
use rrq_obs::ExplainDoc;
use rrq_types::QueryStats;

/// One captured document: the file suffix (`rtk_gir`, `rkr_par`, …)
/// and the pretty-printed JSON body.
pub struct Captured {
    /// Suffix naming engine × query kind; the binary writes
    /// `<prefix>_<suffix>.json`.
    pub suffix: &'static str,
    /// The document, pretty-printed.
    pub json: String,
}

/// Reconciles `doc` against `stats` and pretty-prints it.
fn seal(suffix: &'static str, doc: &ExplainDoc, stats: &QueryStats) -> Result<Captured, String> {
    doc.funnel
        .reconcile(&stats.counters())
        .map_err(|e| format!("{suffix}: {e}"))?;
    Ok(Captured {
        suffix,
        json: doc.to_pretty(),
    })
}

/// Captures explain documents for the configured workload: sequential
/// GIR rtk + rkr always, the parallel engine's pair when
/// `cfg.par_query > 1`. Every document's funnel is verified against the
/// engine's counters before it is returned.
pub fn capture(cfg: &ExpConfig) -> Result<Vec<Captured>, String> {
    let spec = DataSpec {
        n_weights: cfg.w_card,
        ..DataSpec::uniform_default(6, cfg.p_card, cfg.seed)
    };
    let (p, w) = spec.generate().map_err(|e| format!("generation: {e:?}"))?;
    let mut gir = Gir::new(
        &p,
        &w,
        GirConfig {
            partitions: cfg.partitions,
            ..GirConfig::default()
        },
    );
    if cfg.threshold_index {
        // Same bucket ladder the experiments attach, so captured
        // documents explain exactly what the benchmarks run.
        let buckets = rrq_core::ThresholdIndex::default_buckets(&[cfg.k], p.len());
        let index = gir
            .build_threshold_index(&buckets)
            .map_err(|e| format!("threshold index build: {e}"))?;
        gir.attach_threshold_index(index)
            .map_err(|e| format!("threshold index attach: {e}"))?;
    }
    let q = cfg
        .sample_queries(&p)
        .into_iter()
        .next()
        .ok_or("no queries configured")?;

    let mut out = Vec::new();
    {
        let mut stats = QueryStats::default();
        let mut doc = ExplainDoc::new();
        gir.reverse_top_k_explained(&q, cfg.k, &mut stats, &mut doc);
        out.push(seal("rtk_gir", &doc, &stats)?);
    }
    {
        let mut stats = QueryStats::default();
        let mut doc = ExplainDoc::new();
        gir.reverse_k_ranks_explained(&q, cfg.k, &mut stats, &mut doc);
        out.push(seal("rkr_gir", &doc, &stats)?);
    }
    if cfg.par_query > 1 {
        let mode = if cfg.par_epoch > 0 {
            BoundMode::Epoch(cfg.par_epoch)
        } else if cfg.par_shared {
            BoundMode::Shared
        } else {
            BoundMode::Local
        };
        let par = gir.parallel(ParConfig {
            threads: cfg.par_query,
            mode,
        });
        {
            let mut stats = QueryStats::default();
            let mut doc = ExplainDoc::new();
            par.reverse_top_k_explained(&q, cfg.k, &mut stats, &mut doc);
            out.push(seal("rtk_par", &doc, &stats)?);
        }
        {
            let mut stats = QueryStats::default();
            let mut doc = ExplainDoc::new();
            par.reverse_k_ranks_explained(&q, cfg.k, &mut stats, &mut doc);
            out.push(seal("rkr_par", &doc, &stats)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_capture_produces_two_reconciled_docs() {
        let cfg = ExpConfig::smoke();
        let docs = capture(&cfg).expect("capture succeeds");
        let suffixes: Vec<&str> = docs.iter().map(|c| c.suffix).collect();
        assert_eq!(suffixes, vec!["rtk_gir", "rkr_gir"]);
        for c in &docs {
            let doc = ExplainDoc::parse(&c.json).expect("valid explain JSON");
            assert_eq!(doc.engine, "GIR");
            assert!(doc.funnel.weights > 0, "{}: empty funnel", c.suffix);
        }
    }

    #[test]
    fn parallel_capture_adds_par_docs_that_match_structurally() {
        let mut cfg = ExpConfig::smoke();
        cfg.par_query = 2;
        let docs = capture(&cfg).expect("capture succeeds");
        let suffixes: Vec<&str> = docs.iter().map(|c| c.suffix).collect();
        assert_eq!(suffixes, vec!["rtk_gir", "rkr_gir", "rtk_par", "rkr_par"]);
        let rtk_gir = ExplainDoc::parse(&docs[0].json).unwrap();
        let rtk_par = ExplainDoc::parse(&docs[2].json).unwrap();
        assert_eq!(rtk_par.engine, "ParGir");
        assert!(
            rtk_gir.structural_eq(&rtk_par),
            "seq and par disagree: {:?}",
            rtk_gir.diff(&rtk_par, true)
        );
    }

    #[test]
    fn threshold_index_capture_reconciles_with_short_circuits() {
        let mut cfg = ExpConfig::smoke();
        cfg.threshold_index = true;
        let docs = capture(&cfg).expect("capture succeeds");
        let rtk = ExplainDoc::parse(&docs[0].json).expect("valid explain JSON");
        assert!(
            rtk.funnel.threshold_hits > 0,
            "smoke RTK at a materialized bucket should short-circuit"
        );
    }

    #[test]
    fn same_seed_captures_are_byte_identical() {
        let cfg = ExpConfig::smoke();
        let a = capture(&cfg).expect("first capture");
        let b = capture(&cfg).expect("second capture");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.suffix, y.suffix);
            assert_eq!(x.json, y.json, "{} not reproducible", x.suffix);
        }
    }
}
