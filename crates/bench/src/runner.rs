//! Shared experiment machinery: configuration, query sampling, timing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrq_types::{PointId, PointSet, QueryStats, RkrQuery, RtkQuery};
use std::time::Instant;

/// Scale and parameters of an experiment run.
///
/// Defaults are a laptop-friendly scale-down of the paper's Table 5
/// (which uses `|P| = |W| = 100K`, 1000 repetitions, `k = 100`,
/// `n = 32`).
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Base cardinality for `P` (paper: 100 000).
    pub p_card: usize,
    /// Base cardinality for `W` (paper: 100 000).
    pub w_card: usize,
    /// Number of query points sampled from `P` (paper: 1000).
    pub queries: usize,
    /// `k` for both query types (paper default: 100).
    pub k: usize,
    /// Grid partitions `n` (paper default: 32).
    pub partitions: usize,
    /// RNG seed for data and query sampling.
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self {
            p_card: 10_000,
            w_card: 10_000,
            queries: 5,
            k: 100,
            partitions: 32,
            seed: 42,
        }
    }
}

impl ExpConfig {
    /// The paper-scale configuration (slow: hours for the full suite).
    pub fn full() -> Self {
        Self {
            p_card: 100_000,
            w_card: 100_000,
            queries: 50, // still well below the paper's 1000 repetitions
            ..Self::default()
        }
    }

    /// A very small configuration for smoke tests.
    pub fn smoke() -> Self {
        Self {
            p_card: 600,
            w_card: 300,
            queries: 2,
            k: 10,
            partitions: 32,
            seed: 42,
        }
    }

    /// Samples `queries` query points from `points` (the paper draws `q`
    /// randomly from `P`).
    pub fn sample_queries(&self, points: &PointSet) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xC0FF_EE00);
        (0..self.queries)
            .map(|_| points.point(PointId(rng.gen_range(0..points.len()))).to_vec())
            .collect()
    }
}

/// Timing + instrumentation aggregated over a query batch for one
/// algorithm.
#[derive(Debug, Clone)]
pub struct AlgoRun {
    /// Display name of the algorithm.
    pub name: &'static str,
    /// Mean wall-clock per query, milliseconds.
    pub mean_ms: f64,
    /// Counters summed over the batch.
    pub stats: QueryStats,
    /// Number of queries executed.
    pub queries: usize,
}

impl AlgoRun {
    /// Mean pairwise multiplications per query.
    pub fn mean_multiplications(&self) -> f64 {
        self.stats.multiplications as f64 / self.queries.max(1) as f64
    }
}

/// Runs a reverse top-k algorithm over a query batch.
pub fn time_rtk<A: RtkQuery + ?Sized>(alg: &A, queries: &[Vec<f64>], k: usize) -> AlgoRun {
    let mut stats = QueryStats::default();
    let start = Instant::now();
    for q in queries {
        let _ = alg.reverse_top_k(q, k, &mut stats);
    }
    let elapsed = start.elapsed().as_secs_f64() * 1000.0;
    AlgoRun {
        name: alg.name(),
        mean_ms: elapsed / queries.len().max(1) as f64,
        stats,
        queries: queries.len(),
    }
}

/// Runs a reverse k-ranks algorithm over a query batch.
pub fn time_rkr<A: RkrQuery + ?Sized>(alg: &A, queries: &[Vec<f64>], k: usize) -> AlgoRun {
    let mut stats = QueryStats::default();
    let start = Instant::now();
    for q in queries {
        let _ = alg.reverse_k_ranks(q, k, &mut stats);
    }
    let elapsed = start.elapsed().as_secs_f64() * 1000.0;
    AlgoRun {
        name: alg.name(),
        mean_ms: elapsed / queries.len().max(1) as f64,
        stats,
        queries: queries.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrq_baselines::Sim;
    use rrq_data::synthetic;

    #[test]
    fn smoke_config_is_small() {
        let c = ExpConfig::smoke();
        assert!(c.p_card <= 1000 && c.w_card <= 1000);
    }

    #[test]
    fn sample_queries_is_deterministic_and_from_p() {
        let c = ExpConfig::smoke();
        let p = synthetic::uniform_points(3, c.p_card, 10_000.0, 1).unwrap();
        let q1 = c.sample_queries(&p);
        let q2 = c.sample_queries(&p);
        assert_eq!(q1, q2);
        assert_eq!(q1.len(), c.queries);
        for q in &q1 {
            assert!(p.iter().any(|(_, row)| row == q.as_slice()));
        }
    }

    #[test]
    fn time_rtk_and_rkr_fill_stats() {
        let c = ExpConfig::smoke();
        let p = synthetic::uniform_points(3, c.p_card, 10_000.0, 1).unwrap();
        let w = synthetic::uniform_weights(3, c.w_card, 2).unwrap();
        let sim = Sim::new(&p, &w);
        let queries = c.sample_queries(&p);
        let rtk = time_rtk(&sim, &queries, c.k);
        assert_eq!(rtk.name, "SIM");
        assert_eq!(rtk.queries, c.queries);
        assert!(rtk.stats.multiplications > 0);
        assert!(rtk.mean_ms >= 0.0);
        let rkr = time_rkr(&sim, &queries, c.k);
        assert!(rkr.stats.multiplications > 0);
        assert!(rkr.mean_multiplications() > 0.0);
    }
}
