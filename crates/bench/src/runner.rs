//! Shared experiment machinery: configuration, query sampling, timing,
//! and metrics collection.
//!
//! Timing is two-pass. Pass 1 runs the untraced query path and records a
//! per-query latency histogram — the numbers the paper's figures report,
//! with zero probe overhead inside the measured region. Pass 2 (only when
//! a [`collect`] scope is open) re-runs the batch through the traced path
//! with a [`MetricsRecorder`], producing the per-phase wall-time tree
//! (quantize / filter / refine / heap). Results of both passes are
//! identical — the traced tests of every algorithm crate pin that — so
//! the phase tree faithfully explains the untraced latency.

use rrq_data::rng::{Rng, StdRng};
use rrq_obs::{LogHistogram, MetricsRecorder, PhaseStat, SharedRecorder};
use rrq_types::{PointId, PointSet, QueryStats, RkrQuery, RtkQuery};
use std::time::Instant;

/// Heap accounting around a timed batch: a no-op unless the
/// `alloc-track` feature is on *and* [`rrq_obs::alloc::TrackingAlloc`]
/// is installed as the program's global allocator (the crate root does
/// so under the feature).
#[cfg(feature = "alloc-track")]
mod memtrack {
    pub type Mark = rrq_obs::alloc::AllocStats;

    pub fn mark() -> Mark {
        rrq_obs::alloc::reset_peak();
        rrq_obs::alloc::snapshot()
    }

    pub fn delta(before: &Mark) -> Vec<(String, u64)> {
        if !rrq_obs::alloc::is_active() {
            return Vec::new();
        }
        let after = rrq_obs::alloc::snapshot();
        vec![
            (
                "alloc_total_bytes".to_string(),
                after.total_bytes.saturating_sub(before.total_bytes),
            ),
            // `mark()` reset the high-water mark, so this is the peak of
            // live bytes *during* the batch (pre-existing structures
            // such as the index itself included — that is the number
            // capacity planning needs).
            ("alloc_peak_bytes".to_string(), after.peak_bytes),
        ]
    }
}

#[cfg(not(feature = "alloc-track"))]
mod memtrack {
    pub struct Mark;

    pub fn mark() -> Mark {
        Mark
    }

    pub fn delta(_: &Mark) -> Vec<(String, u64)> {
        Vec::new()
    }
}

/// Scale and parameters of an experiment run.
///
/// Defaults are a laptop-friendly scale-down of the paper's Table 5
/// (which uses `|P| = |W| = 100K`, 1000 repetitions, `k = 100`,
/// `n = 32`).
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Base cardinality for `P` (paper: 100 000).
    pub p_card: usize,
    /// Base cardinality for `W` (paper: 100 000).
    pub w_card: usize,
    /// Number of query points sampled from `P` (paper: 1000).
    pub queries: usize,
    /// `k` for both query types (paper default: 100).
    pub k: usize,
    /// Grid partitions `n` (paper default: 32).
    pub partitions: usize,
    /// RNG seed for data and query sampling.
    pub seed: u64,
    /// Worker threads per timed batch. 1 (the default) reproduces the
    /// paper's sequential measurement; above 1 the batch is striped
    /// across a `std::thread::scope` with per-thread stats/histograms
    /// merged afterwards, and the traced pass runs through a
    /// [`SharedRecorder`]. Counters are identical either way.
    pub threads: usize,
    /// Worker threads *inside* each GIR query (`rrq_core::ParGir`).
    /// 1 (the default) runs the paper's sequential engine; above 1 the
    /// experiments wrap GIR with the parallel query engine at this
    /// thread count. Results are byte-identical either way.
    pub par_query: usize,
    /// Let parallel query workers share scan bounds across shards
    /// (tighter early termination, but counters depend on thread
    /// timing). Off by default: deterministic mode keeps benchmark
    /// counters bit-reproducible so `rrq-benchdiff` can gate parallel
    /// documents at its exact default thresholds.
    pub par_shared: bool,
    /// Serve parallel queries from one persistent
    /// [`rrq_core::WorkerPool`] per timed section instead of scoping
    /// fresh threads per query, amortising spawn/join across the batch.
    /// Only meaningful with `par_query > 1`.
    pub par_pool: bool,
    /// Epoch-snapshot bound sharing (`rrq_core::BoundMode::Epoch`):
    /// workers exchange merged scan bounds every this-many shard
    /// weights at barrier-synchronised boundaries. `0` (the default)
    /// keeps the mode chosen by `par_shared`; non-zero overrides it —
    /// cross-shard pruning *and* exactly reproducible counters.
    pub par_epoch: usize,
    /// Attach a precomputed [`rrq_core::ThresholdIndex`] to every GIR
    /// engine under test. RTK weights decided by one table comparison
    /// (and RKR weights whose rank is certified above the running
    /// bound) skip the grid scan entirely; results stay byte-identical
    /// and the short-circuits are booked in the `threshold_hits`
    /// counter. Off by default so committed baselines keep matching.
    pub threshold_index: bool,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self {
            p_card: 10_000,
            w_card: 10_000,
            queries: 5,
            k: 100,
            partitions: 32,
            seed: 42,
            threads: 1,
            par_query: 1,
            par_shared: false,
            par_pool: false,
            par_epoch: 0,
            threshold_index: false,
        }
    }
}

impl ExpConfig {
    /// The paper-scale configuration (slow: hours for the full suite).
    pub fn full() -> Self {
        Self {
            p_card: 100_000,
            w_card: 100_000,
            queries: 50, // still well below the paper's 1000 repetitions
            ..Self::default()
        }
    }

    /// A very small configuration for smoke tests.
    pub fn smoke() -> Self {
        Self {
            p_card: 600,
            w_card: 300,
            queries: 2,
            k: 10,
            partitions: 32,
            seed: 42,
            threads: 1,
            par_query: 1,
            par_shared: false,
            par_pool: false,
            par_epoch: 0,
            threshold_index: false,
        }
    }

    /// Samples `queries` query points from `points` (the paper draws `q`
    /// randomly from `P`).
    pub fn sample_queries(&self, points: &PointSet) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xC0FF_EE00);
        (0..self.queries)
            .map(|_| {
                points
                    .point(PointId(rng.gen_range(0..points.len())))
                    .to_vec()
            })
            .collect()
    }
}

/// Timing + instrumentation aggregated over a query batch for one
/// algorithm.
#[derive(Debug, Clone)]
pub struct AlgoRun {
    /// Display name of the algorithm.
    pub name: &'static str,
    /// Mean wall-clock per query, milliseconds.
    pub mean_ms: f64,
    /// Counters summed over the batch.
    pub stats: QueryStats,
    /// Number of queries executed.
    pub queries: usize,
    /// Per-query wall-clock latency (nanoseconds), from the untraced pass.
    pub latency: LogHistogram,
    /// Per-phase wall time from the traced pass. Empty unless a
    /// [`collect`] scope was open while the batch ran.
    pub phases: Vec<PhaseStat>,
    /// Harness-level counters that are not part of [`QueryStats`]
    /// (currently the `alloc_*` heap metrics of the `alloc-track`
    /// feature). Appended after the stats counters in exports.
    pub extra: Vec<(String, u64)>,
}

impl AlgoRun {
    /// Mean pairwise multiplications per query.
    pub fn mean_multiplications(&self) -> f64 {
        self.stats.multiplications as f64 / self.queries.max(1) as f64
    }
}

/// One timed batch: the untraced pass (stats + per-query latency) and,
/// when a [`collect`] scope is open, the traced pass producing the phase
/// tree. `run_one` / `run_one_traced` abstract over rtk vs rkr.
fn time_batch<A, FPlain, FTraced>(
    alg: &A,
    queries: &[Vec<f64>],
    threads: usize,
    run_one: FPlain,
    run_one_traced: FTraced,
) -> (
    f64,
    QueryStats,
    LogHistogram,
    Vec<PhaseStat>,
    Vec<(String, u64)>,
)
where
    A: Sync + ?Sized,
    FPlain: Fn(&A, &[f64], &mut QueryStats) + Sync,
    FTraced: Fn(&A, &[f64], &mut QueryStats, &dyn rrq_obs::Recorder) + Sync,
{
    let threads = threads.clamp(1, queries.len().max(1));
    let mem_before = memtrack::mark();
    let start = Instant::now();
    let (stats, latency) = if threads == 1 {
        let mut stats = QueryStats::default();
        let mut latency = LogHistogram::new();
        for q in queries {
            let qs = Instant::now();
            run_one(alg, q, &mut stats);
            latency.record(qs.elapsed().as_nanos() as u64);
        }
        (stats, latency)
    } else {
        // Stripe the batch across the workers (query i goes to thread
        // i % threads): deterministic partition, merged stats identical
        // to the sequential run because `QueryStats::merge` is
        // field-wise addition and `LogHistogram::merge` adds bucket
        // counts exactly.
        let shards: Vec<(QueryStats, LogHistogram)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let run_one = &run_one;
                    s.spawn(move || {
                        let mut stats = QueryStats::default();
                        let mut latency = LogHistogram::new();
                        for q in queries.iter().skip(t).step_by(threads) {
                            let qs = Instant::now();
                            run_one(alg, q, &mut stats);
                            latency.record(qs.elapsed().as_nanos() as u64);
                        }
                        (stats, latency)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("query worker panicked"))
                .collect()
        });
        let mut stats = QueryStats::default();
        let mut latency = LogHistogram::new();
        for (s, h) in &shards {
            stats.merge(s);
            latency.merge(h);
        }
        (stats, latency)
    };
    let elapsed = start.elapsed().as_secs_f64() * 1000.0;
    let extra = memtrack::delta(&mem_before);

    // Intra-query parallel algorithms need a thread-safe recorder for
    // their worker handoff (`Recorder::as_sync`); a `MetricsRecorder`
    // would silently demote them to sequential tracing.
    let phases = if !collect::is_active() {
        Vec::new()
    } else if threads == 1 && collect::par_query() <= 1 {
        let rec = MetricsRecorder::new();
        let mut scratch = QueryStats::default();
        for q in queries {
            run_one_traced(alg, q, &mut scratch, &rec);
        }
        rec.phases()
    } else {
        // Concurrent traced pass: every worker drives the *same*
        // `SharedRecorder`; its shard-merged tree equals the sequential
        // one (pinned by the `threaded_run_matches_sequential` test).
        let rec = SharedRecorder::new();
        std::thread::scope(|s| {
            for t in 0..threads {
                let (rec, run_one_traced) = (&rec, &run_one_traced);
                s.spawn(move || {
                    let mut scratch = QueryStats::default();
                    for q in queries.iter().skip(t).step_by(threads) {
                        run_one_traced(alg, q, &mut scratch, rec);
                    }
                });
            }
        });
        rec.phases()
    };
    (
        elapsed / queries.len().max(1) as f64,
        stats,
        latency,
        phases,
        extra,
    )
}

/// Runs a reverse top-k algorithm over a query batch on the open
/// scope's thread count ([`collect::threads`]; 1 outside a scope).
pub fn time_rtk<A: RtkQuery + Sync + ?Sized>(alg: &A, queries: &[Vec<f64>], k: usize) -> AlgoRun {
    time_rtk_threads(alg, queries, k, collect::threads())
}

/// [`time_rtk`] with an explicit worker-thread count.
pub fn time_rtk_threads<A: RtkQuery + Sync + ?Sized>(
    alg: &A,
    queries: &[Vec<f64>],
    k: usize,
    threads: usize,
) -> AlgoRun {
    let (mean_ms, stats, latency, phases, extra) = time_batch(
        alg,
        queries,
        threads,
        |alg, q, stats| {
            let _ = alg.reverse_top_k(q, k, stats);
        },
        |alg, q, stats, rec| {
            let _ = alg.reverse_top_k_traced(q, k, stats, rec);
        },
    );
    let run = AlgoRun {
        name: alg.name(),
        mean_ms,
        stats,
        queries: queries.len(),
        latency,
        phases,
        extra,
    };
    collect::record("rtk", &run);
    run
}

/// Runs a reverse k-ranks algorithm over a query batch on the open
/// scope's thread count ([`collect::threads`]; 1 outside a scope).
pub fn time_rkr<A: RkrQuery + Sync + ?Sized>(alg: &A, queries: &[Vec<f64>], k: usize) -> AlgoRun {
    time_rkr_threads(alg, queries, k, collect::threads())
}

/// [`time_rkr`] with an explicit worker-thread count.
pub fn time_rkr_threads<A: RkrQuery + Sync + ?Sized>(
    alg: &A,
    queries: &[Vec<f64>],
    k: usize,
    threads: usize,
) -> AlgoRun {
    let (mean_ms, stats, latency, phases, extra) = time_batch(
        alg,
        queries,
        threads,
        |alg, q, stats| {
            let _ = alg.reverse_k_ranks(q, k, stats);
        },
        |alg, q, stats, rec| {
            let _ = alg.reverse_k_ranks_traced(q, k, stats, rec);
        },
    );
    let run = AlgoRun {
        name: alg.name(),
        mean_ms,
        stats,
        queries: queries.len(),
        latency,
        phases,
        extra,
    };
    collect::record("rkr", &run);
    run
}

/// Opens one persistent [`rrq_core::WorkerPool`] around a timed section
/// when the open [`collect`] scope asks for it (`--par-pool` with
/// `--par-query > 1`), and hands it to `f`; otherwise `f` gets `None`.
///
/// Experiments call this *outside* their timed batches and attach the
/// pool with [`rrq_core::ParGir::with_pool_opt`], so worker spawn/join
/// happens once per sweep iteration instead of once per query — spawn
/// cost stays out of the per-query latency percentiles.
pub fn with_query_pool<'env, R>(f: impl FnOnce(Option<&rrq_core::WorkerPool<'env>>) -> R) -> R {
    let workers = collect::par_query();
    if collect::par_pool() && workers > 1 {
        rrq_core::pool_scope(workers, |pool| f(Some(pool)))
    } else {
        f(None)
    }
}

/// Builds and attaches a [`rrq_core::ThresholdIndex`] to `gir` when the
/// open [`collect`] scope asks for one (`--threshold-index`). Buckets
/// are the standard rank ladder for the `k` values the experiment
/// sweeps ([`rrq_core::ThresholdIndex::default_buckets`] over
/// `n_points`), so RTK gets an exact bucket per swept `k` and RKR gets
/// log-spaced rungs for its running-bound certificates. No-op outside a
/// scope or without the flag, so experiments attach unconditionally.
pub fn attach_threshold_index<G: rrq_core::grid::GridTable>(
    gir: &mut rrq_core::Gir<'_, G>,
    ks: &[usize],
    n_points: usize,
) {
    if !collect::threshold_index() {
        return;
    }
    let buckets = rrq_core::ThresholdIndex::default_buckets(ks, n_points);
    let index = gir
        .build_threshold_index(&buckets)
        .expect("threshold index build over in-memory experiment data");
    gir.attach_threshold_index(index)
        .expect("freshly built index matches its own engine");
}

/// Experiment-wide metrics collection.
///
/// A thread-local scope opened with [`collect::begin`] makes every
/// subsequent [`time_rtk`]/[`time_rkr`] call append an
/// [`rrq_obs::AlgoMetrics`] entry (and run the traced second pass), so
/// the fourteen experiment modules emit structured metrics without any
/// per-experiment wiring. [`collect::finish`] closes the scope and
/// returns the accumulated [`rrq_obs::ExperimentMetrics`].
pub mod collect {
    use super::{AlgoRun, ExpConfig};
    use rrq_obs::{AlgoMetrics, ExperimentMetrics};
    use std::cell::RefCell;

    struct Scope {
        metrics: ExperimentMetrics,
        label: String,
        threads: usize,
        par_query: usize,
        par_shared: bool,
        par_pool: bool,
        par_epoch: usize,
        threshold_index: bool,
    }

    impl Scope {
        /// The bound-sharing mode the scope's flags select: an explicit
        /// epoch size wins, then shared, else local (deterministic).
        fn bound_mode(&self) -> rrq_core::BoundMode {
            if self.par_epoch > 0 {
                rrq_core::BoundMode::Epoch(self.par_epoch)
            } else if self.par_shared {
                rrq_core::BoundMode::Shared
            } else {
                rrq_core::BoundMode::Local
            }
        }
    }

    thread_local! {
        static SCOPE: RefCell<Option<Scope>> = const { RefCell::new(None) };
    }

    /// Opens a collection scope for `experiment`, recording the run
    /// configuration. Replaces any scope already open on this thread.
    pub fn begin(experiment: &str, cfg: &ExpConfig) {
        let mut metrics = ExperimentMetrics::new(experiment);
        metrics.config_pair("p_card", cfg.p_card);
        metrics.config_pair("w_card", cfg.w_card);
        metrics.config_pair("queries", cfg.queries);
        metrics.config_pair("k", cfg.k);
        metrics.config_pair("partitions", cfg.partitions);
        metrics.config_pair("seed", cfg.seed);
        metrics.config_pair("threads", cfg.threads.max(1));
        // Exported only when the parallel query engine is actually on:
        // `rrq-benchdiff` compares the *base* document's config keys, so
        // sequential baselines keep matching documents produced by newer
        // binaries.
        if cfg.par_query > 1 {
            metrics.config_pair("par_query", cfg.par_query);
            metrics.config_pair(
                "par_mode",
                if cfg.par_epoch > 0 {
                    "epoch"
                } else if cfg.par_shared {
                    "shared"
                } else {
                    "deterministic"
                },
            );
            if cfg.par_epoch > 0 {
                metrics.config_pair("par_epoch", cfg.par_epoch);
            }
            if cfg.par_pool {
                metrics.config_pair("par_pool", 1);
            }
        }
        // Same base-side-only rule: export the key only when the
        // threshold index is attached, so pre-index baselines keep
        // matching plain runs.
        if cfg.threshold_index {
            metrics.config_pair("threshold_index", 1);
        }
        SCOPE.with(|s| {
            *s.borrow_mut() = Some(Scope {
                metrics,
                label: String::new(),
                threads: cfg.threads.max(1),
                par_query: cfg.par_query.max(1),
                par_shared: cfg.par_shared,
                par_pool: cfg.par_pool,
                par_epoch: cfg.par_epoch,
                threshold_index: cfg.threshold_index,
            });
        });
    }

    /// Whether a scope is open (drives the traced second pass).
    pub fn is_active() -> bool {
        SCOPE.with(|s| s.borrow().is_some())
    }

    /// Worker threads the open scope asks timed batches to use (1
    /// outside a scope — plain `time_rtk`/`time_rkr` callers measure
    /// sequentially, like the paper).
    pub fn threads() -> usize {
        SCOPE.with(|s| s.borrow().as_ref().map_or(1, |scope| scope.threads))
    }

    /// Intra-query worker threads the open scope asks GIR to use (1
    /// outside a scope).
    pub fn par_query() -> usize {
        SCOPE.with(|s| s.borrow().as_ref().map_or(1, |scope| scope.par_query))
    }

    /// The scope's intra-query parallel configuration, ready to hand to
    /// [`rrq_core::Gir::parallel`]. Outside a scope (or at
    /// `--par-query 1`) this is a single-thread configuration, which
    /// [`rrq_core::ParGir`] runs through the sequential engine outright
    /// — experiments can wrap GIR unconditionally.
    pub fn par_config() -> rrq_core::ParConfig {
        SCOPE.with(|s| {
            s.borrow()
                .as_ref()
                .map_or(rrq_core::ParConfig::deterministic(1), |scope| {
                    rrq_core::ParConfig {
                        threads: scope.par_query,
                        mode: scope.bound_mode(),
                    }
                })
        })
    }

    /// Whether the open scope asks for a persistent worker pool
    /// (`--par-pool`; false outside a scope).
    pub fn par_pool() -> bool {
        SCOPE.with(|s| s.borrow().as_ref().is_some_and(|scope| scope.par_pool))
    }

    /// Whether the open scope asks experiments to attach a
    /// [`rrq_core::ThresholdIndex`] to the GIR engines under test
    /// (`--threshold-index`; false outside a scope).
    pub fn threshold_index() -> bool {
        SCOPE.with(|s| {
            s.borrow()
                .as_ref()
                .is_some_and(|scope| scope.threshold_index)
        })
    }

    /// Tags subsequent runs with a free-form label (e.g. `"d=10"`).
    /// No-op outside a scope.
    pub fn set_label(label: impl Into<String>) {
        let label = label.into();
        SCOPE.with(|s| {
            if let Some(scope) = s.borrow_mut().as_mut() {
                scope.label = label;
            }
        });
    }

    /// Appends one timed batch to the open scope; no-op outside one.
    pub(crate) fn record(kind: &'static str, run: &AlgoRun) {
        SCOPE.with(|s| {
            if let Some(scope) = s.borrow_mut().as_mut() {
                scope.metrics.push(AlgoMetrics {
                    algorithm: run.name.to_string(),
                    query_kind: kind.to_string(),
                    label: scope.label.clone(),
                    queries: run.queries as u64,
                    mean_ms: run.mean_ms,
                    counters: run
                        .stats
                        .counters()
                        .iter()
                        .map(|&(n, v)| (n.to_string(), v))
                        .chain(run.extra.iter().cloned())
                        .collect(),
                    latency: Some(run.latency.summary()),
                    phases: run.phases.clone(),
                });
            }
        });
    }

    /// Closes the scope, returning everything recorded since
    /// [`begin`]. `None` if no scope was open.
    pub fn finish() -> Option<ExperimentMetrics> {
        SCOPE.with(|s| s.borrow_mut().take()).map(|s| s.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrq_baselines::Sim;
    use rrq_data::synthetic;

    #[test]
    fn smoke_config_is_small() {
        let c = ExpConfig::smoke();
        assert!(c.p_card <= 1000 && c.w_card <= 1000);
    }

    #[test]
    fn sample_queries_is_deterministic_and_from_p() {
        let c = ExpConfig::smoke();
        let p = synthetic::uniform_points(3, c.p_card, 10_000.0, 1).unwrap();
        let q1 = c.sample_queries(&p);
        let q2 = c.sample_queries(&p);
        assert_eq!(q1, q2);
        assert_eq!(q1.len(), c.queries);
        for q in &q1 {
            assert!(p.iter().any(|(_, row)| row == q.as_slice()));
        }
    }

    #[test]
    fn time_rtk_and_rkr_fill_stats() {
        let c = ExpConfig::smoke();
        let p = synthetic::uniform_points(3, c.p_card, 10_000.0, 1).unwrap();
        let w = synthetic::uniform_weights(3, c.w_card, 2).unwrap();
        let sim = Sim::new(&p, &w);
        let queries = c.sample_queries(&p);
        let rtk = time_rtk(&sim, &queries, c.k);
        assert_eq!(rtk.name, "SIM");
        assert_eq!(rtk.queries, c.queries);
        assert!(rtk.stats.multiplications > 0);
        assert!(rtk.mean_ms >= 0.0);
        assert_eq!(rtk.latency.count(), c.queries as u64);
        assert!(rtk.phases.is_empty(), "no traced pass outside a scope");
        let rkr = time_rkr(&sim, &queries, c.k);
        assert!(rkr.stats.multiplications > 0);
        assert!(rkr.mean_multiplications() > 0.0);
    }

    #[test]
    fn par_config_and_pool_follow_the_scope_flags() {
        let mut c = ExpConfig::smoke();
        c.par_query = 4;
        c.par_shared = true;
        collect::begin("unit-par", &c);
        assert_eq!(
            collect::par_config(),
            rrq_core::ParConfig::with_threads(4),
            "--par-shared-bound maps to shared mode"
        );
        assert!(!collect::par_pool());
        with_query_pool(|pool| assert!(pool.is_none(), "pool only opens with --par-pool"));

        c.par_epoch = 64;
        c.par_pool = true;
        collect::begin("unit-par", &c);
        let par_cfg = collect::par_config();
        assert_eq!(par_cfg.threads, 4);
        assert_eq!(
            par_cfg.mode,
            rrq_core::BoundMode::Epoch(64),
            "an explicit epoch size overrides the shared flag"
        );
        with_query_pool(|pool| {
            let pool = pool.expect("pool requested by the scope");
            assert_eq!(pool.workers(), 4);
        });
        let metrics = collect::finish().expect("scope was open");
        let pairs: Vec<&str> = metrics.config.iter().map(|(k, _)| k.as_str()).collect();
        assert!(pairs.contains(&"par_epoch") && pairs.contains(&"par_pool"));

        // Outside a scope: sequential config, no pool.
        assert_eq!(collect::par_config(), rrq_core::ParConfig::deterministic(1));
        with_query_pool(|pool| assert!(pool.is_none()));
    }

    #[test]
    fn collect_scope_gathers_runs_and_phases() {
        let c = ExpConfig::smoke();
        let p = synthetic::uniform_points(3, c.p_card, 10_000.0, 3).unwrap();
        let w = synthetic::uniform_weights(3, c.w_card, 4).unwrap();
        let sim = Sim::new(&p, &w);
        let queries = c.sample_queries(&p);

        collect::begin("unit", &c);
        collect::set_label("case-a");
        let run = time_rtk(&sim, &queries, c.k);
        assert!(
            run.phases.iter().any(|ph| ph.path == "rtk"),
            "traced pass records phases inside a scope: {:?}",
            run.phases
        );
        let _ = time_rkr(&sim, &queries, c.k);
        let metrics = collect::finish().expect("scope was open");
        assert!(collect::finish().is_none(), "finish closes the scope");
        assert!(!collect::is_active());

        assert_eq!(metrics.experiment, "unit");
        assert_eq!(metrics.runs.len(), 2);
        assert_eq!(metrics.runs[0].query_kind, "rtk");
        assert_eq!(metrics.runs[0].label, "case-a");
        assert_eq!(metrics.runs[1].query_kind, "rkr");
        let mults = metrics.runs[0].counter("multiplications").unwrap();
        assert_eq!(mults, run.stats.multiplications);
        let lat = metrics.runs[0].latency.unwrap();
        assert_eq!(lat.count, c.queries as u64);
        assert!(lat.p50_ns <= lat.p99_ns && lat.p99_ns <= lat.max_ns);
        // The JSON export of a live collection round-trips.
        let json = metrics.to_json().to_pretty();
        let parsed = rrq_obs::json::parse(&json).expect("valid JSON");
        assert_eq!(
            parsed.get("experiment").and_then(|j| j.as_str()),
            Some("unit")
        );
    }
}
