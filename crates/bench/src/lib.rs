//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§6), plus the motivating measurements of §1.2 and §5.
//!
//! Each experiment is a function from an [`ExpConfig`] to a [`Table`]
//! (plain-text rows matching the paper's presentation). The `rrq-exp`
//! binary dispatches on experiment id; Criterion benches under
//! `benches/` wrap the hot paths for statistically rigorous timing.
//!
//! Default cardinalities are scaled down (10K × 10K instead of the
//! paper's 100K × 100K with 1000 query repetitions) so the full suite
//! completes in minutes on a laptop; pass `--full` for paper-scale runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod experiments;
pub mod explain;
pub mod loadgen;
pub mod mutate;
pub mod runner;
pub mod table;

pub use diff::{DiffReport, Thresholds};
pub use loadgen::{LoadMode, LoadgenConfig, LoadgenReport};
pub use mutate::{MutateConfig, MutateReport};
pub use runner::{collect, with_query_pool, AlgoRun, ExpConfig};
pub use table::Table;

/// With `alloc-track` on, every binary and test of this crate runs under
/// the counting allocator, so the runner's `memtrack` brackets see real
/// numbers. (The attribute is crate-global; the declaration itself is
/// safe — the `unsafe` lives in `rrq_obs::alloc`.)
#[cfg(feature = "alloc-track")]
#[global_allocator]
static TRACKING_ALLOC: rrq_obs::alloc::TrackingAlloc = rrq_obs::alloc::TrackingAlloc;
