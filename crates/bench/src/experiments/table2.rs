//! Paper Table 2: elapsed time for reading data files, for processing a
//! reverse rank query, and for the raw pairwise computations, on 6-d
//! uniform data of growing cardinality.
//!
//! Expected shape: reading is negligible; pairwise multiplication
//! accounts for the majority of processing time — the paper's argument
//! that RRQ is CPU-bound, so the right optimisation target is the scan's
//! multiplications, not I/O.

use crate::runner::{time_rtk, ExpConfig};
use crate::table::{fmt_ms, Table};
use rrq_baselines::Naive;
use rrq_data::{io, DataSpec};
use rrq_types::dot;
use std::time::Instant;

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut table = Table::new(
        "Table 2: read vs process vs pairwise cost (d = 6, UN)",
        &["|P| = |W|", "read ms", "process RRQ ms", "pairwise ms"],
    );
    let sizes: Vec<usize> = [cfg.p_card / 100, cfg.p_card / 10, cfg.p_card]
        .into_iter()
        .map(|s| s.max(100))
        .collect();
    let dir = std::env::temp_dir().join(format!("rrq_table2_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for &n in &sizes {
        let spec = DataSpec::uniform_default(6, n, cfg.seed);
        let (p, w) = spec.generate().expect("generation");
        // Write both sets out, then time a cold-ish read back.
        let p_path = dir.join(format!("p_{n}.bin"));
        let w_path = dir.join(format!("w_{n}.bin"));
        io::write_points(&p, &p_path).expect("write P");
        io::write_weights(&w, &w_path).expect("write W");
        // rrq-lint: allow(no-wall-clock-in-counters) -- I/O timing is the measurement here, not a counter
        let start = Instant::now();
        let p2 = io::read_points(&p_path).expect("read P");
        let w2 = io::read_weights(&w_path).expect("read W");
        let read_ms = start.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(p2.len(), n);
        assert_eq!(w2.len(), n);

        // Processing: one full RTK query with the unoptimised scan — the
        // paper's measurement predates GIR and uses the plain method.
        let naive = Naive::new(&p, &w);
        let queries = {
            let mut c = *cfg;
            c.queries = 1;
            c.sample_queries(&p)
        };
        let process = time_rtk(&naive, &queries, cfg.k);

        // Pairwise computations alone: every f_w(p) inner product.
        // rrq-lint: allow(no-wall-clock-in-counters) -- deliberate timed section over a fixed workload
        let start = Instant::now();
        let mut sink = 0.0f64;
        for (_, wv) in w.iter() {
            for (_, pv) in p.iter() {
                sink += dot(wv, pv);
            }
        }
        let pairwise_ms = start.elapsed().as_secs_f64() * 1000.0;
        assert!(sink.is_finite());

        table.push_row(vec![
            n.to_string(),
            fmt_ms(read_ms),
            fmt_ms(process.mean_ms),
            fmt_ms(pairwise_ms),
        ]);
        std::fs::remove_file(&p_path).ok();
        std::fs::remove_file(&w_path).ok();
    }
    std::fs::remove_dir(&dir).ok();
    table.note("expect: read << pairwise, and pairwise is the bulk of processing");
    vec![table]
}
