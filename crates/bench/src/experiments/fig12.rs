//! Paper Figure 12: performance on real data with varying `k` — COLOR
//! under RTK (a), HOUSE under RKR (b), DIANPING under RTK and RKR (c, d).
//!
//! We use the statistically-matched simulators of `rrq-data::real_sim`
//! (the original data sets are not redistributable; see DESIGN.md §7).
//! Expected shape: GIR consistently fastest, all algorithms flat in `k`.

use crate::runner::{
    attach_threshold_index, collect, time_rkr, time_rtk, with_query_pool, ExpConfig,
};
use crate::table::{fmt_ms, Table};
use rrq_baselines::{Bbr, BbrConfig, Mpa, MpaConfig, Sim};
use rrq_core::Gir;
use rrq_data::real_sim;
use rrq_types::{PointSet, WeightSet};

/// The k sweep of the figure (paper: 100–500).
pub const KS: &[usize] = &[100, 200, 300, 400, 500];

fn rtk_panel(
    title: &str,
    tag: &str,
    p: &PointSet,
    w: &WeightSet,
    cfg: &ExpConfig,
    ks: &[usize],
) -> Table {
    let mut t = Table::new(title, &["k", "GIR ms", "BBR ms", "SIM ms"]);
    let queries = cfg.sample_queries(p);
    let mut gir_seq = Gir::with_defaults(p, w);
    attach_threshold_index(&mut gir_seq, ks, p.len());
    let sim = Sim::new(p, w);
    let bbr = Bbr::new(p, w, BbrConfig::default());
    // One pool per panel, built outside the timed loops.
    with_query_pool(|pool| {
        let gir = gir_seq.parallel(collect::par_config()).with_pool_opt(pool);
        for &k in ks {
            collect::set_label(format!("{tag} k={k}"));
            t.push_row(vec![
                k.to_string(),
                fmt_ms(time_rtk(&gir, &queries, k).mean_ms),
                fmt_ms(time_rtk(&bbr, &queries, k).mean_ms),
                fmt_ms(time_rtk(&sim, &queries, k).mean_ms),
            ]);
        }
    });
    t
}

fn rkr_panel(
    title: &str,
    tag: &str,
    p: &PointSet,
    w: &WeightSet,
    cfg: &ExpConfig,
    ks: &[usize],
) -> Table {
    let mut t = Table::new(title, &["k", "GIR ms", "MPA ms", "SIM ms"]);
    let queries = cfg.sample_queries(p);
    let mut gir_seq = Gir::with_defaults(p, w);
    attach_threshold_index(&mut gir_seq, ks, p.len());
    let sim = Sim::new(p, w);
    let mpa = Mpa::new(p, w, MpaConfig::default());
    // One pool per panel, built outside the timed loops.
    with_query_pool(|pool| {
        let gir = gir_seq.parallel(collect::par_config()).with_pool_opt(pool);
        for &k in ks {
            collect::set_label(format!("{tag} k={k}"));
            t.push_row(vec![
                k.to_string(),
                fmt_ms(time_rkr(&gir, &queries, k).mean_ms),
                fmt_ms(time_rkr(&mpa, &queries, k).mean_ms),
                fmt_ms(time_rkr(&sim, &queries, k).mean_ms),
            ]);
        }
    });
    t
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    // Scale the simulated real sets so their relative sizes match the
    // originals while the largest is ~cfg.p_card.
    let scale = (cfg.p_card as f64 / real_sim::DIANPING_RESTAURANTS_FULL as f64).min(1.0);
    let bundle = real_sim::real_bundle(scale, cfg.w_card, cfg.seed).expect("bundle");
    // Keep k sensible at reduced scale.
    let ks: Vec<usize> = KS
        .iter()
        .map(|&k| (k.min(cfg.k.max(1) * 5)).max(1))
        .collect();

    let mut tables = vec![
        rtk_panel(
            &format!(
                "Figure 12(a): COLOR (sim), RTK, |P| = {}",
                bundle.color.len()
            ),
            "COLOR",
            &bundle.color,
            &bundle.color_w,
            cfg,
            &ks,
        ),
        rkr_panel(
            &format!(
                "Figure 12(b): HOUSE (sim), RKR, |P| = {}",
                bundle.house.len()
            ),
            "HOUSE",
            &bundle.house,
            &bundle.house_w,
            cfg,
            &ks,
        ),
        rtk_panel(
            &format!(
                "Figure 12(c): DIANPING (sim), RTK, |P| = {}, |W| = {}",
                bundle.dianping_p.len(),
                bundle.dianping_w.len()
            ),
            "DIANPING",
            &bundle.dianping_p,
            &bundle.dianping_w,
            cfg,
            &ks,
        ),
        rkr_panel(
            &format!(
                "Figure 12(d): DIANPING (sim), RKR, |P| = {}, |W| = {}",
                bundle.dianping_p.len(),
                bundle.dianping_w.len()
            ),
            "DIANPING",
            &bundle.dianping_p,
            &bundle.dianping_w,
            cfg,
            &ks,
        ),
    ];
    for t in &mut tables {
        t.note(format!(
            "simulated real data at scale {scale:.4} of paper cardinalities, {} queries",
            cfg.queries
        ));
    }
    tables
}
