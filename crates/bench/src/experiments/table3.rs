//! Paper Table 3: observations of the R-tree's leaf MBRs as the
//! dimensionality grows — count, diagonal length, shape ratio, the
//! fraction overlapping a 1 %-volume range query, and volume.
//!
//! Expected shape: past `d ≈ 6` essentially 100 % of MBRs overlap even a
//! tiny query box, volumes explode exponentially, and shape ratios fall
//! toward 1 (hypercube-like nodes spanning most of each axis).

use crate::runner::ExpConfig;
use crate::table::{fmt_pct, Table};
use rrq_data::rng::{Rng, StdRng};
use rrq_data::{synthetic, PAPER_VALUE_RANGE};
use rrq_rtree::{stats, RTree, RTreeConfig};

/// Dimensionalities swept (paper: 3..24 step 3).
pub const DIMS: &[usize] = &[3, 6, 9, 12, 15, 18, 21, 24];

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut table = Table::new(
        "Table 3: accessed MBRs of the R-tree (UN data, 1% range queries)",
        &["d", "#MBR", "diagonal", "shape", "overlap(1%)", "volume"],
    );
    // Paper: 100K points, 100 entries per MBR.
    let node_cap = 100;
    let n_queries = 20;
    for &d in DIMS {
        let points = synthetic::uniform_points(d, cfg.p_card, PAPER_VALUE_RANGE, cfg.seed).unwrap();
        let tree = RTree::bulk_load(&points, RTreeConfig::with_max_entries(node_cap));
        let s = stats::leaf_mbr_stats(&tree);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7AB1E3);
        let queries: Vec<rrq_rtree::Mbr> = (0..n_queries)
            .map(|_| {
                let offsets: Vec<f64> = (0..d).map(|_| rng.gen_f64()).collect();
                stats::fractional_volume_query(d, PAPER_VALUE_RANGE, 0.01, &offsets)
            })
            .collect();
        let overlap = stats::mean_overlap_fraction(&tree, queries.iter());
        table.push_row(vec![
            d.to_string(),
            s.count.to_string(),
            format!("{:.1}", s.mean_diagonal),
            format!("{:.1}", s.mean_shape_ratio),
            fmt_pct(overlap),
            format!("{:.2e}", s.mean_volume),
        ]);
    }
    table.note(format!(
        "{} points, {} entries/MBR, {} random 1% queries; expect overlap -> 100% for d >= ~6",
        cfg.p_card, node_cap, n_queries
    ));
    vec![table]
}
