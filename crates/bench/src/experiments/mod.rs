//! One module per table/figure of the paper. See DESIGN.md §4 for the
//! experiment index.

pub mod ablation;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig2;
pub mod fig8;
pub mod sec32;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod theorem1;

use crate::runner::ExpConfig;
use crate::table::Table;

/// A named, runnable experiment.
pub struct Experiment {
    /// CLI id, e.g. `"fig11"`.
    pub id: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Runner producing one or more result tables.
    pub run: fn(&ExpConfig) -> Vec<Table>,
}

/// The registry of every reproducible table and figure.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig2",
            description: "Tree-based (BBR, MPA) vs simple scan, d = 2..20 (paper Fig. 2)",
            run: fig2::run,
        },
        Experiment {
            id: "table2",
            description: "Read vs process vs pairwise cost, d = 6 (paper Table 2)",
            run: table2::run,
        },
        Experiment {
            id: "table3",
            description: "R-tree MBR observations across d (paper Table 3)",
            run: table3::run,
        },
        Experiment {
            id: "table4",
            description: "Grid filtering across P/W distributions (paper Table 4)",
            run: table4::run,
        },
        Experiment {
            id: "fig8",
            description: "Grid-index score distribution, d = 4, n = 4 (paper Fig. 8)",
            run: fig8::run,
        },
        Experiment {
            id: "fig10",
            description: "GIR vs BBR (RTK) and GIR vs MPA (RKR), d = 2..8 (paper Fig. 10)",
            run: fig10::run,
        },
        Experiment {
            id: "fig11",
            description: "High dimensions d = 10..50: time + computations (paper Fig. 11)",
            run: fig11::run,
        },
        Experiment {
            id: "fig12",
            description: "Simulated real data (COLOR/HOUSE/DIANPING), varying k (paper Fig. 12)",
            run: fig12::run,
        },
        Experiment {
            id: "fig13",
            description: "Scalability over |P| and |W| (paper Fig. 13)",
            run: fig13::run,
        },
        Experiment {
            id: "fig14",
            description: "Varying k on UN data, d = 6 (paper Fig. 14)",
            run: fig14::run,
        },
        Experiment {
            id: "fig15",
            description: "Visited data vs d; filtering vs n (paper Fig. 15a/15b)",
            run: fig15::run,
        },
        Experiment {
            id: "sec32",
            description: "Compressed approximate-vector storage and I/O (paper sec. 3.2)",
            run: sec32::run,
        },
        Experiment {
            id: "theorem1",
            description: "Analytic partitions n vs empirical filter rate (paper Thm. 1)",
            run: theorem1::run,
        },
        Experiment {
            id: "ablation",
            description: "Design-choice ablations: Domin, packing, adaptive grid, sparse weights",
            run: ablation::run,
        },
    ]
}

/// Looks up an experiment by id.
pub fn find(id: &str) -> Option<Experiment> {
    registry().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let reg = registry();
        let mut ids: Vec<&str> = reg.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), reg.len());
    }

    #[test]
    fn find_known_and_unknown() {
        assert!(find("fig11").is_some());
        assert!(find("nope").is_none());
    }

    /// Every registered experiment runs end-to-end at smoke scale and
    /// produces non-empty tables.
    #[test]
    fn all_experiments_run_at_smoke_scale() {
        let cfg = ExpConfig::smoke();
        for exp in registry() {
            let tables = (exp.run)(&cfg);
            assert!(!tables.is_empty(), "{} produced no tables", exp.id);
            for t in &tables {
                assert!(!t.rows.is_empty(), "{}: empty table {}", exp.id, t.title);
                let rendered = t.to_string();
                assert!(rendered.contains("=="), "{}: unrenderable", exp.id);
            }
        }
    }
}
