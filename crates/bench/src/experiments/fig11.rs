//! Paper Figure 11: high-dimensional behaviour (`d = 10..50`) — query
//! time (panels a, c) and the number of pairwise computations (panels
//! b, d) for RTK and RKR.
//!
//! Expected shape: tree-based time explodes with `d` (overlapping MBRs,
//! no prunable volume) while GIR grows only gently; BBR/MPA perform
//! *more* multiplications than the plain scan, and GIR performs the same
//! number as SIM would refine — the "SCAN" series.

use crate::runner::{
    attach_threshold_index, collect, time_rkr, time_rtk, with_query_pool, ExpConfig,
};
use crate::table::{fmt_count, fmt_ms, Table};
use rrq_baselines::{Bbr, BbrConfig, Mpa, MpaConfig, Sim};
use rrq_core::{Gir, GirConfig};
use rrq_data::DataSpec;

/// Dimensionalities swept (paper: 10–50).
pub const DIMS: &[usize] = &[10, 20, 30, 40, 50];

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut rtk_time = Table::new(
        "Figure 11(a): RTK query time, d = 10..50 (UN)",
        &["d", "GIR ms", "GIR128 ms", "BBR ms", "SIM ms"],
    );
    let mut rtk_mults = Table::new(
        "Figure 11(b): RTK pairwise computations per query",
        &["d", "GIR", "SIM (SCAN)", "BBR"],
    );
    let mut rkr_time = Table::new(
        "Figure 11(c): RKR query time, d = 10..50 (UN)",
        &["d", "GIR ms", "GIR128 ms", "MPA ms", "SIM ms"],
    );
    let mut rkr_mults = Table::new(
        "Figure 11(d): RKR pairwise computations per query",
        &["d", "GIR", "SIM (SCAN)", "MPA"],
    );
    for &d in DIMS {
        let spec = DataSpec {
            n_weights: cfg.w_card,
            ..DataSpec::uniform_default(d, cfg.p_card, cfg.seed)
        };
        let (p, w) = spec.generate().expect("generation");
        collect::set_label(format!("d={d}"));
        let queries = cfg.sample_queries(&p);
        let mut gir_seq = Gir::with_defaults(&p, &w);
        let mut gir128_seq = Gir::new(&p, &w, GirConfig::tuned());
        attach_threshold_index(&mut gir_seq, &[cfg.k], p.len());
        attach_threshold_index(&mut gir128_seq, &[cfg.k], p.len());
        let sim = Sim::new(&p, &w);
        let bbr = Bbr::new(&p, &w, BbrConfig::default());
        let mpa = Mpa::new(&p, &w, MpaConfig::default());

        // One pool per dimension, constructed before any timed batch;
        // non-GIR runs stay inside so the run order is unchanged.
        let (gir_rtk, gir128_rtk, bbr_rtk, sim_rtk, gir_rkr, gir128_rkr, mpa_rkr, sim_rkr) =
            with_query_pool(|pool| {
                let gir = gir_seq.parallel(collect::par_config()).with_pool_opt(pool);
                let gir128 = gir128_seq
                    .parallel(collect::par_config())
                    .with_pool_opt(pool);
                let gir_rtk = time_rtk(&gir, &queries, cfg.k);
                let gir128_rtk = time_rtk(&gir128, &queries, cfg.k);
                let bbr_rtk = time_rtk(&bbr, &queries, cfg.k);
                let sim_rtk = time_rtk(&sim, &queries, cfg.k);
                let gir_rkr = time_rkr(&gir, &queries, cfg.k);
                let gir128_rkr = time_rkr(&gir128, &queries, cfg.k);
                let mpa_rkr = time_rkr(&mpa, &queries, cfg.k);
                let sim_rkr = time_rkr(&sim, &queries, cfg.k);
                (
                    gir_rtk, gir128_rtk, bbr_rtk, sim_rtk, gir_rkr, gir128_rkr, mpa_rkr, sim_rkr,
                )
            });
        rtk_time.push_row(vec![
            d.to_string(),
            fmt_ms(gir_rtk.mean_ms),
            fmt_ms(gir128_rtk.mean_ms),
            fmt_ms(bbr_rtk.mean_ms),
            fmt_ms(sim_rtk.mean_ms),
        ]);
        rtk_mults.push_row(vec![
            d.to_string(),
            fmt_count(gir_rtk.mean_multiplications() as u64),
            fmt_count(sim_rtk.mean_multiplications() as u64),
            fmt_count(bbr_rtk.mean_multiplications() as u64),
        ]);

        rkr_time.push_row(vec![
            d.to_string(),
            fmt_ms(gir_rkr.mean_ms),
            fmt_ms(gir128_rkr.mean_ms),
            fmt_ms(mpa_rkr.mean_ms),
            fmt_ms(sim_rkr.mean_ms),
        ]);
        rkr_mults.push_row(vec![
            d.to_string(),
            fmt_count(gir_rkr.mean_multiplications() as u64),
            fmt_count(sim_rkr.mean_multiplications() as u64),
            fmt_count(mpa_rkr.mean_multiplications() as u64),
        ]);
    }
    let note = format!(
        "|P| = {}, |W| = {}, k = {}, n = 32 (GIR128: n = 128); expect GIR flattest, trees steepest",
        cfg.p_card, cfg.w_card, cfg.k
    );
    for t in [&mut rtk_time, &mut rtk_mults, &mut rkr_time, &mut rkr_mults] {
        t.note(note.clone());
    }
    vec![rtk_time, rtk_mults, rkr_time, rkr_mults]
}
