//! Paper Figure 14: effect of `k` (100–500) on uniform data, `d = 6` —
//! RTK and RKR panels.
//!
//! Expected shape: every algorithm is essentially flat in `k` because
//! `k ≪ |P|, |W|`; GIR stays fastest throughout.

use crate::runner::{
    attach_threshold_index, collect, time_rkr, time_rtk, with_query_pool, ExpConfig,
};
use crate::table::{fmt_ms, Table};
use rrq_baselines::{Bbr, BbrConfig, Mpa, MpaConfig, Sim};
use rrq_core::Gir;
use rrq_data::DataSpec;

/// The k sweep (paper: 100–500).
pub const KS: &[usize] = &[100, 200, 300, 400, 500];

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let spec = DataSpec {
        n_weights: cfg.w_card,
        ..DataSpec::uniform_default(6, cfg.p_card, cfg.seed)
    };
    let (p, w) = spec.generate().expect("generation");
    let queries = cfg.sample_queries(&p);
    let mut gir_seq = Gir::with_defaults(&p, &w);
    let sim = Sim::new(&p, &w);
    let bbr = Bbr::new(&p, &w, BbrConfig::default());
    let mpa = Mpa::new(&p, &w, MpaConfig::default());

    let mut rtk = Table::new(
        "Figure 14 RTK: varying k (UN, d = 6)",
        &["k", "GIR ms", "BBR ms", "SIM ms"],
    );
    let mut rkr = Table::new(
        "Figure 14 RKR: varying k (UN, d = 6)",
        &["k", "GIR ms", "MPA ms", "SIM ms"],
    );
    // Clamp the sweep to the data scale so k stays meaningful.
    let ks: Vec<usize> = KS.iter().map(|&k| k.min(cfg.w_card / 2).max(1)).collect();
    attach_threshold_index(&mut gir_seq, &ks, p.len());
    // The pool (if --par-pool asked for one) lives across the whole k
    // sweep: spawn cost is paid once, outside every timed batch.
    with_query_pool(|pool| {
        let gir = gir_seq.parallel(collect::par_config()).with_pool_opt(pool);
        for &k in &ks {
            collect::set_label(format!("k={k}"));
            rtk.push_row(vec![
                k.to_string(),
                fmt_ms(time_rtk(&gir, &queries, k).mean_ms),
                fmt_ms(time_rtk(&bbr, &queries, k).mean_ms),
                fmt_ms(time_rtk(&sim, &queries, k).mean_ms),
            ]);
            rkr.push_row(vec![
                k.to_string(),
                fmt_ms(time_rkr(&gir, &queries, k).mean_ms),
                fmt_ms(time_rkr(&mpa, &queries, k).mean_ms),
                fmt_ms(time_rkr(&sim, &queries, k).mean_ms),
            ]);
        }
    });
    let note = format!(
        "|P| = {}, |W| = {}, n = 32; expect flat curves (k << |P|, |W|)",
        cfg.p_card, cfg.w_card
    );
    rtk.note(note.clone());
    rkr.note(note);
    vec![rtk, rkr]
}
