//! Paper Table 4: filtering performance of the Grid-index across the 3×3
//! combinations of P and W distributions (uniform, normal, exponential)
//! at `d = 6`, `n = 32`.
//!
//! We report the paper-comparable *effective* rate — the fraction of
//! `(p, w)` pairs of a whole query run that never needed an exact score
//! computation (Grid cases 1/2, the Domin buffer and early termination
//! all count as filtered) — plus the *intrinsic* bound-tightness rate
//! (cases 1/2 over classified pairs) as supplementary detail.

use crate::runner::ExpConfig;
use crate::table::{fmt_pct, Table};
use rrq_core::Gir;
use rrq_data::{DataSpec, PointDistribution, WeightDistribution};
use rrq_types::{QueryStats, RkrQuery};

const P_DISTS: &[PointDistribution] = &[
    PointDistribution::Uniform,
    PointDistribution::Normal,
    PointDistribution::Exponential,
];
const W_DISTS: &[WeightDistribution] = &[
    WeightDistribution::Uniform,
    WeightDistribution::Normal,
    WeightDistribution::Exponential,
];

/// Measures both filter rates for one distribution combination.
pub fn measure(cfg: &ExpConfig, pd: PointDistribution, wd: WeightDistribution) -> (f64, f64) {
    let spec = DataSpec {
        points: pd,
        weights: wd,
        dim: 6,
        n_points: cfg.p_card,
        n_weights: cfg.w_card,
        seed: cfg.seed,
    };
    let (p, w) = spec.generate().expect("generation");
    let gir = Gir::with_defaults(&p, &w);
    let queries = cfg.sample_queries(&p);
    let mut stats = QueryStats::default();
    for q in &queries {
        gir.reverse_k_ranks(q, cfg.k, &mut stats);
    }
    let total_pairs = (p.len() * w.len() * queries.len()) as f64;
    let effective = 1.0 - stats.refined as f64 / total_pairs;
    let intrinsic = stats.filter_rate().unwrap_or(0.0);
    (effective, intrinsic)
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut effective = Table::new(
        "Table 4: Grid-index filtering performance (effective, d = 6, n = 32)",
        &["W \\ P", "Uniform", "Normal", "Exponential"],
    );
    let mut intrinsic = Table::new(
        "Table 4 (supplement): intrinsic bound tightness (cases 1+2 / classified)",
        &["W \\ P", "Uniform", "Normal", "Exponential"],
    );
    for &wd in W_DISTS {
        let mut eff_row = vec![wd.label().to_string()];
        let mut int_row = vec![wd.label().to_string()];
        for &pd in P_DISTS {
            let (e, i) = measure(cfg, pd, wd);
            eff_row.push(fmt_pct(e));
            int_row.push(fmt_pct(i));
        }
        effective.push_row(eff_row);
        intrinsic.push_row(int_row);
    }
    effective.note(format!(
        "|P| = {}, |W| = {}, k = {}, RKR runs; paper reports 96.5-99.3%",
        cfg.p_card, cfg.w_card, cfg.k
    ));
    intrinsic.note("lower than the paper's numbers by construction: simplex weights quantise coarsely (see EXPERIMENTS.md)");
    vec![effective, intrinsic]
}
