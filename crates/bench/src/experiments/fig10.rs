//! Paper Figure 10: GIR vs BBR vs SIM for RTK (panels a–c) and GIR vs MPA
//! vs SIM for RKR (panels d–f), on synthetic data with `d = 2..8`.
//!
//! Expected shape: GIR beats BBR beyond ~4 dimensions and beats MPA
//! beyond ~4 dimensions, and always beats SIM (by roughly 2× in the
//! paper); tree-based methods win only in very low dimensions.

use crate::runner::{
    attach_threshold_index, collect, time_rkr, time_rtk, with_query_pool, ExpConfig,
};
use crate::table::{fmt_ms, Table};
use rrq_baselines::{Bbr, BbrConfig, Mpa, MpaConfig, Sim};
use rrq_core::{Gir, GirConfig};
use rrq_data::{DataSpec, PointDistribution, WeightDistribution};

/// Dimensionalities swept (paper: 2–8).
pub const DIMS: &[usize] = &[2, 3, 4, 5, 6, 7, 8];

/// The three distribution combinations of the figure's panels.
const COMBOS: &[(PointDistribution, WeightDistribution, &str)] = &[
    (
        PointDistribution::Uniform,
        WeightDistribution::Uniform,
        "UN/UN",
    ),
    (
        PointDistribution::Clustered,
        WeightDistribution::Clustered,
        "CL/CL",
    ),
    (
        PointDistribution::AntiCorrelated,
        WeightDistribution::Uniform,
        "AC/UN",
    ),
];

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut tables = Vec::new();
    for &(pd, wd, label) in COMBOS {
        let mut rtk = Table::new(
            format!("Figure 10 RTK ({label}): GIR vs BBR vs SIM, d = 2..8"),
            &["d", "GIR ms", "GIR128 ms", "BBR ms", "SIM ms"],
        );
        let mut rkr = Table::new(
            format!("Figure 10 RKR ({label}): GIR vs MPA vs SIM, d = 2..8"),
            &["d", "GIR ms", "GIR128 ms", "MPA ms", "SIM ms"],
        );
        for &d in DIMS {
            collect::set_label(format!("{label} d={d}"));
            let spec = DataSpec {
                points: pd,
                weights: wd,
                dim: d,
                n_points: cfg.p_card,
                n_weights: cfg.w_card,
                seed: cfg.seed,
            };
            let (p, w) = spec.generate().expect("generation");
            let queries = cfg.sample_queries(&p);
            let mut gir_seq = Gir::with_defaults(&p, &w);
            let mut gir128_seq = Gir::new(&p, &w, GirConfig::tuned());
            attach_threshold_index(&mut gir_seq, &[cfg.k], p.len());
            attach_threshold_index(&mut gir128_seq, &[cfg.k], p.len());
            let sim = Sim::new(&p, &w);
            let bbr = Bbr::new(&p, &w, BbrConfig::default());
            let mpa = Mpa::new(&p, &w, MpaConfig::default());
            // Pool construction stays outside the timed batches; the
            // non-GIR rows ride inside the closure so the run order
            // (and benchdiff occurrence matching) is unchanged.
            with_query_pool(|pool| {
                let gir = gir_seq.parallel(collect::par_config()).with_pool_opt(pool);
                let gir128 = gir128_seq
                    .parallel(collect::par_config())
                    .with_pool_opt(pool);
                rtk.push_row(vec![
                    d.to_string(),
                    fmt_ms(time_rtk(&gir, &queries, cfg.k).mean_ms),
                    fmt_ms(time_rtk(&gir128, &queries, cfg.k).mean_ms),
                    fmt_ms(time_rtk(&bbr, &queries, cfg.k).mean_ms),
                    fmt_ms(time_rtk(&sim, &queries, cfg.k).mean_ms),
                ]);
                rkr.push_row(vec![
                    d.to_string(),
                    fmt_ms(time_rkr(&gir, &queries, cfg.k).mean_ms),
                    fmt_ms(time_rkr(&gir128, &queries, cfg.k).mean_ms),
                    fmt_ms(time_rkr(&mpa, &queries, cfg.k).mean_ms),
                    fmt_ms(time_rkr(&sim, &queries, cfg.k).mean_ms),
                ]);
            });
        }
        let note = format!(
            "|P| = {}, |W| = {}, k = {}, n = 32; expect GIR to win beyond d ~ 4",
            cfg.p_card, cfg.w_card, cfg.k
        );
        rtk.note(note.clone());
        rkr.note(note);
        tables.push(rtk);
        tables.push(rkr);
    }
    tables
}
