//! Paper Figure 2: query time of the tree-based algorithms (BBR for RTK,
//! MPA for RKR) against the simple scan, for `d = 2..20` on uniform data.
//!
//! Expected shape: the tree-based curves blow up past `d ≈ 6` while SIM
//! grows roughly linearly in `d` — the motivation for a scan-based method.

use crate::runner::{collect, time_rkr, time_rtk, ExpConfig};
use crate::table::{fmt_ms, Table};
use rrq_baselines::{Bbr, BbrConfig, Mpa, MpaConfig, Sim};
use rrq_data::DataSpec;

/// Dimensionalities swept (paper: 2–20).
pub const DIMS: &[usize] = &[2, 4, 6, 8, 12, 16, 20];

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut table = Table::new(
        "Figure 2: tree-based vs simple scan, UN data",
        &["d", "BBR/RTK ms", "SIM/RTK ms", "MPA/RKR ms", "SIM/RKR ms"],
    );
    for &d in DIMS {
        collect::set_label(format!("d={d}"));
        let spec = DataSpec::uniform_default(d, cfg.p_card, cfg.seed);
        let spec = DataSpec {
            n_weights: cfg.w_card,
            ..spec
        };
        let (p, w) = spec.generate().expect("generation");
        let queries = cfg.sample_queries(&p);
        let sim = Sim::new(&p, &w);
        let bbr = Bbr::new(&p, &w, BbrConfig::default());
        let mpa = Mpa::new(&p, &w, MpaConfig::default());
        let bbr_run = time_rtk(&bbr, &queries, cfg.k);
        let sim_rtk = time_rtk(&sim, &queries, cfg.k);
        let mpa_run = time_rkr(&mpa, &queries, cfg.k);
        let sim_rkr = time_rkr(&sim, &queries, cfg.k);
        table.push_row(vec![
            d.to_string(),
            fmt_ms(bbr_run.mean_ms),
            fmt_ms(sim_rtk.mean_ms),
            fmt_ms(mpa_run.mean_ms),
            fmt_ms(sim_rkr.mean_ms),
        ]);
    }
    table.note(format!(
        "|P| = {}, |W| = {}, k = {}, {} queries; expect tree-based >> SIM for d >= ~6",
        cfg.p_card, cfg.w_card, cfg.k, cfg.queries
    ));
    vec![table]
}
