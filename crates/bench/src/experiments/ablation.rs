//! Ablations of the design choices DESIGN.md §6 calls out:
//!
//! 1. the `Domin` dominating-point buffer (Alg. 1 lines 7–8);
//! 2. bit-packed vs byte-format approximate vectors (§3.2);
//! 3. uniform vs quantile (adaptive) grid on skewed data (§7 ext. 1);
//! 4. dense vs sparse scan on sparse preference vectors (§7 ext. 2).

use crate::runner::{
    attach_threshold_index, collect, time_rkr, time_rtk, with_query_pool, ExpConfig,
};
use crate::table::{fmt_count, fmt_ms, fmt_pct, Table};
use rrq_core::{AdaptiveGrid, Gir, GirConfig, SparseGir};
use rrq_data::{DataSpec, PointDistribution, WeightDistribution};
use rrq_types::{QueryStats, RkrQuery};

fn domin_ablation(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Ablation 1: Domin buffer on/off (UN, d = 6, RTK)",
        &["variant", "mean ms", "domin skips", "points visited"],
    );
    let spec = DataSpec {
        n_weights: cfg.w_card,
        ..DataSpec::uniform_default(6, cfg.p_card, cfg.seed)
    };
    let (p, w) = spec.generate().expect("generation");
    let queries = cfg.sample_queries(&p);
    for (label, use_domin) in [("with Domin", true), ("without Domin", false)] {
        collect::set_label(label);
        let mut gir = Gir::new(
            &p,
            &w,
            GirConfig {
                use_domin,
                ..Default::default()
            },
        );
        attach_threshold_index(&mut gir, &[cfg.k], p.len());
        // Pool construction sits outside the timed batch.
        let run = with_query_pool(|pool| {
            time_rtk(
                &gir.parallel(collect::par_config()).with_pool_opt(pool),
                &queries,
                cfg.k,
            )
        });
        t.push_row(vec![
            label.to_string(),
            fmt_ms(run.mean_ms),
            fmt_count(run.stats.domin_skips),
            fmt_count(run.stats.points_visited),
        ]);
    }
    t
}

fn packing_ablation(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Ablation 2: approximate-vector storage (UN, d = 6, RKR)",
        &["variant", "mean ms", "index bytes"],
    );
    let spec = DataSpec {
        n_weights: cfg.w_card,
        ..DataSpec::uniform_default(6, cfg.p_card, cfg.seed)
    };
    let (p, w) = spec.generate().expect("generation");
    let queries = cfg.sample_queries(&p);
    for (label, packed) in [("byte cells", false), ("bit-packed (b=5)", true)] {
        collect::set_label(label);
        let mut gir = Gir::new(
            &p,
            &w,
            GirConfig {
                packed,
                ..Default::default()
            },
        );
        attach_threshold_index(&mut gir, &[cfg.k], p.len());
        let run = with_query_pool(|pool| {
            time_rkr(
                &gir.parallel(collect::par_config()).with_pool_opt(pool),
                &queries,
                cfg.k,
            )
        });
        t.push_row(vec![
            label.to_string(),
            fmt_ms(run.mean_ms),
            fmt_count(gir.index_memory_bytes() as u64),
        ]);
    }
    t.note("packing stores b bits/dim instead of 8 (b=5: 1.6x smaller approx vectors; 12.8x smaller than the original f64 data) at per-row decode cost");
    t
}

fn adaptive_ablation(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Ablation 3: uniform vs adaptive grid on skewed data (EXP, d = 6, n = 8)",
        &["variant", "mean ms", "refined pairs", "effective filter"],
    );
    let spec = DataSpec {
        points: PointDistribution::Exponential,
        weights: WeightDistribution::Uniform,
        dim: 6,
        n_points: cfg.p_card,
        n_weights: cfg.w_card,
        seed: cfg.seed,
    };
    let (p, w) = spec.generate().expect("generation");
    let queries = cfg.sample_queries(&p);
    let coarse = GirConfig {
        partitions: 8,
        ..Default::default()
    };
    let total_pairs = (p.len() * w.len() * queries.len()) as f64;
    {
        let gir = Gir::new(&p, &w, coarse);
        let mut stats = QueryStats::default();
        let run = {
            // rrq-lint: allow(no-wall-clock-in-counters) -- deliberate timed section; counters accumulate separately
            let start = std::time::Instant::now();
            for q in &queries {
                gir.reverse_k_ranks(q, cfg.k, &mut stats);
            }
            start.elapsed().as_secs_f64() * 1000.0 / queries.len() as f64
        };
        t.push_row(vec![
            "uniform grid".to_string(),
            fmt_ms(run),
            fmt_count(stats.refined),
            fmt_pct(1.0 - stats.refined as f64 / total_pairs),
        ]);
    }
    {
        let grid = AdaptiveGrid::from_data(8, &p, &w);
        let gir = Gir::with_grid(&p, &w, grid, coarse);
        let mut stats = QueryStats::default();
        let run = {
            // rrq-lint: allow(no-wall-clock-in-counters) -- deliberate timed section; counters accumulate separately
            let start = std::time::Instant::now();
            for q in &queries {
                gir.reverse_k_ranks(q, cfg.k, &mut stats);
            }
            start.elapsed().as_secs_f64() * 1000.0 / queries.len() as f64
        };
        t.push_row(vec![
            "adaptive grid".to_string(),
            fmt_ms(run),
            fmt_count(stats.refined),
            fmt_pct(1.0 - stats.refined as f64 / total_pairs),
        ]);
    }
    t.note("quantile boundaries equalise cell population; expect fewer refinements on exponential data");
    t
}

fn sparse_ablation(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Ablation 4: dense vs sparse scan on sparse weights (UN, d = 12, nnz <= 3)",
        &["variant", "mean ms", "bound additions", "multiplications"],
    );
    let spec = DataSpec {
        points: PointDistribution::Uniform,
        weights: WeightDistribution::Sparse { max_nonzero: 3 },
        dim: 12,
        n_points: cfg.p_card,
        n_weights: cfg.w_card,
        seed: cfg.seed,
    };
    let (p, w) = spec.generate().expect("generation");
    let queries = cfg.sample_queries(&p);
    {
        collect::set_label("dense");
        let mut gir = Gir::with_defaults(&p, &w);
        attach_threshold_index(&mut gir, &[cfg.k], p.len());
        let run = with_query_pool(|pool| {
            time_rkr(
                &gir.parallel(collect::par_config()).with_pool_opt(pool),
                &queries,
                cfg.k,
            )
        });
        t.push_row(vec![
            "dense GIR".to_string(),
            fmt_ms(run.mean_ms),
            fmt_count(run.stats.bound_additions),
            fmt_count(run.stats.multiplications),
        ]);
    }
    {
        collect::set_label("sparse");
        let gir = SparseGir::new(&p, &w, cfg.partitions);
        let run = time_rkr(&gir, &queries, cfg.k);
        t.push_row(vec![
            "sparse GIR".to_string(),
            fmt_ms(run.mean_ms),
            fmt_count(run.stats.bound_additions),
            fmt_count(run.stats.multiplications),
        ]);
    }
    t.note("sparse scan costs nnz(w) instead of d per pair and tightens U by skipping zero dims");
    t
}

/// Runs all four ablations.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    vec![
        domin_ablation(cfg),
        packing_ablation(cfg),
        adaptive_ablation(cfg),
        sparse_ablation(cfg),
    ]
}
