//! Paper Figure 15:
//!
//! * panel (a): percentage of data visited on varying `d` — the R-tree
//!   degenerates to touching every leaf entry while GIR refines only a
//!   thin slice;
//! * panel (b): percentage of data filtered by the Grid-index on varying
//!   `n` for 20-dimensional data — confirming Theorem 1's claim that
//!   `n = 32` suffices.

use crate::runner::ExpConfig;
use crate::table::{fmt_pct, Table};
use rrq_core::{model, Gir, GirConfig};
use rrq_data::DataSpec;
use rrq_types::{dot, QueryStats, RkrQuery};

/// Dimensionalities for panel (a).
pub const DIMS_A: &[usize] = &[2, 4, 6, 8, 12, 16, 20];
/// Partition counts for panel (b) (paper: 4–128).
pub const NS_B: &[usize] = &[4, 8, 16, 32, 64, 128];

/// Panel (a): fraction of `P` entries whose exact score must be computed
/// when evaluating a full rank, R-tree vs GIR.
///
/// Early termination is disabled here on purpose — the panel measures
/// *index degeneracy* (how much of the data the structure can decide
/// without touching), which the rank cutoff would mask. `|W|` is capped:
/// the metric is a per-pair percentage, insensitive to weight count.
fn panel_a(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Figure 15(a): visited data on varying d (UN, exact ranks)",
        &[
            "d",
            "R-tree leaf accesses",
            "GIR refined",
            "GIR case1+2 filtered",
        ],
    );
    let n_weights = cfg.w_card.min(200);
    for &d in DIMS_A {
        let spec = DataSpec {
            n_weights,
            ..DataSpec::uniform_default(d, cfg.p_card, cfg.seed)
        };
        let (p, w) = spec.generate().expect("generation");
        let queries = {
            let mut c = *cfg;
            c.queries = cfg.queries.min(3);
            c.sample_queries(&p)
        };
        // R-tree: exact rank counts, no cutoff — every leaf entry in the
        // ambiguous band between the subtree bounds must be scored.
        let tree = rrq_rtree::RTree::bulk_load(&p, rrq_rtree::RTreeConfig::default());
        let mut tree_stats = QueryStats::default();
        for q in &queries {
            for (_, wv) in w.iter() {
                let fq = dot(wv, q);
                tree.count_preceding(wv, fq, usize::MAX, &mut tree_stats);
            }
        }
        let total_pairs = (p.len() * w.len() * queries.len()) as f64;
        let tree_frac = tree_stats.leaf_accesses as f64 / total_pairs;
        // GIR: exact ranks via k = |W| (heap never prunes).
        let gir = Gir::with_defaults(&p, &w);
        let mut gir_stats = QueryStats::default();
        for q in &queries {
            gir.reverse_k_ranks(q, w.len(), &mut gir_stats);
        }
        let refined_frac = gir_stats.refined as f64 / total_pairs;
        let filtered_frac =
            (gir_stats.filtered_case1 + gir_stats.filtered_case2) as f64 / total_pairs;
        t.push_row(vec![
            d.to_string(),
            fmt_pct(tree_frac),
            fmt_pct(refined_frac),
            fmt_pct(filtered_frac),
        ]);
    }
    t.note(format!(
        "|W| capped at {n_weights}, exact ranks (no cutoff); expect R-tree -> ~100% as d grows while GIR refinement stays a fraction"
    ));
    t
}

/// Panel (b): effective filter rate of the Grid-index vs `n`, d = 20.
fn panel_b(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Figure 15(b): Grid-index filtering on varying n (UN, d = 20)",
        &["n", "filtered (effective)", "Theorem 1 F_worst"],
    );
    let spec = DataSpec {
        n_weights: cfg.w_card,
        ..DataSpec::uniform_default(20, cfg.p_card, cfg.seed)
    };
    let (p, w) = spec.generate().expect("generation");
    let queries = cfg.sample_queries(&p);
    for &n in NS_B {
        let gir = Gir::new(
            &p,
            &w,
            GirConfig {
                partitions: n,
                ..Default::default()
            },
        );
        let mut stats = QueryStats::default();
        for q in &queries {
            gir.reverse_k_ranks(q, cfg.k, &mut stats);
        }
        let total_pairs = (p.len() * w.len() * queries.len()) as f64;
        let filtered = 1.0 - stats.refined as f64 / total_pairs;
        t.push_row(vec![
            n.to_string(),
            fmt_pct(filtered),
            fmt_pct(model::worst_case_filter_rate(20, n)),
        ]);
    }
    t.note("expect filtering to saturate by n = 32, matching Theorem 1");
    t
}

/// Runs both panels.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    vec![panel_a(cfg), panel_b(cfg)]
}
