//! Paper §3.2: storage and read-time of bit-string-compressed
//! approximate vectors against the original 64-bit float data.
//!
//! Claims reproduced: the compressed approximate vectors cost "less than
//! 1/10 of the original data" on disk and read substantially faster
//! ("only has half the time costs" on the paper's testbed — buffered
//! local I/O here is faster still, which only strengthens the point that
//! approximate-vector I/O is negligible).

use crate::runner::ExpConfig;
use crate::table::{fmt_count, fmt_ms, Table};
use rrq_core::{persist, ApproxVectors, Grid, PackedApproxVectors};
use rrq_data::{io, DataSpec};
use std::time::Instant;

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut table = Table::new(
        "Section 3.2: original vs compressed approximate-vector I/O (d = 6, b = 5)",
        &[
            "|P|",
            "original bytes",
            "packed bytes",
            "ratio",
            "read orig ms",
            "read packed ms",
        ],
    );
    let dir = std::env::temp_dir().join(format!("rrq_sec32_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let sizes: Vec<usize> = [cfg.p_card / 10, cfg.p_card, cfg.p_card * 4]
        .into_iter()
        .map(|s| s.max(100))
        .collect();
    for &n in &sizes {
        let spec = DataSpec::uniform_default(6, n, cfg.seed);
        let p = spec.generate_points().expect("generation");
        let grid = Grid::new(cfg.partitions.clamp(2, 255), p.value_range());
        let approx = ApproxVectors::from_points(&grid, &p);
        let bits = PackedApproxVectors::bits_for_partitions(grid.partitions());
        let packed = PackedApproxVectors::pack(&approx, bits);

        let orig_path = dir.join(format!("orig_{n}.bin"));
        let packed_path = dir.join(format!("packed_{n}.bin"));
        io::write_points(&p, &orig_path).expect("write original");
        persist::write_approx(&packed_path, &packed, &grid).expect("write packed");
        let orig_bytes = std::fs::metadata(&orig_path).expect("meta").len();
        let packed_bytes = std::fs::metadata(&packed_path).expect("meta").len();

        // rrq-lint: allow(no-wall-clock-in-counters) -- I/O timing is the measurement here, not a counter
        let start = Instant::now();
        let back = io::read_points(&orig_path).expect("read original");
        let orig_ms = start.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(back.len(), n);

        // rrq-lint: allow(no-wall-clock-in-counters) -- I/O timing is the measurement here, not a counter
        let start = Instant::now();
        let approx_back = persist::read_approx(&packed_path).expect("read packed");
        let packed_ms = start.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(approx_back.vectors.len(), n);
        assert_eq!(approx_back.vectors, packed, "lossless round trip");

        table.push_row(vec![
            n.to_string(),
            fmt_count(orig_bytes),
            fmt_count(packed_bytes),
            format!("{:.1}%", 100.0 * packed_bytes as f64 / orig_bytes as f64),
            fmt_ms(orig_ms),
            fmt_ms(packed_ms),
        ]);
        std::fs::remove_file(&orig_path).ok();
        std::fs::remove_file(&packed_path).ok();
    }
    std::fs::remove_dir(&dir).ok();
    table.note("paper claims < 1/10 the bytes and about half the read time");
    vec![table]
}
