//! Theorem 1 validation: the analytically sufficient number of grid
//! partitions against the empirically observed filter rate.
//!
//! For each dimensionality we print the analytic minimum `n` for
//! `ε = 1 %`, its power-of-two rounding (what a deployment would use,
//! since cells are stored in `log₂ n` bits), the model's predicted
//! worst-case filter rate at that `n`, and the measured effective rate.

use crate::runner::ExpConfig;
use crate::table::{fmt_pct, Table};
use rrq_core::{model, Gir, GirConfig};
use rrq_data::DataSpec;
use rrq_types::{QueryStats, RkrQuery};

/// Dimensionalities checked.
pub const DIMS: &[usize] = &[4, 6, 10, 20, 30, 50];

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut t = Table::new(
        "Theorem 1: analytic partitions vs observed filtering (eps = 1%)",
        &["d", "n analytic", "n pow2", "F_worst model", "measured"],
    );
    for &d in DIMS {
        let n_analytic = model::required_partitions(d, 0.01);
        let n_pow2 = model::next_power_of_two(n_analytic);
        let spec = DataSpec {
            n_weights: cfg.w_card,
            ..DataSpec::uniform_default(d, cfg.p_card, cfg.seed)
        };
        let (p, w) = spec.generate().expect("generation");
        let queries = cfg.sample_queries(&p);
        let gir = Gir::new(
            &p,
            &w,
            GirConfig {
                partitions: n_pow2.min(255),
                ..Default::default()
            },
        );
        let mut stats = QueryStats::default();
        for q in &queries {
            gir.reverse_k_ranks(q, cfg.k, &mut stats);
        }
        let total_pairs = (p.len() * w.len() * queries.len()) as f64;
        let measured = 1.0 - stats.refined as f64 / total_pairs;
        t.push_row(vec![
            d.to_string(),
            n_analytic.to_string(),
            n_pow2.to_string(),
            fmt_pct(model::worst_case_filter_rate(d, n_pow2)),
            fmt_pct(measured),
        ]);
    }
    t.note("paper example: d = 20 needs n = 32 (analytic ~25 rounded to the next power of two)");
    vec![t]
}
