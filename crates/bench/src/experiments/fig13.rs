//! Paper Figure 13: scalability with data set cardinality — varying
//! `|P|` with `|W|` fixed (panels a, b) and varying `|W|` with `|P|`
//! fixed (panels c, d), for RTK and RKR.
//!
//! Expected shape: GIR grows most slowly and its advantage over the
//! tree-based methods and SIM widens with scale.

use crate::runner::{
    attach_threshold_index, collect, time_rkr, time_rtk, with_query_pool, ExpConfig,
};
use crate::table::{fmt_ms, Table};
use rrq_baselines::{Bbr, BbrConfig, Mpa, MpaConfig, Sim};
use rrq_core::Gir;
use rrq_data::DataSpec;

/// Cardinality multipliers relative to the configured base (the paper
/// sweeps 50K, 100K, 1M, 2M, 5M around a 100K base).
pub const MULTIPLIERS: &[(f64, &str)] = &[(0.5, "0.5x"), (1.0, "1x"), (2.0, "2x"), (4.0, "4x")];

struct Algos<'a> {
    gir: Gir<'a>,
    sim: Sim<'a>,
    bbr: Bbr<'a>,
    mpa: Mpa<'a>,
}

fn build<'a>(p: &'a rrq_types::PointSet, w: &'a rrq_types::WeightSet, k: usize) -> Algos<'a> {
    let mut gir = Gir::with_defaults(p, w);
    attach_threshold_index(&mut gir, &[k], p.len());
    Algos {
        gir,
        sim: Sim::new(p, w),
        bbr: Bbr::new(p, w, BbrConfig::default()),
        mpa: Mpa::new(p, w, MpaConfig::default()),
    }
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut vary_p_rtk = Table::new(
        "Figure 13(a): RTK time, varying |P| (UN, d = 6)",
        &["|P|", "GIR ms", "BBR ms", "SIM ms"],
    );
    let mut vary_p_rkr = Table::new(
        "Figure 13(b): RKR time, varying |P| (UN, d = 6)",
        &["|P|", "GIR ms", "MPA ms", "SIM ms"],
    );
    let mut vary_w_rtk = Table::new(
        "Figure 13(c): RTK time, varying |W| (UN, d = 6)",
        &["|W|", "GIR ms", "BBR ms", "SIM ms"],
    );
    let mut vary_w_rkr = Table::new(
        "Figure 13(d): RKR time, varying |W| (UN, d = 6)",
        &["|W|", "GIR ms", "MPA ms", "SIM ms"],
    );
    for &(mult, _) in MULTIPLIERS {
        let n_p = ((cfg.p_card as f64 * mult) as usize).max(100);
        collect::set_label(format!("|P|={n_p}"));
        let spec = DataSpec {
            n_points: n_p,
            n_weights: cfg.w_card,
            ..DataSpec::uniform_default(6, n_p, cfg.seed)
        };
        let (p, w) = spec.generate().expect("generation");
        let queries = cfg.sample_queries(&p);
        let a = build(&p, &w, cfg.k);
        // Build the pool (and the parallel engine) once per cardinality,
        // outside the timed batches.
        with_query_pool(|pool| {
            let gir = a.gir.parallel(collect::par_config()).with_pool_opt(pool);
            vary_p_rtk.push_row(vec![
                n_p.to_string(),
                fmt_ms(time_rtk(&gir, &queries, cfg.k).mean_ms),
                fmt_ms(time_rtk(&a.bbr, &queries, cfg.k).mean_ms),
                fmt_ms(time_rtk(&a.sim, &queries, cfg.k).mean_ms),
            ]);
            vary_p_rkr.push_row(vec![
                n_p.to_string(),
                fmt_ms(time_rkr(&gir, &queries, cfg.k).mean_ms),
                fmt_ms(time_rkr(&a.mpa, &queries, cfg.k).mean_ms),
                fmt_ms(time_rkr(&a.sim, &queries, cfg.k).mean_ms),
            ]);
        });
    }
    for &(mult, _) in MULTIPLIERS {
        let n_w = ((cfg.w_card as f64 * mult) as usize).max(100);
        collect::set_label(format!("|W|={n_w}"));
        let spec = DataSpec {
            n_points: cfg.p_card,
            n_weights: n_w,
            ..DataSpec::uniform_default(6, cfg.p_card, cfg.seed)
        };
        let (p, w) = spec.generate().expect("generation");
        let queries = cfg.sample_queries(&p);
        let a = build(&p, &w, cfg.k);
        with_query_pool(|pool| {
            let gir = a.gir.parallel(collect::par_config()).with_pool_opt(pool);
            vary_w_rtk.push_row(vec![
                n_w.to_string(),
                fmt_ms(time_rtk(&gir, &queries, cfg.k).mean_ms),
                fmt_ms(time_rtk(&a.bbr, &queries, cfg.k).mean_ms),
                fmt_ms(time_rtk(&a.sim, &queries, cfg.k).mean_ms),
            ]);
            vary_w_rkr.push_row(vec![
                n_w.to_string(),
                fmt_ms(time_rkr(&gir, &queries, cfg.k).mean_ms),
                fmt_ms(time_rkr(&a.mpa, &queries, cfg.k).mean_ms),
                fmt_ms(time_rkr(&a.sim, &queries, cfg.k).mean_ms),
            ]);
        });
    }
    let note = format!(
        "base |P| = {}, |W| = {}, k = {}; expect GIR's lead to widen with scale",
        cfg.p_card, cfg.w_card, cfg.k
    );
    let mut tables = vec![vary_p_rtk, vary_p_rkr, vary_w_rtk, vary_w_rkr];
    for t in &mut tables {
        t.note(note.clone());
    }
    tables
}
