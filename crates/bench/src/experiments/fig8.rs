//! Paper Figure 8: the distribution of Grid-index scores at `d = 4`,
//! `n = 4` — visibly close to a normal distribution even in low
//! dimensions, justifying the CLT model of §5.3.
//!
//! We print the empirical bound-midpoint histogram next to the fitted
//! normal density so the bell shape is verifiable from the table alone.

use crate::runner::ExpConfig;
use crate::table::Table;
use rrq_core::{model, Grid};
use rrq_data::DataSpec;

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let dim = 4;
    let n = 4;
    let buckets = 32;
    let spec = DataSpec::uniform_default(dim, cfg.p_card.min(2000), cfg.seed);
    let spec = DataSpec {
        n_weights: cfg.w_card.min(2000),
        ..spec
    };
    let (p, w) = spec.generate().expect("generation");
    let grid = Grid::new(n, p.value_range());
    let hist = model::score_histogram(&grid, &p, &w, buckets);

    // Fit: scores are Σ w[i]p[i] with simplex weights — estimate μ, σ from
    // the histogram itself and lay the normal density alongside.
    let max_score = p.value_range() * dim as f64;
    let bucket_width = max_score / buckets as f64;
    let mean: f64 = hist
        .iter()
        .enumerate()
        .map(|(i, &f)| f * (i as f64 + 0.5) * bucket_width)
        .sum();
    let var: f64 = hist
        .iter()
        .enumerate()
        .map(|(i, &f)| {
            let x = (i as f64 + 0.5) * bucket_width;
            f * (x - mean) * (x - mean)
        })
        .sum();
    let sigma = var.sqrt();

    let mut table = Table::new(
        "Figure 8: Grid-index score distribution (d = 4, n = 4)",
        &["bucket", "score range", "freq", "normal fit", "bar"],
    );
    for (i, &f) in hist.iter().enumerate() {
        let lo = i as f64 * bucket_width;
        let hi = lo + bucket_width;
        let x = 0.5 * (lo + hi);
        let fit = bucket_width * normal_pdf(x, mean, sigma);
        let bar = "#".repeat((f * 200.0).round() as usize);
        table.push_row(vec![
            i.to_string(),
            format!("{lo:.0}-{hi:.0}"),
            format!("{f:.4}"),
            format!("{fit:.4}"),
            bar,
        ]);
    }
    table.note(format!(
        "empirical mean {mean:.1}, sigma {sigma:.1}; compare freq vs normal fit column"
    ));
    vec![table]
}

fn normal_pdf(x: f64, mu: f64, sigma: f64) -> f64 {
    let z = (x - mu) / sigma;
    (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt())
}
