//! The `rrq-benchdiff` engine: compare two `BENCH_<exp>.json` documents
//! (or a baseline directory against a fresh run), classify every metric
//! delta against configurable thresholds, and render a markdown report.
//!
//! The paper's claim is a *CPU cost model* — GIR wins by trading
//! multiplications for look-ups and additions — so the gate treats the
//! machine-independent counters as the ground truth (default tolerance:
//! zero; identical seeds must reproduce identical counters), wall-clock
//! tail latency as a softer signal (machine-dependent, default 25 %),
//! and `alloc_*` heap metrics in between (default 10 %). Lower is better
//! for every compared metric.

use rrq_obs::{AlgoMetrics, ExperimentMetrics};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Regression tolerances, in percent growth over the baseline. An
/// infinite threshold turns the class into informational rows that can
/// never fail the gate.
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    /// Machine-independent `QueryStats` counters (multiplications,
    /// bound additions, node/leaf accesses, ...). Default 0.0: with the
    /// same seed and configuration they must reproduce exactly.
    pub counter_pct: f64,
    /// Latency percentiles p50/p90/p99. Default 25.0 — wall time is
    /// machine-dependent; same-machine regressions beyond a quarter are
    /// flagged.
    pub latency_pct: f64,
    /// `alloc_total_bytes` / `alloc_peak_bytes` (present when the run
    /// was made with the `alloc-track` feature). Default 10.0.
    pub mem_pct: f64,
    /// Scheduling-dependent `sched_*` counters emitted by the load
    /// generator (achieved rate, sampler ticks, ...). These depend on
    /// wall-clock scheduling, not the algorithm, so the default is
    /// infinite: reported for information, never gated. This is what
    /// keeps same-seed loadgen runs benchdiff-exact on the *algorithmic*
    /// counters while still carrying their time-series-derived stats.
    pub timing_pct: f64,
    /// Whether a configuration mismatch between the two documents
    /// (different cardinalities, k, seed, ...) fails the diff. Default
    /// true: deltas between different workloads are meaningless.
    pub config_must_match: bool,
}

impl Default for Thresholds {
    fn default() -> Self {
        Self {
            counter_pct: 0.0,
            latency_pct: 25.0,
            mem_pct: 10.0,
            timing_pct: f64::INFINITY,
            config_must_match: true,
        }
    }
}

/// What a metric's delta means under the thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Within tolerance.
    Ok,
    /// Grew beyond the threshold — fails the gate.
    Regressed,
    /// Shrank beyond the threshold — reported, never failing.
    Improved,
    /// Compared for information only (infinite threshold, or the metric
    /// exists on one side only).
    Info,
}

/// Metric class, deciding the threshold and the rendering unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Machine-independent counter (unitless count).
    Counter,
    /// Latency value in nanoseconds.
    Latency,
    /// Heap bytes.
    Memory,
    /// Scheduling-dependent `sched_*` counter (unitless count, own
    /// threshold, informational by default).
    Timing,
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Metric name, e.g. `multiplications` or `latency_p99`.
    pub name: String,
    /// Unit/threshold class.
    pub class: MetricClass,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Growth in percent (`None` when the baseline is zero).
    pub delta_pct: Option<f64>,
    /// Verdict under the thresholds.
    pub status: Status,
}

/// Diff of one (algorithm, query kind, label) cell.
#[derive(Debug, Clone)]
pub struct RunDiff {
    /// Algorithm display name.
    pub algorithm: String,
    /// `"rtk"` or `"rkr"`.
    pub query_kind: String,
    /// Configuration label within the experiment.
    pub label: String,
    /// 0-based occurrence index among runs sharing the same
    /// (algorithm, kind, label) key — experiments that sweep a parameter
    /// without labelling produce duplicates; runs are then matched
    /// positionally so the Nth baseline sweep point meets the Nth
    /// current one.
    pub ordinal: usize,
    /// Compared metrics, exporter order.
    pub metrics: Vec<MetricDelta>,
    /// Structural problems (e.g. differing query counts) that make the
    /// numeric deltas unreliable. Non-empty notes fail the gate.
    pub notes: Vec<String>,
}

impl RunDiff {
    fn key(&self) -> String {
        run_key(&self.algorithm, &self.query_kind, &self.label, self.ordinal)
    }
}

fn run_key(algorithm: &str, kind: &str, label: &str, ordinal: usize) -> String {
    let mut key = if label.is_empty() {
        format!("{algorithm} ({kind})")
    } else {
        format!("{algorithm} ({kind}) [{label}]")
    };
    if ordinal > 0 {
        key.push_str(&format!(" #{}", ordinal + 1));
    }
    key
}

fn same_key(a: &AlgoMetrics, b: &AlgoMetrics) -> bool {
    a.algorithm == b.algorithm && a.query_kind == b.query_kind && a.label == b.label
}

/// Diff of one experiment document pair.
#[derive(Debug, Clone)]
pub struct ExpDiff {
    /// Experiment id.
    pub experiment: String,
    /// Config keys whose values differ (key, baseline, current).
    pub config_mismatches: Vec<(String, String, String)>,
    /// Per-run comparisons, baseline order.
    pub runs: Vec<RunDiff>,
    /// Baseline runs with no counterpart in the current document —
    /// coverage shrank, which fails the gate.
    pub missing_runs: Vec<String>,
    /// Current runs with no baseline counterpart (new coverage; fine).
    pub added_runs: Vec<String>,
}

/// The full report over one or more experiment pairs.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// One entry per compared experiment.
    pub experiments: Vec<ExpDiff>,
    /// Whether config mismatches fail the gate (from [`Thresholds`]).
    pub config_must_match: bool,
}

fn classify(name: &str) -> MetricClass {
    if name.starts_with("alloc_") {
        MetricClass::Memory
    } else if name.starts_with("sched_") {
        MetricClass::Timing
    } else {
        MetricClass::Counter
    }
}

fn compare(name: &str, class: MetricClass, baseline: f64, current: f64, pct: f64) -> MetricDelta {
    let delta_pct = (baseline != 0.0).then(|| (current - baseline) / baseline * 100.0);
    let status = if pct.is_infinite() {
        Status::Info
    } else if current > baseline && (baseline == 0.0 || current > baseline * (1.0 + pct / 100.0)) {
        Status::Regressed
    } else if baseline > current && baseline * (1.0 - pct / 100.0) > current {
        Status::Improved
    } else {
        Status::Ok
    };
    MetricDelta {
        name: name.to_string(),
        class,
        baseline,
        current,
        delta_pct,
        status,
    }
}

fn diff_run(base: &AlgoMetrics, cur: &AlgoMetrics, ordinal: usize, th: &Thresholds) -> RunDiff {
    let mut metrics = Vec::new();
    let mut notes = Vec::new();
    if base.queries != cur.queries {
        notes.push(format!(
            "query count differs: baseline {} vs current {} — deltas unreliable",
            base.queries, cur.queries
        ));
    }
    for (name, bval) in &base.counters {
        match cur.counter(name) {
            Some(cval) => {
                let class = classify(name);
                let pct = match class {
                    MetricClass::Memory => th.mem_pct,
                    MetricClass::Timing => th.timing_pct,
                    _ => th.counter_pct,
                };
                metrics.push(compare(name, class, *bval as f64, cval as f64, pct));
            }
            None => {
                // A counter that vanished is informational: exporters may
                // gain/lose optional metrics (e.g. alloc-track on/off).
                let mut m = compare(name, classify(name), *bval as f64, 0.0, f64::INFINITY);
                m.status = Status::Info;
                metrics.push(m);
            }
        }
    }
    if let (Some(b), Some(c)) = (&base.latency, &cur.latency) {
        for (name, bv, cv) in [
            ("latency_p50", b.p50_ns, c.p50_ns),
            ("latency_p90", b.p90_ns, c.p90_ns),
            ("latency_p99", b.p99_ns, c.p99_ns),
            ("latency_p999", b.p999_ns, c.p999_ns),
        ] {
            metrics.push(compare(
                name,
                MetricClass::Latency,
                bv as f64,
                cv as f64,
                th.latency_pct,
            ));
        }
    }
    RunDiff {
        algorithm: base.algorithm.clone(),
        query_kind: base.query_kind.clone(),
        label: base.label.clone(),
        ordinal,
        metrics,
        notes,
    }
}

/// Compares two experiment documents.
pub fn diff_experiments(
    base: &ExperimentMetrics,
    cur: &ExperimentMetrics,
    th: &Thresholds,
) -> ExpDiff {
    let mut config_mismatches = Vec::new();
    for (key, bval) in &base.config {
        let cval = cur
            .config
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| "<absent>".to_string());
        if *bval != cval {
            config_mismatches.push((key.clone(), bval.clone(), cval));
        }
    }

    let mut runs = Vec::new();
    let mut missing_runs = Vec::new();
    for (i, brun) in base.runs.iter().enumerate() {
        let ordinal = base.runs[..i].iter().filter(|r| same_key(r, brun)).count();
        let matching = cur.runs.iter().filter(|c| same_key(c, brun)).nth(ordinal);
        match matching {
            Some(crun) => runs.push(diff_run(brun, crun, ordinal, th)),
            None => missing_runs.push(run_key(
                &brun.algorithm,
                &brun.query_kind,
                &brun.label,
                ordinal,
            )),
        }
    }
    let added_runs = cur
        .runs
        .iter()
        .enumerate()
        .filter(|(j, crun)| {
            let ordinal = cur.runs[..*j].iter().filter(|r| same_key(r, crun)).count();
            base.runs.iter().filter(|b| same_key(b, crun)).count() <= ordinal
        })
        .map(|(j, crun)| {
            let ordinal = cur.runs[..j].iter().filter(|r| same_key(r, crun)).count();
            run_key(&crun.algorithm, &crun.query_kind, &crun.label, ordinal)
        })
        .collect();

    ExpDiff {
        experiment: base.experiment.clone(),
        config_mismatches,
        runs,
        missing_runs,
        added_runs,
    }
}

impl ExpDiff {
    /// Whether this experiment pair fails the gate.
    pub fn has_regressions(&self, config_must_match: bool) -> bool {
        (config_must_match && !self.config_mismatches.is_empty())
            || !self.missing_runs.is_empty()
            || self.runs.iter().any(|r| {
                !r.notes.is_empty() || r.metrics.iter().any(|m| m.status == Status::Regressed)
            })
    }
}

impl DiffReport {
    /// Builds a report over pre-loaded document pairs.
    pub fn build(pairs: &[(ExperimentMetrics, ExperimentMetrics)], th: &Thresholds) -> DiffReport {
        DiffReport {
            experiments: pairs
                .iter()
                .map(|(b, c)| diff_experiments(b, c, th))
                .collect(),
            config_must_match: th.config_must_match,
        }
    }

    /// Whether anything in the report fails the gate.
    pub fn has_regressions(&self) -> bool {
        self.experiments
            .iter()
            .any(|e| e.has_regressions(self.config_must_match))
    }

    /// Everything that fails the gate: regressed metrics plus blocking
    /// mismatches (config diffs, missing runs, per-run notes), so the
    /// count is non-zero whenever [`Self::has_regressions`] is true.
    pub fn regression_count(&self) -> usize {
        self.experiments
            .iter()
            .map(|e| {
                let blocking_config = if self.config_must_match {
                    e.config_mismatches.len()
                } else {
                    0
                };
                blocking_config
                    + e.missing_runs.len()
                    + e.runs
                        .iter()
                        .map(|r| {
                            r.notes.len()
                                + r.metrics
                                    .iter()
                                    .filter(|m| m.status == Status::Regressed)
                                    .count()
                        })
                        .sum::<usize>()
            })
            .sum()
    }

    /// Renders the whole report as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let verdict = if self.has_regressions() {
            "**REGRESSED**"
        } else {
            "clean"
        };
        let _ = writeln!(out, "# rrq-benchdiff: {verdict}\n");
        for exp in &self.experiments {
            let _ = writeln!(out, "## {}\n", exp.experiment);
            if !exp.config_mismatches.is_empty() {
                let blocking = if self.config_must_match {
                    " (failing: deltas between different workloads are meaningless)"
                } else {
                    ""
                };
                let _ = writeln!(out, "Configuration mismatch{blocking}:\n");
                for (k, b, c) in &exp.config_mismatches {
                    let _ = writeln!(out, "- `{k}`: baseline `{b}` vs current `{c}`");
                }
                let _ = writeln!(out);
            }
            for key in &exp.missing_runs {
                let _ = writeln!(out, "- **missing in current run:** {key}");
            }
            for key in &exp.added_runs {
                let _ = writeln!(out, "- new in current run (not compared): {key}");
            }
            if !exp.missing_runs.is_empty() || !exp.added_runs.is_empty() {
                let _ = writeln!(out);
            }
            for run in &exp.runs {
                let _ = writeln!(out, "### {}\n", run.key());
                for note in &run.notes {
                    let _ = writeln!(out, "- **{note}**");
                }
                let _ = writeln!(out, "| metric | baseline | current | delta | status |");
                let _ = writeln!(out, "|---|---:|---:|---:|---|");
                for m in &run.metrics {
                    let _ = writeln!(
                        out,
                        "| {} | {} | {} | {} | {} |",
                        m.name,
                        fmt_value(m.class, m.baseline),
                        fmt_value(m.class, m.current),
                        fmt_delta(m.delta_pct, m.baseline, m.current),
                        fmt_status(m.status),
                    );
                }
                let _ = writeln!(out);
            }
        }
        out
    }
}

fn fmt_value(class: MetricClass, v: f64) -> String {
    match class {
        MetricClass::Counter | MetricClass::Timing => format!("{}", v as u64),
        MetricClass::Latency => format!("{:.3} ms", v / 1e6),
        MetricClass::Memory => {
            if v >= 1024.0 * 1024.0 {
                format!("{:.2} MiB", v / (1024.0 * 1024.0))
            } else if v >= 1024.0 {
                format!("{:.1} KiB", v / 1024.0)
            } else {
                format!("{} B", v as u64)
            }
        }
    }
}

fn fmt_delta(delta_pct: Option<f64>, baseline: f64, current: f64) -> String {
    match delta_pct {
        Some(pct) => format!("{pct:+.1}%"),
        None if current == baseline => "±0.0%".to_string(),
        None => "+inf%".to_string(),
    }
}

fn fmt_status(s: Status) -> &'static str {
    match s {
        Status::Ok => "ok",
        Status::Regressed => "**REGRESSED**",
        Status::Improved => "improved",
        Status::Info => "info",
    }
}

/// Loads one `BENCH_<exp>.json` document.
pub fn load_bench_file(path: &Path) -> Result<ExperimentMetrics, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    ExperimentMetrics::from_json_text(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Lists the `BENCH_*.json` files directly inside `dir`, sorted by name.
pub fn list_bench_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: cannot list: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrq_obs::LatencySummary;

    fn sample_metrics() -> ExperimentMetrics {
        let mut exp = ExperimentMetrics::new("fig11");
        exp.config_pair("p_card", 600);
        exp.config_pair("seed", 42);
        exp.push(AlgoMetrics {
            algorithm: "GIR".into(),
            query_kind: "rtk".into(),
            label: "d=10".into(),
            queries: 5,
            mean_ms: 1.0,
            counters: vec![
                ("multiplications".into(), 40_000),
                ("bound_additions".into(), 90_000),
                ("leaf_accesses".into(), 120),
                ("alloc_peak_bytes".into(), 1_000_000),
            ],
            latency: Some(LatencySummary {
                count: 5,
                mean_ns: 1_000_000.0,
                min_ns: 800_000,
                p50_ns: 1_000_000,
                p90_ns: 1_200_000,
                p99_ns: 1_300_000,
                p999_ns: 1_300_000,
                max_ns: 1_300_000,
            }),
            phases: vec![],
        });
        exp
    }

    #[test]
    fn identical_documents_diff_clean() {
        let base = sample_metrics();
        let report = DiffReport::build(&[(base.clone(), base.clone())], &Thresholds::default());
        assert!(!report.has_regressions(), "{}", report.to_markdown());
        assert_eq!(report.regression_count(), 0);
        assert!(report.to_markdown().contains("clean"));
        // Every counter delta is exactly zero.
        for m in report.experiments[0].runs[0]
            .metrics
            .iter()
            .filter(|m| m.class == MetricClass::Counter)
        {
            assert_eq!(m.baseline, m.current, "{}", m.name);
            assert_eq!(m.status, Status::Ok);
        }
    }

    #[test]
    fn doubled_counter_regresses() {
        let base = sample_metrics();
        let mut cur = base.clone();
        cur.runs[0].counters[0].1 *= 2; // multiplications ×2
        let report = DiffReport::build(&[(base, cur)], &Thresholds::default());
        assert!(report.has_regressions());
        let m = &report.experiments[0].runs[0].metrics[0];
        assert_eq!(m.name, "multiplications");
        assert_eq!(m.status, Status::Regressed);
        assert!((m.delta_pct.unwrap() - 100.0).abs() < 1e-9);
        assert!(report.to_markdown().contains("**REGRESSED**"));
    }

    #[test]
    fn counter_tolerance_is_zero_by_default_and_configurable() {
        let base = sample_metrics();
        let mut cur = base.clone();
        cur.runs[0].counters[0].1 += 1; // 40_000 -> 40_001
        let strict = DiffReport::build(&[(base.clone(), cur.clone())], &Thresholds::default());
        assert!(strict.has_regressions(), "any counter growth fails at 0%");
        let loose = DiffReport::build(
            &[(base, cur)],
            &Thresholds {
                counter_pct: 1.0,
                ..Thresholds::default()
            },
        );
        assert!(!loose.has_regressions(), "0.0025% growth passes at 1%");
    }

    #[test]
    fn latency_threshold_and_infinite_disable() {
        let base = sample_metrics();
        let mut cur = base.clone();
        if let Some(lat) = &mut cur.runs[0].latency {
            lat.p99_ns *= 2; // +100% > 25%
        }
        let report = DiffReport::build(&[(base.clone(), cur.clone())], &Thresholds::default());
        assert!(report.has_regressions());
        let off = DiffReport::build(
            &[(base, cur)],
            &Thresholds {
                latency_pct: f64::INFINITY,
                ..Thresholds::default()
            },
        );
        assert!(!off.has_regressions(), "infinite threshold only informs");
        let p99 = off.experiments[0].runs[0]
            .metrics
            .iter()
            .find(|m| m.name == "latency_p99")
            .unwrap();
        assert_eq!(p99.status, Status::Info);
    }

    #[test]
    fn memory_uses_its_own_threshold() {
        let base = sample_metrics();
        let mut cur = base.clone();
        cur.runs[0].counters[3].1 = 1_050_000; // alloc_peak +5% < 10%
        let report = DiffReport::build(&[(base.clone(), cur)], &Thresholds::default());
        assert!(!report.has_regressions());
        let mut cur2 = base.clone();
        cur2.runs[0].counters[3].1 = 1_200_000; // +20% > 10%
        let report2 = DiffReport::build(&[(base, cur2)], &Thresholds::default());
        assert!(report2.has_regressions());
    }

    #[test]
    fn improvement_never_fails() {
        let base = sample_metrics();
        let mut cur = base.clone();
        cur.runs[0].counters[0].1 /= 2;
        let report = DiffReport::build(&[(base, cur)], &Thresholds::default());
        assert!(!report.has_regressions());
        let m = &report.experiments[0].runs[0].metrics[0];
        assert_eq!(m.status, Status::Improved);
    }

    #[test]
    fn missing_run_and_config_mismatch_fail() {
        let base = sample_metrics();
        let mut cur = base.clone();
        cur.runs.clear();
        let report = DiffReport::build(&[(base.clone(), cur)], &Thresholds::default());
        assert!(report.has_regressions());
        assert_eq!(report.experiments[0].missing_runs.len(), 1);
        assert!(
            report.regression_count() > 0,
            "blocking mismatches must show up in the reported count"
        );

        let mut cur2 = base.clone();
        cur2.config[1].1 = "43".into(); // different seed
        let report2 = DiffReport::build(&[(base.clone(), cur2.clone())], &Thresholds::default());
        assert!(
            report2.has_regressions(),
            "config mismatch blocks by default"
        );
        assert!(report2.regression_count() > 0);
        let relaxed = DiffReport::build(
            &[(base, cur2)],
            &Thresholds {
                config_must_match: false,
                ..Thresholds::default()
            },
        );
        assert!(!relaxed.has_regressions());
    }

    #[test]
    fn vanished_counter_is_informational() {
        let base = sample_metrics();
        let mut cur = base.clone();
        cur.runs[0]
            .counters
            .retain(|(k, _)| k != "alloc_peak_bytes");
        let report = DiffReport::build(&[(base, cur)], &Thresholds::default());
        assert!(
            !report.has_regressions(),
            "alloc-track off in current run must not fail counter gate"
        );
    }

    #[test]
    fn query_count_mismatch_fails_with_note() {
        let base = sample_metrics();
        let mut cur = base.clone();
        cur.runs[0].queries = 50;
        let report = DiffReport::build(&[(base, cur)], &Thresholds::default());
        assert!(report.has_regressions());
        assert!(!report.experiments[0].runs[0].notes.is_empty());
    }

    #[test]
    fn duplicate_keys_match_positionally() {
        // An unlabelled parameter sweep: two runs share the key. The Nth
        // baseline occurrence must meet the Nth current occurrence, not
        // the first.
        let mut base = sample_metrics();
        let mut second = base.runs[0].clone();
        second.counters[0].1 = 99_000;
        base.runs.push(second);
        let cur = base.clone();
        let report = DiffReport::build(&[(base.clone(), cur)], &Thresholds::default());
        assert!(!report.has_regressions(), "{}", report.to_markdown());
        assert_eq!(report.experiments[0].runs.len(), 2);
        assert!(report.to_markdown().contains("#2"), "ordinal shown");

        // Dropping the second occurrence is a missing run.
        let mut shrunk = base.clone();
        shrunk.runs.pop();
        let report2 = DiffReport::build(&[(base, shrunk)], &Thresholds::default());
        assert!(report2.has_regressions());
        assert_eq!(report2.experiments[0].missing_runs.len(), 1);
        assert!(report2.experiments[0].missing_runs[0].contains("#2"));
    }

    #[test]
    fn sched_counters_are_informational_by_default() {
        // `sched_*` counters carry wall-clock-derived values (achieved
        // rate, sampler ticks); two same-seed loadgen runs differ there
        // while staying exact on algorithmic counters — the default
        // thresholds must accept that.
        let mut base = sample_metrics();
        base.runs[0]
            .counters
            .push(("sched_achieved_qps_milli".into(), 198_000));
        let mut cur = base.clone();
        cur.runs[0].counters.last_mut().unwrap().1 = 120_000; // wildly different timing
        let report = DiffReport::build(&[(base.clone(), cur.clone())], &Thresholds::default());
        assert!(!report.has_regressions(), "{}", report.to_markdown());
        let m = report.experiments[0].runs[0]
            .metrics
            .iter()
            .find(|m| m.name == "sched_achieved_qps_milli")
            .unwrap();
        assert_eq!(m.class, MetricClass::Timing);
        assert_eq!(m.status, Status::Info);
        // But the class has its own tightenable threshold.
        let tight = DiffReport::build(
            &[(base, cur)],
            &Thresholds {
                timing_pct: 10.0,
                ..Thresholds::default()
            },
        );
        // current < baseline: an *improvement* beyond threshold, never failing.
        assert!(!tight.has_regressions());
        let m = tight.experiments[0].runs[0]
            .metrics
            .iter()
            .find(|m| m.name == "sched_achieved_qps_milli")
            .unwrap();
        assert_eq!(m.status, Status::Improved);
    }

    #[test]
    fn p999_is_compared_under_the_latency_threshold() {
        let base = sample_metrics();
        let mut cur = base.clone();
        if let Some(lat) = &mut cur.runs[0].latency {
            lat.p999_ns *= 3; // +200% > 25%
        }
        let report = DiffReport::build(&[(base, cur)], &Thresholds::default());
        assert!(report.has_regressions());
        let m = report.experiments[0].runs[0]
            .metrics
            .iter()
            .find(|m| m.name == "latency_p999")
            .unwrap();
        assert_eq!(m.class, MetricClass::Latency);
        assert_eq!(m.status, Status::Regressed);
    }

    #[test]
    fn markdown_surfaces_p999_even_for_pre_p999_baselines() {
        // p999 is a first-class row of the markdown report…
        let base = sample_metrics();
        let md = DiffReport::build(&[(base.clone(), base.clone())], &Thresholds::default())
            .to_markdown();
        assert!(md.contains("| latency_p999 |"), "{md}");

        // …also when the baseline snapshot predates the `p999` member:
        // the registry decodes it with the exact-max fallback, and the
        // row compares that against the current document's true p999.
        let old_text: String = base
            .to_json()
            .to_pretty()
            .lines()
            .filter(|l| !l.contains("\"p999\""))
            .collect::<Vec<_>>()
            .join("\n");
        let old = ExperimentMetrics::from_json_text(&old_text).expect("old doc decodes");
        let max_ns = base.runs[0].latency.as_ref().unwrap().max_ns;
        assert_eq!(
            old.runs[0].latency.as_ref().map(|l| l.p999_ns),
            Some(max_ns),
            "fallback is the exact max"
        );
        let report = DiffReport::build(&[(old, base)], &Thresholds::default());
        let row = report.experiments[0].runs[0]
            .metrics
            .iter()
            .find(|m| m.name == "latency_p999")
            .expect("p999 row present with a fallback baseline");
        assert_eq!(row.baseline, max_ns as f64);
        assert!(report.to_markdown().contains("| latency_p999 |"));
    }

    #[test]
    fn markdown_renders_units() {
        let base = sample_metrics();
        let md = DiffReport::build(&[(base.clone(), base)], &Thresholds::default()).to_markdown();
        assert!(md.contains("## fig11"));
        assert!(md.contains("### GIR (rtk) [d=10]"));
        assert!(md.contains("| multiplications | 40000 | 40000 |"), "{md}");
        assert!(md.contains("ms"), "latency rendered in ms: {md}");
        assert!(md.contains("KiB") || md.contains("MiB"), "memory humanized");
    }
}
