//! Plain-text result tables, formatted like the paper's.

use std::fmt;

/// A titled table of experiment results.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Heading, e.g. `"Figure 11(a): RTK query time, d = 10..50"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already stringified by the experiment).
    pub rows: Vec<Vec<String>>,
    /// Free-form footnotes (workload scale, substitutions, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Appends a footnote.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the table as GitHub-flavoured markdown (used to assemble
    /// EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for note in &self.notes {
            out.push_str(&format!("\n*{note}*\n"));
        }
        out
    }
}

/// Formats milliseconds with adaptive precision.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.4}")
    }
}

/// Formats a large count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(f: f64) -> String {
    format!("{:.2}%", f * 100.0)
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let header_line: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        writeln!(f, "{}", header_line.join("  "))?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["d", "GIR", "SIM"]);
        t.push_row(vec!["2".into(), "0.51".into(), "1.20".into()]);
        t.push_row(vec!["20".into(), "1.05".into(), "12.40".into()]);
        t.note("scaled run");
        let s = t.to_string();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("note: scaled run"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 6);
        // Right-aligned: the header row and data rows share column ends.
        assert!(lines[1].ends_with("SIM"));
    }

    #[test]
    fn markdown_renders() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.note("hello");
        let md = t.to_markdown();
        assert!(md.starts_with("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("*hello*"));
    }

    #[test]
    fn fmt_ms_precision() {
        assert_eq!(fmt_ms(1234.5), "1234");
        assert_eq!(fmt_ms(12.345), "12.35");
        assert_eq!(fmt_ms(0.01234), "0.0123");
    }

    #[test]
    fn fmt_count_separators() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1000), "1,000");
        assert_eq!(fmt_count(1234567), "1,234,567");
    }

    #[test]
    fn fmt_pct_rounds() {
        assert_eq!(fmt_pct(0.9931), "99.31%");
        assert_eq!(fmt_pct(1.0), "100.00%");
    }
}
