//! `rrq-explain` — inspect and compare query-explain documents.
//!
//! ```text
//! rrq-explain render <doc.json>
//! rrq-explain diff [--structural] <a.json> <b.json>
//! ```
//!
//! `render` pretty-prints one document captured by `rrq-exp --explain`
//! (or the loadgen's `explain=N` sampling): header, filter→refine
//! funnel, per-cell classification heatmap, bound timeline and result
//! set. `diff` compares two documents and reports the *first*
//! divergence in a fixed order (header, results, then engine identity,
//! funnel, cells, timeline), which localizes a seq-vs-par or
//! run-vs-run discrepancy to one cell, weight or bound event.
//! `--structural` restricts the comparison to the header and result
//! set — the parts that must agree across engines — so documents from
//! different engines (GIR vs ParGir) or bound modes diff clean unless
//! the *answer* changed.
//!
//! Exit codes: `0` documents agree, `1` they diverge, `2` usage or
//! parse error.

use rrq_obs::ExplainDoc;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: rrq-explain render <doc.json>");
    eprintln!("       rrq-explain diff [--structural] <a.json> <b.json>");
    ExitCode::from(2)
}

/// Reads and parses one explain document, reporting failures by path.
fn load(path: &str) -> Result<ExplainDoc, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    ExplainDoc::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("render") => {
            let [path] = &args[1..] else { return usage() };
            match load(path) {
                Ok(doc) => {
                    print!("{}", doc.render());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("diff") => {
            let mut structural = false;
            let mut paths = Vec::new();
            for arg in &args[1..] {
                match arg.as_str() {
                    "--structural" => structural = true,
                    flag if flag.starts_with("--") => {
                        eprintln!("error: unknown flag {flag}");
                        return ExitCode::from(2);
                    }
                    path => paths.push(path),
                }
            }
            let [a_path, b_path] = paths[..] else {
                return usage();
            };
            let (a, b) = match (load(a_path), load(b_path)) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            match a.diff(&b, structural) {
                None => {
                    println!(
                        "documents agree{}",
                        if structural { " (structural)" } else { "" }
                    );
                    ExitCode::SUCCESS
                }
                Some(divergence) => {
                    println!("{divergence}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
