//! `rrq-threshold` — build and verify threshold-index artifacts.
//!
//! ```text
//! rrq-threshold build <index.rrqt> [--p N] [--w N] [--dim N] [--k N] [--seed N]
//! rrq-threshold check <index.rrqt> [--p N] [--w N] [--dim N] [--k N] [--seed N]
//! ```
//!
//! `build` materializes a [`rrq_core::ThresholdIndex`] over the seeded
//! uniform workload the flags describe (the same generator `rrq-exp`
//! uses), at the standard bucket ladder for `k`, and writes it as a
//! versioned `RRQT` artifact. `check` re-reads the artifact through the
//! full header/checksum validation path and revalidates it against the
//! regenerated data sets, so a corrupted, truncated or stale file is
//! rejected with the typed error the serving layer would raise.
//!
//! Exit codes: `0` success, `1` the artifact was rejected, `2` usage
//! error.

use rrq_core::{persist, ThresholdIndex};
use rrq_data::DataSpec;
use std::path::Path;
use std::process::ExitCode;

/// Workload shape shared by both subcommands; defaults match
/// `rrq-exp --smoke` so the check.sh pipeline needs no flags.
struct Shape {
    p_card: usize,
    w_card: usize,
    dim: usize,
    k: usize,
    seed: u64,
}

impl Default for Shape {
    fn default() -> Self {
        Self {
            p_card: 600,
            w_card: 300,
            dim: 6,
            k: 10,
            seed: 42,
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: rrq-threshold build <index.rrqt> [--p N] [--w N] [--dim N] [--k N] [--seed N]"
    );
    eprintln!(
        "       rrq-threshold check <index.rrqt> [--p N] [--w N] [--dim N] [--k N] [--seed N]"
    );
    ExitCode::from(2)
}

fn parse_shape(args: &[String]) -> Result<Shape, String> {
    let mut shape = Shape::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut next = |flag: &str| -> Result<usize, String> {
            it.next()
                .ok_or_else(|| format!("missing value for {flag}"))?
                .parse::<usize>()
                .map_err(|e| format!("bad value for {flag}: {e}"))
        };
        match arg.as_str() {
            "--p" => shape.p_card = next("--p")?,
            "--w" => shape.w_card = next("--w")?,
            "--dim" => shape.dim = next("--dim")?,
            "--k" => shape.k = next("--k")?,
            "--seed" => shape.seed = next("--seed")? as u64,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(shape)
}

/// Regenerates the workload the shape describes.
fn generate(shape: &Shape) -> Result<(rrq_types::PointSet, rrq_types::WeightSet), String> {
    let spec = DataSpec {
        n_weights: shape.w_card,
        ..DataSpec::uniform_default(shape.dim, shape.p_card, shape.seed)
    };
    spec.generate().map_err(|e| format!("generation: {e:?}"))
}

fn build(path: &str, shape: &Shape) -> Result<(), String> {
    let (p, w) = generate(shape)?;
    let buckets = ThresholdIndex::default_buckets(&[shape.k], p.len());
    let index = ThresholdIndex::build(&p, &w, &buckets).map_err(|e| e.to_string())?;
    persist::write_threshold(Path::new(path), &index).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {path}: {} buckets x {} weights over |P| = {} (d = {}), {} bytes in memory, fingerprint {:016x}",
        index.buckets().len(),
        index.n_weights(),
        index.n_points(),
        index.dims(),
        index.memory_bytes(),
        index.fingerprint()
    );
    Ok(())
}

fn check(path: &str, shape: &Shape) -> Result<(), String> {
    let index = persist::read_threshold(Path::new(path)).map_err(|e| e.to_string())?;
    let (p, w) = generate(shape)?;
    index.validate_for(&p, &w).map_err(|e| e.to_string())?;
    eprintln!(
        "{path} ok: {} buckets x {} weights, fingerprint {:016x} matches the configured workload",
        index.buckets().len(),
        index.n_weights(),
        index.fingerprint()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(cmd), Some(path)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let shape = match parse_shape(&args[2..]) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let result = match cmd.as_str() {
        "build" => build(path, &shape),
        "check" => check(path, &shape),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
