//! `rrq-benchdiff` — perf-regression gate over `BENCH_<exp>.json` files.
//!
//! ```text
//! rrq-benchdiff <baseline.json> <current.json> [options]
//! rrq-benchdiff --dir <baseline-dir> <current-dir> [options]
//!
//! options:
//!   --max-counter-pct P   allowed counter growth in percent       (default 0)
//!   --max-latency-pct P   allowed p50/p90/p99/p999 growth, or inf (default 25)
//!   --max-mem-pct P       allowed alloc_* growth, or inf          (default 10)
//!   --max-timing-pct P    allowed sched_* growth, or inf          (default inf)
//!   --ignore-config       don't fail on config mismatches
//!   --md-out FILE         also write the markdown report to FILE
//! ```
//!
//! In `--dir` mode the baseline directory's `BENCH_*.json` files drive
//! the comparison; each must have a same-named counterpart in the
//! current directory. Exit codes: 0 clean, 1 regressed, 2 usage/IO
//! error.

use rrq_bench::diff::{self, DiffReport, Thresholds};
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    dir_mode: bool,
    baseline: PathBuf,
    current: PathBuf,
    thresholds: Thresholds,
    md_out: Option<PathBuf>,
}

fn usage() -> String {
    "usage: rrq-benchdiff [--dir] <baseline> <current> \
     [--max-counter-pct P] [--max-latency-pct P|inf] [--max-mem-pct P|inf] \
     [--max-timing-pct P|inf] [--ignore-config] [--md-out FILE]"
        .to_string()
}

fn parse_pct(it: &mut std::slice::Iter<String>, flag: &str) -> Result<f64, String> {
    let raw = it
        .next()
        .ok_or_else(|| format!("missing value for {flag}"))?;
    if raw == "inf" {
        return Ok(f64::INFINITY);
    }
    let v: f64 = raw
        .parse()
        .map_err(|e| format!("bad value for {flag}: {e}"))?;
    if v < 0.0 || v.is_nan() {
        return Err(format!("bad value for {flag}: must be >= 0 or `inf`"));
    }
    Ok(v)
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut thresholds = Thresholds::default();
    let mut dir_mode = false;
    let mut md_out = None;
    let mut positional: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dir" => dir_mode = true,
            "--ignore-config" => thresholds.config_must_match = false,
            "--max-counter-pct" => thresholds.counter_pct = parse_pct(&mut it, arg)?,
            "--max-latency-pct" => thresholds.latency_pct = parse_pct(&mut it, arg)?,
            "--max-mem-pct" => thresholds.mem_pct = parse_pct(&mut it, arg)?,
            "--max-timing-pct" => thresholds.timing_pct = parse_pct(&mut it, arg)?,
            "--md-out" => {
                md_out = Some(PathBuf::from(
                    it.next().ok_or("missing value for --md-out")?,
                ));
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            path => positional.push(PathBuf::from(path)),
        }
    }
    match positional.len() {
        2 => Ok(Cli {
            dir_mode,
            baseline: positional.remove(0),
            current: positional.remove(0),
            thresholds,
            md_out,
        }),
        n => Err(format!("expected 2 paths, got {n}\n{}", usage())),
    }
}

fn load_pairs(
    cli: &Cli,
) -> Result<Vec<(rrq_obs::ExperimentMetrics, rrq_obs::ExperimentMetrics)>, String> {
    if !cli.dir_mode {
        return Ok(vec![(
            diff::load_bench_file(&cli.baseline)?,
            diff::load_bench_file(&cli.current)?,
        )]);
    }
    let base_files = diff::list_bench_files(&cli.baseline)?;
    if base_files.is_empty() {
        return Err(format!(
            "{}: no BENCH_*.json files found",
            cli.baseline.display()
        ));
    }
    let mut pairs = Vec::new();
    for base_path in base_files {
        let name = base_path
            .file_name()
            .ok_or_else(|| format!("{}: no file name", base_path.display()))?;
        let cur_path = cli.current.join(name);
        if !cur_path.exists() {
            return Err(format!(
                "{}: baseline file has no counterpart in {}",
                base_path.display(),
                cli.current.display()
            ));
        }
        pairs.push((
            diff::load_bench_file(&base_path)?,
            diff::load_bench_file(&cur_path)?,
        ));
    }
    Ok(pairs)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let pairs = match load_pairs(&cli) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = DiffReport::build(&pairs, &cli.thresholds);
    let md = report.to_markdown();
    print!("{md}");
    if let Some(path) = &cli.md_out {
        if let Err(e) = std::fs::write(path, &md) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if report.has_regressions() {
        eprintln!(
            "rrq-benchdiff: {} metric regression(s) (or blocking mismatches) detected",
            report.regression_count()
        );
        ExitCode::FAILURE
    } else {
        eprintln!("rrq-benchdiff: clean");
        ExitCode::SUCCESS
    }
}
