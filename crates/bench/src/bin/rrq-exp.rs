//! `rrq-exp` — regenerate the paper's tables and figures.
//!
//! ```text
//! rrq-exp list
//! rrq-exp <experiment-id|all> [--p N] [--w N] [--queries N] [--k N]
//!         [--partitions N] [--seed N] [--threads N] [--par-query N]
//!         [--par-shared-bound] [--par-pool] [--par-epoch N]
//!         [--threshold-index]
//!         [--loadgen rate=R,dur=S,mode=open|closed[,workers=N,scan=K,explain=N,trace=F]]
//!         [--mutate trace=SEED[,ops=N,checkpoints=N,dim=D]]
//!         [--explain[=prefix]] [--full] [--smoke]
//! ```
//!
//! Defaults run at a laptop-friendly scale (10K × 10K, 5 queries);
//! `--full` switches to the paper's 100K × 100K. `--loadgen` replays a
//! seeded query stream against the worker pool (open or closed loop,
//! coordinated-omission-safe latency) and writes `BENCH_loadgen.json`;
//! it runs after any experiment ids, or on its own. `--explain`
//! captures pruning-provenance documents for the configured workload
//! (`<prefix>_rtk_gir.json`, …; default prefix `EXPLAIN`) — inspect
//! them with `rrq-explain render` / `rrq-explain diff`. The loadgen
//! `explain=N` key samples a document every Nth stream query into
//! `<prefix>_loadgen_q<seq>.json`. `--mutate` replays a seeded
//! insert/delete trace against the epoch-versioned mutable engine,
//! verifies every checkpoint against a rebuild-from-scratch index, and
//! writes `BENCH_update.json` (deterministic counters, gated by
//! `scripts/bench_gate.sh`).

use rrq_bench::{collect, experiments, loadgen, mutate, ExpConfig};
use std::process::ExitCode;

/// Everything `parse_args` extracts besides the experiment ids.
struct Parsed {
    cfg: ExpConfig,
    markdown: bool,
    loadgen_spec: Option<String>,
    /// `--mutate trace=SEED,...`: replay a seeded update trace and
    /// write `BENCH_update.json`.
    mutate_spec: Option<String>,
    /// `--explain[=prefix]`: capture explain documents under this file
    /// prefix.
    explain: Option<String>,
}

fn parse_args(args: &[String]) -> Result<(Vec<String>, Parsed), String> {
    let mut cfg = ExpConfig::default();
    let mut markdown = false;
    let mut loadgen_spec = None;
    let mut mutate_spec = None;
    let mut explain = None;
    let mut ids = Vec::new();
    let mut it = args.iter().peekable();
    let next_value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                      flag: &str|
     -> Result<usize, String> {
        it.next()
            .ok_or_else(|| format!("missing value for {flag}"))?
            .parse::<usize>()
            .map_err(|e| format!("bad value for {flag}: {e}"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => {
                cfg = ExpConfig {
                    queries: cfg.queries,
                    k: cfg.k,
                    partitions: cfg.partitions,
                    seed: cfg.seed,
                    ..ExpConfig::full()
                }
            }
            "--smoke" => cfg = ExpConfig::smoke(),
            "--md" => markdown = true,
            "--p" => cfg.p_card = next_value(&mut it, "--p")?,
            "--w" => cfg.w_card = next_value(&mut it, "--w")?,
            "--queries" => cfg.queries = next_value(&mut it, "--queries")?,
            "--k" => cfg.k = next_value(&mut it, "--k")?,
            "--partitions" => cfg.partitions = next_value(&mut it, "--partitions")?,
            "--seed" => cfg.seed = next_value(&mut it, "--seed")? as u64,
            "--threads" => {
                cfg.threads = next_value(&mut it, "--threads")?.max(1);
            }
            "--par-query" => {
                cfg.par_query = next_value(&mut it, "--par-query")?.max(1);
            }
            "--par-shared-bound" => cfg.par_shared = true,
            "--par-pool" => cfg.par_pool = true,
            "--threshold-index" => cfg.threshold_index = true,
            "--par-epoch" => {
                // `0` keeps the mode selected by --par-shared-bound
                // (ExpConfig::par_epoch's documented default), so it is
                // passed through rather than clamped: clamping to 1
                // would silently turn "epoch mode off" into the most
                // aggressive epoch setting.
                cfg.par_epoch = next_value(&mut it, "--par-epoch")?;
            }
            "--loadgen" => {
                loadgen_spec = Some(
                    it.next()
                        .ok_or_else(|| "missing value for --loadgen".to_string())?
                        .clone(),
                );
            }
            "--mutate" => {
                mutate_spec = Some(
                    it.next()
                        .ok_or_else(|| "missing value for --mutate".to_string())?
                        .clone(),
                );
            }
            "--explain" => explain = Some("EXPLAIN".to_string()),
            flag if flag.starts_with("--explain=") => {
                let prefix = &flag["--explain=".len()..];
                if prefix.is_empty() {
                    return Err("empty prefix for --explain=".to_string());
                }
                explain = Some(prefix.to_string());
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            id => ids.push(id.to_string()),
        }
    }
    Ok((
        ids,
        Parsed {
            cfg,
            markdown,
            loadgen_spec,
            mutate_spec,
            explain,
        },
    ))
}

/// Captures explain documents for the configured workload and writes
/// them as `<prefix>_<suffix>.json`. Returns false on failure.
fn run_explain(cfg: &ExpConfig, prefix: &str) -> bool {
    let docs = match rrq_bench::explain::capture(cfg) {
        Ok(docs) => docs,
        Err(e) => {
            eprintln!("error: explain capture failed: {e}");
            return false;
        }
    };
    for c in &docs {
        let path = format!("{prefix}_{}.json", c.suffix);
        match std::fs::write(&path, &c.json) {
            Ok(()) => eprintln!("wrote {path} ({} bytes)", c.json.len()),
            Err(err) => {
                eprintln!("error: could not write {path}: {err}");
                return false;
            }
        }
    }
    true
}

/// Runs the load generator and writes `BENCH_loadgen.json` (and the
/// optional Perfetto trace, and any `explain=N` sampled documents under
/// `explain_prefix`). Returns false on failure.
fn run_loadgen(cfg: &ExpConfig, spec: &str, markdown: bool, explain_prefix: &str) -> bool {
    let lg = match loadgen::LoadgenConfig::parse(spec) {
        Ok(lg) => lg,
        Err(e) => {
            eprintln!("error: {e}");
            return false;
        }
    };
    eprintln!(
        "running loadgen — {} loop, {} q/s for {}s x{} ({} workers)",
        match lg.mode {
            loadgen::LoadMode::Open => "open",
            loadgen::LoadMode::Closed => "closed",
        },
        lg.rate,
        lg.dur_s,
        lg.scan,
        lg.workers
    );
    let start = std::time::Instant::now();
    let report = match loadgen::run(cfg, &lg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: loadgen failed: {e}");
            return false;
        }
    };
    if markdown {
        println!("{}", report.table.to_markdown());
    } else {
        println!("{}", report.table);
    }
    let json = report.metrics.to_json().to_pretty();
    if let Err(err) = rrq_obs::json::parse(&json) {
        eprintln!("error: exporter emitted invalid JSON for BENCH_loadgen.json: {err:?}");
        return false;
    }
    match std::fs::write("BENCH_loadgen.json", &json) {
        Ok(()) => eprintln!(
            "wrote BENCH_loadgen.json ({} runs, {} bytes)",
            report.metrics.runs.len(),
            json.len()
        ),
        Err(err) => {
            eprintln!("error: could not write BENCH_loadgen.json: {err}");
            return false;
        }
    }
    if let (Some(path), Some(trace)) = (&lg.trace, &report.trace_json) {
        match std::fs::write(path, trace) {
            Ok(()) => eprintln!("wrote {path} ({} bytes)", trace.len()),
            Err(err) => eprintln!("warning: could not write {path}: {err}"),
        }
    }
    for (seq, json) in &report.explain_docs {
        let path = format!("{explain_prefix}_loadgen_q{seq}.json");
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote {path} ({} bytes)", json.len()),
            Err(err) => {
                eprintln!("error: could not write {path}: {err}");
                return false;
            }
        }
    }
    eprintln!("loadgen finished in {:.1}s", start.elapsed().as_secs_f64());
    eprintln!();
    true
}

/// Replays a seeded update trace (mutable engine vs rebuild at every
/// checkpoint) and writes `BENCH_update.json`. Returns false on
/// failure — including any mutable-vs-rebuild divergence.
fn run_mutate(cfg: &ExpConfig, spec: &str, markdown: bool) -> bool {
    let mc = match mutate::MutateConfig::parse(spec) {
        Ok(mc) => mc,
        Err(e) => {
            eprintln!("error: {e}");
            return false;
        }
    };
    eprintln!(
        "running update trace — seed {}, {} ops across {} checkpoints (dim {})",
        mc.trace_seed, mc.ops, mc.checkpoints, mc.dim
    );
    let start = std::time::Instant::now();
    let report = match mutate::run(cfg, &mc) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: update trace failed: {e}");
            return false;
        }
    };
    if markdown {
        println!("{}", report.table.to_markdown());
    } else {
        println!("{}", report.table);
    }
    let json = report.metrics.to_json().to_pretty();
    if let Err(err) = rrq_obs::json::parse(&json) {
        eprintln!("error: exporter emitted invalid JSON for BENCH_update.json: {err:?}");
        return false;
    }
    match std::fs::write("BENCH_update.json", &json) {
        Ok(()) => eprintln!(
            "wrote BENCH_update.json ({} runs, {} bytes)",
            report.metrics.runs.len(),
            json.len()
        ),
        Err(err) => {
            eprintln!("error: could not write BENCH_update.json: {err}");
            return false;
        }
    }
    eprintln!(
        "update trace finished in {:.1}s",
        start.elapsed().as_secs_f64()
    );
    eprintln!();
    true
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (ids, parsed) = match parse_args(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Parsed {
        cfg,
        markdown,
        loadgen_spec,
        mutate_spec,
        explain,
    } = parsed;
    let explain_prefix = explain.as_deref().unwrap_or("EXPLAIN");
    // `--loadgen` / `--mutate` / `--explain` alone are complete
    // invocations; `list` still wins.
    if ids.is_empty() && (loadgen_spec.is_some() || mutate_spec.is_some() || explain.is_some()) {
        let mut ok = true;
        if let Some(spec) = &loadgen_spec {
            ok = run_loadgen(&cfg, spec, markdown, explain_prefix);
        }
        if ok {
            if let Some(spec) = &mutate_spec {
                ok = run_mutate(&cfg, spec, markdown);
            }
        }
        if ok && explain.is_some() {
            ok = run_explain(&cfg, explain_prefix);
        }
        return if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if ids.is_empty() || ids[0] == "list" {
        println!("available experiments:");
        for e in experiments::registry() {
            println!("  {:<10} {}", e.id, e.description);
        }
        println!("  {:<10} run every experiment", "all");
        println!();
        println!(
            "flags: --p N --w N --queries N --k N --partitions N --seed N --threads N \
             --par-query N --par-shared-bound --par-pool --par-epoch N --threshold-index \
             --loadgen rate=R,dur=S,mode=open|closed[,workers=N,scan=K,explain=N,trace=F] \
             --mutate trace=SEED[,ops=N,checkpoints=N,dim=D] \
             --explain[=prefix] --full --smoke --md"
        );
        return ExitCode::SUCCESS;
    }
    let to_run: Vec<experiments::Experiment> = if ids.iter().any(|i| i == "all") {
        experiments::registry()
    } else {
        let mut out = Vec::new();
        for id in &ids {
            match experiments::find(id) {
                Some(e) => out.push(e),
                None => {
                    eprintln!("unknown experiment `{id}` (try `rrq-exp list`)");
                    return ExitCode::FAILURE;
                }
            }
        }
        out
    };
    let par_note = if cfg.par_query <= 1 {
        String::new()
    } else {
        let mode = if cfg.par_epoch > 0 {
            format!("epoch bounds every {}", cfg.par_epoch)
        } else if cfg.par_shared {
            "shared bounds".to_string()
        } else {
            "deterministic".to_string()
        };
        let substrate = if cfg.par_pool {
            ", persistent pool"
        } else {
            ", scoped threads"
        };
        format!(" ({mode}{substrate})")
    };
    let threshold_note = if cfg.threshold_index {
        ", threshold index"
    } else {
        ""
    };
    println!(
        "configuration: |P| = {}, |W| = {}, queries = {}, k = {}, n = {}, seed = {}, threads = {}, par-query = {}{}{}",
        cfg.p_card,
        cfg.w_card,
        cfg.queries,
        cfg.k,
        cfg.partitions,
        cfg.seed,
        cfg.threads,
        cfg.par_query,
        par_note,
        threshold_note
    );
    println!();
    for e in to_run {
        eprintln!("running {} — {}", e.id, e.description);
        let start = std::time::Instant::now();
        collect::begin(e.id, &cfg);
        let tables = (e.run)(&cfg);
        for t in tables {
            if markdown {
                println!("{}", t.to_markdown());
            } else {
                println!("{t}");
            }
        }
        if let Some(metrics) = collect::finish() {
            let path = format!("BENCH_{}.json", e.id);
            let json = metrics.to_json().to_pretty();
            if let Err(err) = rrq_obs::json::parse(&json) {
                eprintln!("error: exporter emitted invalid JSON for {path}: {err:?}");
                return ExitCode::FAILURE;
            }
            match std::fs::write(&path, &json) {
                Ok(()) => eprintln!(
                    "wrote {path} ({} timed runs, {} bytes)",
                    metrics.runs.len(),
                    json.len()
                ),
                Err(err) => eprintln!("warning: could not write {path}: {err}"),
            }
        }
        eprintln!("{} finished in {:.1}s", e.id, start.elapsed().as_secs_f64());
        eprintln!();
    }
    if let Some(spec) = &loadgen_spec {
        if !run_loadgen(&cfg, spec, markdown, explain_prefix) {
            return ExitCode::FAILURE;
        }
    }
    if let Some(spec) = &mutate_spec {
        if !run_mutate(&cfg, spec, markdown) {
            return ExitCode::FAILURE;
        }
    }
    if explain.is_some() && !run_explain(&cfg, explain_prefix) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
