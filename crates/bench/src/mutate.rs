//! Seeded mutate-and-replay runner: the bench-facing twin of
//! `crates/core/tests/update_equivalence.rs`.
//!
//! A SplitMix64 trace of point/weight inserts and deletes is replayed
//! against a [`DynamicEngine`] (tombstones, append tails, incremental
//! threshold repair, epoch publishes, compaction folds). At every
//! checkpoint the trace pauses, publishes, and runs the configured RTK
//! and RKR queries twice: once through the mutable engine's snapshot
//! view and once through an index **rebuilt from scratch** over the
//! same live rows. The external-id-mapped results must be identical —
//! a mismatch is a hard error, not a report row.
//!
//! The runner deliberately reads no clock: everything it exports —
//! the merged [`QueryStats`] of the mutable path (including the
//! update-path counters `tombstones_skipped`, `appended_scanned`,
//! `threshold_rows_repaired` and `epoch_published`), the rebuild
//! path's counters, and the `trace_*` op census — is a pure function
//! of (seed, configuration), so `rrq-benchdiff` gates the exported
//! `BENCH_update.json` at its exact default thresholds.

use crate::table::Table;
use crate::ExpConfig;
use rrq_core::{DynamicEngine, EngineState, Gir, GirConfig, ThresholdIndex};
use rrq_data::synthetic;
use rrq_obs::{AlgoMetrics, ExperimentMetrics};
use rrq_types::{PointSet, QueryStats, RkrQuery, RtkQuery, WeightSet};
use std::sync::Arc;

/// Point-axis range of the generated data (matches the experiment
/// harness's synthetic scale).
const RANGE: f64 = 10_000.0;

/// Configuration of a mutate-and-replay run, parsed from the
/// `--mutate` specification string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutateConfig {
    /// Seed of the SplitMix64 op stream (the `trace=` key).
    pub trace_seed: u64,
    /// Mutation operations replayed in total, spread evenly across the
    /// checkpoints.
    pub ops: usize,
    /// Publish-and-verify checkpoints.
    pub checkpoints: usize,
    /// Data dimensionality.
    pub dim: usize,
}

impl Default for MutateConfig {
    fn default() -> Self {
        Self {
            trace_seed: 42,
            ops: 240,
            checkpoints: 6,
            dim: 4,
        }
    }
}

impl MutateConfig {
    /// Parses a `key=value,key=value` specification, e.g.
    /// `trace=42,ops=240,checkpoints=6,dim=4`. Unknown keys are
    /// errors; every key is optional.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut cfg = Self::default();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("mutate spec `{part}` is not key=value"))?;
            let bad = |e: &dyn std::fmt::Display| format!("bad mutate {key}={value}: {e}");
            match key {
                "trace" => cfg.trace_seed = value.parse::<u64>().map_err(|e| bad(&e))?,
                "ops" => cfg.ops = value.parse::<usize>().map_err(|e| bad(&e))?.max(1),
                "checkpoints" => {
                    cfg.checkpoints = value.parse::<usize>().map_err(|e| bad(&e))?.max(1)
                }
                "dim" => {
                    cfg.dim = value.parse::<usize>().map_err(|e| bad(&e))?;
                    if !(2..=16).contains(&cfg.dim) {
                        return Err(format!("mutate dim must be in 2..=16, got {value}"));
                    }
                }
                other => return Err(format!("unknown mutate key `{other}`")),
            }
        }
        Ok(cfg)
    }
}

/// Everything one `--mutate` invocation produced.
pub struct MutateReport {
    /// Structured metrics (mutable path, rebuild path, trace census),
    /// exported to `BENCH_update.json`.
    pub metrics: ExperimentMetrics,
    /// Human-readable checkpoint table.
    pub table: Table,
}

/// SplitMix64 — the trace generator shared (by construction, not by
/// code) with the core equivalence suite.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Deterministic census of the applied trace.
#[derive(Default)]
struct TraceCensus {
    point_inserts: u64,
    point_deletes: u64,
    weight_inserts: u64,
    weight_deletes: u64,
    publishes: u64,
    compactions: u64,
}

/// The published live rows in engine order — the rebuild oracle's
/// input and the external-id map for its results.
#[derive(Default)]
struct Shadow {
    points: Vec<(u64, Vec<f64>)>,
    weights: Vec<(u64, Vec<f64>)>,
}

enum PendingOp {
    InsP(u64, Vec<f64>),
    DelP(u64),
    InsW(u64, Vec<f64>),
    DelW(u64),
}

impl Shadow {
    fn apply(&mut self, pending: &mut Vec<PendingOp>) {
        for op in pending.drain(..) {
            match op {
                PendingOp::InsP(e, row) => self.points.push((e, row)),
                PendingOp::DelP(e) => self.points.retain(|(x, _)| *x != e),
                PendingOp::InsW(e, row) => self.weights.push((e, row)),
                PendingOp::DelW(e) => self.weights.retain(|(x, _)| *x != e),
            }
        }
    }

    fn rebuild_sets(&self, dim: usize) -> Result<(PointSet, WeightSet), String> {
        let mut p = PointSet::new(dim, RANGE).map_err(|e| format!("rebuild points: {e:?}"))?;
        for (_, row) in &self.points {
            p.push_slice(row)
                .map_err(|e| format!("rebuild points: {e:?}"))?;
        }
        let mut w = WeightSet::new(dim).map_err(|e| format!("rebuild weights: {e:?}"))?;
        for (_, row) in &self.weights {
            w.push_slice(row)
                .map_err(|e| format!("rebuild weights: {e:?}"))?;
        }
        Ok((p, w))
    }
}

fn random_point(rng: &mut SplitMix64, dim: usize) -> Vec<f64> {
    (0..dim).map(|_| rng.f64() * RANGE * 0.999).collect()
}

fn random_weight(rng: &mut SplitMix64, dim: usize) -> Vec<f64> {
    let mut row: Vec<f64> = (0..dim).map(|_| rng.f64() + 1e-6).collect();
    let sum: f64 = row.iter().sum();
    for v in &mut row {
        *v /= sum;
    }
    row
}

/// Runs one checkpoint query pair on a view, returning the ext-mapped
/// results and booking into `stats`.
fn run_queries(
    gir: &Gir<'_, impl rrq_core::grid::GridTable + Sync>,
    q: &[f64],
    k: usize,
    ext_of: &dyn Fn(usize) -> u64,
    stats: &mut QueryStats,
) -> (Vec<u64>, Vec<(u64, usize)>) {
    let rtk = gir.reverse_top_k(q, k, stats);
    let rkr = gir.reverse_k_ranks(q, k, stats);
    (
        rtk.weights().iter().map(|wid| ext_of(wid.0)).collect(),
        rkr.entries()
            .iter()
            .map(|e| (ext_of(e.weight.0), e.rank))
            .collect(),
    )
}

/// Replays the trace: mutation phase per checkpoint, publish, verify
/// mutable-vs-rebuild, repeat. Returns metrics + table, or the first
/// divergence as an error.
pub fn run(cfg: &ExpConfig, mc: &MutateConfig) -> Result<MutateReport, String> {
    let dim = mc.dim;
    let p0 = synthetic::uniform_points(dim, cfg.p_card, RANGE, cfg.seed)
        .map_err(|e| format!("generation: {e:?}"))?;
    let w0 = synthetic::uniform_weights(dim, cfg.w_card, cfg.seed + 1)
        .map_err(|e| format!("generation: {e:?}"))?;
    let gcfg = GirConfig {
        partitions: cfg.partitions,
        ..GirConfig::default()
    };
    let mut engine =
        DynamicEngine::new(p0.clone(), w0.clone(), gcfg).map_err(|e| format!("engine: {e:?}"))?;
    // The threshold buckets exercise incremental column repair at every
    // publish; sorted strictly ascending as the index requires.
    let mut buckets = vec![1usize, cfg.k.max(2), cfg.k.max(2) * 8];
    buckets.dedup();
    engine
        .enable_threshold_index(&buckets)
        .map_err(|e| format!("threshold enable: {e:?}"))?;

    let mut shadow = Shadow::default();
    for (i, (_, row)) in p0.iter().enumerate() {
        shadow.points.push((i as u64, row.to_vec()));
    }
    for (i, (_, row)) in w0.iter().enumerate() {
        shadow.weights.push((i as u64, row.to_vec()));
    }
    let mut stageable_p: Vec<u64> = shadow.points.iter().map(|(e, _)| *e).collect();
    let mut stageable_w: Vec<u64> = shadow.weights.iter().map(|(e, _)| *e).collect();
    let mut pending: Vec<PendingOp> = Vec::new();

    let mut rng = SplitMix64(mc.trace_seed ^ 0x5eed_5eed);
    let mut census = TraceCensus::default();
    let mut writer_stats = QueryStats::default();
    let mut mut_stats = QueryStats::default();
    let mut rebuild_stats = QueryStats::default();

    let mut table = Table::new(
        "Update trace: mutable engine vs rebuild",
        &[
            "checkpoint",
            "epoch",
            "live |P|",
            "live |W|",
            "tombstones",
            "appended",
            "rtk",
            "rkr",
            "match",
        ],
    );

    let ops_per = mc.ops.div_ceil(mc.checkpoints);
    for checkpoint in 0..mc.checkpoints {
        for _ in 0..ops_per {
            match rng.below(100) {
                0..=29 => {
                    let row = if rng.below(3) == 0 && !shadow.points.is_empty() {
                        let j = rng.below(shadow.points.len() as u64) as usize;
                        shadow.points[j].1.clone()
                    } else {
                        random_point(&mut rng, dim)
                    };
                    let ext = engine
                        .insert_point(&row)
                        .map_err(|e| format!("insert_point: {e:?}"))?;
                    stageable_p.push(ext);
                    pending.push(PendingOp::InsP(ext, row));
                    census.point_inserts += 1;
                }
                30..=49 if stageable_p.len() > 8 => {
                    let j = rng.below(stageable_p.len() as u64) as usize;
                    let ext = stageable_p.swap_remove(j);
                    engine
                        .delete_point(ext)
                        .map_err(|e| format!("delete_point: {e:?}"))?;
                    pending.push(PendingOp::DelP(ext));
                    census.point_deletes += 1;
                }
                50..=74 => {
                    let row = random_weight(&mut rng, dim);
                    let ext = engine
                        .insert_weight(&row)
                        .map_err(|e| format!("insert_weight: {e:?}"))?;
                    stageable_w.push(ext);
                    pending.push(PendingOp::InsW(ext, row));
                    census.weight_inserts += 1;
                }
                75..=89 if stageable_w.len() > 4 => {
                    let j = rng.below(stageable_w.len() as u64) as usize;
                    let ext = stageable_w.swap_remove(j);
                    engine
                        .delete_weight(ext)
                        .map_err(|e| format!("delete_weight: {e:?}"))?;
                    pending.push(PendingOp::DelW(ext));
                    census.weight_deletes += 1;
                }
                _ => {}
            }
        }
        // One deterministic fold mid-trace: later checkpoints re-grow
        // the delta, so the gate sees both the folded and the
        // tombstone/append-tail regimes.
        if checkpoint == mc.checkpoints / 2 {
            engine.request_compaction();
        }
        engine
            .publish(&mut writer_stats)
            .map_err(|e| format!("publish: {e:?}"))?;
        census.publishes += 1;
        shadow.apply(&mut pending);

        let state: Arc<EngineState> = engine.snapshot();
        if state.tombstoned_counts() == (0, 0) && state.appended_counts() == (0, 0) {
            census.compactions += 1;
        }
        let (tp, tw) = state.tombstoned_counts();
        let (ap, aw) = state.appended_counts();

        // Checkpoint query: a live point two thirds of the time, a
        // fresh random location otherwise.
        let q = if rng.below(3) != 0 && !shadow.points.is_empty() {
            let j = rng.below(shadow.points.len() as u64) as usize;
            shadow.points[j].1.clone()
        } else {
            random_point(&mut rng, dim)
        };

        let view = state.view();
        let (mut_rtk, mut_rkr) = run_queries(
            &view,
            &q,
            cfg.k,
            &|wid| state.weight_external(wid),
            &mut mut_stats,
        );

        let (op, ow) = shadow.rebuild_sets(dim)?;
        let mut oracle = Gir::new(&op, &ow, gcfg);
        let ti = ThresholdIndex::build(&op, &ow, &buckets)
            .map_err(|e| format!("rebuild threshold: {e:?}"))?;
        oracle
            .attach_threshold_index(ti)
            .map_err(|e| format!("rebuild attach: {e:?}"))?;
        let w_ext: Vec<u64> = shadow.weights.iter().map(|(e, _)| *e).collect();
        let (reb_rtk, reb_rkr) =
            run_queries(&oracle, &q, cfg.k, &|wid| w_ext[wid], &mut rebuild_stats);

        if mut_rtk != reb_rtk || mut_rkr != reb_rkr {
            return Err(format!(
                "checkpoint {checkpoint}: mutable engine diverged from rebuild \
                 (rtk {mut_rtk:?} vs {reb_rtk:?}; rkr {mut_rkr:?} vs {reb_rkr:?})"
            ));
        }

        table.push_row(vec![
            checkpoint.to_string(),
            state.epoch().to_string(),
            state.live_point_count().to_string(),
            state.live_weight_count().to_string(),
            format!("{tp}+{tw}"),
            format!("{ap}+{aw}"),
            mut_rtk.len().to_string(),
            mut_rkr.len().to_string(),
            "exact".to_string(),
        ]);
    }

    let mut metrics = ExperimentMetrics::new("update");
    metrics.config_pair("p_card", cfg.p_card);
    metrics.config_pair("w_card", cfg.w_card);
    metrics.config_pair("k", cfg.k);
    metrics.config_pair("partitions", cfg.partitions);
    metrics.config_pair("seed", cfg.seed);
    metrics.config_pair("trace", mc.trace_seed);
    metrics.config_pair("ops", mc.ops);
    metrics.config_pair("checkpoints", mc.checkpoints);
    metrics.config_pair("dim", mc.dim);

    let trace_counters = vec![
        ("trace_point_inserts".to_string(), census.point_inserts),
        ("trace_point_deletes".to_string(), census.point_deletes),
        ("trace_weight_inserts".to_string(), census.weight_inserts),
        ("trace_weight_deletes".to_string(), census.weight_deletes),
        ("trace_publishes".to_string(), census.publishes),
        ("trace_folds".to_string(), census.compactions),
        ("final_epoch".to_string(), engine.epoch()),
        (
            "final_live_points".to_string(),
            engine.snapshot().live_point_count() as u64,
        ),
        (
            "final_live_weights".to_string(),
            engine.snapshot().live_weight_count() as u64,
        ),
    ];

    for (label, stats, extra) in [
        ("mutable", &mut_stats, Vec::new()),
        ("rebuild", &rebuild_stats, Vec::new()),
        ("writer", &writer_stats, trace_counters),
    ] {
        let mut counters: Vec<(String, u64)> = stats
            .counters()
            .iter()
            .map(|&(name, v)| (name.to_string(), v))
            .collect();
        counters.extend(extra);
        metrics.push(AlgoMetrics {
            algorithm: "GIR".to_string(),
            query_kind: "rtk+rkr".to_string(),
            label: label.to_string(),
            queries: 2 * mc.checkpoints as u64,
            mean_ms: 0.0,
            counters,
            latency: None,
            phases: Vec::new(),
        });
    }

    Ok(MutateReport { metrics, table })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_round_trips_and_rejects_junk() {
        let mc = MutateConfig::parse("trace=7,ops=50,checkpoints=3,dim=3").expect("valid spec");
        assert_eq!(mc.trace_seed, 7);
        assert_eq!(mc.ops, 50);
        assert_eq!(mc.checkpoints, 3);
        assert_eq!(mc.dim, 3);
        assert_eq!(MutateConfig::parse("").unwrap(), MutateConfig::default());

        assert!(MutateConfig::parse("trace=abc").is_err());
        assert!(MutateConfig::parse("dim=1").is_err());
        assert!(MutateConfig::parse("bogus=1").is_err());
        assert!(MutateConfig::parse("trace").is_err(), "not key=value");
    }

    #[test]
    fn smoke_trace_verifies_and_exports_update_counters() {
        let cfg = ExpConfig::smoke();
        let mc = MutateConfig {
            trace_seed: 42,
            ops: 60,
            checkpoints: 3,
            dim: 4,
        };
        let report = run(&cfg, &mc).expect("trace verifies");
        assert_eq!(report.metrics.runs.len(), 3);
        let writer = report
            .metrics
            .runs
            .iter()
            .find(|r| r.label == "writer")
            .expect("writer entry");
        let get = |name: &str| {
            writer
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing counter {name}"))
        };
        assert_eq!(get("epoch_published"), mc.checkpoints as u64);
        assert_eq!(get("trace_publishes"), mc.checkpoints as u64);
        assert!(get("threshold_rows_repaired") > 0, "repair never ran");
        let mutable = report
            .metrics
            .runs
            .iter()
            .find(|r| r.label == "mutable")
            .expect("mutable entry");
        let tomb = mutable
            .counters
            .iter()
            .find(|(n, _)| n == "tombstones_skipped")
            .expect("tombstones counter")
            .1;
        let appended = mutable
            .counters
            .iter()
            .find(|(n, _)| n == "appended_scanned")
            .expect("appended counter")
            .1;
        assert!(
            tomb > 0 || appended > 0,
            "trace never exercised the delta path"
        );
    }

    #[test]
    fn same_seed_runs_are_counter_exact() {
        let cfg = ExpConfig::smoke();
        let mc = MutateConfig {
            ops: 40,
            checkpoints: 2,
            ..MutateConfig::default()
        };
        let a = run(&cfg, &mc).expect("first run");
        let b = run(&cfg, &mc).expect("second run");
        for (ra, rb) in a.metrics.runs.iter().zip(&b.metrics.runs) {
            assert_eq!(ra.label, rb.label);
            assert_eq!(ra.counters, rb.counters, "{} drifted", ra.label);
        }
    }
}
