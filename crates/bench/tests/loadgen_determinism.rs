//! Same-seed load-generator runs must be benchdiff-exact on every
//! deterministic counter: the stream is a pure function of seed and
//! configuration, so only `sched_*` metrics and latency may differ
//! between runs. This is the in-process twin of the `check.sh` smoke
//! step that diffs two CLI runs.

use rrq_bench::diff::{diff_experiments, MetricClass, Status, Thresholds};
use rrq_bench::loadgen::{self, LoadMode, LoadgenConfig};
use rrq_bench::ExpConfig;

fn small_run(mode: LoadMode) -> rrq_obs::ExperimentMetrics {
    let cfg = ExpConfig::smoke();
    let lg = LoadgenConfig {
        rate: 300.0,
        dur_s: 0.1,
        mode,
        workers: 2,
        ..LoadgenConfig::default()
    };
    loadgen::run(&cfg, &lg).expect("loadgen run").metrics
}

#[test]
fn same_seed_closed_runs_are_exact_on_deterministic_counters() {
    let a = small_run(LoadMode::Closed);
    let b = small_run(LoadMode::Closed);

    // Direct comparison: every non-sched counter identical.
    assert_eq!(a.config, b.config);
    assert_eq!(a.runs.len(), b.runs.len());
    for (ra, rb) in a.runs.iter().zip(&b.runs) {
        assert_eq!(ra.queries, rb.queries);
        for (name, va) in &ra.counters {
            if name.starts_with("sched_") {
                continue;
            }
            assert_eq!(
                Some(*va),
                rb.counter(name),
                "deterministic counter {name} must reproduce exactly"
            );
        }
    }

    // The gate the baselines use: exact counters (0% threshold), with
    // only the machine-dependent classes relaxed.
    let th = Thresholds {
        latency_pct: f64::INFINITY,
        mem_pct: f64::INFINITY,
        ..Thresholds::default()
    };
    let diff = diff_experiments(&a, &b, &th);
    assert!(
        !diff.has_regressions(true),
        "same-seed closed runs regressed:\n{diff:#?}"
    );
    // sched_ metrics went through as informational, not gated.
    for run in &diff.runs {
        for m in &run.metrics {
            if m.name.starts_with("sched_") {
                assert_eq!(m.class, MetricClass::Timing);
                assert_eq!(m.status, Status::Info);
            }
        }
    }
}

#[test]
fn open_and_closed_modes_agree_on_the_workload() {
    // Different disciplines, same stream: the algorithmic work is
    // identical, so the deterministic counters agree across modes.
    let open = small_run(LoadMode::Open);
    let closed = small_run(LoadMode::Closed);
    let ro = &open.runs[0];
    let rc = &closed.runs[0];
    assert_eq!(ro.queries, rc.queries);
    assert_eq!(ro.counter("multiplications"), rc.counter("multiplications"));
    assert_eq!(ro.counter("results_total"), rc.counter("results_total"));
    assert_eq!(
        ro.counter("offered_qps_milli"),
        rc.counter("offered_qps_milli")
    );
}

#[test]
fn loadgen_document_round_trips_with_p999() {
    let m = small_run(LoadMode::Closed);
    let text = m.to_json().to_pretty();
    let back = rrq_obs::ExperimentMetrics::from_json_text(&text).expect("round trip");
    let lat = back.runs[0].latency.expect("latency summary present");
    assert!(lat.p50_ns <= lat.p99_ns);
    assert!(lat.p99_ns <= lat.p999_ns);
    assert!(lat.p999_ns <= lat.max_ns);
    assert_eq!(lat.count, m.runs[0].queries);
}
