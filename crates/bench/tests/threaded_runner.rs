//! Acceptance pin for the concurrent telemetry core: a 4-thread run of
//! the traced query paths through the runner must produce merged metrics
//! identical to the sequential run — machine-independent counters,
//! latency sample counts, and the phase tree's call structure all match
//! exactly; only wall times (inherently timing-dependent) may differ.

use rrq_bench::runner::{time_rkr_threads, time_rtk_threads};
use rrq_bench::{collect, ExpConfig};
use rrq_core::Gir;
use rrq_data::synthetic;
use std::collections::BTreeMap;

fn phase_calls(run: &rrq_bench::AlgoRun) -> BTreeMap<String, u64> {
    run.phases
        .iter()
        .map(|p| (p.path.clone(), p.calls))
        .collect()
}

#[test]
fn four_thread_run_matches_sequential() {
    let cfg = ExpConfig {
        p_card: 1200,
        w_card: 500,
        queries: 16,
        k: 10,
        ..ExpConfig::smoke()
    };
    let p = synthetic::uniform_points(4, cfg.p_card, 10_000.0, cfg.seed).unwrap();
    let w = synthetic::uniform_weights(4, cfg.w_card, cfg.seed + 1).unwrap();
    let gir = Gir::with_defaults(&p, &w);
    let queries = cfg.sample_queries(&p);

    // A collect scope makes the runner execute the traced second pass.
    collect::begin("threaded-test", &cfg);
    let rtk_seq = time_rtk_threads(&gir, &queries, cfg.k, 1);
    let rtk_par = time_rtk_threads(&gir, &queries, cfg.k, 4);
    let rkr_seq = time_rkr_threads(&gir, &queries, cfg.k, 1);
    let rkr_par = time_rkr_threads(&gir, &queries, cfg.k, 4);
    let metrics = collect::finish().expect("scope was open");

    for (seq, par, kind) in [(&rtk_seq, &rtk_par, "rtk"), (&rkr_seq, &rkr_par, "rkr")] {
        // Machine-independent counters merge to exactly the sequential
        // values (field-wise addition commutes over the stripes).
        assert_eq!(seq.stats, par.stats, "{kind}: counters must match");
        assert_eq!(seq.queries, par.queries);
        assert_eq!(
            seq.latency.count(),
            par.latency.count(),
            "{kind}: every query timed exactly once"
        );
        // The merged phase tree has the same paths with the same call
        // counts as the sequential MetricsRecorder run.
        let (seq_calls, par_calls) = (phase_calls(seq), phase_calls(par));
        assert!(!seq_calls.is_empty(), "{kind}: traced pass must run");
        assert_eq!(seq_calls, par_calls, "{kind}: phase structure must match");
    }

    // All four runs landed in the experiment metrics, counters intact.
    assert_eq!(metrics.runs.len(), 4);
    for (run, algo_run) in metrics
        .runs
        .iter()
        .zip([&rtk_seq, &rtk_par, &rkr_seq, &rkr_par])
    {
        for (name, value) in algo_run.stats.counters() {
            assert_eq!(run.counter(name), Some(value), "{name}");
        }
    }
}

#[test]
fn thread_count_does_not_change_results_without_a_scope() {
    // Outside a collect scope there is no traced pass; the plain pass
    // must still merge stats exactly.
    let cfg = ExpConfig::smoke();
    let p = synthetic::uniform_points(3, 800, 10_000.0, 7).unwrap();
    let w = synthetic::uniform_weights(3, 300, 8).unwrap();
    let gir = Gir::with_defaults(&p, &w);
    let queries = cfg.sample_queries(&p);

    let seq = time_rtk_threads(&gir, &queries, cfg.k, 1);
    let par = time_rtk_threads(&gir, &queries, cfg.k, 3);
    assert_eq!(seq.stats, par.stats);
    assert!(seq.phases.is_empty() && par.phases.is_empty());
}
