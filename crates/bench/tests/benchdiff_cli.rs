//! End-to-end tests of the `rrq-benchdiff` binary: a same-seed run
//! diffed against itself must be clean (exit 0), an injected counter
//! regression must fail the gate (exit 1), and usage/IO errors exit 2.

use rrq_obs::{AlgoMetrics, ExperimentMetrics, LatencySummary};
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_rrq-benchdiff")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rrq-benchdiff-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample(mults: u64) -> ExperimentMetrics {
    let mut exp = ExperimentMetrics::new("fig11");
    exp.config_pair("p_card", 600);
    exp.config_pair("seed", 42);
    exp.push(AlgoMetrics {
        algorithm: "GIR".into(),
        query_kind: "rtk".into(),
        label: "d=10".into(),
        queries: 5,
        mean_ms: 1.0,
        counters: vec![
            ("multiplications".into(), mults),
            ("leaf_accesses".into(), 120),
        ],
        latency: Some(LatencySummary {
            count: 5,
            mean_ns: 1_000_000.0,
            min_ns: 800_000,
            p50_ns: 1_000_000,
            p90_ns: 1_200_000,
            p99_ns: 1_300_000,
            p999_ns: 1_300_000,
            max_ns: 1_300_000,
        }),
        phases: vec![],
    });
    exp
}

fn write_doc(path: &Path, exp: &ExperimentMetrics) {
    std::fs::write(path, exp.to_json().to_pretty()).unwrap();
}

#[test]
fn self_diff_is_clean_and_exits_zero() {
    let dir = scratch_dir("self");
    let doc = dir.join("BENCH_fig11.json");
    write_doc(&doc, &sample(40_000));
    let out = Command::new(bin()).arg(&doc).arg(&doc).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("clean"), "{stdout}");
    assert!(stdout.contains("multiplications"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_counter_regression_exits_nonzero() {
    let dir = scratch_dir("regress");
    let base = dir.join("BENCH_base.json");
    let cur = dir.join("BENCH_cur.json");
    write_doc(&base, &sample(40_000));
    write_doc(&cur, &sample(80_000)); // 2× multiplications
    let md_out = dir.join("report.md");
    let out = Command::new(bin())
        .args([&base, &cur])
        .arg("--md-out")
        .arg(&md_out)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stdout.contains("+100.0%"), "{stdout}");
    let written = std::fs::read_to_string(&md_out).unwrap();
    assert_eq!(written, stdout, "--md-out mirrors the printed report");
    // Widening the counter tolerance clears the gate.
    let relaxed = Command::new(bin())
        .args([&base, &cur])
        .args(["--max-counter-pct", "150"])
        .output()
        .unwrap();
    assert_eq!(relaxed.status.code(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dir_mode_compares_every_baseline_file() {
    let base_dir = scratch_dir("dir-base");
    let cur_dir = scratch_dir("dir-cur");
    write_doc(&base_dir.join("BENCH_fig11.json"), &sample(40_000));
    write_doc(&cur_dir.join("BENCH_fig11.json"), &sample(40_000));
    let ok = Command::new(bin())
        .arg("--dir")
        .args([&base_dir, &cur_dir])
        .output()
        .unwrap();
    assert_eq!(ok.status.code(), Some(0));

    // A baseline file with no counterpart is an IO-level error (exit 2).
    write_doc(&base_dir.join("BENCH_fig2.json"), &sample(1));
    let missing = Command::new(bin())
        .arg("--dir")
        .args([&base_dir, &cur_dir])
        .output()
        .unwrap();
    assert_eq!(missing.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&base_dir);
    let _ = std::fs::remove_dir_all(&cur_dir);
}

#[test]
fn usage_errors_exit_two() {
    for args in [
        vec![],
        vec!["only-one.json".to_string()],
        vec!["a.json".into(), "b.json".into(), "--bogus-flag".into()],
        vec![
            "a.json".into(),
            "b.json".into(),
            "--max-counter-pct".into(),
            "-3".into(),
        ],
    ] {
        let out = Command::new(bin()).args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
    // Nonexistent input file is also exit 2, not a panic.
    let out = Command::new(bin())
        .args(["/nonexistent/a.json", "/nonexistent/b.json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
