//! Baseline reverse rank query algorithms.
//!
//! The paper compares its Grid-index (GIR) algorithm against three
//! baselines, all implemented here from scratch:
//!
//! * [`Naive`] — the literal `O(|P|·|W|·d)` definition, no pruning. Used
//!   as the correctness oracle throughout the test suite.
//! * [`Sim`] — the paper's "simple scan" (§6.1): a linear scan that keeps
//!   a `Domin` buffer of points dominating the query and terminates each
//!   per-weight scan as soon as the rank bound is violated. The only
//!   difference between SIM and GIR is that SIM computes every score
//!   directly instead of filtering with Grid-index bounds.
//! * [`Bbr`] — the branch-and-bound reverse top-k algorithm of Vlachou et
//!   al. (SIGMOD '13): both `P` and `W` indexed in R\*-trees, entries of
//!   both trees pruned via MBR score bounds.
//! * [`Mpa`] — the Marked Pruning Approach of Zhang et al. (PVLDB '14)
//!   for reverse k-ranks: a d-dimensional histogram groups `W` into
//!   buckets whose bounds prune whole groups, with an R\*-tree over `P`
//!   computing rank counts.
//! * [`Rta`] — the original Reverse top-k Threshold Algorithm of Vlachou
//!   et al. (ICDE 2010): sequential weight processing with a buffered
//!   top-k threshold test (covered by the paper's related work).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbr;
mod mpa;
mod naive;
mod rta;
mod sim;

pub use bbr::{Bbr, BbrConfig};
pub use mpa::{Mpa, MpaConfig};
pub use naive::Naive;
pub use rta::Rta;
pub use sim::Sim;
