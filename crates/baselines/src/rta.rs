//! RTA — the Reverse top-k Threshold Algorithm (Vlachou et al., ICDE
//! 2010), the original RTK algorithm the paper's related work describes.
//!
//! RTA processes the weighting vectors sequentially and exploits the
//! similarity of consecutive weights: it buffers the top-k point set of
//! the last fully-evaluated weight. For the next weight `w`, if at least
//! `k` of the buffered points already score below `f_w(q)`, then `q`
//! cannot be in `w`'s top-k — the whole scan is skipped. Only on buffer
//! misses does RTA recompute a full top-k. Sorting `W` (here
//! lexicographically) keeps consecutive weights similar and the buffer
//! hit rate high.

use rrq_obs::{span, timed_leaf, NoopRecorder, Recorder};
use rrq_types::{
    dot_counted, PointId, PointSet, QueryStats, RtkQuery, RtkResult, WeightId, WeightSet,
};
use std::collections::BinaryHeap;

/// The threshold-based reverse top-k baseline.
#[derive(Debug)]
pub struct Rta<'a> {
    points: &'a PointSet,
    weights: &'a WeightSet,
    /// Weight ids in lexicographic component order (the processing order
    /// that maximises buffer reuse).
    order: Vec<WeightId>,
}

impl<'a> Rta<'a> {
    /// Binds the algorithm to a data set pair and precomputes the weight
    /// processing order.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different dimensionality.
    pub fn new(points: &'a PointSet, weights: &'a WeightSet) -> Self {
        assert_eq!(
            points.dim(),
            weights.dim(),
            "P and W must share dimensionality"
        );
        let mut order: Vec<WeightId> = weights.iter().map(|(id, _)| id).collect();
        order.sort_by(|a, b| {
            let wa = weights.weight(*a);
            let wb = weights.weight(*b);
            // rrq-lint: allow(no-unwrap-in-lib) -- loader-validated finite weights always compare
            wa.partial_cmp(wb).expect("finite weights")
        });
        Self {
            points,
            weights,
            order,
        }
    }

    /// Computes the top-k point ids of `P` under `w` with a bounded
    /// max-heap, plus the number of points scoring strictly below `fq`
    /// (capped at `k`).
    fn top_k_and_rank(
        &self,
        w: &[f64],
        fq: f64,
        k: usize,
        stats: &mut QueryStats,
    ) -> (Vec<PointId>, usize) {
        // Max-heap of (score, id) keeping the k smallest scores.
        let mut heap: BinaryHeap<(ordered::F64, usize)> = BinaryHeap::with_capacity(k + 1);
        let mut rank = 0usize;
        for (id, p) in self.points.iter() {
            stats.points_visited += 1;
            let s = dot_counted(w, p, stats);
            if s < fq && rank < k {
                rank += 1;
            }
            if heap.len() < k {
                heap.push((ordered::F64(s), id.0));
            } else if let Some(&(top, _)) = heap.peek() {
                if ordered::F64(s) < top {
                    heap.pop();
                    heap.push((ordered::F64(s), id.0));
                }
            }
        }
        let buffer = heap.into_iter().map(|(_, id)| PointId(id)).collect();
        (buffer, rank)
    }

    /// Shared RTK body; the untraced trait method instantiates it with
    /// [`NoopRecorder`]. The `filter` leaf times the buffer threshold
    /// test; the `refine` leaf times the full top-k re-evaluations on
    /// buffer misses.
    fn rtk_impl<R: Recorder + ?Sized>(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &R,
    ) -> RtkResult {
        assert_eq!(q.len(), self.points.dim(), "query dimensionality");
        let _query = span(rec, "rtk");
        if k == 0 {
            return RtkResult::default();
        }
        let _scan = span(rec, "scan");
        let mut out = Vec::new();
        let mut buffer: Vec<PointId> = Vec::new();
        for &wid in &self.order {
            stats.weights_visited += 1;
            let w = self.weights.weight(wid);
            let fq = dot_counted(w, q, stats);
            // Threshold test against the buffered top-k of the previous
            // fully-evaluated weight: k buffered points below fq prove
            // rank(w, q) >= k.
            if buffer.len() >= k {
                let below = timed_leaf(rec, "filter", || {
                    let mut below = 0usize;
                    for &pid in &buffer {
                        let s = dot_counted(w, self.points.point(pid), stats);
                        if s < fq {
                            below += 1;
                            if below >= k {
                                break;
                            }
                        }
                    }
                    below
                });
                if below >= k {
                    stats.filtered_case1 += 1; // weight discarded via buffer
                    continue;
                }
            }
            // Buffer miss: full evaluation, refreshing the buffer.
            stats.refined += 1;
            let (top, rank) = timed_leaf(rec, "refine", || self.top_k_and_rank(w, fq, k, stats));
            buffer = top;
            if rank < k {
                out.push(wid);
            }
        }
        RtkResult::from_weights(out)
    }
}

/// Minimal total-order wrapper for finite scores.
mod ordered {
    #[derive(Clone, Copy, PartialEq)]
    pub struct F64(pub f64);
    impl Eq for F64 {}
    #[allow(clippy::non_canonical_partial_ord_impl)]
    impl PartialOrd for F64 {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            self.0.partial_cmp(&other.0)
        }
    }
    impl Ord for F64 {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // rrq-lint: allow(no-unwrap-in-lib) -- scores of finite weights and points always compare
            self.partial_cmp(other).expect("finite scores")
        }
    }
}

impl RtkQuery for Rta<'_> {
    fn name(&self) -> &'static str {
        "RTA"
    }

    fn reverse_top_k(&self, q: &[f64], k: usize, stats: &mut QueryStats) -> RtkResult {
        self.rtk_impl(q, k, stats, &NoopRecorder)
    }

    fn reverse_top_k_traced(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &dyn Recorder,
    ) -> RtkResult {
        self.rtk_impl(q, k, stats, rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::Naive;
    use rrq_data::synthetic;

    fn workload(dim: usize, np: usize, nw: usize, seed: u64) -> (PointSet, WeightSet) {
        (
            synthetic::uniform_points(dim, np, 10_000.0, seed).unwrap(),
            synthetic::uniform_weights(dim, nw, seed + 1).unwrap(),
        )
    }

    #[test]
    fn matches_naive_on_random_workloads() {
        for seed in 0..4 {
            let (p, w) = workload(4, 250, 70, seed);
            let rta = Rta::new(&p, &w);
            let naive = Naive::new(&p, &w);
            for qid in [0usize, 100, 200] {
                let q = p.point(PointId(qid)).to_vec();
                for k in [1usize, 10, 40] {
                    let mut s1 = QueryStats::default();
                    let mut s2 = QueryStats::default();
                    assert_eq!(
                        rta.reverse_top_k(&q, k, &mut s1),
                        naive.reverse_top_k(&q, k, &mut s2),
                        "seed {seed} q {qid} k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn buffer_discards_most_weights_for_bad_query() {
        let (p, w) = workload(4, 1000, 300, 9);
        let rta = Rta::new(&p, &w);
        // Corner query: every weight's buffer test discards immediately
        // after the first full evaluation.
        let q = vec![9_900.0; 4];
        let mut stats = QueryStats::default();
        let result = rta.reverse_top_k(&q, 10, &mut stats);
        assert!(result.is_empty());
        assert!(
            stats.filtered_case1 > (w.len() as u64) / 2,
            "expected buffer discards, got {}",
            stats.filtered_case1
        );
        assert!(
            stats.refined < (w.len() as u64) / 2,
            "expected few full evaluations, got {}",
            stats.refined
        );
    }

    #[test]
    fn buffer_saves_multiplications_versus_naive() {
        let (p, w) = workload(5, 800, 200, 11);
        let rta = Rta::new(&p, &w);
        let naive = Naive::new(&p, &w);
        let q = p.point(PointId(3)).to_vec();
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        rta.reverse_top_k(&q, 10, &mut s1);
        naive.reverse_top_k(&q, 10, &mut s2);
        assert!(s1.multiplications < s2.multiplications);
    }

    #[test]
    fn k_zero_and_small_sets() {
        let (p, w) = workload(3, 20, 5, 13);
        let rta = Rta::new(&p, &w);
        let mut stats = QueryStats::default();
        let q = p.point(PointId(0)).to_vec();
        assert!(rta.reverse_top_k(&q, 0, &mut stats).is_empty());
        // k larger than |P|: every weight trivially includes q.
        let r = rta.reverse_top_k(&q, 25, &mut stats);
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn processing_order_is_deterministic_permutation() {
        let (p, w) = workload(3, 50, 40, 17);
        let rta1 = Rta::new(&p, &w);
        let rta2 = Rta::new(&p, &w);
        assert_eq!(rta1.order, rta2.order);
        let mut sorted = rta1.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..40).map(WeightId).collect::<Vec<_>>());
    }
}
