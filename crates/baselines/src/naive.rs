//! The definition-level `O(|P|·|W|·d)` algorithm — the correctness oracle.

use rrq_obs::{span, timed_leaf, NoopRecorder, Recorder};
use rrq_types::{
    dot_counted, KBestHeap, PointSet, QueryStats, RkrQuery, RkrResult, RtkQuery, RtkResult,
    WeightId, WeightSet,
};

/// Exhaustive evaluation of both reverse rank queries, straight from
/// Definitions 2 and 3. No pruning, no early termination; every score of
/// every `(p, w)` pair is computed. Use it as ground truth, not as a
/// competitor.
#[derive(Debug, Clone, Copy)]
pub struct Naive<'a> {
    points: &'a PointSet,
    weights: &'a WeightSet,
}

impl<'a> Naive<'a> {
    /// Binds the algorithm to a data set pair.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different dimensionality.
    pub fn new(points: &'a PointSet, weights: &'a WeightSet) -> Self {
        assert_eq!(
            points.dim(),
            weights.dim(),
            "P and W must share dimensionality"
        );
        Self { points, weights }
    }

    /// The exact rank of `q` under every weight, in weight-id order.
    pub fn all_ranks(&self, q: &[f64], stats: &mut QueryStats) -> Vec<usize> {
        self.weights
            .iter()
            .map(|(_, w)| self.rank(w, q, stats))
            .collect()
    }

    fn rank(&self, w: &[f64], q: &[f64], stats: &mut QueryStats) -> usize {
        stats.weights_visited += 1;
        let fq = dot_counted(w, q, stats);
        let mut rank = 0usize;
        for (_, p) in self.points.iter() {
            stats.points_visited += 1;
            if dot_counted(w, p, stats) < fq {
                rank += 1;
            }
        }
        rank
    }

    /// Shared RTK body; every per-weight scan is an instrumented `refine`
    /// leaf because NAIVE refines everything — it has no filter phase.
    fn rtk_impl<R: Recorder + ?Sized>(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &R,
    ) -> RtkResult {
        assert_eq!(q.len(), self.points.dim(), "query dimensionality");
        let _query = span(rec, "rtk");
        let _scan = span(rec, "scan");
        let mut out = Vec::new();
        for (wid, w) in self.weights.iter() {
            if timed_leaf(rec, "refine", || self.rank(w, q, stats)) < k {
                out.push(wid);
            }
        }
        RtkResult::from_weights(out)
    }

    /// Shared RKR body, see [`Self::rtk_impl`].
    fn rkr_impl<R: Recorder + ?Sized>(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &R,
    ) -> RkrResult {
        assert_eq!(q.len(), self.points.dim(), "query dimensionality");
        let _query = span(rec, "rkr");
        let _scan = span(rec, "scan");
        let mut heap = KBestHeap::new(k);
        for (wid, w) in self.weights.iter() {
            let rank = timed_leaf(rec, "refine", || self.rank(w, q, stats));
            timed_leaf(rec, "heap", || heap.offer(rank, WeightId(wid.0)));
        }
        heap.into_result()
    }
}

impl RtkQuery for Naive<'_> {
    fn name(&self) -> &'static str {
        "NAIVE"
    }

    fn reverse_top_k(&self, q: &[f64], k: usize, stats: &mut QueryStats) -> RtkResult {
        self.rtk_impl(q, k, stats, &NoopRecorder)
    }

    fn reverse_top_k_traced(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &dyn Recorder,
    ) -> RtkResult {
        self.rtk_impl(q, k, stats, rec)
    }
}

impl RkrQuery for Naive<'_> {
    fn name(&self) -> &'static str {
        "NAIVE"
    }

    fn reverse_k_ranks(&self, q: &[f64], k: usize, stats: &mut QueryStats) -> RkrResult {
        self.rkr_impl(q, k, stats, &NoopRecorder)
    }

    fn reverse_k_ranks_traced(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &dyn Recorder,
    ) -> RkrResult {
        self.rkr_impl(q, k, stats, rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrq_types::PointId;

    /// The paper's Figure 1 data.
    fn paper_example() -> (PointSet, WeightSet) {
        let points =
            PointSet::from_flat(2, 1.0, &[0.6, 0.7, 0.2, 0.3, 0.1, 0.6, 0.7, 0.5, 0.8, 0.2])
                .unwrap();
        let weights = WeightSet::from_flat(2, &[0.8, 0.2, 0.3, 0.7, 0.9, 0.1]).unwrap();
        (points, weights)
    }

    #[test]
    fn rt2_matches_figure_1b() {
        let (p, w) = paper_example();
        let alg = Naive::new(&p, &w);
        let mut stats = QueryStats::default();
        // Fig. 1(b): p1 → null, p2 → {Tom, Jerry, Spike}, p3 → {Tom,
        // Spike}, p4 → null, p5 → {Jerry}.
        let expect: [&[usize]; 5] = [&[], &[0, 1, 2], &[0, 2], &[], &[1]];
        for (i, ids) in expect.iter().enumerate() {
            let q = p.point(PointId(i)).to_vec();
            let got = alg.reverse_top_k(&q, 2, &mut stats);
            let got_ids: Vec<usize> = got.weights().iter().map(|w| w.0).collect();
            assert_eq!(&got_ids[..], *ids, "RT-2 of p{}", i + 1);
        }
    }

    #[test]
    fn r1r_matches_figure_1c() {
        let (p, w) = paper_example();
        let alg = Naive::new(&p, &w);
        let mut stats = QueryStats::default();
        // Fig. 1(c) R-1Rank: p1→Tom, p2→Jerry, p3→Tom, p4→Tom, p5→Jerry.
        // (Ties: p1 is ranked 3rd by both Tom and Spike; canonical
        // tie-breaking takes the smaller weight id, Tom. Likewise p3/p4.)
        let expect = [0usize, 1, 0, 0, 1];
        for (i, wid) in expect.iter().enumerate() {
            let q = p.point(PointId(i)).to_vec();
            let got = alg.reverse_k_ranks(&q, 1, &mut stats);
            assert_eq!(got.entries().len(), 1);
            assert_eq!(got.entries()[0].weight.0, *wid, "R1-R of p{}", i + 1);
        }
    }

    #[test]
    fn all_ranks_match_figure_1c() {
        let (p, w) = paper_example();
        let alg = Naive::new(&p, &w);
        let mut stats = QueryStats::default();
        let expected: [[usize; 3]; 5] = [[2, 4, 2], [1, 0, 1], [0, 2, 0], [3, 3, 3], [4, 1, 4]];
        for (i, exp) in expected.iter().enumerate() {
            let q = p.point(PointId(i)).to_vec();
            assert_eq!(alg.all_ranks(&q, &mut stats), exp.to_vec());
        }
    }

    #[test]
    fn multiplication_count_is_exact() {
        let (p, w) = paper_example();
        let alg = Naive::new(&p, &w);
        let mut stats = QueryStats::default();
        let q = p.point(PointId(0)).to_vec();
        alg.reverse_top_k(&q, 2, &mut stats);
        // Per weight: d for f_w(q) plus |P|·d for the scan.
        let expected = (w.len() * (p.len() + 1) * p.dim()) as u64;
        assert_eq!(stats.multiplications, expected);
    }

    #[test]
    fn rkr_k_larger_than_w_returns_everything() {
        let (p, w) = paper_example();
        let alg = Naive::new(&p, &w);
        let mut stats = QueryStats::default();
        let q = p.point(PointId(0)).to_vec();
        let got = alg.reverse_k_ranks(&q, 10, &mut stats);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn rtk_k_zero_is_empty() {
        let (p, w) = paper_example();
        let alg = Naive::new(&p, &w);
        let mut stats = QueryStats::default();
        let q = p.point(PointId(1)).to_vec();
        assert!(alg.reverse_top_k(&q, 0, &mut stats).is_empty());
    }

    #[test]
    #[should_panic(expected = "share dimensionality")]
    fn rejects_mismatched_sets() {
        let p = PointSet::from_flat(2, 1.0, &[0.1, 0.2]).unwrap();
        let w = WeightSet::from_flat(3, &[0.2, 0.3, 0.5]).unwrap();
        Naive::new(&p, &w);
    }
}
