//! BBR — branch-and-bound reverse top-k (Vlachou et al., SIGMOD '13).
//!
//! Both data sets are indexed in R\*-trees: `P` as points, `W` as points
//! in preference space. For a group of weights bounded by an MBR
//! `R_w = [w_lo, w_hi]` and a point-subtree MBR `R_p = [p_lo, p_hi]` the
//! score bounds (all components non-negative) are
//!
//! ```text
//! min over w∈R_w, p∈R_p of f_w(p)  =  dot(w_lo, p_lo)
//! max over w∈R_w, p∈R_p of f_w(p)  =  dot(w_hi, p_hi)
//! ```
//!
//! so a point subtree *surely precedes* `q` for every weight of the group
//! when `dot(w_hi, p_hi) < dot(w_lo, q)`, and *cannot precede* `q` for any
//! weight when `dot(w_lo, p_lo) ≥ dot(w_hi, q)`. Counting sure and
//! possible predecessors bounds `rank(w, q)` for the whole group:
//!
//! * lower bound ≥ k  → discard the weight group wholesale;
//! * upper bound < k  → report every weight in the group wholesale;
//! * otherwise        → descend; single weights fall back to a
//!   rank count over the `P` tree with early termination at `k`.
//!
//! This reproduces the behaviour the paper analyses in §5.2: in low
//! dimensions MBR bounds are tight and whole groups are decided at once;
//! in high dimensions the bounds collapse and the algorithm degenerates
//! into per-weight tree scans that are *more* expensive than SIM.

use rrq_obs::{span, timed_leaf, NoopRecorder, Recorder};
use rrq_rtree::{Mbr, RTree, RTreeConfig};
use rrq_types::{dot, PointSet, QueryStats, RtkQuery, RtkResult, WeightId, WeightSet};

/// Configuration for the two R\*-trees of BBR.
#[derive(Debug, Clone, Copy)]
pub struct BbrConfig {
    /// Node capacity of the tree over `P`.
    pub point_tree: RTreeConfig,
    /// Node capacity of the tree over `W`.
    pub weight_tree: RTreeConfig,
    /// Use bulk loading (default) instead of one-by-one insertion.
    pub bulk_load: bool,
}

impl Default for BbrConfig {
    fn default() -> Self {
        Self {
            point_tree: RTreeConfig::default(),
            weight_tree: RTreeConfig::default(),
            bulk_load: true,
        }
    }
}

/// The branch-and-bound reverse top-k baseline.
#[derive(Debug)]
pub struct Bbr<'a> {
    points: &'a PointSet,
    weights: &'a WeightSet,
    p_tree: RTree,
    w_tree: RTree,
    /// Weight groups: the leaf nodes of the weight tree, materialised as
    /// (MBR, member ids) pairs for group-wise pruning.
    w_groups: Vec<(Mbr, Vec<WeightId>)>,
}

impl<'a> Bbr<'a> {
    /// Builds both indexes.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different dimensionality.
    pub fn new(points: &'a PointSet, weights: &'a WeightSet, config: BbrConfig) -> Self {
        assert_eq!(
            points.dim(),
            weights.dim(),
            "P and W must share dimensionality"
        );
        let build = |ps: &PointSet, cfg: RTreeConfig| {
            if config.bulk_load {
                RTree::bulk_load(ps, cfg)
            } else {
                RTree::build(ps, cfg)
            }
        };
        let p_tree = build(points, config.point_tree);
        // Weights live in [0, 1]^d; re-house them as a PointSet so the
        // generic tree builder applies. Range just above 1 admits exact
        // 1.0 components.
        let w_as_points = weights_as_points(weights);
        let w_tree = build(&w_as_points, config.weight_tree);
        let w_groups = weight_groups(&w_tree);
        Self {
            points,
            weights,
            p_tree,
            w_tree,
            w_groups,
        }
    }

    /// Access to the tree over `P` (used by the experiment harness for
    /// leaf-access accounting).
    pub fn point_tree(&self) -> &RTree {
        &self.p_tree
    }

    /// Access to the tree over `W`.
    pub fn weight_tree(&self) -> &RTree {
        &self.w_tree
    }

    /// Bounds the number of predecessors of `q` over the whole weight
    /// group `rw`: returns `(sure, possible)` counts, where `sure` counts
    /// points preceding `q` under *every* `w ∈ rw` and `possible` counts
    /// points preceding `q` under *some* `w ∈ rw`. Counting stops early
    /// once `sure >= k` (the group is then surely discardable).
    fn group_rank_bounds(
        &self,
        rw: &Mbr,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
    ) -> (usize, usize) {
        let fq_lo = dot(rw.lo(), q);
        let fq_hi = dot(rw.hi(), q);
        stats.multiplications += 2 * q.len() as u64;
        let mut sure = 0usize;
        let mut possible = 0usize;
        group_bounds_rec(
            &self.p_tree,
            rw,
            fq_lo,
            fq_hi,
            k,
            stats,
            &mut sure,
            &mut possible,
        );
        (sure, possible)
    }

    /// Shared RTK body; the untraced trait method instantiates it with
    /// [`NoopRecorder`]. The `filter` leaf times the group-wise MBR
    /// bounds; the `refine` leaf times the per-weight thresholded tree
    /// rank counts for undecided groups.
    fn rtk_impl<R: Recorder + ?Sized>(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &R,
    ) -> RtkResult {
        assert_eq!(q.len(), self.points.dim(), "query dimensionality");
        let _query = span(rec, "rtk");
        if k == 0 {
            return RtkResult::default();
        }
        let _scan = span(rec, "scan");
        let mut out: Vec<WeightId> = Vec::new();
        for (rw, members) in &self.w_groups {
            let (sure, possible) =
                timed_leaf(rec, "filter", || self.group_rank_bounds(rw, q, k, stats));
            if sure >= k {
                // Every weight in the group ranks q at k or worse.
                stats.filtered_case1 += members.len() as u64;
                continue;
            }
            if possible < k {
                // Every weight in the group ranks q within its top-k.
                stats.filtered_case2 += members.len() as u64;
                out.extend_from_slice(members);
                continue;
            }
            // Refine each weight with a thresholded tree rank count.
            for &wid in members {
                stats.weights_visited += 1;
                stats.refined += 1;
                let w = self.weights.weight(wid);
                let fq = dot(w, q);
                stats.multiplications += q.len() as u64;
                let rank = {
                    let _refine = span(rec, "refine");
                    self.p_tree.count_preceding_traced(w, fq, k, stats, rec)
                };
                if rank < k {
                    out.push(wid);
                }
            }
        }
        RtkResult::from_weights(out)
    }
}

/// Recursive helper walking the point tree. Separated from the impl so the
/// tree can be borrowed without re-borrowing `self`.
#[allow(clippy::too_many_arguments)]
fn group_bounds_rec(
    tree: &RTree,
    rw: &Mbr,
    fq_lo: f64,
    fq_hi: f64,
    k: usize,
    stats: &mut QueryStats,
    sure: &mut usize,
    possible: &mut usize,
) {
    // Walk the tree manually via its leaf/count API: we reuse
    // `for_each_entry`-style traversal exposed through count_preceding?
    // The tree intentionally exposes only score-based traversal; for the
    // two-sided bound we use its generic visitor below.
    tree.visit(&mut |mbr: &Mbr, count: usize, is_point: bool| {
        if *sure >= k {
            stats.early_terminations += 1;
            return rrq_rtree::Visit::Stop;
        }
        stats.nodes_visited += u64::from(!is_point);
        stats.leaf_accesses += u64::from(is_point);
        // Surely precedes for every w: max_w max_p f_w(p) < min_w f_w(q).
        stats.multiplications += 2 * mbr.dim() as u64;
        let upper = dot(rw.hi(), mbr.hi());
        if upper < fq_lo {
            *sure += count;
            *possible += count;
            return rrq_rtree::Visit::SkipSubtree;
        }
        // Cannot precede for any w: min_w min_p f_w(p) >= max_w f_w(q).
        let lower = dot(rw.lo(), mbr.lo());
        if lower >= fq_hi {
            return rrq_rtree::Visit::SkipSubtree;
        }
        if is_point {
            // Ambiguous point: possible predecessor only.
            *possible += count;
            rrq_rtree::Visit::SkipSubtree
        } else {
            rrq_rtree::Visit::Descend
        }
    });
}

/// Materialises the leaf-level weight groups of the weight tree.
fn weight_groups(tree: &RTree) -> Vec<(Mbr, Vec<WeightId>)> {
    tree.leaf_groups()
        .into_iter()
        .map(|(mbr, ids)| (mbr, ids.into_iter().map(|id| WeightId(id.0)).collect()))
        .collect()
}

/// Re-houses a weight set as a point set (range just above 1).
fn weights_as_points(weights: &WeightSet) -> PointSet {
    let mut ps = PointSet::with_capacity(weights.dim(), 1.0 + 1e-9, weights.len())
        // rrq-lint: allow(no-unwrap-in-lib) -- dim/range come from an already-validated weight set
        .expect("valid dimensions");
    for (_, w) in weights.iter() {
        // rrq-lint: allow(no-unwrap-in-lib) -- normalised weights lie inside the widened range
        ps.push_slice(w).expect("weights are valid points");
    }
    ps
}

impl RtkQuery for Bbr<'_> {
    fn name(&self) -> &'static str {
        "BBR"
    }

    fn reverse_top_k(&self, q: &[f64], k: usize, stats: &mut QueryStats) -> RtkResult {
        self.rtk_impl(q, k, stats, &NoopRecorder)
    }

    fn reverse_top_k_traced(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &dyn Recorder,
    ) -> RtkResult {
        self.rtk_impl(q, k, stats, rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::Naive;
    use rrq_data::synthetic;
    use rrq_types::PointId;

    fn workload(dim: usize, np: usize, nw: usize, seed: u64) -> (PointSet, WeightSet) {
        (
            synthetic::uniform_points(dim, np, 10_000.0, seed).unwrap(),
            synthetic::uniform_weights(dim, nw, seed + 1).unwrap(),
        )
    }

    fn small_config() -> BbrConfig {
        BbrConfig {
            point_tree: RTreeConfig::with_max_entries(8),
            weight_tree: RTreeConfig::with_max_entries(8),
            bulk_load: true,
        }
    }

    #[test]
    fn matches_naive_low_dimensional() {
        for seed in 0..4 {
            let (p, w) = workload(3, 250, 60, seed);
            let bbr = Bbr::new(&p, &w, small_config());
            let naive = Naive::new(&p, &w);
            for qid in [0usize, 100, 200] {
                let q = p.point(PointId(qid)).to_vec();
                for k in [1usize, 10, 40] {
                    let mut s1 = QueryStats::default();
                    let mut s2 = QueryStats::default();
                    assert_eq!(
                        bbr.reverse_top_k(&q, k, &mut s1),
                        naive.reverse_top_k(&q, k, &mut s2),
                        "seed {seed} q {qid} k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_naive_high_dimensional() {
        let (p, w) = workload(10, 200, 40, 77);
        let bbr = Bbr::new(&p, &w, small_config());
        let naive = Naive::new(&p, &w);
        let q = p.point(PointId(5)).to_vec();
        for k in [1usize, 20] {
            let mut s1 = QueryStats::default();
            let mut s2 = QueryStats::default();
            assert_eq!(
                bbr.reverse_top_k(&q, k, &mut s1),
                naive.reverse_top_k(&q, k, &mut s2)
            );
        }
    }

    #[test]
    fn matches_naive_with_insert_built_trees() {
        let (p, w) = workload(3, 150, 40, 5);
        let cfg = BbrConfig {
            bulk_load: false,
            ..small_config()
        };
        let bbr = Bbr::new(&p, &w, cfg);
        let naive = Naive::new(&p, &w);
        let q = p.point(PointId(9)).to_vec();
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        assert_eq!(
            bbr.reverse_top_k(&q, 10, &mut s1),
            naive.reverse_top_k(&q, 10, &mut s2)
        );
    }

    #[test]
    fn group_pruning_fires_in_low_dimensions() {
        let (p, w) = workload(2, 2000, 500, 21);
        let bbr = Bbr::new(&p, &w, small_config());
        // A terrible query point (near max corner) should discard whole
        // groups via the sure-count bound.
        let q = vec![9_500.0, 9_500.0];
        let mut stats = QueryStats::default();
        let result = bbr.reverse_top_k(&q, 10, &mut stats);
        assert!(result.is_empty());
        assert!(
            stats.filtered_case1 > 0,
            "expected group-wise discards, stats: {stats:?}"
        );
    }

    #[test]
    fn group_acceptance_fires_for_dominant_query() {
        let (p, w) = workload(2, 500, 300, 23);
        let bbr = Bbr::new(&p, &w, small_config());
        // The origin precedes every point under every weight.
        let q = vec![0.0, 0.0];
        let mut stats = QueryStats::default();
        let result = bbr.reverse_top_k(&q, 10, &mut stats);
        assert_eq!(result.len(), w.len(), "origin is in everybody's top-k");
        assert!(
            stats.filtered_case2 > 0,
            "expected group-wise accepts, stats: {stats:?}"
        );
    }

    #[test]
    fn k_zero_is_empty() {
        let (p, w) = workload(3, 50, 20, 31);
        let bbr = Bbr::new(&p, &w, small_config());
        let q = p.point(PointId(0)).to_vec();
        let mut stats = QueryStats::default();
        assert!(bbr.reverse_top_k(&q, 0, &mut stats).is_empty());
    }

    #[test]
    fn trees_are_exposed() {
        let (p, w) = workload(3, 100, 30, 33);
        let bbr = Bbr::new(&p, &w, small_config());
        assert_eq!(bbr.point_tree().len(), 100);
        assert_eq!(bbr.weight_tree().len(), 30);
    }
}
