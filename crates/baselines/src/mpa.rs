//! MPA — the Marked Pruning Approach for reverse k-ranks (Zhang et al.,
//! PVLDB '14).
//!
//! `W` is grouped by a d-dimensional equi-width histogram with `c`
//! intervals per dimension (the paper suggests `c = 5`); `P` is indexed in
//! an R\*-tree. Each non-empty bucket carries corner bounds
//! `[w_lo, w_hi]`; a whole bucket can be skipped ("marked") when a *lower
//! bound* on the rank of `q` over every weight in the bucket already
//! exceeds the current k-th best rank. Surviving buckets are refined
//! weight by weight with thresholded tree rank counts.
//!
//! The paper's §5.1 criticism is reproduced faithfully: with `c = 5` and
//! `d = 10` the histogram has ~9.7 M possible buckets, so real weight
//! sets shatter into singleton buckets and the group-level pruning stops
//! helping.

use rrq_obs::{span, timed_leaf, NoopRecorder, Recorder};
use rrq_rtree::{Mbr, RTree, RTreeConfig, Visit};
use rrq_types::{
    dot, KBestHeap, PointSet, QueryStats, RkrQuery, RkrResult, RtkQuery, RtkResult, WeightId,
    WeightSet,
};
use std::collections::BTreeMap;

/// Configuration of the MPA index.
#[derive(Debug, Clone, Copy)]
pub struct MpaConfig {
    /// Intervals per dimension of the weight histogram (`c`; paper
    /// suggests 5).
    pub intervals_per_dim: usize,
    /// Node capacity of the R\*-tree over `P`.
    pub point_tree: RTreeConfig,
    /// Use bulk loading (default) instead of one-by-one insertion.
    pub bulk_load: bool,
}

impl Default for MpaConfig {
    fn default() -> Self {
        Self {
            intervals_per_dim: 5,
            point_tree: RTreeConfig::default(),
            bulk_load: true,
        }
    }
}

/// One histogram bucket: corner bounds plus member weights.
#[derive(Debug)]
struct Bucket {
    bounds: Mbr,
    members: Vec<WeightId>,
}

/// The marked-pruning reverse k-ranks baseline.
#[derive(Debug)]
pub struct Mpa<'a> {
    points: &'a PointSet,
    weights: &'a WeightSet,
    p_tree: RTree,
    buckets: Vec<Bucket>,
}

impl<'a> Mpa<'a> {
    /// Builds the histogram over `W` and the R\*-tree over `P`.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different dimensionality or
    /// `intervals_per_dim == 0`.
    pub fn new(points: &'a PointSet, weights: &'a WeightSet, config: MpaConfig) -> Self {
        assert_eq!(
            points.dim(),
            weights.dim(),
            "P and W must share dimensionality"
        );
        assert!(config.intervals_per_dim > 0, "need at least one interval");
        let p_tree = if config.bulk_load {
            RTree::bulk_load(points, config.point_tree)
        } else {
            RTree::build(points, config.point_tree)
        };
        let buckets = build_histogram(weights, config.intervals_per_dim);
        Self {
            points,
            weights,
            p_tree,
            buckets,
        }
    }

    /// Number of non-empty histogram buckets (§5.1's degeneracy metric:
    /// approaches `|W|` as `d` grows).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Access to the point tree (leaf-access accounting).
    pub fn point_tree(&self) -> &RTree {
        &self.p_tree
    }

    /// Lower bound on `rank(w, q)` valid for *every* `w` in `bounds`:
    /// counts points that surely precede `q` for all such `w`
    /// (`dot(w_hi, p) < dot(w_lo, q)` at point level, subtree-wise via MBR
    /// corners). Stops counting above `threshold`.
    fn bucket_rank_lower_bound(
        &self,
        bounds: &Mbr,
        q: &[f64],
        threshold: usize,
        stats: &mut QueryStats,
    ) -> usize {
        let fq_lo = dot(bounds.lo(), q);
        stats.multiplications += q.len() as u64;
        let mut sure = 0usize;
        self.p_tree
            .visit(&mut |mbr: &Mbr, count: usize, is_point: bool| {
                if sure > threshold {
                    stats.early_terminations += 1;
                    return Visit::Stop;
                }
                stats.nodes_visited += u64::from(!is_point);
                stats.multiplications += mbr.dim() as u64;
                let upper = dot(bounds.hi(), mbr.hi());
                if upper < fq_lo {
                    sure += count;
                    return Visit::SkipSubtree;
                }
                if is_point {
                    stats.leaf_accesses += 1;
                    return Visit::SkipSubtree;
                }
                // Quick reject: if even the subtree's best point cannot
                // surely precede q, skip it entirely.
                stats.multiplications += mbr.dim() as u64;
                let best = dot(bounds.hi(), mbr.lo());
                if best >= fq_lo {
                    return Visit::SkipSubtree;
                }
                Visit::Descend
            });
        sure
    }

    /// Shared RKR body; the untraced trait method instantiates it with
    /// [`NoopRecorder`]. The `filter` leaf times the bucket-level lower
    /// bounds; the `refine` leaf times per-weight thresholded tree rank
    /// counts for buckets that survive marking.
    fn rkr_impl<R: Recorder + ?Sized>(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &R,
    ) -> RkrResult {
        assert_eq!(q.len(), self.points.dim(), "query dimensionality");
        let _query = span(rec, "rkr");
        let _scan = span(rec, "scan");
        let mut heap = KBestHeap::new(k);
        for bucket in &self.buckets {
            stats.buckets_visited += 1;
            let threshold = heap.threshold();
            if threshold != usize::MAX {
                // Group-level pruning only pays once a bound exists.
                let lower = timed_leaf(rec, "filter", || {
                    self.bucket_rank_lower_bound(&bucket.bounds, q, threshold, stats)
                });
                if lower > threshold {
                    stats.filtered_case1 += bucket.members.len() as u64;
                    continue; // Whole bucket marked: nobody can qualify.
                }
            }
            for &wid in &bucket.members {
                stats.weights_visited += 1;
                let w = self.weights.weight(wid);
                let fq = dot(w, q);
                stats.multiplications += q.len() as u64;
                let bound = heap.threshold();
                let rank = {
                    let _refine = span(rec, "refine");
                    self.p_tree
                        .count_preceding_traced(w, fq, bound.saturating_add(1), stats, rec)
                };
                if rank <= bound {
                    timed_leaf(rec, "heap", || heap.offer(rank, wid));
                }
            }
        }
        heap.into_result()
    }

    /// Shared RTK body, see [`Self::rkr_impl`].
    fn rtk_impl<R: Recorder + ?Sized>(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &R,
    ) -> RtkResult {
        assert_eq!(q.len(), self.points.dim(), "query dimensionality");
        let _query = span(rec, "rtk");
        if k == 0 {
            return RtkResult::default();
        }
        let _scan = span(rec, "scan");
        let mut out = Vec::new();
        for bucket in &self.buckets {
            stats.buckets_visited += 1;
            let lower = timed_leaf(rec, "filter", || {
                self.bucket_rank_lower_bound(&bucket.bounds, q, k - 1, stats)
            });
            if lower >= k {
                stats.filtered_case1 += bucket.members.len() as u64;
                continue;
            }
            for &wid in &bucket.members {
                stats.weights_visited += 1;
                let w = self.weights.weight(wid);
                let fq = dot(w, q);
                stats.multiplications += q.len() as u64;
                let rank = {
                    let _refine = span(rec, "refine");
                    self.p_tree.count_preceding_traced(w, fq, k, stats, rec)
                };
                if rank < k {
                    out.push(wid);
                }
            }
        }
        RtkResult::from_weights(out)
    }
}

/// Buckets `weights` by `⌊w[i]·c⌋` per dimension (clamped so `w[i] = 1`
/// lands in the last interval).
///
/// The map must iterate in a deterministic order: bucket order decides
/// the scan order of `rkr_impl`, and with it every order-dependent
/// counter (`early_terminations`, thresholded `leaf_accesses`, ...).
/// A `HashMap` here once made same-seed runs differ across processes —
/// caught by the `rrq-benchdiff` baseline gate.
fn build_histogram(weights: &WeightSet, c: usize) -> Vec<Bucket> {
    let dim = weights.dim();
    let mut map: BTreeMap<Vec<u16>, Vec<WeightId>> = BTreeMap::new();
    let mut key = vec![0u16; dim];
    for (wid, w) in weights.iter() {
        for (k, &v) in key.iter_mut().zip(w) {
            *k = (((v * c as f64).floor() as usize).min(c - 1)) as u16;
        }
        map.entry(key.clone()).or_default().push(wid);
    }
    map.into_iter()
        .map(|(key, members)| {
            let lo: Vec<f64> = key.iter().map(|&k| k as f64 / c as f64).collect();
            let hi: Vec<f64> = key.iter().map(|&k| (k + 1) as f64 / c as f64).collect();
            Bucket {
                bounds: Mbr::from_corners(lo, hi),
                members,
            }
        })
        .collect()
}

impl RkrQuery for Mpa<'_> {
    fn name(&self) -> &'static str {
        "MPA"
    }

    fn reverse_k_ranks(&self, q: &[f64], k: usize, stats: &mut QueryStats) -> RkrResult {
        self.rkr_impl(q, k, stats, &NoopRecorder)
    }

    fn reverse_k_ranks_traced(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &dyn Recorder,
    ) -> RkrResult {
        self.rkr_impl(q, k, stats, rec)
    }
}

/// MPA was designed for reverse k-ranks, but the same machinery answers
/// reverse top-k by fixing the rank threshold at `k` instead of the
/// self-refining heap bound (used by the Figure 2 experiment, which runs
/// both tree-based baselines on both queries).
impl RtkQuery for Mpa<'_> {
    fn name(&self) -> &'static str {
        "MPA"
    }

    fn reverse_top_k(&self, q: &[f64], k: usize, stats: &mut QueryStats) -> RtkResult {
        self.rtk_impl(q, k, stats, &NoopRecorder)
    }

    fn reverse_top_k_traced(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &dyn Recorder,
    ) -> RtkResult {
        self.rtk_impl(q, k, stats, rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::Naive;
    use rrq_data::synthetic;
    use rrq_types::PointId;

    fn workload(dim: usize, np: usize, nw: usize, seed: u64) -> (PointSet, WeightSet) {
        (
            synthetic::uniform_points(dim, np, 10_000.0, seed).unwrap(),
            synthetic::uniform_weights(dim, nw, seed + 1).unwrap(),
        )
    }

    fn small_config() -> MpaConfig {
        MpaConfig {
            intervals_per_dim: 5,
            point_tree: RTreeConfig::with_max_entries(8),
            bulk_load: true,
        }
    }

    #[test]
    fn rkr_matches_naive() {
        for seed in 0..4 {
            let (p, w) = workload(3, 250, 60, seed);
            let mpa = Mpa::new(&p, &w, small_config());
            let naive = Naive::new(&p, &w);
            for qid in [0usize, 100, 200] {
                let q = p.point(PointId(qid)).to_vec();
                for k in [1usize, 10, 40] {
                    let mut s1 = QueryStats::default();
                    let mut s2 = QueryStats::default();
                    assert_eq!(
                        mpa.reverse_k_ranks(&q, k, &mut s1),
                        naive.reverse_k_ranks(&q, k, &mut s2),
                        "seed {seed} q {qid} k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn rtk_matches_naive() {
        for seed in 0..3 {
            let (p, w) = workload(4, 200, 50, seed + 100);
            let mpa = Mpa::new(&p, &w, small_config());
            let naive = Naive::new(&p, &w);
            let q = p.point(PointId(33)).to_vec();
            for k in [1usize, 10] {
                let mut s1 = QueryStats::default();
                let mut s2 = QueryStats::default();
                assert_eq!(
                    mpa.reverse_top_k(&q, k, &mut s1),
                    naive.reverse_top_k(&q, k, &mut s2)
                );
            }
        }
    }

    #[test]
    fn rkr_matches_naive_high_dimensional() {
        let (p, w) = workload(10, 150, 40, 55);
        let mpa = Mpa::new(&p, &w, small_config());
        let naive = Naive::new(&p, &w);
        let q = p.point(PointId(7)).to_vec();
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        assert_eq!(
            mpa.reverse_k_ranks(&q, 5, &mut s1),
            naive.reverse_k_ranks(&q, 5, &mut s2)
        );
    }

    #[test]
    fn bucket_count_degenerates_with_dimensionality() {
        // §5.1: in low d weights share buckets; in high d buckets approach
        // singletons.
        let (_, w3) = workload(3, 1, 500, 1);
        let (p3, _) = workload(3, 10, 1, 1);
        let mpa3 = Mpa::new(&p3, &w3, small_config());
        let (_, w12) = workload(12, 1, 500, 1);
        let (p12, _) = workload(12, 10, 1, 1);
        let mpa12 = Mpa::new(&p12, &w12, small_config());
        assert!(
            mpa3.bucket_count() < mpa12.bucket_count(),
            "3-d buckets {} vs 12-d buckets {}",
            mpa3.bucket_count(),
            mpa12.bucket_count()
        );
    }

    #[test]
    fn bucket_pruning_fires_for_bad_query() {
        let (p, w) = workload(2, 2000, 400, 9);
        // Fine-grained histogram → tight bucket bounds → the group-level
        // lower bound is sharp enough to mark buckets.
        let mpa = Mpa::new(
            &p,
            &w,
            MpaConfig {
                intervals_per_dim: 50,
                ..small_config()
            },
        );
        // Corner query ranks terribly for everyone; after the heap fills,
        // whole buckets get marked.
        let q = vec![9_800.0, 9_800.0];
        let mut stats = QueryStats::default();
        let naive = Naive::new(&p, &w);
        let mut s2 = QueryStats::default();
        assert_eq!(
            mpa.reverse_k_ranks(&q, 5, &mut stats),
            naive.reverse_k_ranks(&q, 5, &mut s2)
        );
        assert!(
            stats.filtered_case1 > 0,
            "expected bucket-level pruning, stats: {stats:?}"
        );
    }

    #[test]
    fn rkr_k_exceeding_w_returns_all() {
        let (p, w) = workload(3, 100, 20, 13);
        let mpa = Mpa::new(&p, &w, small_config());
        let q = p.point(PointId(0)).to_vec();
        let mut stats = QueryStats::default();
        assert_eq!(mpa.reverse_k_ranks(&q, 50, &mut stats).len(), 20);
    }

    #[test]
    fn rebuilt_index_reproduces_counters_exactly() {
        // Bucket order must be a pure function of the data: two
        // independently built indexes have to walk buckets identically,
        // making every order-dependent counter reproducible. (The old
        // HashMap-backed histogram failed this across processes.)
        let (p, w) = workload(4, 300, 120, 77);
        let a = Mpa::new(&p, &w, small_config());
        let b = Mpa::new(&p, &w, small_config());
        let q = p.point(PointId(17)).to_vec();
        let (mut sa, mut sb) = (QueryStats::default(), QueryStats::default());
        assert_eq!(
            a.reverse_k_ranks(&q, 8, &mut sa),
            b.reverse_k_ranks(&q, 8, &mut sb)
        );
        assert_eq!(sa, sb, "scan order must be deterministic");
        for (ba, bb) in a.buckets.iter().zip(&b.buckets) {
            assert_eq!(ba.members, bb.members);
        }
    }

    #[test]
    #[should_panic(expected = "at least one interval")]
    fn rejects_zero_intervals() {
        let (p, w) = workload(2, 10, 5, 1);
        Mpa::new(
            &p,
            &w,
            MpaConfig {
                intervals_per_dim: 0,
                ..small_config()
            },
        );
    }
}
