//! SIM — the paper's optimised simple scan (§6.1, "Algorithms").
//!
//! For each weight the point set is scanned and scores computed directly.
//! Two optimisations distinguish SIM from [`crate::Naive`], exactly as the
//! paper describes:
//!
//! * a global `Domin` buffer of points known to dominate the query (every
//!   attribute strictly smaller): such points precede `q` under *every*
//!   weight, so later scans start from `rank = |Domin|` and skip them;
//! * early termination: an RTK scan stops as soon as the rank reaches
//!   `k`; an RKR scan stops as soon as the rank exceeds the self-refining
//!   `minRank` heap bound.
//!
//! SIM is the scan whose multiplications GIR removes; the two algorithms
//! visit the same data (the "SCAN" series of Figs. 11b/11d).

use rrq_obs::{span, timed_leaf, NoopRecorder, Recorder};
use rrq_types::point::dominates;
use rrq_types::{
    dot_counted, KBestHeap, PointSet, QueryStats, RkrQuery, RkrResult, RtkQuery, RtkResult,
    WeightSet,
};

/// The simple-scan baseline with `Domin` buffer and early termination.
#[derive(Debug, Clone, Copy)]
pub struct Sim<'a> {
    points: &'a PointSet,
    weights: &'a WeightSet,
    /// Whether the `Domin` buffer is used (on by default; the ablation
    /// bench switches it off).
    use_domin: bool,
}

impl<'a> Sim<'a> {
    /// Binds the algorithm to a data set pair.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different dimensionality.
    pub fn new(points: &'a PointSet, weights: &'a WeightSet) -> Self {
        assert_eq!(
            points.dim(),
            weights.dim(),
            "P and W must share dimensionality"
        );
        Self {
            points,
            weights,
            use_domin: true,
        }
    }

    /// Disables the `Domin` buffer (ablation).
    pub fn without_domin(mut self) -> Self {
        self.use_domin = false;
        self
    }

    /// Scans `P` for weight `w`, counting points preceding `q`, stopping
    /// once the count exceeds `bound`. Newly discovered dominators of `q`
    /// are added to `domin`.
    ///
    /// Returns the (possibly truncated) count.
    fn scan_rank(
        &self,
        w: &[f64],
        q: &[f64],
        fq: f64,
        bound: usize,
        domin: &mut DominBuffer,
        stats: &mut QueryStats,
    ) -> usize {
        let mut rank = domin.len();
        if rank > bound {
            stats.early_terminations += 1;
            return rank;
        }
        for (id, p) in self.points.iter() {
            if domin.contains(id.0) {
                stats.domin_skips += 1;
                continue;
            }
            stats.points_visited += 1;
            if dot_counted(w, p, stats) < fq {
                rank += 1;
                if self.use_domin && dominates(p, q) {
                    domin.insert(id.0);
                }
                if rank > bound {
                    stats.early_terminations += 1;
                    return rank;
                }
            }
        }
        rank
    }

    /// Shared RTK body; the untraced trait method instantiates it with
    /// [`NoopRecorder`] so the released scan loop carries no probe cost.
    fn rtk_impl<R: Recorder + ?Sized>(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &R,
    ) -> RtkResult {
        assert_eq!(q.len(), self.points.dim(), "query dimensionality");
        let _query = span(rec, "rtk");
        let mut domin = DominBuffer::new(self.points.len());
        let mut out = Vec::new();
        if k == 0 {
            return RtkResult::default();
        }
        let _scan = span(rec, "scan");
        for (wid, w) in self.weights.iter() {
            stats.weights_visited += 1;
            let fq = dot_counted(w, q, stats);
            // RTK membership needs rank < k: stop counting at k (bound =
            // k - 1 allows counts up to k before truncating).
            let rank = timed_leaf(rec, "refine", || {
                self.scan_rank(w, q, fq, k - 1, &mut domin, stats)
            });
            if rank < k {
                out.push(wid);
            }
            // Paper Alg. 2 lines 7–8: k dominators make every later w
            // hopeless as well — but weights already found remain valid
            // results, so only the remaining scan is cut short.
            if domin.len() >= k {
                break;
            }
        }
        RtkResult::from_weights(out)
    }

    /// Shared RKR body, see [`Self::rtk_impl`].
    fn rkr_impl<R: Recorder + ?Sized>(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &R,
    ) -> RkrResult {
        assert_eq!(q.len(), self.points.dim(), "query dimensionality");
        let _query = span(rec, "rkr");
        let mut domin = DominBuffer::new(self.points.len());
        let mut heap = KBestHeap::new(k);
        let _scan = span(rec, "scan");
        for (wid, w) in self.weights.iter() {
            stats.weights_visited += 1;
            let fq = dot_counted(w, q, stats);
            let bound = heap.threshold();
            let rank = timed_leaf(rec, "refine", || {
                self.scan_rank(w, q, fq, bound, &mut domin, stats)
            });
            if rank <= bound {
                timed_leaf(rec, "heap", || heap.offer(rank, wid));
            }
        }
        heap.into_result()
    }
}

/// Dense bitmap of dominating points plus a count.
#[derive(Debug)]
struct DominBuffer {
    bits: Vec<bool>,
    len: usize,
}

impl DominBuffer {
    fn new(n: usize) -> Self {
        Self {
            bits: vec![false; n],
            len: 0,
        }
    }

    #[inline]
    fn contains(&self, id: usize) -> bool {
        self.bits[id]
    }

    fn insert(&mut self, id: usize) {
        if !self.bits[id] {
            self.bits[id] = true;
            self.len += 1;
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }
}

impl RtkQuery for Sim<'_> {
    fn name(&self) -> &'static str {
        "SIM"
    }

    fn reverse_top_k(&self, q: &[f64], k: usize, stats: &mut QueryStats) -> RtkResult {
        self.rtk_impl(q, k, stats, &NoopRecorder)
    }

    fn reverse_top_k_traced(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &dyn Recorder,
    ) -> RtkResult {
        self.rtk_impl(q, k, stats, rec)
    }
}

impl RkrQuery for Sim<'_> {
    fn name(&self) -> &'static str {
        "SIM"
    }

    fn reverse_k_ranks(&self, q: &[f64], k: usize, stats: &mut QueryStats) -> RkrResult {
        self.rkr_impl(q, k, stats, &NoopRecorder)
    }

    fn reverse_k_ranks_traced(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &dyn Recorder,
    ) -> RkrResult {
        self.rkr_impl(q, k, stats, rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::Naive;
    use rrq_data::synthetic;
    use rrq_types::PointId;

    fn workload(dim: usize, np: usize, nw: usize, seed: u64) -> (PointSet, WeightSet) {
        (
            synthetic::uniform_points(dim, np, 10_000.0, seed).unwrap(),
            synthetic::uniform_weights(dim, nw, seed + 1).unwrap(),
        )
    }

    #[test]
    fn rtk_matches_naive_on_random_workloads() {
        for seed in 0..5 {
            let (p, w) = workload(4, 300, 80, seed);
            let sim = Sim::new(&p, &w);
            let naive = Naive::new(&p, &w);
            for qid in [0usize, 50, 150] {
                let q = p.point(PointId(qid)).to_vec();
                for k in [1usize, 5, 25] {
                    let mut s1 = QueryStats::default();
                    let mut s2 = QueryStats::default();
                    assert_eq!(
                        sim.reverse_top_k(&q, k, &mut s1),
                        naive.reverse_top_k(&q, k, &mut s2),
                        "seed {seed} q {qid} k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn rkr_matches_naive_on_random_workloads() {
        for seed in 0..5 {
            let (p, w) = workload(4, 300, 80, seed);
            let sim = Sim::new(&p, &w);
            let naive = Naive::new(&p, &w);
            for qid in [0usize, 50, 150] {
                let q = p.point(PointId(qid)).to_vec();
                for k in [1usize, 5, 25] {
                    let mut s1 = QueryStats::default();
                    let mut s2 = QueryStats::default();
                    assert_eq!(
                        sim.reverse_k_ranks(&q, k, &mut s1),
                        naive.reverse_k_ranks(&q, k, &mut s2),
                        "seed {seed} q {qid} k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn sim_does_less_work_than_naive() {
        let (p, w) = workload(6, 1000, 200, 9);
        let sim = Sim::new(&p, &w);
        let naive = Naive::new(&p, &w);
        let q = p.point(PointId(3)).to_vec();
        let mut s_sim = QueryStats::default();
        let mut s_naive = QueryStats::default();
        sim.reverse_top_k(&q, 10, &mut s_sim);
        naive.reverse_top_k(&q, 10, &mut s_naive);
        assert!(
            s_sim.multiplications < s_naive.multiplications,
            "early termination must save multiplications: {} vs {}",
            s_sim.multiplications,
            s_naive.multiplications
        );
    }

    #[test]
    fn without_domin_still_correct() {
        let (p, w) = workload(3, 200, 50, 11);
        let sim = Sim::new(&p, &w).without_domin();
        let naive = Naive::new(&p, &w);
        let q = p.point(PointId(7)).to_vec();
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        assert_eq!(
            sim.reverse_top_k(&q, 10, &mut s1),
            naive.reverse_top_k(&q, 10, &mut s2)
        );
        let mut s3 = QueryStats::default();
        let mut s4 = QueryStats::default();
        assert_eq!(
            sim.reverse_k_ranks(&q, 10, &mut s3),
            naive.reverse_k_ranks(&q, 10, &mut s4)
        );
        assert_eq!(s1.domin_skips + s3.domin_skips, 0);
    }

    #[test]
    fn domin_buffer_records_skips_for_dominated_query() {
        // A query at the far corner is dominated by everything.
        let (p, w) = workload(3, 200, 50, 13);
        let sim = Sim::new(&p, &w);
        let q = vec![9_999.0, 9_999.0, 9_999.0];
        let mut stats = QueryStats::default();
        let result = sim.reverse_top_k(&q, 10, &mut stats);
        assert!(result.is_empty(), "corner query is in nobody's top-10");
    }

    #[test]
    fn rkr_with_tied_ranks_is_canonical() {
        // Duplicate weights produce tied ranks; the canonical result picks
        // the smallest weight ids.
        let p = PointSet::from_flat(2, 10.0, &[1.0, 1.0, 2.0, 2.0, 3.0, 3.0]).unwrap();
        let w = WeightSet::from_flat(2, &[0.5, 0.5, 0.5, 0.5, 0.5, 0.5]).unwrap();
        let sim = Sim::new(&p, &w);
        let mut stats = QueryStats::default();
        let got = sim.reverse_k_ranks(&[2.0, 2.0], 2, &mut stats);
        let ids: Vec<usize> = got.entries().iter().map(|e| e.weight.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn empty_weight_set_yields_empty_results() {
        let p = synthetic::uniform_points(3, 10, 10.0, 1).unwrap();
        let w = WeightSet::new(3).unwrap();
        let sim = Sim::new(&p, &w);
        let mut stats = QueryStats::default();
        assert!(sim
            .reverse_top_k(&[1.0, 1.0, 1.0], 5, &mut stats)
            .is_empty());
        assert!(sim
            .reverse_k_ranks(&[1.0, 1.0, 1.0], 5, &mut stats)
            .is_empty());
    }
}
