//! Property-style equivalence: every baseline answers every query
//! identically to the definition-level oracle on arbitrary inputs. Cases
//! are drawn from seeded deterministic sweeps (the offline build has no
//! `proptest`).

use rrq_baselines::{Bbr, BbrConfig, Mpa, MpaConfig, Naive, Rta, Sim};
use rrq_data::rng::{Rng, StdRng};
use rrq_types::{PointId, PointSet, QueryStats, RkrQuery, RtkQuery, WeightSet};

const RANGE: f64 = 1000.0;
const CASES: usize = 40;

fn random_workload(rng: &mut StdRng) -> (usize, Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let dim = rng.gen_range(1..5);
    let n_points = rng.gen_range(2..80);
    let n_weights = rng.gen_range(1..30);
    let points = (0..n_points)
        .map(|_| (0..dim).map(|_| rng.gen_f64() * 999.0).collect())
        .collect();
    let weights = (0..n_weights)
        .map(|_| (0..dim).map(|_| 0.01 + rng.gen_f64() * 0.99).collect())
        .collect();
    (dim, points, weights)
}

fn build(dim: usize, points: &[Vec<f64>], weights: &[Vec<f64>]) -> (PointSet, WeightSet) {
    let mut ps = PointSet::with_capacity(dim, RANGE, points.len()).unwrap();
    for p in points {
        ps.push_slice(p).unwrap();
    }
    let mut ws = WeightSet::with_capacity(dim, weights.len()).unwrap();
    for w in weights {
        let s: f64 = w.iter().sum();
        let mut n: Vec<f64> = w.iter().map(|v| v / s).collect();
        let drift: f64 = 1.0 - n.iter().sum::<f64>();
        n[0] += drift;
        ws.push_slice(&n).unwrap();
    }
    (ps, ws)
}

#[test]
fn rtk_baselines_agree_with_naive() {
    let mut rng = StdRng::seed_from_u64(0xBA5E_0001);
    for _ in 0..CASES {
        let (dim, points, weights) = random_workload(&mut rng);
        let k = rng.gen_range(1..20);
        let (p, w) = build(dim, &points, &weights);
        let q = p.point(PointId(rng.gen_range(0..p.len()))).to_vec();
        let naive = Naive::new(&p, &w);
        let mut s = QueryStats::default();
        let expected = naive.reverse_top_k(&q, k, &mut s);

        let sim = Sim::new(&p, &w);
        let bbr = Bbr::new(&p, &w, BbrConfig::default());
        let mpa = Mpa::new(&p, &w, MpaConfig::default());
        let rta = Rta::new(&p, &w);
        for alg in [&sim as &dyn RtkQuery, &bbr, &mpa, &rta] {
            let mut s = QueryStats::default();
            assert_eq!(
                alg.reverse_top_k(&q, k, &mut s),
                expected.clone(),
                "{} disagrees",
                alg.name()
            );
        }
    }
}

#[test]
fn rkr_baselines_agree_with_naive() {
    let mut rng = StdRng::seed_from_u64(0xBA5E_0002);
    for _ in 0..CASES {
        let (dim, points, weights) = random_workload(&mut rng);
        let k = rng.gen_range(1..20);
        let (p, w) = build(dim, &points, &weights);
        let q = p.point(PointId(rng.gen_range(0..p.len()))).to_vec();
        let naive = Naive::new(&p, &w);
        let mut s = QueryStats::default();
        let expected = naive.reverse_k_ranks(&q, k, &mut s);

        let sim = Sim::new(&p, &w);
        let mpa = Mpa::new(&p, &w, MpaConfig::default());
        for alg in [&sim as &dyn RkrQuery, &mpa] {
            let mut s = QueryStats::default();
            assert_eq!(
                alg.reverse_k_ranks(&q, k, &mut s),
                expected.clone(),
                "{} disagrees",
                alg.name()
            );
        }
    }
}

/// RKR results are internally consistent: ranks ascend and equal the true
/// rank of each returned weight.
#[test]
fn rkr_results_are_sound() {
    let mut rng = StdRng::seed_from_u64(0xBA5E_0003);
    for _ in 0..CASES {
        let (dim, points, weights) = random_workload(&mut rng);
        let k = rng.gen_range(1..10);
        let (p, w) = build(dim, &points, &weights);
        let q = p.point(PointId(0)).to_vec();
        let sim = Sim::new(&p, &w);
        let mut s = QueryStats::default();
        let result = sim.reverse_k_ranks(&q, k, &mut s);
        assert_eq!(result.len(), k.min(w.len()));
        let mut last = 0usize;
        for e in result.entries() {
            assert!(e.rank >= last, "ranks must ascend");
            last = e.rank;
            let true_rank = rrq_types::rank_of(&p, w.weight(e.weight), &q);
            assert_eq!(e.rank, true_rank, "reported rank must be exact");
        }
    }
}
