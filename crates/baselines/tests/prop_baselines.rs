//! Property-based equivalence: every baseline answers every query
//! identically to the definition-level oracle on arbitrary inputs.

use proptest::prelude::*;
use rrq_baselines::{Bbr, BbrConfig, Mpa, MpaConfig, Naive, Rta, Sim};
use rrq_types::{PointId, PointSet, QueryStats, RkrQuery, RtkQuery, WeightSet};

const RANGE: f64 = 1000.0;

fn workload_strategy() -> impl Strategy<Value = (usize, Vec<Vec<f64>>, Vec<Vec<f64>>)> {
    (1usize..5).prop_flat_map(|dim| {
        (
            Just(dim),
            prop::collection::vec(prop::collection::vec(0.0f64..999.0, dim), 2..80),
            prop::collection::vec(prop::collection::vec(0.01f64..1.0, dim), 1..30),
        )
    })
}

fn build(dim: usize, points: &[Vec<f64>], weights: &[Vec<f64>]) -> (PointSet, WeightSet) {
    let mut ps = PointSet::with_capacity(dim, RANGE, points.len()).unwrap();
    for p in points {
        ps.push_slice(p).unwrap();
    }
    let mut ws = WeightSet::with_capacity(dim, weights.len()).unwrap();
    for w in weights {
        let s: f64 = w.iter().sum();
        let mut n: Vec<f64> = w.iter().map(|v| v / s).collect();
        let drift: f64 = 1.0 - n.iter().sum::<f64>();
        n[0] += drift;
        ws.push_slice(&n).unwrap();
    }
    (ps, ws)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn rtk_baselines_agree_with_naive(
        (dim, points, weights) in workload_strategy(),
        k in 1usize..20,
        qsel in any::<prop::sample::Index>(),
    ) {
        let (p, w) = build(dim, &points, &weights);
        let q = p.point(PointId(qsel.index(p.len()))).to_vec();
        let naive = Naive::new(&p, &w);
        let mut s = QueryStats::default();
        let expected = naive.reverse_top_k(&q, k, &mut s);

        let sim = Sim::new(&p, &w);
        let bbr = Bbr::new(&p, &w, BbrConfig::default());
        let mpa = Mpa::new(&p, &w, MpaConfig::default());
        let rta = Rta::new(&p, &w);
        for alg in [&sim as &dyn RtkQuery, &bbr, &mpa, &rta] {
            let mut s = QueryStats::default();
            prop_assert_eq!(
                alg.reverse_top_k(&q, k, &mut s),
                expected.clone(),
                "{} disagrees",
                alg.name()
            );
        }
    }

    #[test]
    fn rkr_baselines_agree_with_naive(
        (dim, points, weights) in workload_strategy(),
        k in 1usize..20,
        qsel in any::<prop::sample::Index>(),
    ) {
        let (p, w) = build(dim, &points, &weights);
        let q = p.point(PointId(qsel.index(p.len()))).to_vec();
        let naive = Naive::new(&p, &w);
        let mut s = QueryStats::default();
        let expected = naive.reverse_k_ranks(&q, k, &mut s);

        let sim = Sim::new(&p, &w);
        let mpa = Mpa::new(&p, &w, MpaConfig::default());
        for alg in [&sim as &dyn RkrQuery, &mpa] {
            let mut s = QueryStats::default();
            prop_assert_eq!(
                alg.reverse_k_ranks(&q, k, &mut s),
                expected.clone(),
                "{} disagrees",
                alg.name()
            );
        }
    }

    /// RKR results are internally consistent: ranks ascend and equal the
    /// true rank of each returned weight.
    #[test]
    fn rkr_results_are_sound(
        (dim, points, weights) in workload_strategy(),
        k in 1usize..10,
    ) {
        let (p, w) = build(dim, &points, &weights);
        let q = p.point(PointId(0)).to_vec();
        let sim = Sim::new(&p, &w);
        let mut s = QueryStats::default();
        let result = sim.reverse_k_ranks(&q, k, &mut s);
        prop_assert_eq!(result.len(), k.min(w.len()));
        let mut last = 0usize;
        for e in result.entries() {
            prop_assert!(e.rank >= last, "ranks must ascend");
            last = e.rank;
            let true_rank = rrq_types::rank_of(&p, w.weight(e.weight), &q);
            prop_assert_eq!(e.rank, true_rank, "reported rank must be exact");
        }
    }
}
