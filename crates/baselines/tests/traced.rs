//! Traced baseline query paths must return byte-identical results (and
//! counters) to the untraced ones, while recording phase trees whose
//! shapes match each algorithm's structure.

use rrq_baselines::{Bbr, BbrConfig, Mpa, MpaConfig, Naive, Rta, Sim};
use rrq_data::synthetic;
use rrq_obs::MetricsRecorder;
use rrq_types::{PointId, PointSet, QueryStats, RkrQuery, RtkQuery, WeightSet};

fn workload(dim: usize, np: usize, nw: usize, seed: u64) -> (PointSet, WeightSet) {
    (
        synthetic::uniform_points(dim, np, 10_000.0, seed).unwrap(),
        synthetic::uniform_weights(dim, nw, seed + 1).unwrap(),
    )
}

fn paths(rec: &MetricsRecorder) -> Vec<String> {
    rec.phases().into_iter().map(|p| p.path).collect()
}

#[test]
fn sim_traced_matches_untraced() {
    let (p, w) = workload(4, 400, 100, 3);
    let sim = Sim::new(&p, &w);
    let q = p.point(PointId(17)).to_vec();
    let rec = MetricsRecorder::new();
    let mut s1 = QueryStats::default();
    let mut s2 = QueryStats::default();
    assert_eq!(
        sim.reverse_top_k(&q, 10, &mut s1),
        sim.reverse_top_k_traced(&q, 10, &mut s2, &rec)
    );
    assert_eq!(s1, s2, "tracing must not change counters");
    assert_eq!(
        sim.reverse_k_ranks(&q, 10, &mut s1),
        sim.reverse_k_ranks_traced(&q, 10, &mut s2, &rec)
    );
    let got = paths(&rec);
    for want in ["rtk", "rtk/scan", "rtk/scan/refine", "rkr", "rkr/scan"] {
        assert!(got.iter().any(|p| p == want), "missing {want} in {got:?}");
    }
}

#[test]
fn naive_traced_matches_untraced() {
    let (p, w) = workload(3, 200, 60, 5);
    let alg = Naive::new(&p, &w);
    let q = p.point(PointId(8)).to_vec();
    let rec = MetricsRecorder::new();
    let mut s1 = QueryStats::default();
    let mut s2 = QueryStats::default();
    assert_eq!(
        alg.reverse_top_k(&q, 5, &mut s1),
        alg.reverse_top_k_traced(&q, 5, &mut s2, &rec)
    );
    assert_eq!(
        alg.reverse_k_ranks(&q, 5, &mut s1),
        alg.reverse_k_ranks_traced(&q, 5, &mut s2, &rec)
    );
    assert_eq!(s1, s2);
    // NAIVE refines every weight: one refine leaf call per weight per query.
    let refine: u64 = rec
        .phases()
        .iter()
        .filter(|p| p.path.ends_with("/refine"))
        .map(|p| p.calls)
        .sum();
    assert_eq!(refine, 2 * w.len() as u64);
}

#[test]
fn bbr_traced_matches_untraced_and_counts_tree_work() {
    let (p, w) = workload(3, 300, 80, 7);
    let bbr = Bbr::new(&p, &w, BbrConfig::default());
    let q = p.point(PointId(123)).to_vec();
    let rec = MetricsRecorder::new();
    let mut s1 = QueryStats::default();
    let mut s2 = QueryStats::default();
    assert_eq!(
        bbr.reverse_top_k(&q, 10, &mut s1),
        bbr.reverse_top_k_traced(&q, 10, &mut s2, &rec)
    );
    assert_eq!(s1, s2);
    let got = paths(&rec);
    assert!(got.iter().any(|p| p == "rtk/scan/filter"), "{got:?}");
    // If any weight was refined, the tree span and its access counters
    // must agree with the machine-independent stats.
    if s2.refined > 0 {
        assert!(
            got.iter()
                .any(|p| p.ends_with("refine/rtree/count_preceding")),
            "{got:?}"
        );
        let counters = rec.counters();
        let nodes = counters
            .iter()
            .find(|(n, _)| n == "rtree_nodes_visited")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert!(nodes > 0, "refinement must visit tree nodes");
        assert!(
            nodes <= s2.nodes_visited,
            "per-call deltas cannot exceed total"
        );
    }
}

#[test]
fn mpa_traced_matches_untraced() {
    let (p, w) = workload(3, 300, 80, 9);
    let mpa = Mpa::new(&p, &w, MpaConfig::default());
    let q = p.point(PointId(50)).to_vec();
    let rec = MetricsRecorder::new();
    let mut s1 = QueryStats::default();
    let mut s2 = QueryStats::default();
    assert_eq!(
        mpa.reverse_k_ranks(&q, 8, &mut s1),
        mpa.reverse_k_ranks_traced(&q, 8, &mut s2, &rec)
    );
    assert_eq!(
        mpa.reverse_top_k(&q, 8, &mut s1),
        mpa.reverse_top_k_traced(&q, 8, &mut s2, &rec)
    );
    assert_eq!(s1, s2);
    let got = paths(&rec);
    for want in ["rkr", "rkr/scan", "rtk", "rtk/scan", "rtk/scan/filter"] {
        assert!(got.iter().any(|p| p == want), "missing {want} in {got:?}");
    }
}

#[test]
fn rta_traced_matches_untraced() {
    let (p, w) = workload(4, 400, 120, 11);
    let rta = Rta::new(&p, &w);
    let q = p.point(PointId(77)).to_vec();
    let rec = MetricsRecorder::new();
    let mut s1 = QueryStats::default();
    let mut s2 = QueryStats::default();
    assert_eq!(
        rta.reverse_top_k(&q, 10, &mut s1),
        rta.reverse_top_k_traced(&q, 10, &mut s2, &rec)
    );
    assert_eq!(s1, s2);
    let phases = rec.phases();
    // Every full evaluation is a refine leaf; every buffer test a filter
    // leaf. Cross-check call counts against the stats counters.
    let refine: u64 = phases
        .iter()
        .filter(|p| p.path == "rtk/scan/refine")
        .map(|p| p.calls)
        .sum();
    assert_eq!(refine, s2.refined);
}

#[test]
fn concurrent_traced_mpa_merges_to_the_sequential_metrics() {
    // MPA's traced path nests rtree spans under its own refine span —
    // the deepest tree the baselines produce. Four threads sharing one
    // SharedRecorder must merge to the sequential MetricsRecorder run.
    use rrq_obs::SharedRecorder;
    use std::collections::BTreeMap;

    let (p, w) = workload(4, 500, 150, 11);
    let mpa = Mpa::new(&p, &w, MpaConfig::default());
    let queries: Vec<Vec<f64>> = (0..12).map(|i| p.point(PointId(i * 5)).to_vec()).collect();

    let seq_rec = MetricsRecorder::new();
    let mut seq_stats = QueryStats::default();
    let seq_results: Vec<_> = queries
        .iter()
        .map(|q| mpa.reverse_k_ranks_traced(q, 6, &mut seq_stats, &seq_rec))
        .collect();

    let par_rec = SharedRecorder::new();
    let threads = 4;
    let (par_stats, par_results) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (par_rec, mpa, queries) = (&par_rec, &mpa, &queries);
                s.spawn(move || {
                    let mut stats = QueryStats::default();
                    let results: Vec<_> = queries
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % threads == t)
                        .map(|(i, q)| (i, mpa.reverse_k_ranks_traced(q, 6, &mut stats, par_rec)))
                        .collect();
                    (stats, results)
                })
            })
            .collect();
        let mut stats = QueryStats::default();
        let mut indexed = Vec::new();
        for h in handles {
            let (s, r) = h.join().expect("worker panicked");
            stats.merge(&s);
            indexed.extend(r);
        }
        indexed.sort_by_key(|(i, _)| *i);
        (
            stats,
            indexed.into_iter().map(|(_, r)| r).collect::<Vec<_>>(),
        )
    });

    assert_eq!(seq_results, par_results);
    assert_eq!(seq_stats, par_stats);
    let calls = |phases: Vec<rrq_obs::PhaseStat>| -> BTreeMap<String, u64> {
        phases.into_iter().map(|p| (p.path, p.calls)).collect()
    };
    assert_eq!(calls(seq_rec.phases()), calls(par_rec.phases()));
}
