//! Identifiers and result types for reverse rank queries.

/// Index of a point within a [`crate::PointSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PointId(pub usize);

/// Index of a weighting vector within a [`crate::WeightSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WeightId(pub usize);

/// Result of a reverse top-k (RTK) query: every weighting vector that ranks
/// the query point within its top-k.
///
/// Stored sorted by [`WeightId`] so results are directly comparable across
/// algorithms.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RtkResult {
    weights: Vec<WeightId>,
}

impl RtkResult {
    /// Builds a result from an arbitrary-order list of matching weights.
    /// Sorts and deduplicates for canonical comparison.
    pub fn from_weights(mut weights: Vec<WeightId>) -> Self {
        weights.sort_unstable();
        weights.dedup();
        Self { weights }
    }

    /// The matching weight ids in ascending order.
    pub fn weights(&self) -> &[WeightId] {
        &self.weights
    }

    /// Number of matching weights.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether no weight matched (the RTK "empty answer" the RKR query was
    /// designed to avoid, paper §1).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Whether a particular weight is part of the result.
    pub fn contains(&self, id: WeightId) -> bool {
        self.weights.binary_search(&id).is_ok()
    }
}

/// One entry of a reverse k-ranks result: a weighting vector and the rank it
/// assigns to the query point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RkrEntry {
    /// The weighting vector.
    pub weight: WeightId,
    /// `rank(w, q)`: the number of points scoring strictly better than `q`
    /// under `w`.
    pub rank: usize,
}

/// Result of a reverse k-ranks (RKR) query: the `k` weighting vectors that
/// rank the query point best.
///
/// Canonical order: ascending `(rank, weight_id)`. Ties on rank are broken
/// by weight id so results are deterministic and comparable across
/// algorithms (the paper leaves tie-breaking unspecified).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RkrResult {
    entries: Vec<RkrEntry>,
}

impl RkrResult {
    /// Builds a canonical result from arbitrary-order entries.
    pub fn from_entries(mut entries: Vec<RkrEntry>) -> Self {
        entries.sort_unstable_by_key(|e| (e.rank, e.weight));
        Self { entries }
    }

    /// The entries in canonical `(rank, weight_id)` order.
    pub fn entries(&self) -> &[RkrEntry] {
        &self.entries
    }

    /// Number of entries (equals `min(k, |W|)`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the result is empty (only for empty `W`).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The worst (largest) rank included, if any.
    pub fn max_rank(&self) -> Option<usize> {
        self.entries.last().map(|e| e.rank)
    }

    /// The ranks only, in canonical order. Useful for comparing algorithms
    /// that may tie-break differently at the cut-off boundary.
    pub fn ranks(&self) -> Vec<usize> {
        self.entries.iter().map(|e| e.rank).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtk_result_sorts_and_dedups() {
        let r = RtkResult::from_weights(vec![WeightId(3), WeightId(1), WeightId(3)]);
        assert_eq!(r.weights(), &[WeightId(1), WeightId(3)]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn rtk_result_contains() {
        let r = RtkResult::from_weights(vec![WeightId(5), WeightId(2)]);
        assert!(r.contains(WeightId(2)));
        assert!(r.contains(WeightId(5)));
        assert!(!r.contains(WeightId(3)));
    }

    #[test]
    fn rtk_empty_detection() {
        assert!(RtkResult::from_weights(vec![]).is_empty());
        assert!(!RtkResult::from_weights(vec![WeightId(0)]).is_empty());
    }

    #[test]
    fn rkr_result_canonical_order() {
        let r = RkrResult::from_entries(vec![
            RkrEntry {
                weight: WeightId(2),
                rank: 5,
            },
            RkrEntry {
                weight: WeightId(9),
                rank: 1,
            },
            RkrEntry {
                weight: WeightId(1),
                rank: 5,
            },
        ]);
        let ids: Vec<usize> = r.entries().iter().map(|e| e.weight.0).collect();
        assert_eq!(ids, vec![9, 1, 2], "rank asc, then weight id asc");
        assert_eq!(r.max_rank(), Some(5));
        assert_eq!(r.ranks(), vec![1, 5, 5]);
    }

    #[test]
    fn rkr_empty() {
        let r = RkrResult::from_entries(vec![]);
        assert!(r.is_empty());
        assert_eq!(r.max_rank(), None);
    }

    #[test]
    fn ids_order_and_hash() {
        assert!(PointId(1) < PointId(2));
        assert!(WeightId(1) < WeightId(2));
        let mut set = std::collections::HashSet::new();
        set.insert(PointId(1));
        assert!(set.contains(&PointId(1)));
    }
}
