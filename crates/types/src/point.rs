//! Owned product points and user preference vectors.
//!
//! These are convenience owned types for constructing data sets and queries.
//! Hot query loops operate on borrowed `&[f64]` slices taken from the flat
//! storage in [`crate::dataset`], so these wrappers never appear on the
//! critical path.

use crate::error::{RrqError, RrqResult};

/// Tolerance used when validating that weight components sum to 1.
pub const WEIGHT_SUM_TOLERANCE: f64 = 1e-9;

fn validate_components(values: &[f64]) -> RrqResult<()> {
    if values.is_empty() {
        return Err(RrqError::InvalidParameter {
            name: "dim",
            message: "vectors must have at least one dimension".into(),
        });
    }
    for (index, &value) in values.iter().enumerate() {
        if !value.is_finite() || value < 0.0 {
            return Err(RrqError::InvalidComponent { index, value });
        }
    }
    Ok(())
}

/// A product: a `d`-dimensional vector of non-negative scoring attributes.
///
/// Smaller attribute values are preferable (paper §1.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    values: Vec<f64>,
}

impl Point {
    /// Creates a point after validating every component is finite and
    /// non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`RrqError::InvalidComponent`] for NaN, infinite or negative
    /// components and [`RrqError::InvalidParameter`] for empty vectors.
    pub fn new(values: Vec<f64>) -> RrqResult<Self> {
        validate_components(&values)?;
        Ok(Self { values })
    }

    /// Dimensionality of the point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Borrow the attribute values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consume the point, returning the raw attribute vector.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Whether `self` dominates `other`: every attribute of `self` is
    /// strictly smaller (remember, smaller is better).
    ///
    /// This is the `p ≺ q` relation used by the `Domin` buffer of the GIR
    /// and SIM algorithms (paper Alg. 1, line 7).
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn dominates(&self, other: &Point) -> bool {
        dominates(&self.values, &other.values)
    }
}

impl AsRef<[f64]> for Point {
    fn as_ref(&self) -> &[f64] {
        &self.values
    }
}

/// Slice-level dominance test: every component of `a` strictly smaller than
/// the corresponding component of `b`.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "dominance requires equal dimensionality");
    a.iter().zip(b).all(|(x, y)| x < y)
}

/// A user preference: non-negative weights summing to 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Weight {
    values: Vec<f64>,
}

impl Weight {
    /// Creates a weighting vector after validating components and the sum
    /// constraint `Σ w[i] = 1` (within [`WEIGHT_SUM_TOLERANCE`]).
    ///
    /// # Errors
    ///
    /// Returns [`RrqError::InvalidComponent`] or
    /// [`RrqError::WeightNotNormalized`].
    pub fn new(values: Vec<f64>) -> RrqResult<Self> {
        validate_components(&values)?;
        let sum: f64 = values.iter().sum();
        if (sum - 1.0).abs() > WEIGHT_SUM_TOLERANCE {
            return Err(RrqError::WeightNotNormalized { sum });
        }
        Ok(Self { values })
    }

    /// Creates a weighting vector by normalising arbitrary non-negative
    /// values so they sum to 1.
    ///
    /// # Errors
    ///
    /// Returns [`RrqError::InvalidComponent`] for invalid components and
    /// [`RrqError::InvalidParameter`] when all components are zero.
    pub fn normalized(mut values: Vec<f64>) -> RrqResult<Self> {
        validate_components(&values)?;
        let sum: f64 = values.iter().sum();
        if sum <= 0.0 {
            return Err(RrqError::InvalidParameter {
                name: "values",
                message: "cannot normalise an all-zero weighting vector".into(),
            });
        }
        for v in &mut values {
            *v /= sum;
        }
        Ok(Self { values })
    }

    /// Uniform preference `(1/d, ..., 1/d)`.
    ///
    /// # Errors
    ///
    /// Returns [`RrqError::InvalidParameter`] if `dim == 0`.
    pub fn uniform(dim: usize) -> RrqResult<Self> {
        if dim == 0 {
            return Err(RrqError::InvalidParameter {
                name: "dim",
                message: "vectors must have at least one dimension".into(),
            });
        }
        Ok(Self {
            values: vec![1.0 / dim as f64; dim],
        })
    }

    /// Dimensionality of the weighting vector.
    #[inline]
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Borrow the weight values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consume the weight, returning the raw vector.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Number of zero components (relevant for the sparse-weight
    /// optimisation, paper §7).
    pub fn zero_count(&self) -> usize {
        self.values.iter().filter(|&&v| v == 0.0).count()
    }
}

impl AsRef<[f64]> for Weight {
    fn as_ref(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_new_accepts_valid() {
        let p = Point::new(vec![0.0, 1.5, 2.0]).unwrap();
        assert_eq!(p.dim(), 3);
        assert_eq!(p.values(), &[0.0, 1.5, 2.0]);
    }

    #[test]
    fn point_new_rejects_negative() {
        let err = Point::new(vec![0.1, -0.2]).unwrap_err();
        assert!(matches!(err, RrqError::InvalidComponent { index: 1, .. }));
    }

    #[test]
    fn point_new_rejects_nan() {
        let err = Point::new(vec![f64::NAN]).unwrap_err();
        assert!(matches!(err, RrqError::InvalidComponent { index: 0, .. }));
    }

    #[test]
    fn point_new_rejects_infinite() {
        let err = Point::new(vec![f64::INFINITY]).unwrap_err();
        assert!(matches!(err, RrqError::InvalidComponent { .. }));
    }

    #[test]
    fn point_new_rejects_empty() {
        let err = Point::new(vec![]).unwrap_err();
        assert!(matches!(err, RrqError::InvalidParameter { .. }));
    }

    #[test]
    fn dominance_strict_all_dims() {
        let a = Point::new(vec![1.0, 2.0]).unwrap();
        let b = Point::new(vec![2.0, 3.0]).unwrap();
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn dominance_requires_strict_inequality_everywhere() {
        let a = Point::new(vec![1.0, 3.0]).unwrap();
        let b = Point::new(vec![2.0, 3.0]).unwrap();
        assert!(!a.dominates(&b), "tie in one dimension breaks dominance");
    }

    #[test]
    fn dominance_is_irreflexive() {
        let a = Point::new(vec![1.0, 2.0]).unwrap();
        assert!(!a.dominates(&a));
    }

    #[test]
    #[should_panic(expected = "equal dimensionality")]
    fn dominance_panics_on_dim_mismatch() {
        dominates(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn weight_new_accepts_normalized() {
        let w = Weight::new(vec![0.25, 0.75]).unwrap();
        assert_eq!(w.dim(), 2);
    }

    #[test]
    fn weight_new_rejects_unnormalized() {
        let err = Weight::new(vec![0.2, 0.2]).unwrap_err();
        assert!(matches!(err, RrqError::WeightNotNormalized { .. }));
    }

    #[test]
    fn weight_normalized_rescales() {
        let w = Weight::normalized(vec![2.0, 6.0]).unwrap();
        assert!((w.values()[0] - 0.25).abs() < 1e-12);
        assert!((w.values()[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn weight_normalized_rejects_all_zero() {
        let err = Weight::normalized(vec![0.0, 0.0]).unwrap_err();
        assert!(matches!(err, RrqError::InvalidParameter { .. }));
    }

    #[test]
    fn weight_uniform_sums_to_one() {
        let w = Weight::uniform(7).unwrap();
        let sum: f64 = w.values().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weight_uniform_rejects_zero_dim() {
        assert!(Weight::uniform(0).is_err());
    }

    #[test]
    fn weight_zero_count() {
        let w = Weight::new(vec![0.0, 0.5, 0.0, 0.5]).unwrap();
        assert_eq!(w.zero_count(), 2);
    }

    #[test]
    fn into_values_round_trips() {
        let p = Point::new(vec![1.0, 2.0]).unwrap();
        assert_eq!(p.into_values(), vec![1.0, 2.0]);
        let w = Weight::new(vec![0.5, 0.5]).unwrap();
        assert_eq!(w.into_values(), vec![0.5, 0.5]);
    }
}
