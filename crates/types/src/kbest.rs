//! A bounded max-heap keeping the k best `(rank, weight)` pairs.
//!
//! Reverse k-ranks algorithms (paper Alg. 3 and the SIM/MPA baselines)
//! maintain "a heap structure of size k … the last rank of heap is pushed
//! out after it holds more than k elements; meanwhile `minRank` is updated
//! by the current last rank of heap". This type encapsulates that logic
//! with the workspace's canonical tie-breaking (ascending
//! `(rank, weight_id)`), so every algorithm produces identical results.

use crate::query::{RkrEntry, RkrResult, WeightId};
use std::collections::BinaryHeap;

/// Keeps the `k` smallest `(rank, weight_id)` pairs seen so far.
#[derive(Debug, Clone)]
pub struct KBestHeap {
    k: usize,
    heap: BinaryHeap<(usize, usize)>, // max-heap: worst entry on top
}

impl KBestHeap {
    /// An empty heap retaining `k` entries. `k == 0` yields an always-empty
    /// heap whose threshold rejects everything.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k.saturating_add(1)),
        }
    }

    /// The self-refining scan bound (`minRank` in the paper's Alg. 3): a
    /// candidate whose partial rank count *exceeds* this value can never
    /// enter the heap, so per-weight scans may stop counting there.
    ///
    /// While the heap is not yet full every candidate qualifies and the
    /// bound is `usize::MAX`.
    pub fn threshold(&self) -> usize {
        if self.k == 0 {
            return 0;
        }
        if self.heap.len() < self.k {
            usize::MAX
        } else {
            // rrq-lint: allow(no-unwrap-in-lib) -- len >= k > 0 on this branch, so the heap is non-empty
            self.heap.peek().expect("non-empty when full").0
        }
    }

    /// Offers a candidate; returns whether it was retained.
    pub fn offer(&mut self, rank: usize, weight: WeightId) -> bool {
        if self.k == 0 {
            return false;
        }
        let item = (rank, weight.0);
        if self.heap.len() < self.k {
            self.heap.push(item);
            return true;
        }
        // rrq-lint: allow(no-unwrap-in-lib) -- the len < k early return above leaves the heap full here
        let worst = *self.heap.peek().expect("full heap");
        if item < worst {
            self.heap.pop();
            self.heap.push(item);
            true
        } else {
            false
        }
    }

    /// The retention capacity `k` this heap was built with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether the heap holds `k` entries (so [`Self::threshold`] is a
    /// finite, data-derived bound).
    pub fn is_full(&self) -> bool {
        self.k > 0 && self.heap.len() == self.k
    }

    /// Merges another heap into this one by re-offering every retained
    /// entry, preserving the canonical `(rank, weight_id)` ordering.
    ///
    /// This is the reduction step of parallel reverse k-ranks: each worker
    /// keeps a local k-best heap over its shard of `W`; merging the shard
    /// heaps (in any order) yields exactly the heap a sequential scan of
    /// the union would have produced, because a k-best heap's content is
    /// the k lexicographically smallest pairs of whatever was offered.
    pub fn merge(&mut self, other: KBestHeap) {
        for (rank, wid) in other.heap {
            self.offer(rank, WeightId(wid));
        }
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consumes the heap into a canonical [`RkrResult`].
    pub fn into_result(self) -> RkrResult {
        RkrResult::from_entries(
            self.heap
                .into_iter()
                .map(|(rank, wid)| RkrEntry {
                    weight: WeightId(wid),
                    rank,
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest_by_rank() {
        let mut h = KBestHeap::new(2);
        assert!(h.offer(10, WeightId(0)));
        assert!(h.offer(5, WeightId(1)));
        assert!(h.offer(7, WeightId(2))); // evicts rank 10
        assert!(!h.offer(9, WeightId(3)));
        let r = h.into_result();
        assert_eq!(r.ranks(), vec![5, 7]);
    }

    #[test]
    fn threshold_is_max_until_full() {
        let mut h = KBestHeap::new(3);
        assert_eq!(h.threshold(), usize::MAX);
        h.offer(4, WeightId(0));
        h.offer(8, WeightId(1));
        assert_eq!(h.threshold(), usize::MAX);
        h.offer(6, WeightId(2));
        assert_eq!(h.threshold(), 8);
        h.offer(1, WeightId(3));
        assert_eq!(h.threshold(), 6);
    }

    #[test]
    fn tie_break_prefers_smaller_weight_id() {
        let mut h = KBestHeap::new(1);
        h.offer(5, WeightId(9));
        assert!(h.offer(5, WeightId(3)), "same rank, smaller id wins");
        assert!(!h.offer(5, WeightId(7)), "same rank, larger id loses");
        let r = h.into_result();
        assert_eq!(r.entries()[0].weight, WeightId(3));
    }

    #[test]
    fn equal_candidate_to_worst_is_rejected() {
        let mut h = KBestHeap::new(1);
        h.offer(5, WeightId(3));
        assert!(!h.offer(5, WeightId(3)));
    }

    #[test]
    fn zero_k_rejects_everything() {
        let mut h = KBestHeap::new(0);
        assert_eq!(h.threshold(), 0);
        assert!(!h.offer(0, WeightId(0)));
        assert!(h.into_result().is_empty());
    }

    #[test]
    fn underfull_heap_returns_all_entries() {
        let mut h = KBestHeap::new(10);
        h.offer(3, WeightId(0));
        h.offer(1, WeightId(1));
        assert_eq!(h.len(), 2);
        let r = h.into_result();
        assert_eq!(r.ranks(), vec![1, 3]);
    }

    #[test]
    fn merge_equals_sequential_offers() {
        // Offer one stream sequentially; offer its halves to two heaps and
        // merge. Contents must be identical — the invariant the parallel
        // query engine's shard reduction rests on.
        let stream: Vec<(usize, usize)> = (0..40)
            .map(|i| ((i * 7 + 3) % 11, i)) // ranks with plenty of ties
            .collect();
        for k in [1usize, 3, 8, 40] {
            let mut seq = KBestHeap::new(k);
            for &(r, w) in &stream {
                seq.offer(r, WeightId(w));
            }
            let mut left = KBestHeap::new(k);
            let mut right = KBestHeap::new(k);
            for &(r, w) in &stream[..20] {
                left.offer(r, WeightId(w));
            }
            for &(r, w) in &stream[20..] {
                right.offer(r, WeightId(w));
            }
            left.merge(right);
            assert_eq!(left.into_result(), seq.into_result(), "k = {k}");
        }
    }

    #[test]
    fn merge_into_empty_and_fullness() {
        let mut a = KBestHeap::new(2);
        let mut b = KBestHeap::new(2);
        b.offer(4, WeightId(0));
        b.offer(9, WeightId(1));
        assert!(b.is_full());
        assert!(!a.is_full());
        assert_eq!(a.k(), 2);
        a.merge(b);
        assert!(a.is_full());
        assert_eq!(a.into_result().ranks(), vec![4, 9]);
    }

    #[test]
    fn result_is_canonically_ordered() {
        let mut h = KBestHeap::new(4);
        h.offer(2, WeightId(5));
        h.offer(2, WeightId(1));
        h.offer(1, WeightId(9));
        h.offer(3, WeightId(0));
        let entries = h.into_result().entries().to_vec();
        let ids: Vec<usize> = entries.iter().map(|e| e.weight.0).collect();
        assert_eq!(ids, vec![9, 1, 5, 0]);
    }
}
