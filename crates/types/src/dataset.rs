//! Flat, cache-friendly storage for product and preference data sets.
//!
//! Reverse rank queries are CPU-bound (paper §1.2): the inner loop touches
//! every `(p, w)` combination, so the data layout matters. Both sets store
//! their vectors row-major in a single contiguous `Vec<f64>`; algorithms
//! borrow rows as `&[f64]` with no per-row allocation or indirection.

use crate::error::{RrqError, RrqResult};
use crate::point::{Point, Weight, WEIGHT_SUM_TOLERANCE};
use crate::query::{PointId, WeightId};

/// Row-major matrix of `len` vectors, each of dimension `dim`.
#[derive(Debug, Clone, PartialEq)]
struct FlatMatrix {
    dim: usize,
    data: Vec<f64>,
}

impl FlatMatrix {
    fn with_capacity(dim: usize, rows: usize) -> RrqResult<Self> {
        if dim == 0 {
            return Err(RrqError::InvalidParameter {
                name: "dim",
                message: "dimensionality must be positive".into(),
            });
        }
        Ok(Self {
            dim,
            data: Vec::with_capacity(dim * rows),
        })
    }

    #[inline]
    fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    #[inline]
    fn row(&self, index: usize) -> &[f64] {
        let start = index * self.dim;
        &self.data[start..start + self.dim]
    }

    fn push(&mut self, row: &[f64]) -> RrqResult<()> {
        if row.len() != self.dim {
            return Err(RrqError::DimensionMismatch {
                expected: self.dim,
                actual: row.len(),
            });
        }
        for (index, &value) in row.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(RrqError::InvalidComponent { index, value });
            }
        }
        self.data.extend_from_slice(row);
        Ok(())
    }
}

/// A data set of products (`P` in the paper).
///
/// All attribute values lie in `[0, value_range)` where `value_range` is
/// recorded at construction; the Grid-index quantiser needs this shared
/// range (paper §3.1: "all values in p must be in the same range").
#[derive(Debug, Clone, PartialEq)]
pub struct PointSet {
    matrix: FlatMatrix,
    value_range: f64,
}

impl PointSet {
    /// Creates an empty point set for `dim`-dimensional points whose
    /// attributes lie in `[0, value_range)`.
    ///
    /// # Errors
    ///
    /// Returns [`RrqError::InvalidParameter`] if `dim == 0` or
    /// `value_range` is not a positive finite number.
    pub fn new(dim: usize, value_range: f64) -> RrqResult<Self> {
        Self::with_capacity(dim, value_range, 0)
    }

    /// Like [`PointSet::new`] but pre-allocates space for `capacity` points.
    ///
    /// # Errors
    ///
    /// Same as [`PointSet::new`].
    pub fn with_capacity(dim: usize, value_range: f64, capacity: usize) -> RrqResult<Self> {
        if !value_range.is_finite() || value_range <= 0.0 {
            return Err(RrqError::InvalidParameter {
                name: "value_range",
                message: format!("must be positive and finite, got {value_range}"),
            });
        }
        Ok(Self {
            matrix: FlatMatrix::with_capacity(dim, capacity)?,
            value_range,
        })
    }

    /// Builds a point set from raw row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`RrqError::InvalidParameter`] if `data.len()` is not a
    /// multiple of `dim`, plus the validation errors of [`PointSet::push`].
    pub fn from_flat(dim: usize, value_range: f64, data: &[f64]) -> RrqResult<Self> {
        if dim == 0 || !data.len().is_multiple_of(dim) {
            return Err(RrqError::InvalidParameter {
                name: "data",
                message: format!("length {} is not a multiple of dim {dim}", data.len()),
            });
        }
        let mut set = Self::with_capacity(dim, value_range, data.len() / dim)?;
        for row in data.chunks_exact(dim) {
            set.push_slice(row)?;
        }
        Ok(set)
    }

    /// Appends a point given as a raw slice.
    ///
    /// # Errors
    ///
    /// Returns [`RrqError::DimensionMismatch`],
    /// [`RrqError::InvalidComponent`], or [`RrqError::OutOfRange`] when an
    /// attribute is `>= value_range`.
    pub fn push_slice(&mut self, values: &[f64]) -> RrqResult<()> {
        for &value in values {
            if value >= self.value_range {
                return Err(RrqError::OutOfRange {
                    value,
                    range: self.value_range,
                });
            }
        }
        self.matrix.push(values)
    }

    /// Appends an owned [`Point`].
    ///
    /// # Errors
    ///
    /// Same as [`PointSet::push_slice`].
    pub fn push(&mut self, point: &Point) -> RrqResult<()> {
        self.push_slice(point.values())
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.matrix.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.matrix.data.is_empty()
    }

    /// Dimensionality of the points.
    #[inline]
    pub fn dim(&self) -> usize {
        self.matrix.dim
    }

    /// The shared attribute value range `r`: all values lie in `[0, r)`.
    #[inline]
    pub fn value_range(&self) -> f64 {
        self.value_range
    }

    /// Borrows the attributes of point `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn point(&self, id: PointId) -> &[f64] {
        self.matrix.row(id.0)
    }

    /// Iterates over `(id, attributes)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, &[f64])> {
        self.matrix
            .data
            .chunks_exact(self.matrix.dim)
            .enumerate()
            .map(|(i, row)| (PointId(i), row))
    }

    /// Borrows the full row-major backing storage.
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.matrix.data
    }
}

/// A data set of user preferences (`W` in the paper).
///
/// Every row is a normalised weighting vector: non-negative components
/// summing to 1 within [`WEIGHT_SUM_TOLERANCE`].
#[derive(Debug, Clone, PartialEq)]
pub struct WeightSet {
    matrix: FlatMatrix,
}

impl WeightSet {
    /// Creates an empty weight set for `dim`-dimensional preferences.
    ///
    /// # Errors
    ///
    /// Returns [`RrqError::InvalidParameter`] if `dim == 0`.
    pub fn new(dim: usize) -> RrqResult<Self> {
        Self::with_capacity(dim, 0)
    }

    /// Like [`WeightSet::new`] but pre-allocates space for `capacity` rows.
    ///
    /// # Errors
    ///
    /// Returns [`RrqError::InvalidParameter`] if `dim == 0`.
    pub fn with_capacity(dim: usize, capacity: usize) -> RrqResult<Self> {
        Ok(Self {
            matrix: FlatMatrix::with_capacity(dim, capacity)?,
        })
    }

    /// Builds a weight set from raw row-major data.
    ///
    /// # Errors
    ///
    /// As [`PointSet::from_flat`], plus [`RrqError::WeightNotNormalized`].
    pub fn from_flat(dim: usize, data: &[f64]) -> RrqResult<Self> {
        if dim == 0 || !data.len().is_multiple_of(dim) {
            return Err(RrqError::InvalidParameter {
                name: "data",
                message: format!("length {} is not a multiple of dim {dim}", data.len()),
            });
        }
        let mut set = Self::with_capacity(dim, data.len() / dim)?;
        for row in data.chunks_exact(dim) {
            set.push_slice(row)?;
        }
        Ok(set)
    }

    /// Appends a weighting vector given as a raw slice.
    ///
    /// # Errors
    ///
    /// Returns [`RrqError::DimensionMismatch`],
    /// [`RrqError::InvalidComponent`], or
    /// [`RrqError::WeightNotNormalized`].
    pub fn push_slice(&mut self, values: &[f64]) -> RrqResult<()> {
        let sum: f64 = values.iter().sum();
        if (sum - 1.0).abs() > WEIGHT_SUM_TOLERANCE {
            return Err(RrqError::WeightNotNormalized { sum });
        }
        self.matrix.push(values)
    }

    /// Appends an owned [`Weight`].
    ///
    /// # Errors
    ///
    /// Same as [`WeightSet::push_slice`].
    pub fn push(&mut self, weight: &Weight) -> RrqResult<()> {
        self.push_slice(weight.values())
    }

    /// Number of weighting vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.matrix.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.matrix.data.is_empty()
    }

    /// Dimensionality of the weighting vectors.
    #[inline]
    pub fn dim(&self) -> usize {
        self.matrix.dim
    }

    /// Borrows the components of weight `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn weight(&self, id: WeightId) -> &[f64] {
        self.matrix.row(id.0)
    }

    /// Iterates over `(id, components)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (WeightId, &[f64])> {
        self.matrix
            .data
            .chunks_exact(self.matrix.dim)
            .enumerate()
            .map(|(i, row)| (WeightId(i), row))
    }

    /// Borrows the full row-major backing storage.
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.matrix.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_points() -> PointSet {
        PointSet::from_flat(2, 10.0, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn point_set_basic_accessors() {
        let ps = sample_points();
        assert_eq!(ps.len(), 3);
        assert_eq!(ps.dim(), 2);
        assert!(!ps.is_empty());
        assert_eq!(ps.point(PointId(1)), &[3.0, 4.0]);
        assert_eq!(ps.value_range(), 10.0);
    }

    #[test]
    fn point_set_iter_yields_ids_in_order() {
        let ps = sample_points();
        let ids: Vec<usize> = ps.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let rows: Vec<&[f64]> = ps.iter().map(|(_, r)| r).collect();
        assert_eq!(rows[2], &[5.0, 6.0]);
    }

    #[test]
    fn point_set_rejects_zero_dim() {
        assert!(PointSet::new(0, 1.0).is_err());
    }

    #[test]
    fn point_set_rejects_bad_range() {
        assert!(PointSet::new(2, 0.0).is_err());
        assert!(PointSet::new(2, f64::NAN).is_err());
        assert!(PointSet::new(2, -1.0).is_err());
    }

    #[test]
    fn point_set_rejects_dim_mismatch() {
        let mut ps = PointSet::new(2, 10.0).unwrap();
        let err = ps.push_slice(&[1.0, 2.0, 3.0]).unwrap_err();
        assert!(matches!(
            err,
            RrqError::DimensionMismatch {
                expected: 2,
                actual: 3
            }
        ));
    }

    #[test]
    fn point_set_rejects_out_of_range() {
        let mut ps = PointSet::new(2, 10.0).unwrap();
        let err = ps.push_slice(&[1.0, 10.0]).unwrap_err();
        assert!(matches!(err, RrqError::OutOfRange { .. }));
    }

    #[test]
    fn point_set_rejects_negative_component() {
        let mut ps = PointSet::new(2, 10.0).unwrap();
        let err = ps.push_slice(&[1.0, -0.5]).unwrap_err();
        assert!(matches!(err, RrqError::InvalidComponent { index: 1, .. }));
    }

    #[test]
    fn point_set_from_flat_rejects_ragged() {
        assert!(PointSet::from_flat(2, 10.0, &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn point_set_push_owned_point() {
        let mut ps = PointSet::new(3, 1.0).unwrap();
        ps.push(&Point::new(vec![0.1, 0.2, 0.3]).unwrap()).unwrap();
        assert_eq!(ps.len(), 1);
    }

    #[test]
    fn point_set_as_flat_round_trips() {
        let ps = sample_points();
        assert_eq!(ps.as_flat(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let ps2 = PointSet::from_flat(2, 10.0, ps.as_flat()).unwrap();
        assert_eq!(ps, ps2);
    }

    #[test]
    fn weight_set_accepts_normalized_rows() {
        let ws = WeightSet::from_flat(2, &[0.3, 0.7, 0.5, 0.5]).unwrap();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws.weight(WeightId(0)), &[0.3, 0.7]);
    }

    #[test]
    fn weight_set_rejects_unnormalized() {
        let mut ws = WeightSet::new(2).unwrap();
        let err = ws.push_slice(&[0.3, 0.3]).unwrap_err();
        assert!(matches!(err, RrqError::WeightNotNormalized { .. }));
    }

    #[test]
    fn weight_set_rejects_negative() {
        let mut ws = WeightSet::new(2).unwrap();
        let err = ws.push_slice(&[-0.5, 1.5]).unwrap_err();
        assert!(matches!(err, RrqError::InvalidComponent { index: 0, .. }));
    }

    #[test]
    fn weight_set_iter_ids_in_order() {
        let ws = WeightSet::from_flat(2, &[0.3, 0.7, 0.5, 0.5]).unwrap();
        let ids: Vec<usize> = ws.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn weight_set_push_owned_weight() {
        let mut ws = WeightSet::new(2).unwrap();
        ws.push(&Weight::new(vec![0.4, 0.6]).unwrap()).unwrap();
        assert_eq!(ws.len(), 1);
    }

    #[test]
    fn empty_sets_report_empty() {
        assert!(PointSet::new(2, 1.0).unwrap().is_empty());
        assert!(WeightSet::new(2).unwrap().is_empty());
    }
}
