//! Instrumentation counters for comparing algorithms the way the paper does.
//!
//! Wall-clock time depends on the testbed; the paper additionally reports
//! machine-independent metrics — the number of pairwise computations
//! (Figs. 11b/11d) and the fraction of visited data (Fig. 15a). Every
//! algorithm in this workspace fills a [`QueryStats`] so the benchmark
//! harness can regenerate those series exactly.

/// Counters accumulated while answering one (or more) reverse rank queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStats {
    /// Scalar multiplications spent in inner-product evaluations
    /// ("pairwise computations" in the paper).
    pub multiplications: u64,
    /// Additions spent assembling Grid-index bounds (Eqs. 3–4). GIR trades
    /// multiplications for these.
    pub bound_additions: u64,
    /// Point entries examined (original data rows touched).
    pub points_visited: u64,
    /// Weight entries examined.
    pub weights_visited: u64,
    /// `(p, w)` pairs decided by Grid-index Case 1 (`p` surely precedes `q`).
    pub filtered_case1: u64,
    /// `(p, w)` pairs decided by Grid-index Case 2 (`q` surely precedes `p`).
    pub filtered_case2: u64,
    /// `(p, w)` pairs that fell into Case 3 and required refinement with the
    /// original data.
    pub refined: u64,
    /// Pairs skipped thanks to the `Domin` dominating-point buffer.
    pub domin_skips: u64,
    /// Internal index nodes visited (R-tree algorithms).
    pub nodes_visited: u64,
    /// Leaf-level index entries accessed (R-tree algorithms; Fig. 15a).
    pub leaf_accesses: u64,
    /// Weight-histogram buckets inspected (MPA).
    pub buckets_visited: u64,
    /// Number of times a per-weight scan terminated early (rank bound hit).
    pub early_terminations: u64,
    /// Weights decided by a materialized k-th-score threshold comparison
    /// instead of a grid scan (`ThresholdIndex` short-circuit).
    pub threshold_hits: u64,
    /// Tombstoned entries (deleted points or weights) skipped during a
    /// scan over a mutable snapshot.
    pub tombstones_skipped: u64,
    /// Live appended-log entries (points or weights inserted after the
    /// base build) examined during a scan over a mutable snapshot.
    pub appended_scanned: u64,
    /// Threshold-index rows recomputed by incremental maintenance when a
    /// mutation batch was published (write-side; queries book zero).
    pub threshold_rows_repaired: u64,
    /// Snapshot epochs published by the update engine (write-side;
    /// queries book zero).
    pub epoch_published: u64,
}

impl QueryStats {
    /// A fresh all-zero counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets every counter to zero, preserving the allocation-free value
    /// semantics (the struct is `Copy`; this is for reuse ergonomics).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Accumulates another counter set into this one.
    ///
    /// Saturating: million-query sweeps aggregate counters that must not
    /// wrap. The full destructuring (no `..`) is deliberate — adding a
    /// field to the struct fails compilation here until the merge (and the
    /// [`Self::counters`] export below) handle it.
    pub fn merge(&mut self, other: &QueryStats) {
        let QueryStats {
            multiplications,
            bound_additions,
            points_visited,
            weights_visited,
            filtered_case1,
            filtered_case2,
            refined,
            domin_skips,
            nodes_visited,
            leaf_accesses,
            buckets_visited,
            early_terminations,
            threshold_hits,
            tombstones_skipped,
            appended_scanned,
            threshold_rows_repaired,
            epoch_published,
        } = *other;
        self.multiplications = self.multiplications.saturating_add(multiplications);
        self.bound_additions = self.bound_additions.saturating_add(bound_additions);
        self.points_visited = self.points_visited.saturating_add(points_visited);
        self.weights_visited = self.weights_visited.saturating_add(weights_visited);
        self.filtered_case1 = self.filtered_case1.saturating_add(filtered_case1);
        self.filtered_case2 = self.filtered_case2.saturating_add(filtered_case2);
        self.refined = self.refined.saturating_add(refined);
        self.domin_skips = self.domin_skips.saturating_add(domin_skips);
        self.nodes_visited = self.nodes_visited.saturating_add(nodes_visited);
        self.leaf_accesses = self.leaf_accesses.saturating_add(leaf_accesses);
        self.buckets_visited = self.buckets_visited.saturating_add(buckets_visited);
        self.early_terminations = self.early_terminations.saturating_add(early_terminations);
        self.threshold_hits = self.threshold_hits.saturating_add(threshold_hits);
        self.tombstones_skipped = self.tombstones_skipped.saturating_add(tombstones_skipped);
        self.appended_scanned = self.appended_scanned.saturating_add(appended_scanned);
        self.threshold_rows_repaired = self
            .threshold_rows_repaired
            .saturating_add(threshold_rows_repaired);
        self.epoch_published = self.epoch_published.saturating_add(epoch_published);
    }

    /// Merges a sequence of per-worker counter sets into one, in iteration
    /// order — the reduction step of parallel query execution. Because
    /// [`Self::merge`] is field-wise saturating addition, the result does
    /// not depend on worker completion order as long as callers iterate
    /// shards in a fixed order (worker index), which keeps merged counters
    /// bit-reproducible across same-seed runs.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a QueryStats>) -> QueryStats {
        let mut total = QueryStats::default();
        for part in parts {
            total.merge(part);
        }
        total
    }

    /// Every counter as a `(name, value)` pair — the single enumeration
    /// point exporters rely on. The destructuring keeps it in lockstep
    /// with the struct: a new field breaks compilation here.
    pub fn counters(&self) -> [(&'static str, u64); 17] {
        let QueryStats {
            multiplications,
            bound_additions,
            points_visited,
            weights_visited,
            filtered_case1,
            filtered_case2,
            refined,
            domin_skips,
            nodes_visited,
            leaf_accesses,
            buckets_visited,
            early_terminations,
            threshold_hits,
            tombstones_skipped,
            appended_scanned,
            threshold_rows_repaired,
            epoch_published,
        } = *self;
        [
            ("multiplications", multiplications),
            ("bound_additions", bound_additions),
            ("points_visited", points_visited),
            ("weights_visited", weights_visited),
            ("filtered_case1", filtered_case1),
            ("filtered_case2", filtered_case2),
            ("refined", refined),
            ("domin_skips", domin_skips),
            ("nodes_visited", nodes_visited),
            ("leaf_accesses", leaf_accesses),
            ("buckets_visited", buckets_visited),
            ("early_terminations", early_terminations),
            ("threshold_hits", threshold_hits),
            ("tombstones_skipped", tombstones_skipped),
            ("appended_scanned", appended_scanned),
            ("threshold_rows_repaired", threshold_rows_repaired),
            ("epoch_published", epoch_published),
        ]
    }

    /// Total `(p, w)` pairs the Grid-index classified (Cases 1–3).
    pub fn pairs_classified(&self) -> u64 {
        self.filtered_case1 + self.filtered_case2 + self.refined
    }

    /// Fraction of classified pairs that were filtered without refinement —
    /// the "filtering performance" `F` of the paper's §5.3. Returns `None`
    /// when nothing was classified.
    pub fn filter_rate(&self) -> Option<f64> {
        let total = self.pairs_classified();
        if total == 0 {
            None
        } else {
            Some((self.filtered_case1 + self.filtered_case2) as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_zero() {
        let s = QueryStats::new();
        assert_eq!(s.multiplications, 0);
        assert_eq!(s.pairs_classified(), 0);
        assert_eq!(s.filter_rate(), None);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = QueryStats {
            multiplications: 10,
            refined: 2,
            ..Default::default()
        };
        let b = QueryStats {
            multiplications: 5,
            filtered_case1: 7,
            leaf_accesses: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.multiplications, 15);
        assert_eq!(a.filtered_case1, 7);
        assert_eq!(a.refined, 2);
        assert_eq!(a.leaf_accesses, 3);
    }

    #[test]
    fn merged_sums_all_parts() {
        let parts = [
            QueryStats {
                multiplications: 3,
                refined: 1,
                ..Default::default()
            },
            QueryStats {
                multiplications: 4,
                domin_skips: 2,
                ..Default::default()
            },
            QueryStats::default(),
        ];
        let total = QueryStats::merged(&parts);
        assert_eq!(total.multiplications, 7);
        assert_eq!(total.refined, 1);
        assert_eq!(total.domin_skips, 2);
    }

    #[test]
    fn filter_rate_counts_both_cases() {
        let s = QueryStats {
            filtered_case1: 90,
            filtered_case2: 9,
            refined: 1,
            ..Default::default()
        };
        assert_eq!(s.pairs_classified(), 100);
        assert!((s.filter_rate().unwrap() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut s = QueryStats {
            multiplications: 1,
            bound_additions: 2,
            points_visited: 3,
            weights_visited: 4,
            filtered_case1: 5,
            filtered_case2: 6,
            refined: 7,
            domin_skips: 8,
            nodes_visited: 9,
            leaf_accesses: 10,
            buckets_visited: 11,
            early_terminations: 12,
            threshold_hits: 13,
            tombstones_skipped: 14,
            appended_scanned: 15,
            threshold_rows_repaired: 16,
            epoch_published: 17,
        };
        s.reset();
        assert_eq!(s, QueryStats::default());
    }

    #[test]
    fn merge_covers_every_field() {
        let one = QueryStats {
            multiplications: 1,
            bound_additions: 1,
            points_visited: 1,
            weights_visited: 1,
            filtered_case1: 1,
            filtered_case2: 1,
            refined: 1,
            domin_skips: 1,
            nodes_visited: 1,
            leaf_accesses: 1,
            buckets_visited: 1,
            early_terminations: 1,
            threshold_hits: 1,
            tombstones_skipped: 1,
            appended_scanned: 1,
            threshold_rows_repaired: 1,
            epoch_published: 1,
        };
        let mut acc = QueryStats::default();
        acc.merge(&one);
        acc.merge(&one);
        assert_eq!(acc.multiplications, 2);
        assert_eq!(acc.bound_additions, 2);
        assert_eq!(acc.points_visited, 2);
        assert_eq!(acc.weights_visited, 2);
        assert_eq!(acc.filtered_case1, 2);
        assert_eq!(acc.filtered_case2, 2);
        assert_eq!(acc.refined, 2);
        assert_eq!(acc.domin_skips, 2);
        assert_eq!(acc.nodes_visited, 2);
        assert_eq!(acc.leaf_accesses, 2);
        assert_eq!(acc.buckets_visited, 2);
        assert_eq!(acc.early_terminations, 2);
        assert_eq!(acc.threshold_hits, 2);
        assert_eq!(acc.tombstones_skipped, 2);
        assert_eq!(acc.appended_scanned, 2);
        assert_eq!(acc.threshold_rows_repaired, 2);
        assert_eq!(acc.epoch_published, 2);
    }
}
