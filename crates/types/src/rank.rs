//! Definition-level oracles: exact rank and exact top-k.
//!
//! These implement the paper's Definitions 1–3 literally, with no index and
//! no pruning. They are the ground truth the whole test suite compares
//! against; the optimised algorithms live in `rrq-baselines` and `rrq-core`.

use crate::dataset::PointSet;
use crate::query::PointId;
use crate::score::dot;

/// `rank(w, q)`: the number of points of `points` whose score under `w` is
/// *strictly* smaller than `f_w(q)` (paper Def. 3 commentary).
///
/// A weight `w` is a reverse top-k result for `q` iff `rank_of(..) < k`:
/// fewer than `k` points strictly precede `q`, hence `q` ties into the
/// top-k (Def. 2's `∃ p ∈ TOP_k(w): f_w(q) ≤ f_w(p)`).
///
/// # Panics
///
/// Panics in debug builds if `q`'s dimensionality differs from the set's.
pub fn rank_of(points: &PointSet, w: &[f64], q: &[f64]) -> usize {
    debug_assert_eq!(points.dim(), q.len());
    let fq = dot(w, q);
    points.iter().filter(|(_, p)| dot(w, p) < fq).count()
}

/// `TOP_k(w)`: the ids of the `k` points with the smallest scores under
/// `w`, ordered by ascending `(score, id)` (Def. 1; ties broken by id so
/// the result is deterministic).
///
/// Returns fewer than `k` entries when the set is smaller than `k`.
pub fn top_k(points: &PointSet, w: &[f64], k: usize) -> Vec<PointId> {
    let mut scored: Vec<(f64, PointId)> = points.iter().map(|(id, p)| (dot(w, p), id)).collect();
    scored.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            // rrq-lint: allow(no-unwrap-in-lib) -- data loaders reject NaN, so scores always compare
            .expect("scores are finite")
            .then(a.1.cmp(&b.1))
    });
    scored.truncate(k);
    scored.into_iter().map(|(_, id)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{PointSet, WeightSet};
    use crate::query::WeightId;

    /// The cell-phone example of the paper's Figure 1.
    fn paper_example() -> (PointSet, WeightSet) {
        let points = PointSet::from_flat(
            2,
            1.0,
            &[
                0.6, 0.7, // p1
                0.2, 0.3, // p2
                0.1, 0.6, // p3
                0.7, 0.5, // p4
                0.8, 0.2, // p5
            ],
        )
        .unwrap();
        let weights = WeightSet::from_flat(
            2,
            &[
                0.8, 0.2, // Tom
                0.3, 0.7, // Jerry
                0.9, 0.1, // Spike
            ],
        )
        .unwrap();
        (points, weights)
    }

    #[test]
    fn top2_matches_figure_1a() {
        let (points, weights) = paper_example();
        // Tom: p3, p2 — Jerry: p2, p5 — Spike: {p2, p3}. (Fig. 1(a) lists
        // Spike's top-2 as "p2,p3" but its own rank table Fig. 1(c) gives p3
        // rank 1 under Spike: 0.9·0.1+0.1·0.6 = 0.15 < 0.21 = p2's score.)
        let tom = top_k(&points, weights.weight(WeightId(0)), 2);
        assert_eq!(tom, vec![PointId(2), PointId(1)]);
        let jerry = top_k(&points, weights.weight(WeightId(1)), 2);
        assert_eq!(jerry, vec![PointId(1), PointId(4)]);
        let spike = top_k(&points, weights.weight(WeightId(2)), 2);
        assert_eq!(spike, vec![PointId(2), PointId(1)]);
    }

    #[test]
    fn ranks_match_figure_1c() {
        let (points, weights) = paper_example();
        // Figure 1(c) gives 1-based ranks; rank_of is 0-based (count of
        // strictly better points), so expect one less.
        let expected = [
            // (point, [rank in Tom, Jerry, Spike]) per Fig. 1(c)
            (0, [3, 5, 3]),
            (1, [2, 1, 2]),
            (2, [1, 3, 1]),
            (3, [4, 4, 4]),
            (4, [5, 2, 5]),
        ];
        for (pid, ranks) in expected {
            let q = points.point(PointId(pid)).to_vec();
            for (wid, &paper_rank) in ranks.iter().enumerate() {
                let r = rank_of(&points, weights.weight(WeightId(wid)), &q);
                assert_eq!(r, paper_rank - 1, "point p{} under weight {}", pid + 1, wid);
            }
        }
    }

    #[test]
    fn rank_is_zero_for_best_point() {
        let (points, weights) = paper_example();
        // p2 is Jerry's favourite.
        let q = points.point(PointId(1)).to_vec();
        assert_eq!(rank_of(&points, weights.weight(WeightId(1)), &q), 0);
    }

    #[test]
    fn rank_counts_strictly_better_only() {
        let points = PointSet::from_flat(1, 10.0, &[1.0, 2.0, 2.0, 3.0]).unwrap();
        let w = [1.0];
        // q scores 2.0; only the 1.0 point is strictly better.
        assert_eq!(rank_of(&points, &w, &[2.0]), 1);
    }

    #[test]
    fn rank_of_external_query_point() {
        let points = PointSet::from_flat(1, 10.0, &[1.0, 3.0, 5.0]).unwrap();
        let w = [1.0];
        assert_eq!(rank_of(&points, &w, &[0.5]), 0);
        assert_eq!(rank_of(&points, &w, &[4.0]), 2);
        assert_eq!(rank_of(&points, &w, &[9.0]), 3);
    }

    #[test]
    fn top_k_truncates_to_set_size() {
        let points = PointSet::from_flat(1, 10.0, &[1.0, 2.0]).unwrap();
        assert_eq!(top_k(&points, &[1.0], 5).len(), 2);
    }

    #[test]
    fn top_k_zero_is_empty() {
        let (points, weights) = paper_example();
        assert!(top_k(&points, weights.weight(WeightId(0)), 0).is_empty());
    }

    #[test]
    fn top_k_tie_breaks_by_id() {
        let points = PointSet::from_flat(1, 10.0, &[2.0, 1.0, 2.0]).unwrap();
        let got = top_k(&points, &[1.0], 3);
        assert_eq!(got, vec![PointId(1), PointId(0), PointId(2)]);
    }

    #[test]
    fn top_k_is_prefix_closed() {
        let (points, weights) = paper_example();
        let w = weights.weight(WeightId(0));
        let t3 = top_k(&points, w, 3);
        let t2 = top_k(&points, w, 2);
        assert_eq!(&t3[..2], &t2[..]);
    }
}
