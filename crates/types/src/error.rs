//! Error type shared by the reverse rank query crates.

use std::fmt;

/// Convenience alias for results returned by this workspace.
pub type RrqResult<T> = Result<T, RrqError>;

/// Errors raised while constructing data sets, indexes or queries.
#[derive(Debug, Clone, PartialEq)]
pub enum RrqError {
    /// A vector had a different dimensionality than the data set it was
    /// inserted into or queried against.
    DimensionMismatch {
        /// Dimensionality the container expects.
        expected: usize,
        /// Dimensionality that was supplied.
        actual: usize,
    },
    /// A vector contained a negative, NaN or infinite component.
    InvalidComponent {
        /// Index of the offending component.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A weighting vector's components do not sum to 1 (within tolerance).
    WeightNotNormalized {
        /// The actual component sum.
        sum: f64,
    },
    /// A parameter was outside its valid domain (e.g. `k = 0`, `dim = 0`).
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// An operation required a non-empty data set.
    EmptyDataset,
    /// An attribute value fell outside the declared value range of an index.
    OutOfRange {
        /// The offending value.
        value: f64,
        /// Upper end of the accepted range (lower end is 0).
        range: f64,
    },
    /// A persisted artifact could not be read from or written to disk.
    ArtifactIo {
        /// The failing operation (`"read"`, `"write"`, ...).
        op: &'static str,
        /// The underlying OS error, stringified.
        message: String,
    },
    /// A persisted artifact's magic bytes did not match the expected
    /// format tag — the file is not an artifact of this kind at all.
    ArtifactBadMagic {
        /// The magic the reader expected, e.g. `"RRQA"`.
        expected: &'static str,
    },
    /// A persisted artifact carries a format version this build does not
    /// understand (stale snapshot or newer writer).
    ArtifactBadVersion {
        /// Version the reader supports.
        expected: u16,
        /// Version found in the file.
        actual: u16,
    },
    /// A persisted artifact is shorter or longer than its header declares.
    ArtifactTruncated {
        /// Bytes the header implies.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// A persisted artifact's payload checksum did not match the header —
    /// the file was corrupted after it was written.
    ArtifactChecksum {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum recomputed over the payload.
        actual: u64,
    },
    /// A persisted artifact is internally consistent but was built from
    /// different data than it is being attached to (stale artifact).
    ArtifactStale {
        /// What disagrees, e.g. `"data fingerprint"`.
        what: &'static str,
    },
}

impl fmt::Display for RrqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RrqError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            RrqError::InvalidComponent { index, value } => {
                write!(f, "invalid component at index {index}: {value}")
            }
            RrqError::WeightNotNormalized { sum } => {
                write!(f, "weighting vector components sum to {sum}, expected 1")
            }
            RrqError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            RrqError::EmptyDataset => write!(f, "operation requires a non-empty data set"),
            RrqError::OutOfRange { value, range } => {
                write!(f, "value {value} outside accepted range [0, {range})")
            }
            RrqError::ArtifactIo { op, message } => {
                write!(f, "artifact {op} failed: {message}")
            }
            RrqError::ArtifactBadMagic { expected } => {
                write!(f, "artifact rejected: magic bytes are not `{expected}`")
            }
            RrqError::ArtifactBadVersion { expected, actual } => {
                write!(
                    f,
                    "artifact rejected: format version {actual}, reader supports {expected}"
                )
            }
            RrqError::ArtifactTruncated { expected, actual } => {
                write!(
                    f,
                    "artifact rejected: {actual} bytes on disk, header declares {expected}"
                )
            }
            RrqError::ArtifactChecksum { expected, actual } => {
                write!(
                    f,
                    "artifact rejected: payload checksum {actual:#018x}, header records {expected:#018x}"
                )
            }
            RrqError::ArtifactStale { what } => {
                write!(f, "artifact rejected as stale: {what} does not match")
            }
        }
    }
}

impl std::error::Error for RrqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = RrqError::DimensionMismatch {
            expected: 3,
            actual: 5,
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 3, got 5");
    }

    #[test]
    fn display_invalid_component() {
        let e = RrqError::InvalidComponent {
            index: 2,
            value: f64::NAN,
        };
        assert!(e.to_string().contains("index 2"));
    }

    #[test]
    fn display_weight_not_normalized() {
        let e = RrqError::WeightNotNormalized { sum: 0.5 };
        assert!(e.to_string().contains("0.5"));
    }

    #[test]
    fn display_invalid_parameter() {
        let e = RrqError::InvalidParameter {
            name: "k",
            message: "must be positive".into(),
        };
        assert!(e.to_string().contains('k'));
        assert!(e.to_string().contains("must be positive"));
    }

    #[test]
    fn display_empty_dataset() {
        assert!(RrqError::EmptyDataset.to_string().contains("non-empty"));
    }

    #[test]
    fn display_out_of_range() {
        let e = RrqError::OutOfRange {
            value: 12.0,
            range: 10.0,
        };
        assert!(e.to_string().contains("12"));
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn display_artifact_family() {
        let e = RrqError::ArtifactIo {
            op: "read",
            message: "no such file".into(),
        };
        assert!(e.to_string().contains("read"));
        let e = RrqError::ArtifactBadMagic { expected: "RRQA" };
        assert!(e.to_string().contains("RRQA"));
        let e = RrqError::ArtifactBadVersion {
            expected: 2,
            actual: 1,
        };
        assert!(e.to_string().contains("version 1"));
        assert!(e.to_string().contains("supports 2"));
        let e = RrqError::ArtifactTruncated {
            expected: 100,
            actual: 60,
        };
        assert!(e.to_string().contains("60 bytes"));
        assert!(e.to_string().contains("100"));
        let e = RrqError::ArtifactChecksum {
            expected: 0xdead,
            actual: 0xbeef,
        };
        assert!(e.to_string().contains("checksum"));
        let e = RrqError::ArtifactStale {
            what: "data fingerprint",
        };
        assert!(e.to_string().contains("stale"));
        assert!(e.to_string().contains("data fingerprint"));
    }

    #[test]
    fn error_trait_object_compatible() {
        let e: Box<dyn std::error::Error> = Box::new(RrqError::EmptyDataset);
        assert!(e.to_string().contains("non-empty"));
    }
}
