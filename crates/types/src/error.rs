//! Error type shared by the reverse rank query crates.

use std::fmt;

/// Convenience alias for results returned by this workspace.
pub type RrqResult<T> = Result<T, RrqError>;

/// Errors raised while constructing data sets, indexes or queries.
#[derive(Debug, Clone, PartialEq)]
pub enum RrqError {
    /// A vector had a different dimensionality than the data set it was
    /// inserted into or queried against.
    DimensionMismatch {
        /// Dimensionality the container expects.
        expected: usize,
        /// Dimensionality that was supplied.
        actual: usize,
    },
    /// A vector contained a negative, NaN or infinite component.
    InvalidComponent {
        /// Index of the offending component.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A weighting vector's components do not sum to 1 (within tolerance).
    WeightNotNormalized {
        /// The actual component sum.
        sum: f64,
    },
    /// A parameter was outside its valid domain (e.g. `k = 0`, `dim = 0`).
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// An operation required a non-empty data set.
    EmptyDataset,
    /// An attribute value fell outside the declared value range of an index.
    OutOfRange {
        /// The offending value.
        value: f64,
        /// Upper end of the accepted range (lower end is 0).
        range: f64,
    },
}

impl fmt::Display for RrqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RrqError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            RrqError::InvalidComponent { index, value } => {
                write!(f, "invalid component at index {index}: {value}")
            }
            RrqError::WeightNotNormalized { sum } => {
                write!(f, "weighting vector components sum to {sum}, expected 1")
            }
            RrqError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            RrqError::EmptyDataset => write!(f, "operation requires a non-empty data set"),
            RrqError::OutOfRange { value, range } => {
                write!(f, "value {value} outside accepted range [0, {range})")
            }
        }
    }
}

impl std::error::Error for RrqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = RrqError::DimensionMismatch {
            expected: 3,
            actual: 5,
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 3, got 5");
    }

    #[test]
    fn display_invalid_component() {
        let e = RrqError::InvalidComponent {
            index: 2,
            value: f64::NAN,
        };
        assert!(e.to_string().contains("index 2"));
    }

    #[test]
    fn display_weight_not_normalized() {
        let e = RrqError::WeightNotNormalized { sum: 0.5 };
        assert!(e.to_string().contains("0.5"));
    }

    #[test]
    fn display_invalid_parameter() {
        let e = RrqError::InvalidParameter {
            name: "k",
            message: "must be positive".into(),
        };
        assert!(e.to_string().contains('k'));
        assert!(e.to_string().contains("must be positive"));
    }

    #[test]
    fn display_empty_dataset() {
        assert!(RrqError::EmptyDataset.to_string().contains("non-empty"));
    }

    #[test]
    fn display_out_of_range() {
        let e = RrqError::OutOfRange {
            value: 12.0,
            range: 10.0,
        };
        assert!(e.to_string().contains("12"));
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_trait_object_compatible() {
        let e: Box<dyn std::error::Error> = Box::new(RrqError::EmptyDataset);
        assert!(e.to_string().contains("non-empty"));
    }
}
