//! Algorithm traits shared by baseline and Grid-index implementations.
//!
//! Every reverse rank algorithm in the workspace answers the two queries
//! of the paper through these traits, so the benchmark harness and the
//! cross-checking test suite can treat NAIVE, SIM, BBR, MPA and GIR
//! uniformly.

use crate::metrics::QueryStats;
use crate::query::{RkrResult, RtkResult};
use rrq_obs::Recorder;

/// An algorithm answering reverse top-k queries (paper Def. 2).
pub trait RtkQuery {
    /// Short display name ("SIM", "BBR", "GIR", …).
    fn name(&self) -> &'static str;

    /// Returns every weighting vector that ranks `q` within its top-k.
    ///
    /// Implementations must agree with the definition-level semantics:
    /// `w` is in the result iff fewer than `k` points of `P` score
    /// strictly below `f_w(q)`. `stats` accumulates instrumentation.
    fn reverse_top_k(&self, q: &[f64], k: usize, stats: &mut QueryStats) -> RtkResult;

    /// Like [`RtkQuery::reverse_top_k`], but additionally reports
    /// hierarchical phase timings (quantize / filter / refine / heap) to
    /// `rec`. The default ignores the recorder, so existing algorithms
    /// stay correct; instrumented algorithms override this and implement
    /// the untraced method as the `NoopRecorder` specialisation.
    fn reverse_top_k_traced(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &dyn Recorder,
    ) -> RtkResult {
        let _ = rec;
        self.reverse_top_k(q, k, stats)
    }

    /// Answers a batch of queries, accumulating instrumentation across
    /// the whole batch. A convenience over [`RtkQuery::reverse_top_k`];
    /// implementations with cross-query state may override it.
    fn reverse_top_k_batch(
        &self,
        queries: &[impl AsRef<[f64]>],
        k: usize,
        stats: &mut QueryStats,
    ) -> Vec<RtkResult>
    where
        Self: Sized,
    {
        queries
            .iter()
            .map(|q| self.reverse_top_k(q.as_ref(), k, stats))
            .collect()
    }
}

/// An algorithm answering reverse k-ranks queries (paper Def. 3).
pub trait RkrQuery {
    /// Short display name ("SIM", "MPA", "GIR", …).
    fn name(&self) -> &'static str;

    /// Returns the `k` weighting vectors ranking `q` best.
    ///
    /// Canonical tie-breaking: the result is the `k` smallest pairs under
    /// ascending `(rank(w, q), weight_id)` order, so every implementation
    /// returns byte-identical results. `stats` accumulates
    /// instrumentation.
    fn reverse_k_ranks(&self, q: &[f64], k: usize, stats: &mut QueryStats) -> RkrResult;

    /// Like [`RkrQuery::reverse_k_ranks`], but additionally reports
    /// hierarchical phase timings to `rec`. The default ignores the
    /// recorder; instrumented algorithms override it.
    fn reverse_k_ranks_traced(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &dyn Recorder,
    ) -> RkrResult {
        let _ = rec;
        self.reverse_k_ranks(q, k, stats)
    }

    /// Answers a batch of queries, accumulating instrumentation across
    /// the whole batch.
    fn reverse_k_ranks_batch(
        &self,
        queries: &[impl AsRef<[f64]>],
        k: usize,
        stats: &mut QueryStats,
    ) -> Vec<RkrResult>
    where
        Self: Sized,
    {
        queries
            .iter()
            .map(|q| self.reverse_k_ranks(q.as_ref(), k, stats))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{RkrEntry, WeightId};

    /// A stub algorithm answering from canned data, to pin the default
    /// batch implementations.
    struct Canned;

    impl RtkQuery for Canned {
        fn name(&self) -> &'static str {
            "CANNED"
        }
        fn reverse_top_k(&self, q: &[f64], _k: usize, stats: &mut QueryStats) -> RtkResult {
            stats.weights_visited += 1;
            RtkResult::from_weights(vec![WeightId(q.len())])
        }
    }

    impl RkrQuery for Canned {
        fn name(&self) -> &'static str {
            "CANNED"
        }
        fn reverse_k_ranks(&self, q: &[f64], _k: usize, stats: &mut QueryStats) -> RkrResult {
            stats.weights_visited += 1;
            RkrResult::from_entries(vec![RkrEntry {
                weight: WeightId(q.len()),
                rank: 0,
            }])
        }
    }

    #[test]
    fn batch_helpers_map_over_queries() {
        let alg = Canned;
        let queries = vec![vec![0.0; 2], vec![0.0; 5]];
        let mut stats = QueryStats::default();
        let rtk = alg.reverse_top_k_batch(&queries, 3, &mut stats);
        assert_eq!(rtk.len(), 2);
        assert!(rtk[0].contains(WeightId(2)));
        assert!(rtk[1].contains(WeightId(5)));
        let rkr = alg.reverse_k_ranks_batch(&queries, 3, &mut stats);
        assert_eq!(rkr[1].entries()[0].weight, WeightId(5));
        assert_eq!(stats.weights_visited, 4, "stats accumulate across batch");
    }

    #[test]
    fn traced_defaults_fall_back_to_untraced() {
        let alg = Canned;
        let q = vec![0.0; 3];
        let rec = rrq_obs::MetricsRecorder::new();
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        assert_eq!(
            alg.reverse_top_k_traced(&q, 2, &mut s1, &rec),
            alg.reverse_top_k(&q, 2, &mut s2)
        );
        assert_eq!(
            RkrQuery::reverse_k_ranks_traced(&alg, &q, 2, &mut s1, &rec),
            RkrQuery::reverse_k_ranks(&alg, &q, 2, &mut s2)
        );
        assert!(rec.span_tree().roots.is_empty(), "default records nothing");
    }
}
