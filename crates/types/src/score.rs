//! The scoring function `f_w(p)` and its instrumented variant.
//!
//! The paper's central observation (§1.2) is that reverse rank query cost is
//! dominated by the *pairwise multiplications* of this inner product, so all
//! algorithms report how many they performed via [`crate::QueryStats`].

use crate::metrics::QueryStats;

/// Inner product `Σ w[i]·p[i]` — the score of point `p` under preference
/// `w` (paper Table 1). Lower is better.
///
/// # Panics
///
/// Panics in debug builds if the slice lengths differ.
#[inline]
pub fn dot(w: &[f64], p: &[f64]) -> f64 {
    debug_assert_eq!(w.len(), p.len());
    // `zip` elides the bounds checks of an indexed loop, which is what
    // lets LLVM vectorise this kernel.
    w.iter().zip(p).map(|(a, b)| a * b).sum()
}

/// [`dot`] plus instrumentation: records the `d` multiplications the
/// evaluation costs into `stats` (paper Figs. 11b/11d count exactly these).
#[inline]
pub fn dot_counted(w: &[f64], p: &[f64], stats: &mut QueryStats) -> f64 {
    stats.multiplications += w.len() as u64;
    dot(w, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_hand_computation() {
        // Tom's score for p1 in the paper's Fig. 1: 0.6*0.8 + 0.7*0.2 = 0.62.
        let score = dot(&[0.8, 0.2], &[0.6, 0.7]);
        assert!((score - 0.62).abs() < 1e-12);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_is_symmetric_in_arguments() {
        let w = [0.1, 0.4, 0.5];
        let p = [2.0, 3.0, 4.0];
        assert_eq!(dot(&w, &p), dot(&p, &w));
    }

    #[test]
    fn dot_counted_accumulates_multiplications() {
        let mut stats = QueryStats::default();
        dot_counted(&[0.5, 0.5], &[1.0, 2.0], &mut stats);
        dot_counted(&[0.5, 0.5], &[3.0, 4.0], &mut stats);
        assert_eq!(stats.multiplications, 4);
    }

    #[test]
    fn dot_counted_returns_same_value_as_dot() {
        let mut stats = QueryStats::default();
        let w = [0.2, 0.3, 0.5];
        let p = [1.0, 2.0, 3.0];
        assert_eq!(dot_counted(&w, &p, &mut stats), dot(&w, &p));
    }
}
