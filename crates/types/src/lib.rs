//! Core types for reverse rank query processing.
//!
//! This crate defines the vocabulary shared by every algorithm in the
//! workspace: products ([`Point`]), user preferences ([`Weight`]), flat
//! row-major data sets ([`PointSet`], [`WeightSet`]), the scoring function
//! (the inner product `f_w(p) = Σ w[i]·p[i]`, lower is better), exact
//! definition-level oracles ([`rank::rank_of`], [`rank::top_k`]), query
//! result types, and instrumentation counters ([`metrics::QueryStats`])
//! used to report the machine-independent metrics of the paper (number of
//! pairwise multiplications, visited data).
//!
//! Conventions (fixed across the whole workspace, following Dong et al.,
//! EDBT 2017, §1.1):
//!
//! * Attribute values are non-negative and *minimum values are preferable*:
//!   a smaller score means a better (higher) rank.
//! * A weighting vector has non-negative components summing to 1.
//! * `rank(w, q)` is the number of points of `P` whose score is *strictly*
//!   smaller than `f_w(q)`; a weight `w` is a reverse top-k result for `q`
//!   iff `rank(w, q) < k`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod dataset;
pub mod error;
pub mod kbest;
pub mod metrics;
pub mod point;
pub mod query;
pub mod rank;
pub mod score;

pub use algorithm::{RkrQuery, RtkQuery};
pub use dataset::{PointSet, WeightSet};
pub use error::{RrqError, RrqResult};
pub use kbest::KBestHeap;
pub use metrics::QueryStats;
pub use point::{Point, Weight};
pub use query::{PointId, RkrEntry, RkrResult, RtkResult, WeightId};
pub use rank::{rank_of, top_k};
pub use score::{dot, dot_counted};
