//! Property-based tests for the core invariants of `rrq-types`.

use proptest::prelude::*;
use rrq_types::{dot, rank_of, top_k, PointSet, QueryStats, WeightId, WeightSet};

/// Strategy: a dimension plus a batch of points in `[0, range)`.
fn points_strategy(max_points: usize) -> impl Strategy<Value = (usize, Vec<Vec<f64>>)> {
    (1usize..6).prop_flat_map(move |dim| {
        (
            Just(dim),
            prop::collection::vec(
                prop::collection::vec(0.0f64..100.0, dim),
                1..max_points,
            ),
        )
    })
}

fn build_point_set(dim: usize, rows: &[Vec<f64>]) -> PointSet {
    let mut ps = PointSet::with_capacity(dim, 100.0, rows.len()).unwrap();
    for row in rows {
        ps.push_slice(row).unwrap();
    }
    ps
}

proptest! {
    /// dot is bilinear in each argument: dot(w, a+b) = dot(w,a) + dot(w,b).
    #[test]
    fn dot_is_additive(
        (dim, rows) in points_strategy(4).prop_filter("need 2 rows", |(_, r)| r.len() >= 2),
    ) {
        let w: Vec<f64> = (0..dim).map(|i| (i + 1) as f64).collect();
        let a = &rows[0];
        let b = &rows[1];
        let sum: Vec<f64> = a.iter().zip(b).map(|(x, y)| x + y).collect();
        let lhs = dot(&w, &sum);
        let rhs = dot(&w, a) + dot(&w, b);
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }

    /// Every point of the set has rank < |P| and rank counts are consistent
    /// with the top-k ordering.
    #[test]
    fn rank_is_bounded_by_set_size((dim, rows) in points_strategy(32)) {
        let ps = build_point_set(dim, &rows);
        let w: Vec<f64> = {
            let mut v: Vec<f64> = (1..=dim).map(|i| i as f64).collect();
            let s: f64 = v.iter().sum();
            for x in &mut v { *x /= s; }
            v
        };
        for (_, p) in ps.iter() {
            let r = rank_of(&ps, &w, p);
            prop_assert!(r < ps.len());
        }
    }

    /// top_k is prefix-closed: top_{k} is a prefix of top_{k+1}.
    #[test]
    fn top_k_prefix_closed((dim, rows) in points_strategy(32), wseed in 1u64..1000) {
        let ps = build_point_set(dim, &rows);
        let w: Vec<f64> = {
            // Simple deterministic weight from the seed.
            let mut v: Vec<f64> = (0..dim).map(|i| ((wseed + i as u64) % 7 + 1) as f64).collect();
            let s: f64 = v.iter().sum();
            for x in &mut v { *x /= s; }
            v
        };
        let k = ps.len().min(5);
        let big = top_k(&ps, &w, k);
        for j in 0..k {
            let small = top_k(&ps, &w, j);
            prop_assert_eq!(&big[..j], &small[..]);
        }
    }

    /// Members of top_k(w) have rank < k... more precisely, the i-th entry
    /// of top_k has rank <= i (strictly-better count can be smaller under
    /// ties but never larger).
    #[test]
    fn top_k_members_have_small_rank((dim, rows) in points_strategy(32)) {
        let ps = build_point_set(dim, &rows);
        let w: Vec<f64> = {
            let mut v = vec![1.0; dim];
            let s: f64 = v.iter().sum();
            for x in &mut v { *x /= s; }
            v
        };
        let k = ps.len().min(4);
        for (i, id) in top_k(&ps, &w, k).into_iter().enumerate() {
            let r = rank_of(&ps, &w, ps.point(id));
            prop_assert!(r <= i, "entry {i} has rank {r}");
        }
    }

    /// WeightSet round-trips rows exactly.
    #[test]
    fn weight_set_round_trip(dim in 1usize..6, n in 1usize..20, seed in 0u64..1000) {
        let mut flat = Vec::new();
        for row in 0..n {
            let mut v: Vec<f64> = (0..dim)
                .map(|i| (((seed + row as u64 * 31 + i as u64 * 7) % 13) + 1) as f64)
                .collect();
            let s: f64 = v.iter().sum();
            for x in &mut v { *x /= s; }
            flat.extend_from_slice(&v);
        }
        let ws = WeightSet::from_flat(dim, &flat).unwrap();
        prop_assert_eq!(ws.len(), n);
        for (id, row) in ws.iter() {
            prop_assert_eq!(row, &flat[id.0 * dim..(id.0 + 1) * dim]);
        }
        let _ = ws.weight(WeightId(n - 1));
    }

    /// Merging stats is associative with respect to the aggregate counters.
    #[test]
    fn stats_merge_associative(a in 0u64..1000, b in 0u64..1000, c in 0u64..1000) {
        let mk = |m: u64| QueryStats { multiplications: m, filtered_case1: m / 2, refined: m / 3, ..Default::default() };
        let (sa, sb, sc) = (mk(a), mk(b), mk(c));
        let mut left = sa;
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb;
        bc.merge(&sc);
        let mut right = sa;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }
}
