//! Property-style tests for the core invariants of `rrq-types`, driven by
//! seeded deterministic parameter sweeps (the offline build has no
//! `proptest`; cases come from `rrq-data`'s PRNG instead).

use rrq_data::rng::{Rng, StdRng};
use rrq_types::{dot, rank_of, top_k, PointSet, QueryStats, WeightId, WeightSet};

const CASES: usize = 64;

/// Draws a dimension plus a batch of points in `[0, 100)`.
fn random_points(rng: &mut StdRng, max_points: usize, min_points: usize) -> (usize, Vec<Vec<f64>>) {
    let dim = rng.gen_range(1..6);
    let n = rng.gen_range(min_points..max_points);
    let rows = (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_f64() * 100.0).collect())
        .collect();
    (dim, rows)
}

fn build_point_set(dim: usize, rows: &[Vec<f64>]) -> PointSet {
    let mut ps = PointSet::with_capacity(dim, 100.0, rows.len()).unwrap();
    for row in rows {
        ps.push_slice(row).unwrap();
    }
    ps
}

/// dot is bilinear in each argument: dot(w, a+b) = dot(w,a) + dot(w,b).
#[test]
fn dot_is_additive() {
    let mut rng = StdRng::seed_from_u64(0x7E57_0001);
    for _ in 0..CASES {
        let (dim, rows) = random_points(&mut rng, 4, 2);
        let w: Vec<f64> = (0..dim).map(|i| (i + 1) as f64).collect();
        let a = &rows[0];
        let b = &rows[1];
        let sum: Vec<f64> = a.iter().zip(b).map(|(x, y)| x + y).collect();
        let lhs = dot(&w, &sum);
        let rhs = dot(&w, a) + dot(&w, b);
        assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }
}

/// Every point of the set has rank < |P| and rank counts are consistent
/// with the top-k ordering.
#[test]
fn rank_is_bounded_by_set_size() {
    let mut rng = StdRng::seed_from_u64(0x7E57_0002);
    for _ in 0..CASES {
        let (dim, rows) = random_points(&mut rng, 32, 1);
        let ps = build_point_set(dim, &rows);
        let w: Vec<f64> = {
            let mut v: Vec<f64> = (1..=dim).map(|i| i as f64).collect();
            let s: f64 = v.iter().sum();
            for x in &mut v {
                *x /= s;
            }
            v
        };
        for (_, p) in ps.iter() {
            let r = rank_of(&ps, &w, p);
            assert!(r < ps.len());
        }
    }
}

/// top_k is prefix-closed: top_{k} is a prefix of top_{k+1}.
#[test]
fn top_k_prefix_closed() {
    let mut rng = StdRng::seed_from_u64(0x7E57_0003);
    for _ in 0..CASES {
        let (dim, rows) = random_points(&mut rng, 32, 1);
        let wseed = 1 + rng.gen_range(0..999) as u64;
        let ps = build_point_set(dim, &rows);
        let w: Vec<f64> = {
            // Simple deterministic weight from the seed.
            let mut v: Vec<f64> = (0..dim)
                .map(|i| ((wseed + i as u64) % 7 + 1) as f64)
                .collect();
            let s: f64 = v.iter().sum();
            for x in &mut v {
                *x /= s;
            }
            v
        };
        let k = ps.len().min(5);
        let big = top_k(&ps, &w, k);
        for j in 0..k {
            let small = top_k(&ps, &w, j);
            assert_eq!(&big[..j], &small[..]);
        }
    }
}

/// Members of top_k(w) have rank < k... more precisely, the i-th entry of
/// top_k has rank <= i (strictly-better count can be smaller under ties
/// but never larger).
#[test]
fn top_k_members_have_small_rank() {
    let mut rng = StdRng::seed_from_u64(0x7E57_0004);
    for _ in 0..CASES {
        let (dim, rows) = random_points(&mut rng, 32, 1);
        let ps = build_point_set(dim, &rows);
        let w: Vec<f64> = {
            let mut v = vec![1.0; dim];
            let s: f64 = v.iter().sum();
            for x in &mut v {
                *x /= s;
            }
            v
        };
        let k = ps.len().min(4);
        for (i, id) in top_k(&ps, &w, k).into_iter().enumerate() {
            let r = rank_of(&ps, &w, ps.point(id));
            assert!(r <= i, "entry {i} has rank {r}");
        }
    }
}

/// WeightSet round-trips rows exactly.
#[test]
fn weight_set_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x7E57_0005);
    for _ in 0..CASES {
        let dim = rng.gen_range(1..6);
        let n = rng.gen_range(1..20);
        let seed = rng.gen_range(0..1000) as u64;
        let mut flat = Vec::new();
        for row in 0..n {
            let mut v: Vec<f64> = (0..dim)
                .map(|i| (((seed + row as u64 * 31 + i as u64 * 7) % 13) + 1) as f64)
                .collect();
            let s: f64 = v.iter().sum();
            for x in &mut v {
                *x /= s;
            }
            flat.extend_from_slice(&v);
        }
        let ws = WeightSet::from_flat(dim, &flat).unwrap();
        assert_eq!(ws.len(), n);
        for (id, row) in ws.iter() {
            assert_eq!(row, &flat[id.0 * dim..(id.0 + 1) * dim]);
        }
        let _ = ws.weight(WeightId(n - 1));
    }
}

/// Merging stats is associative with respect to the aggregate counters.
#[test]
fn stats_merge_associative() {
    let mut rng = StdRng::seed_from_u64(0x7E57_0006);
    for _ in 0..CASES {
        let (a, b, c) = (
            rng.gen_range(0..1000) as u64,
            rng.gen_range(0..1000) as u64,
            rng.gen_range(0..1000) as u64,
        );
        let mk = |m: u64| QueryStats {
            multiplications: m,
            filtered_case1: m / 2,
            refined: m / 3,
            ..Default::default()
        };
        let (sa, sb, sc) = (mk(a), mk(b), mk(c));
        let mut left = sa;
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb;
        bc.merge(&sc);
        let mut right = sa;
        right.merge(&bc);
        assert_eq!(left, right);
    }
}

/// Merge saturates instead of wrapping when counters approach u64::MAX
/// (long sweeps aggregate millions of per-query stats).
#[test]
fn stats_merge_saturates() {
    let big = QueryStats {
        multiplications: u64::MAX - 5,
        ..Default::default()
    };
    let mut acc = big;
    acc.merge(&big);
    assert_eq!(acc.multiplications, u64::MAX);
}

/// The counters export names every field exactly once, so exporters can
/// rely on it as the single enumeration point.
#[test]
fn stats_counters_export_is_complete() {
    let stats = QueryStats {
        multiplications: 1,
        bound_additions: 2,
        points_visited: 3,
        weights_visited: 4,
        filtered_case1: 5,
        filtered_case2: 6,
        refined: 7,
        domin_skips: 8,
        nodes_visited: 9,
        leaf_accesses: 10,
        buckets_visited: 11,
        early_terminations: 12,
        threshold_hits: 13,
        tombstones_skipped: 14,
        appended_scanned: 15,
        threshold_rows_repaired: 16,
        epoch_published: 17,
    };
    let counters = stats.counters();
    assert_eq!(counters.len(), 17, "one entry per field");
    let mut names: Vec<&str> = counters.iter().map(|(n, _)| *n).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), 17, "names are distinct");
    let values: Vec<u64> = counters.iter().map(|&(_, v)| v).collect();
    let mut sorted = values.clone();
    sorted.sort_unstable();
    assert_eq!(
        sorted,
        (1..=17).collect::<Vec<u64>>(),
        "all values exported"
    );
}
