//! Property-based tests for the k-best heap: it must agree with the
//! sort-and-truncate oracle on arbitrary offer sequences, and its
//! threshold must be a safe early-termination bound.

use proptest::prelude::*;
use rrq_types::{KBestHeap, WeightId};

proptest! {
    /// The heap retains exactly the k smallest (rank, id) pairs of a
    /// duplicate-free offer sequence, in canonical order.
    #[test]
    fn heap_equals_sort_truncate(
        raw in prop::collection::vec((0usize..1000, 0usize..500), 0..200),
        k in 0usize..50,
    ) {
        let mut oracle: Vec<(usize, usize)> = raw.clone();
        oracle.sort_unstable();
        oracle.dedup();
        let mut heap = KBestHeap::new(k);
        for &(rank, id) in &oracle {
            heap.offer(rank, WeightId(id));
        }
        let got: Vec<(usize, usize)> = heap
            .into_result()
            .entries()
            .iter()
            .map(|e| (e.rank, e.weight.0))
            .collect();
        oracle.truncate(k);
        prop_assert_eq!(got, oracle);
    }

    /// The threshold is safe: an offer whose rank exceeds it is never
    /// retained, and the result always holds min(k, offers) entries.
    #[test]
    fn threshold_is_safe(
        entries in prop::collection::vec((0usize..100, 0usize..1000), 1..100),
        k in 1usize..20,
    ) {
        let mut heap = KBestHeap::new(k);
        for &(rank, id) in &entries {
            let t = heap.threshold();
            let retained = heap.offer(rank, WeightId(id));
            if rank > t {
                prop_assert!(!retained, "rank {rank} above threshold {t} must lose");
            }
        }
        prop_assert_eq!(heap.into_result().len(), k.min(entries.len()));
    }

    /// Thresholds are monotonically non-increasing as entries arrive
    /// (the self-refining minRank property of paper Alg. 3).
    #[test]
    fn threshold_monotone_under_improvement(
        ranks in prop::collection::vec(0usize..10_000, 1..100),
        k in 1usize..10,
    ) {
        let mut heap = KBestHeap::new(k);
        let mut last = heap.threshold();
        for (i, &rank) in ranks.iter().enumerate() {
            heap.offer(rank, WeightId(i));
            let t = heap.threshold();
            prop_assert!(t <= last, "threshold rose from {last} to {t}");
            last = t;
        }
    }
}
