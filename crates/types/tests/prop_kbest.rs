//! Property-style tests for the k-best heap: it must agree with the
//! sort-and-truncate oracle on arbitrary offer sequences, and its
//! threshold must be a safe early-termination bound. Cases are drawn from
//! a seeded deterministic PRNG (the offline build has no `proptest`).

use rrq_data::rng::{Rng, StdRng};
use rrq_types::{KBestHeap, WeightId};

const CASES: usize = 64;

/// The heap retains exactly the k smallest (rank, id) pairs of a
/// duplicate-free offer sequence, in canonical order.
#[test]
fn heap_equals_sort_truncate() {
    let mut rng = StdRng::seed_from_u64(0xBE57_0001);
    for _ in 0..CASES {
        let len = rng.gen_range(0..200);
        let raw: Vec<(usize, usize)> = (0..len)
            .map(|_| (rng.gen_range(0..1000), rng.gen_range(0..500)))
            .collect();
        let k = rng.gen_range(0..50);
        let mut oracle: Vec<(usize, usize)> = raw.clone();
        oracle.sort_unstable();
        oracle.dedup();
        let mut heap = KBestHeap::new(k);
        for &(rank, id) in &oracle {
            heap.offer(rank, WeightId(id));
        }
        let got: Vec<(usize, usize)> = heap
            .into_result()
            .entries()
            .iter()
            .map(|e| (e.rank, e.weight.0))
            .collect();
        oracle.truncate(k);
        assert_eq!(got, oracle);
    }
}

/// The threshold is safe: an offer whose rank exceeds it is never
/// retained, and the result always holds min(k, offers) entries.
#[test]
fn threshold_is_safe() {
    let mut rng = StdRng::seed_from_u64(0xBE57_0002);
    for _ in 0..CASES {
        let len = rng.gen_range(1..100);
        let entries: Vec<(usize, usize)> = (0..len)
            .map(|_| (rng.gen_range(0..100), rng.gen_range(0..1000)))
            .collect();
        let k = rng.gen_range(1..20);
        let mut heap = KBestHeap::new(k);
        for &(rank, id) in &entries {
            let t = heap.threshold();
            let retained = heap.offer(rank, WeightId(id));
            if rank > t {
                assert!(!retained, "rank {rank} above threshold {t} must lose");
            }
        }
        assert_eq!(heap.into_result().len(), k.min(entries.len()));
    }
}

/// Thresholds are monotonically non-increasing as entries arrive (the
/// self-refining minRank property of paper Alg. 3).
#[test]
fn threshold_monotone_under_improvement() {
    let mut rng = StdRng::seed_from_u64(0xBE57_0003);
    for _ in 0..CASES {
        let len = rng.gen_range(1..100);
        let ranks: Vec<usize> = (0..len).map(|_| rng.gen_range(0..10_000)).collect();
        let k = rng.gen_range(1..10);
        let mut heap = KBestHeap::new(k);
        let mut last = heap.threshold();
        for (i, &rank) in ranks.iter().enumerate() {
            heap.offer(rank, WeightId(i));
            let t = heap.threshold();
            assert!(t <= last, "threshold rose from {last} to {t}");
            last = t;
        }
    }
}
