//! Epoch-versioned copy-on-write snapshots: incremental insert/delete of
//! points and weights over the grid index.
//!
//! The paper freezes `P` and `W` at build time; production churn does
//! not. This module keeps the *base* build immutable ([`BaseData`],
//! `Arc`-shared across epochs) and layers every mutation on top of it as
//! a [`DeltaIndex`] — tombstone bitmaps over the combined id space plus
//! append logs of inserted rows, pre-quantised against the shared grid.
//! Queries skip tombstones and scan the append tails, booking the
//! `tombstones_skipped` / `appended_scanned` counters, and are otherwise
//! bit-identical to a rebuild-from-scratch over the live rows (pinned by
//! `crates/core/tests/update_equivalence.rs`).
//!
//! Writers never mutate a published state. [`DynamicEngine`] stages
//! operations and, at [`DynamicEngine::publish`], assembles the next
//! [`EngineState`] — next delta, repaired threshold table, epoch + 1 —
//! and swaps it into the [`SnapshotHandle`]. In-flight readers keep
//! their `Arc` to the previous epoch and finish on a consistent index;
//! new readers pick up the new epoch atomically. Threshold maintenance
//! is incremental via the *self-application*: a reverse-top-`B` query of
//! each mutated row against the current table finds exactly the weights
//! whose materialized top-k can change (see
//! `ThresholdIndex::row_affected`), and only those columns are
//! recomputed.
//!
//! Compaction ([`DynamicEngine::compact`], also triggered automatically
//! when tombstones outnumber live rows) folds tombstones and append
//! logs back into a clean base build. Internal ids are renumbered
//! densely *in order*, so the external-id mapping — the only identity
//! the caller ever sees — is preserved and compaction is invisible to
//! results.

use crate::approx::ApproxVectors;
use crate::gir::{Gir, GirConfig};
use crate::grid::Grid;
use crate::threshold::{epoch_fingerprint, ThresholdIndex};
use rrq_types::{PointId, PointSet, QueryStats, RrqError, RrqResult, WeightId, WeightSet};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// The immutable product of one base build: data sets, grid, quantised
/// vectors and the blocked-scan layouts. Shared by `Arc` across every
/// epoch until a compaction replaces it.
pub struct BaseData {
    points: PointSet,
    weights: WeightSet,
    grid: Grid,
    p_approx: ApproxVectors,
    w_approx: ApproxVectors,
    p_cell_sums: Vec<u32>,
    p_cols: Vec<u8>,
    config: GirConfig,
}

impl BaseData {
    /// Quantises both sets against a grid with the *full* `[0, 1]`
    /// weight axis. The static [`Gir::new`] scales the weight axis to
    /// the observed maximum component for tighter bounds; a mutable
    /// engine cannot, because a later-inserted weight above that maximum
    /// would fall off the table and break bound soundness. Inserted
    /// weight components are validated `≤ 1` instead.
    fn build(points: PointSet, weights: WeightSet, config: GirConfig) -> RrqResult<Self> {
        if points.dim() != weights.dim() {
            return Err(RrqError::DimensionMismatch {
                expected: points.dim(),
                actual: weights.dim(),
            });
        }
        validate_weight_components(weights.as_flat())?;
        let grid = Grid::with_ranges(config.partitions, points.value_range(), 1.0);
        let p_approx = ApproxVectors::from_points(&grid, &points);
        let p_cell_sums: Vec<u32> = p_approx
            .iter()
            .map(|row| row.iter().map(|&c| c as u32).sum())
            .collect();
        let n_points = points.len();
        let dim = points.dim();
        let mut p_cols = vec![0u8; n_points * dim];
        for (id, row) in p_approx.iter().enumerate() {
            for (k, &c) in row.iter().enumerate() {
                p_cols[k * n_points + id] = c;
            }
        }
        let w_approx = ApproxVectors::from_weights(&grid, &weights);
        Ok(Self {
            points,
            weights,
            grid,
            p_approx,
            w_approx,
            p_cell_sums,
            p_cols,
            config,
        })
    }

    pub(crate) fn points(&self) -> &PointSet {
        &self.points
    }

    pub(crate) fn weights(&self) -> &WeightSet {
        &self.weights
    }

    pub(crate) fn grid(&self) -> &Grid {
        &self.grid
    }

    pub(crate) fn p_approx(&self) -> &ApproxVectors {
        &self.p_approx
    }

    pub(crate) fn w_approx(&self) -> &ApproxVectors {
        &self.w_approx
    }

    pub(crate) fn p_cell_sums(&self) -> &[u32] {
        &self.p_cell_sums
    }

    pub(crate) fn p_cols(&self) -> &[u8] {
        &self.p_cols
    }

    pub(crate) fn config(&self) -> GirConfig {
        self.config
    }
}

/// Inserted weight components must stay on the `[0, 1]` weight axis the
/// mutable grid is built over — a component above the axis would be
/// clamped into the last cell and its upper score bound would no longer
/// bracket the true product.
fn validate_weight_components(flat: &[f64]) -> RrqResult<()> {
    for &v in flat {
        if v > 1.0 {
            return Err(RrqError::InvalidParameter {
                name: "weight",
                message: format!("component {v} exceeds the [0, 1] weight axis"),
            });
        }
    }
    Ok(())
}

/// Dense tombstone bitmap over an internal id space (base + append
/// tail). Grows on demand; never shrinks within an epoch lineage — ids
/// are retired, not reused, until compaction renumbers.
#[derive(Debug, Clone, Default)]
struct TombSet {
    words: Vec<u64>,
    count: usize,
}

impl TombSet {
    fn contains(&self, id: usize) -> bool {
        self.words
            .get(id >> 6)
            .is_some_and(|w| w >> (id & 63) & 1 != 0)
    }

    fn insert(&mut self, id: usize) {
        let word = id >> 6;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let bit = 1u64 << (id & 63);
        if self.words[word] & bit == 0 {
            self.words[word] |= bit;
            self.count += 1;
        }
    }

    fn count(&self) -> usize {
        self.count
    }

    fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// The mutation overlay of one epoch: tombstones over the combined id
/// space and append logs of rows inserted after the base build, stored
/// pre-quantised so query-time scans touch no float conversion.
#[derive(Clone)]
pub struct DeltaIndex {
    point_tombs: TombSet,
    weight_tombs: TombSet,
    appended_points: PointSet,
    /// Row-major quantised cells of the appended points.
    ap_cells: Vec<u8>,
    ap_cell_sums: Vec<u32>,
    appended_weights: WeightSet,
    aw_cells: Vec<u8>,
}

impl DeltaIndex {
    fn empty(dim: usize, value_range: f64) -> RrqResult<Self> {
        Ok(Self {
            point_tombs: TombSet::default(),
            weight_tombs: TombSet::default(),
            appended_points: PointSet::new(dim, value_range)?,
            ap_cells: Vec::new(),
            ap_cell_sums: Vec::new(),
            appended_weights: WeightSet::new(dim)?,
            aw_cells: Vec::new(),
        })
    }

    /// Whether the point side is untouched (append tail empty, no point
    /// tombstones) — the gate that keeps the blocked fast scan usable
    /// under weight-only deltas.
    pub(crate) fn points_unchanged(&self) -> bool {
        self.point_tombs.is_empty() && self.appended_points.is_empty()
    }

    pub(crate) fn point_tombstoned(&self, id: usize) -> bool {
        self.point_tombs.contains(id)
    }

    pub(crate) fn weight_tombstoned(&self, wid: usize) -> bool {
        self.weight_tombs.contains(wid)
    }

    pub(crate) fn appended_points_len(&self) -> usize {
        self.appended_points.len()
    }

    pub(crate) fn appended_weights_len(&self) -> usize {
        self.appended_weights.len()
    }

    pub(crate) fn appended_point(&self, j: usize) -> &[f64] {
        self.appended_points.point(PointId(j))
    }

    pub(crate) fn appended_point_cells(&self, j: usize) -> &[u8] {
        let d = self.appended_points.dim();
        &self.ap_cells[j * d..(j + 1) * d]
    }

    pub(crate) fn appended_point_cell_sum(&self, j: usize) -> u32 {
        self.ap_cell_sums[j]
    }

    pub(crate) fn appended_weight(&self, j: usize) -> &[f64] {
        self.appended_weights.weight(WeightId(j))
    }

    pub(crate) fn appended_weight_cells(&self, j: usize) -> &[u8] {
        let d = self.appended_weights.dim();
        &self.aw_cells[j * d..(j + 1) * d]
    }

    fn push_point(&mut self, grid: &Grid, row: &[f64]) -> RrqResult<()> {
        self.appended_points.push_slice(row)?;
        let mut sum = 0u32;
        for &v in row {
            let c = grid.point_cell(v);
            self.ap_cells.push(c);
            sum += c as u32;
        }
        self.ap_cell_sums.push(sum);
        Ok(())
    }

    fn push_weight(&mut self, grid: &Grid, row: &[f64]) -> RrqResult<()> {
        validate_weight_components(row)?;
        self.appended_weights.push_slice(row)?;
        for &v in row {
            self.aw_cells.push(grid.weight_cell(v));
        }
        Ok(())
    }
}

/// One published, immutable version of the engine: base build + delta
/// overlay + (optionally) the threshold table repaired to this epoch,
/// all under a monotone epoch id. Readers hold an `Arc<EngineState>`
/// and build borrowed [`Gir`] views from it; nothing in here ever
/// changes after publication.
pub struct EngineState {
    base: Arc<BaseData>,
    delta: DeltaIndex,
    threshold: Option<Arc<ThresholdIndex>>,
    epoch: u64,
    /// External id of every internal point id (base then append tail);
    /// tombstoned slots keep their stale entry — they are never served.
    point_ext: Vec<u64>,
    /// External id of every internal weight id.
    weight_ext: Vec<u64>,
}

impl EngineState {
    /// The monotone epoch id of this version.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A borrowed scan view over this snapshot. Views are cheap (no
    /// re-quantisation) and answer queries exactly as a from-scratch
    /// engine over the live rows would.
    pub fn view(&self) -> Gir<'_, &Grid> {
        Gir::snapshot_view(self)
    }

    /// Live point count (base + appended, minus tombstones).
    pub fn live_point_count(&self) -> usize {
        self.base.points.len() + self.delta.appended_points_len() - self.delta.point_tombs.count()
    }

    /// Live weight count.
    pub fn live_weight_count(&self) -> usize {
        self.base.weights.len() + self.delta.appended_weights_len()
            - self.delta.weight_tombs.count()
    }

    /// Total internal weight-id width (live + tombstoned).
    pub fn total_weight_width(&self) -> usize {
        self.base.weights.len() + self.delta.appended_weights_len()
    }

    /// The external id of internal weight id `wid` — the stable identity
    /// callers use to interpret query results across epochs and
    /// compactions.
    pub fn weight_external(&self, wid: usize) -> u64 {
        self.weight_ext[wid]
    }

    /// The external id of internal point id `id`.
    pub fn point_external(&self, id: usize) -> u64 {
        self.point_ext[id]
    }

    /// Live points as `(external id, row)` in internal-id order — the
    /// order a rebuild-from-scratch must use to be comparable.
    pub fn live_point_entries(&self) -> Vec<(u64, &[f64])> {
        let base_n = self.base.points.len();
        let mut out = Vec::with_capacity(self.live_point_count());
        for id in 0..base_n + self.delta.appended_points_len() {
            if self.delta.point_tombstoned(id) {
                continue;
            }
            let row = if id < base_n {
                self.base.points.point(PointId(id))
            } else {
                self.delta.appended_point(id - base_n)
            };
            out.push((self.point_ext[id], row));
        }
        out
    }

    /// Live weights as `(external id, row)` in internal-id order.
    pub fn live_weight_entries(&self) -> Vec<(u64, &[f64])> {
        let base_n = self.base.weights.len();
        let mut out = Vec::with_capacity(self.live_weight_count());
        for wid in 0..base_n + self.delta.appended_weights_len() {
            if self.delta.weight_tombstoned(wid) {
                continue;
            }
            let row = if wid < base_n {
                self.base.weights.weight(WeightId(wid))
            } else {
                self.delta.appended_weight(wid - base_n)
            };
            out.push((self.weight_ext[wid], row));
        }
        out
    }

    /// The threshold table attached to this epoch, if any.
    pub fn threshold_index(&self) -> Option<&ThresholdIndex> {
        self.threshold.as_deref()
    }

    /// Tombstoned `(point, weight)` slot counts in this epoch's delta —
    /// `(0, 0)` right after a compaction fold.
    pub fn tombstoned_counts(&self) -> (usize, usize) {
        (
            self.delta.point_tombs.count(),
            self.delta.weight_tombs.count(),
        )
    }

    /// Appended `(point, weight)` row counts in this epoch's delta —
    /// `(0, 0)` right after a compaction fold.
    pub fn appended_counts(&self) -> (usize, usize) {
        (
            self.delta.appended_points_len(),
            self.delta.appended_weights_len(),
        )
    }

    /// Whether internal weight id `wid` is live (not tombstoned) in this
    /// epoch.
    pub fn weight_is_live(&self, wid: usize) -> bool {
        !self.delta.weight_tombstoned(wid)
    }

    pub(crate) fn base(&self) -> &BaseData {
        &self.base
    }

    pub(crate) fn delta(&self) -> &DeltaIndex {
        &self.delta
    }

    pub(crate) fn threshold_arc(&self) -> Option<Arc<ThresholdIndex>> {
        self.threshold.clone()
    }

    fn live_point_rows(&self) -> Vec<&[f64]> {
        self.live_point_entries()
            .into_iter()
            .map(|(_, r)| r)
            .collect()
    }
}

/// The `Arc`-swapped publication point: readers [`Self::snapshot`] the
/// current epoch, the writer swaps in the next. The mutex guards only
/// the pointer swap/clone (a few instructions); queries never hold it.
pub struct SnapshotHandle {
    current: Mutex<Arc<EngineState>>,
}

impl SnapshotHandle {
    /// The current epoch's state. The returned `Arc` stays consistent —
    /// and its epoch stays serveable — for as long as the caller holds
    /// it, regardless of concurrent publishes.
    pub fn snapshot(&self) -> Arc<EngineState> {
        self.current
            .lock()
            // rrq-lint: allow(no-unwrap-in-lib) -- the lock only wraps an Arc clone/swap, which cannot panic; poisoning would mean memory corruption and must re-raise
            .expect("snapshot handle poisoned: a writer panicked during the pointer swap")
            .clone()
    }

    fn publish(&self, next: Arc<EngineState>) {
        *self
            .current
            .lock()
            // rrq-lint: allow(no-unwrap-in-lib) -- the lock only wraps an Arc clone/swap, which cannot panic; poisoning would mean memory corruption and must re-raise
            .expect("snapshot handle poisoned: a writer panicked during the pointer swap") = next;
    }
}

/// A staged (not yet published) mutation.
enum StagedOp {
    InsertPoint(Vec<f64>, u64),
    DeletePoint(u64),
    InsertWeight(Vec<f64>, u64),
    DeleteWeight(u64),
}

/// The single-writer mutable engine over [`SnapshotHandle`].
///
/// Mutations are staged ([`Self::insert_point`] & friends assign stable
/// external ids immediately) and become visible atomically at
/// [`Self::publish`], which builds the next [`EngineState`] — clone of
/// the delta with the batch applied, threshold columns repaired via the
/// reverse-query self-application, epoch incremented — and swaps it in.
/// Readers on the [`WorkerPool`](crate::WorkerPool) or anywhere else
/// keep answering from whatever epoch they snapshotted.
pub struct DynamicEngine {
    handle: SnapshotHandle,
    staged: Vec<StagedOp>,
    point_by_ext: BTreeMap<u64, usize>,
    weight_by_ext: BTreeMap<u64, usize>,
    staged_point_inserts: BTreeMap<u64, usize>,
    staged_weight_inserts: BTreeMap<u64, usize>,
    staged_point_dels: Vec<u64>,
    staged_weight_dels: Vec<u64>,
    next_point_ext: u64,
    next_weight_ext: u64,
    compact_requested: bool,
}

impl DynamicEngine {
    /// Builds the base epoch (id 0) over the initial sets.
    ///
    /// # Errors
    ///
    /// Dimension mismatches, weight components off the `[0, 1]` axis,
    /// and `config.packed` (snapshot views scan byte-format cells; the
    /// packed store is a static-engine memory optimisation) are
    /// rejected.
    pub fn new(points: PointSet, weights: WeightSet, config: GirConfig) -> RrqResult<Self> {
        if config.packed {
            return Err(RrqError::InvalidParameter {
                name: "config.packed",
                message: "the mutable engine serves byte-format snapshots only".to_string(),
            });
        }
        let n_points = points.len();
        let n_weights = weights.len();
        let delta = DeltaIndex::empty(points.dim(), points.value_range())?;
        let base = BaseData::build(points, weights, config)?;
        let state = EngineState {
            base: Arc::new(base),
            delta,
            threshold: None,
            epoch: 0,
            point_ext: (0..n_points as u64).collect(),
            weight_ext: (0..n_weights as u64).collect(),
        };
        Ok(Self {
            handle: SnapshotHandle {
                current: Mutex::new(Arc::new(state)),
            },
            staged: Vec::new(),
            point_by_ext: (0..n_points as u64).map(|e| (e, e as usize)).collect(),
            weight_by_ext: (0..n_weights as u64).map(|e| (e, e as usize)).collect(),
            staged_point_inserts: BTreeMap::new(),
            staged_weight_inserts: BTreeMap::new(),
            staged_point_dels: Vec::new(),
            staged_weight_dels: Vec::new(),
            next_point_ext: n_points as u64,
            next_weight_ext: n_weights as u64,
            compact_requested: false,
        })
    }

    /// The publication handle, for sharing with concurrent readers.
    pub fn handle(&self) -> &SnapshotHandle {
        &self.handle
    }

    /// The current epoch's state (shorthand for `handle().snapshot()`).
    pub fn snapshot(&self) -> Arc<EngineState> {
        self.handle.snapshot()
    }

    /// The current published epoch id.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// Number of staged, not-yet-published operations.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Builds and attaches a threshold table over the current live rows
    /// at the current epoch (replacing any previous table). Requires an
    /// empty stage so the table can never describe unpublished data.
    ///
    /// # Errors
    ///
    /// [`RrqError::InvalidParameter`] with staged operations pending, or
    /// bucket validation failures.
    pub fn enable_threshold_index(&mut self, buckets: &[usize]) -> RrqResult<()> {
        if !self.staged.is_empty() {
            return Err(RrqError::InvalidParameter {
                name: "staged",
                message: "publish staged mutations before attaching a threshold index".to_string(),
            });
        }
        let cur = self.handle.snapshot();
        let mut bs: Vec<usize> = buckets.to_vec();
        bs.sort_unstable();
        bs.dedup();
        let n_buckets = bs.len();
        let width = cur.total_weight_width();
        let mut idx = ThresholdIndex::from_parts(
            bs,
            cur.live_point_count(),
            width,
            cur.base.points.dim(),
            vec![f64::INFINITY; n_buckets * width],
            0,
            0,
        )?;
        let live_rows = cur.live_point_rows();
        for wid in 0..width {
            if cur.delta.weight_tombstoned(wid) {
                continue;
            }
            idx.recompute_column(wid, weight_row(&cur, wid), &live_rows);
        }
        idx.stamp(&cur.base.points, &cur.base.weights, cur.epoch);
        let next = EngineState {
            base: Arc::clone(&cur.base),
            delta: cur.delta.clone(),
            threshold: Some(Arc::new(idx)),
            epoch: cur.epoch,
            point_ext: cur.point_ext.clone(),
            weight_ext: cur.weight_ext.clone(),
        };
        self.handle.publish(Arc::new(next));
        Ok(())
    }

    /// Stages a point insertion and returns its stable external id. The
    /// point becomes queryable at the next [`Self::publish`].
    ///
    /// # Errors
    ///
    /// Row validation failures (dimensionality, range, finiteness).
    pub fn insert_point(&mut self, row: &[f64]) -> RrqResult<u64> {
        let cur = self.handle.snapshot();
        // Dry-run the exact PointSet validation the publish will apply,
        // so staging fails eagerly and publish cannot.
        let mut probe = PointSet::new(cur.base.points.dim(), cur.base.points.value_range())?;
        probe.push_slice(row)?;
        let ext = self.next_point_ext;
        self.next_point_ext += 1;
        self.staged_point_inserts.insert(ext, self.staged.len());
        self.staged.push(StagedOp::InsertPoint(row.to_vec(), ext));
        Ok(ext)
    }

    /// Stages a point deletion by external id.
    ///
    /// # Errors
    ///
    /// [`RrqError::InvalidParameter`] for an unknown or already-deleted
    /// id.
    pub fn delete_point(&mut self, ext: u64) -> RrqResult<()> {
        let known =
            self.point_by_ext.contains_key(&ext) || self.staged_point_inserts.contains_key(&ext);
        if !known || self.staged_point_dels.contains(&ext) {
            return Err(RrqError::InvalidParameter {
                name: "point",
                message: format!("external point id {ext} is not live"),
            });
        }
        self.staged_point_dels.push(ext);
        self.staged.push(StagedOp::DeletePoint(ext));
        Ok(())
    }

    /// Stages a weight insertion and returns its stable external id.
    ///
    /// # Errors
    ///
    /// Normalisation/component validation failures.
    pub fn insert_weight(&mut self, row: &[f64]) -> RrqResult<u64> {
        let cur = self.handle.snapshot();
        let mut probe = WeightSet::new(cur.base.weights.dim())?;
        validate_weight_components(row)?;
        probe.push_slice(row)?;
        let ext = self.next_weight_ext;
        self.next_weight_ext += 1;
        self.staged_weight_inserts.insert(ext, self.staged.len());
        self.staged.push(StagedOp::InsertWeight(row.to_vec(), ext));
        Ok(ext)
    }

    /// Stages a weight deletion by external id.
    ///
    /// # Errors
    ///
    /// [`RrqError::InvalidParameter`] for an unknown or already-deleted
    /// id.
    pub fn delete_weight(&mut self, ext: u64) -> RrqResult<()> {
        let known =
            self.weight_by_ext.contains_key(&ext) || self.staged_weight_inserts.contains_key(&ext);
        if !known || self.staged_weight_dels.contains(&ext) {
            return Err(RrqError::InvalidParameter {
                name: "weight",
                message: format!("external weight id {ext} is not live"),
            });
        }
        self.staged_weight_dels.push(ext);
        self.staged.push(StagedOp::DeleteWeight(ext));
        Ok(())
    }

    /// Requests a compaction fold at the next [`Self::publish`] (which
    /// may also trigger on its own once tombstones outnumber live rows).
    pub fn request_compaction(&mut self) {
        self.compact_requested = true;
    }

    /// Forces an immediate compaction publish (no staged ops required).
    ///
    /// # Errors
    ///
    /// Propagates [`Self::publish`] failures.
    pub fn compact(&mut self, stats: &mut QueryStats) -> RrqResult<u64> {
        self.compact_requested = true;
        self.publish(stats)
    }

    /// Publishes every staged mutation as the next epoch: applies the
    /// batch to a copy of the delta, repairs exactly the threshold
    /// columns the batch can have touched (booking
    /// `threshold_rows_repaired`), folds tombstones into a fresh base
    /// when compaction triggers, bumps the epoch (booking
    /// `epoch_published`) and swaps the new state into the handle.
    /// Returns the new epoch id.
    ///
    /// On error the published state is untouched (the swap is the last
    /// step), but the staged batch is cleared.
    ///
    /// # Errors
    ///
    /// Row re-validation failures while applying the batch (prevented by
    /// the staging dry-runs in normal operation).
    pub fn publish(&mut self, stats: &mut QueryStats) -> RrqResult<u64> {
        let cur = self.handle.snapshot();
        let staged = std::mem::take(&mut self.staged);
        self.staged_point_inserts.clear();
        self.staged_weight_inserts.clear();
        self.staged_point_dels.clear();
        self.staged_weight_dels.clear();

        let mut delta = cur.delta.clone();
        let mut point_ext = cur.point_ext.clone();
        let mut weight_ext = cur.weight_ext.clone();
        let base_p = cur.base.points.len();
        let base_w = cur.base.weights.len();

        // The self-application: every mutated row is reverse-queried
        // against the *current* table at its largest bucket to find the
        // weight columns whose top-k it can change. Deletes that raise a
        // threshold always flag their column here, so columns flagged by
        // no op are provably bit-identical after the batch.
        let mut affected: Vec<usize> = Vec::new();
        let mut new_weight_cols: Vec<usize> = Vec::new();
        let old_threshold = cur.threshold.as_deref();
        let mut flag_affected = |idx: &ThresholdIndex, row: &[f64], cur: &EngineState| {
            for wid in 0..cur.total_weight_width() {
                if cur.delta.weight_tombstoned(wid) {
                    continue;
                }
                let s = rrq_types::dot(weight_row(cur, wid), row);
                if idx.row_affected(wid, s) {
                    affected.push(wid);
                }
            }
        };

        for op in &staged {
            match op {
                StagedOp::InsertPoint(row, ext) => {
                    let id = base_p + delta.appended_points_len();
                    delta.push_point(&cur.base.grid, row)?;
                    point_ext.push(*ext);
                    self.point_by_ext.insert(*ext, id);
                    if let Some(idx) = old_threshold {
                        flag_affected(idx, row, &cur);
                    }
                }
                StagedOp::DeletePoint(ext) => {
                    let id = *self
                        .point_by_ext
                        .get(ext)
                        .ok_or(RrqError::InvalidParameter {
                            name: "point",
                            message: format!("external point id {ext} vanished before publish"),
                        })?;
                    if let Some(idx) = old_threshold {
                        let row = if id < base_p {
                            cur.base.points.point(PointId(id))
                        } else {
                            delta.appended_point(id - base_p)
                        };
                        let row = row.to_vec();
                        flag_affected(idx, &row, &cur);
                    }
                    delta.point_tombs.insert(id);
                    self.point_by_ext.remove(ext);
                }
                StagedOp::InsertWeight(row, ext) => {
                    let wid = base_w + delta.appended_weights_len();
                    delta.push_weight(&cur.base.grid, row)?;
                    weight_ext.push(*ext);
                    self.weight_by_ext.insert(*ext, wid);
                    new_weight_cols.push(wid);
                }
                StagedOp::DeleteWeight(ext) => {
                    let wid = *self
                        .weight_by_ext
                        .get(ext)
                        .ok_or(RrqError::InvalidParameter {
                            name: "weight",
                            message: format!("external weight id {ext} vanished before publish"),
                        })?;
                    delta.weight_tombs.insert(wid);
                    self.weight_by_ext.remove(ext);
                }
            }
        }

        let epoch = cur.epoch + 1;
        let total_p = base_p + delta.appended_points_len();
        let total_w = base_w + delta.appended_weights_len();
        let compacting = self.compact_requested
            || delta.point_tombs.count() * 2 > total_p
            || delta.weight_tombs.count() * 2 > total_w;
        self.compact_requested = false;

        // Repair the threshold table over the post-batch live rows.
        // Whole-column recomputation over the final data is
        // order-independent, so the repaired table is byte-identical to
        // a rebuild — regardless of how the batch interleaved ops.
        let mut threshold = None;
        if let Some(old) = old_threshold {
            let mut idx = old.clone();
            idx.push_weight_columns(total_w - old.n_weights());
            affected.sort_unstable();
            affected.dedup();
            let mut repair: Vec<usize> = affected;
            repair.extend(new_weight_cols.iter().copied());
            repair.sort_unstable();
            repair.dedup();
            let next_probe = EngineState {
                base: Arc::clone(&cur.base),
                delta: delta.clone(),
                threshold: None,
                epoch,
                point_ext: point_ext.clone(),
                weight_ext: weight_ext.clone(),
            };
            let live_rows = next_probe.live_point_rows();
            let mut repaired = 0u64;
            for &wid in &repair {
                if delta.weight_tombstoned(wid) {
                    continue;
                }
                idx.recompute_column(wid, weight_row(&next_probe, wid), &live_rows);
                repaired += 1;
            }
            idx.set_live_points(live_rows.len());
            stats.threshold_rows_repaired += repaired;
            threshold = Some(idx);
        }

        let next = if compacting {
            self.fold_compaction(&cur, delta, point_ext, weight_ext, threshold, epoch)?
        } else {
            if let Some(idx) = threshold.as_mut() {
                idx.stamp(&cur.base.points, &cur.base.weights, epoch);
            }
            EngineState {
                base: Arc::clone(&cur.base),
                delta,
                threshold: threshold.map(Arc::new),
                epoch,
                point_ext,
                weight_ext,
            }
        };
        stats.epoch_published += 1;
        self.handle.publish(Arc::new(next));
        Ok(epoch)
    }

    /// Folds tombstones and append logs into a fresh base build.
    /// Internal ids are renumbered densely in ascending old-id order, so
    /// relative order — and with it RKR's smaller-id tie-break — is
    /// preserved, and every surviving external id maps to the same row.
    /// Threshold columns are *moved*, not recomputed: compaction changes
    /// no score.
    fn fold_compaction(
        &mut self,
        cur: &EngineState,
        delta: DeltaIndex,
        point_ext: Vec<u64>,
        weight_ext: Vec<u64>,
        threshold: Option<ThresholdIndex>,
        epoch: u64,
    ) -> RrqResult<EngineState> {
        let base_p = cur.base.points.len();
        let base_w = cur.base.weights.len();
        let dim = cur.base.points.dim();
        let mut points = PointSet::new(dim, cur.base.points.value_range())?;
        let mut new_point_ext = Vec::new();
        for (id, &ext) in point_ext
            .iter()
            .enumerate()
            .take(base_p + delta.appended_points_len())
        {
            if delta.point_tombstoned(id) {
                continue;
            }
            let row = if id < base_p {
                cur.base.points.point(PointId(id))
            } else {
                delta.appended_point(id - base_p)
            };
            points.push_slice(row)?;
            new_point_ext.push(ext);
        }
        let mut weights = WeightSet::new(dim)?;
        let mut new_weight_ext = Vec::new();
        let mut keep_cols = Vec::new();
        for (wid, &ext) in weight_ext
            .iter()
            .enumerate()
            .take(base_w + delta.appended_weights_len())
        {
            if delta.weight_tombstoned(wid) {
                continue;
            }
            let row = if wid < base_w {
                cur.base.weights.weight(WeightId(wid))
            } else {
                delta.appended_weight(wid - base_w)
            };
            weights.push_slice(row)?;
            new_weight_ext.push(ext);
            keep_cols.push(wid);
        }
        self.point_by_ext = new_point_ext
            .iter()
            .enumerate()
            .map(|(id, &e)| (e, id))
            .collect();
        self.weight_by_ext = new_weight_ext
            .iter()
            .enumerate()
            .map(|(wid, &e)| (e, wid))
            .collect();
        let fresh_delta = DeltaIndex::empty(dim, points.value_range())?;
        let base = BaseData::build(points, weights, cur.base.config)?;
        let threshold = threshold.map(|mut idx| {
            idx.retain_weight_columns(&keep_cols);
            idx.stamp(&base.points, &base.weights, epoch);
            Arc::new(idx)
        });
        Ok(EngineState {
            base: Arc::new(base),
            delta: fresh_delta,
            threshold,
            epoch,
            point_ext: new_point_ext,
            weight_ext: new_weight_ext,
        })
    }

    /// Epoch-aware staleness check of a persisted threshold artifact:
    /// the artifact must have been stamped at the *current* epoch over
    /// the current base data. Any publish since it was written — even
    /// one that did not touch the threshold table — rejects it, because
    /// the epoch is folded into the fingerprint.
    ///
    /// # Errors
    ///
    /// [`RrqError::ArtifactStale`] naming the first mismatch.
    pub fn check_threshold_artifact(&self, idx: &ThresholdIndex) -> RrqResult<()> {
        let cur = self.handle.snapshot();
        if idx.epoch() != cur.epoch {
            return Err(RrqError::ArtifactStale { what: "epoch" });
        }
        idx.validate_shape(
            cur.base.points.dim(),
            cur.live_point_count(),
            cur.total_weight_width(),
        )?;
        if idx.fingerprint() != epoch_fingerprint(&cur.base.points, &cur.base.weights, cur.epoch) {
            return Err(RrqError::ArtifactStale {
                what: "data fingerprint",
            });
        }
        Ok(())
    }
}

/// The live data row of internal weight id `wid` in `state`.
fn weight_row(state: &EngineState, wid: usize) -> &[f64] {
    let base_w = state.base.weights.len();
    if wid < base_w {
        state.base.weights.weight(WeightId(wid))
    } else {
        state.delta.appended_weight(wid - base_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrq_data::synthetic;
    use rrq_types::{RkrQuery, RtkQuery};

    fn workload(dim: usize, np: usize, nw: usize, seed: u64) -> (PointSet, WeightSet) {
        (
            synthetic::uniform_points(dim, np, 100.0, seed).unwrap(),
            synthetic::uniform_weights(dim, nw, seed + 1).unwrap(),
        )
    }

    fn rebuild_oracle(state: &EngineState) -> (PointSet, WeightSet, Vec<u64>, Vec<u64>) {
        let dim = state.base().points().dim();
        let mut p = PointSet::new(dim, state.base().points().value_range()).unwrap();
        let mut p_ext = Vec::new();
        for (e, row) in state.live_point_entries() {
            p.push_slice(row).unwrap();
            p_ext.push(e);
        }
        let mut w = WeightSet::new(dim).unwrap();
        let mut w_ext = Vec::new();
        for (e, row) in state.live_weight_entries() {
            w.push_slice(row).unwrap();
            w_ext.push(e);
        }
        (p, w, p_ext, w_ext)
    }

    /// RTK/RKR answers from a snapshot view, mapped to external ids,
    /// must equal a rebuild-from-scratch over the live rows.
    fn assert_matches_rebuild(engine: &DynamicEngine, qs: &[Vec<f64>], k: usize) {
        let state = engine.snapshot();
        let view = state.view();
        let (p, w, _p_ext, w_ext) = rebuild_oracle(&state);
        let oracle = Gir::new(&p, &w, state.base().config());
        for q in qs {
            let mut s1 = QueryStats::default();
            let mut s2 = QueryStats::default();
            let got: Vec<u64> = view
                .reverse_top_k(q, k, &mut s1)
                .weights()
                .iter()
                .map(|wid| state.weight_external(wid.0))
                .collect();
            let want: Vec<u64> = oracle
                .reverse_top_k(q, k, &mut s2)
                .weights()
                .iter()
                .map(|wid| w_ext[wid.0])
                .collect();
            assert_eq!(got, want, "rtk k={k}");
            let mut s3 = QueryStats::default();
            let mut s4 = QueryStats::default();
            let got: Vec<(u64, usize)> = view
                .reverse_k_ranks(q, k, &mut s3)
                .entries()
                .iter()
                .map(|e| (state.weight_external(e.weight.0), e.rank))
                .collect();
            let want: Vec<(u64, usize)> = oracle
                .reverse_k_ranks(q, k, &mut s4)
                .entries()
                .iter()
                .map(|e| (w_ext[e.weight.0], e.rank))
                .collect();
            assert_eq!(got, want, "rkr k={k}");
        }
    }

    #[test]
    fn epoch_zero_view_matches_static_engine() {
        let (p, w) = workload(4, 120, 30, 1);
        let engine = DynamicEngine::new(p.clone(), w.clone(), GirConfig::default()).unwrap();
        assert_eq!(engine.epoch(), 0);
        let qs: Vec<Vec<f64>> = [5usize, 40, 99]
            .iter()
            .map(|&i| p.point(PointId(i)).to_vec())
            .collect();
        assert_matches_rebuild(&engine, &qs, 7);
    }

    #[test]
    fn mutations_are_invisible_until_publish_then_exact() {
        let (p, w) = workload(3, 80, 20, 3);
        let q = p.point(PointId(10)).to_vec();
        let mut engine = DynamicEngine::new(p, w, GirConfig::default()).unwrap();
        let before = engine.snapshot();
        engine.insert_point(&[1.0, 2.0, 3.0]).unwrap();
        engine.delete_point(3).unwrap();
        engine.delete_weight(7).unwrap();
        engine.insert_weight(&[0.5, 0.25, 0.25]).unwrap();
        // Staged ops are invisible: the published epoch still serves the
        // original 80×20 sets.
        assert_eq!(engine.snapshot().epoch(), 0);
        assert_eq!(before.live_point_count(), 80);
        let mut stats = QueryStats::default();
        let epoch = engine.publish(&mut stats).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(stats.epoch_published, 1);
        let state = engine.snapshot();
        assert_eq!(state.live_point_count(), 80);
        assert_eq!(state.live_weight_count(), 20);
        assert_matches_rebuild(&engine, &[q], 5);
        // The old Arc still answers from epoch 0.
        assert_eq!(before.epoch(), 0);
        assert_eq!(before.live_point_count(), 80);
    }

    #[test]
    fn view_books_tombstone_and_append_counters() {
        let (p, w) = workload(3, 64, 10, 5);
        let q = p.point(PointId(2)).to_vec();
        let mut engine = DynamicEngine::new(p, w, GirConfig::default()).unwrap();
        engine.delete_point(0).unwrap();
        engine.delete_weight(1).unwrap();
        engine.insert_point(&[9.0, 9.0, 9.0]).unwrap();
        let mut stats = QueryStats::default();
        engine.publish(&mut stats).unwrap();
        let state = engine.snapshot();
        let mut qs = QueryStats::default();
        state.view().reverse_k_ranks(&q, 5, &mut qs);
        // 9 live weights, each skipping the tombstoned point; plus the
        // tombstoned weight itself.
        assert_eq!(qs.tombstones_skipped, 9 + 1);
        // The appended point is examined once per live weight scan that
        // reaches it (no early termination at k=5 with 63 live points
        // before it is not guaranteed — just require > 0).
        assert!(qs.appended_scanned > 0);
        assert_eq!(qs.weights_visited, 9);
    }

    #[test]
    fn compaction_is_invisible_to_results() {
        let (p, w) = workload(4, 90, 18, 7);
        let qs: Vec<Vec<f64>> = [1usize, 33, 70]
            .iter()
            .map(|&i| p.point(PointId(i)).to_vec())
            .collect();
        let mut engine = DynamicEngine::new(p, w, GirConfig::default()).unwrap();
        for ext in [2u64, 3, 5, 8, 13, 21, 34, 55] {
            engine.delete_point(ext).unwrap();
        }
        engine.insert_point(&[4.0, 4.0, 4.0, 4.0]).unwrap();
        engine.delete_weight(11).unwrap();
        let mut stats = QueryStats::default();
        engine.publish(&mut stats).unwrap();
        let pre_compact: Vec<Vec<(u64, usize)>> = qs
            .iter()
            .map(|q| {
                let state = engine.snapshot();
                let mut s = QueryStats::default();
                state
                    .view()
                    .reverse_k_ranks(q, 6, &mut s)
                    .entries()
                    .iter()
                    .map(|e| (state.weight_external(e.weight.0), e.rank))
                    .collect()
            })
            .collect();
        let epoch = engine.compact(&mut stats).unwrap();
        let state = engine.snapshot();
        assert_eq!(state.epoch(), epoch);
        // Fold really happened: no tombstones remain.
        assert_eq!(state.live_point_count(), state.base().points().len());
        assert_matches_rebuild(&engine, &qs, 6);
        for (q, want) in qs.iter().zip(&pre_compact) {
            let mut s = QueryStats::default();
            let got: Vec<(u64, usize)> = state
                .view()
                .reverse_k_ranks(q, 6, &mut s)
                .entries()
                .iter()
                .map(|e| (state.weight_external(e.weight.0), e.rank))
                .collect();
            assert_eq!(&got, want, "compaction changed results");
        }
    }

    #[test]
    fn threshold_repair_equals_rebuild_bit_for_bit() {
        let (p, w) = workload(4, 70, 16, 11);
        let buckets = [1usize, 4, 9, 33, 70];
        let mut engine = DynamicEngine::new(p, w, GirConfig::default()).unwrap();
        engine.enable_threshold_index(&buckets).unwrap();
        engine.insert_point(&[3.0, 1.0, 4.0, 1.5]).unwrap();
        engine.delete_point(12).unwrap();
        engine.insert_weight(&[0.4, 0.3, 0.2, 0.1]).unwrap();
        engine.delete_weight(5).unwrap();
        let mut stats = QueryStats::default();
        engine.publish(&mut stats).unwrap();
        assert!(stats.threshold_rows_repaired > 0);
        let state = engine.snapshot();
        let repaired = state.threshold_index().expect("threshold attached");
        // Oracle: rebuild from the live rows with the same buckets, then
        // compare column by column over the live ids.
        let (pl, wl, _pe, _we) = rebuild_oracle(&state);
        let oracle = ThresholdIndex::build(&pl, &wl, &buckets).unwrap();
        let mut live_wid = 0usize;
        for wid in 0..state.total_weight_width() {
            if state.delta().weight_tombstoned(wid) {
                continue;
            }
            for bi in 0..buckets.len() {
                let got = repaired.scores()[bi * repaired.n_weights() + wid];
                let want = oracle.scores()[bi * oracle.n_weights() + live_wid];
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "column {wid} bucket {bi} diverged from rebuild"
                );
            }
            live_wid += 1;
        }
        // And the served decisions agree end to end.
        let q = pl.point(PointId(0)).to_vec();
        assert_matches_rebuild(&engine, &[q], 4);
    }

    #[test]
    fn artifact_check_rejects_stale_epoch() {
        let (p, w) = workload(3, 40, 8, 13);
        let mut engine = DynamicEngine::new(p, w, GirConfig::default()).unwrap();
        engine.enable_threshold_index(&[2, 8]).unwrap();
        let persisted = engine
            .snapshot()
            .threshold_index()
            .expect("attached")
            .clone();
        engine.check_threshold_artifact(&persisted).unwrap();
        engine.insert_point(&[1.0, 1.0, 1.0]).unwrap();
        let mut stats = QueryStats::default();
        engine.publish(&mut stats).unwrap();
        assert!(matches!(
            engine.check_threshold_artifact(&persisted),
            Err(RrqError::ArtifactStale { what: "epoch" })
        ));
    }

    #[test]
    fn delete_validation_rejects_unknown_and_double_deletes() {
        let (p, w) = workload(2, 10, 4, 17);
        let mut engine = DynamicEngine::new(p, w, GirConfig::default()).unwrap();
        assert!(engine.delete_point(99).is_err());
        engine.delete_point(4).unwrap();
        assert!(engine.delete_point(4).is_err());
        assert!(engine.delete_weight(17).is_err());
        let mut stats = QueryStats::default();
        engine.publish(&mut stats).unwrap();
        assert!(engine.delete_point(4).is_err(), "still dead after publish");
    }

    #[test]
    fn packed_config_is_rejected() {
        let (p, w) = workload(2, 10, 4, 19);
        let config = GirConfig {
            packed: true,
            ..GirConfig::default()
        };
        assert!(matches!(
            DynamicEngine::new(p, w, config),
            Err(RrqError::InvalidParameter {
                name: "config.packed",
                ..
            })
        ));
    }

    #[test]
    fn out_of_axis_weight_insert_is_rejected() {
        let (p, w) = workload(2, 10, 4, 23);
        let mut engine = DynamicEngine::new(p, w, GirConfig::default()).unwrap();
        assert!(engine.insert_weight(&[1.2, -0.2]).is_err());
    }
}
