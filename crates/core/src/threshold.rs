//! Materialized per-weight k-th-score threshold index.
//!
//! Chester et al., *Indexing Reverse Top-k Queries*, observe that RTK
//! membership collapses to a single comparison once each weight's
//! k-th-best score is materialized: `q` is in `w`'s top-k iff
//! `f_w(q) ≤ s_k(w)` where `s_k(w)` is the k-th smallest score of `P`
//! under `w` (rank counts *strictly* preceding points, so ties sit on
//! the member side — exactly the tie semantics of [`crate::Gir`]).
//! Vlachou et al.'s RTA monotonicity argument grounds the bucketed
//! generalisation: `s_k(w)` is nondecreasing in `k`, so a sorted set of
//! materialized k-buckets brackets any query `k` from both sides.
//!
//! The table is built once via the existing top-k oracle — a
//! [`KBestHeap`] scan over `P` per weight, offering order-preserving
//! score bit patterns — and stored column-major per k-bucket
//! (`scores[bucket_idx · |W| + wid]`) so a per-weight scan under one
//! `k` walks one contiguous row. Scores are produced by the same
//! left-to-right [`dot`] kernel the refine path uses, which makes every
//! threshold comparison *exact* over the computed `f64` values: the
//! short-circuit answers are byte-identical to a full grid scan, never
//! approximate.
//!
//! Serve-side, the index is attached to a [`crate::Gir`] (and thereby
//! its parallel/pooled engines) after a staleness check against the
//! live data sets; the build/serve split is persisted through
//! [`crate::persist`] with a magic/version/checksum header so a stale
//! or truncated artifact is rejected with a typed error, not silently
//! misread.

use rrq_types::{dot, KBestHeap, RrqError, RrqResult, WeightId};
use rrq_types::{PointSet, WeightSet};

/// 64-bit FNV-1a over a byte stream — the workspace's zero-dependency
/// artifact checksum and data fingerprint primitive.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv1a64(u64);

impl Fnv1a64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Self {
        Self(Self::OFFSET)
    }

    #[inline]
    pub(crate) fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a-64 of a byte slice.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(bytes);
    h.finish()
}

/// Fingerprint of a `(P, W)` data-set pair: dimensionality,
/// cardinalities and every attribute value, hashed in storage order.
/// An index built from different data cannot validate against it.
pub(crate) fn data_fingerprint(points: &PointSet, weights: &WeightSet) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(&(points.dim() as u64).to_le_bytes());
    h.update(&(points.len() as u64).to_le_bytes());
    h.update(&(weights.len() as u64).to_le_bytes());
    for &v in points.as_flat() {
        h.update(&v.to_le_bytes());
    }
    for &v in weights.as_flat() {
        h.update(&v.to_le_bytes());
    }
    h.finish()
}

/// Fingerprint of a `(P, W, epoch)` triple: the epoch of the mutable
/// engine is folded into the data fingerprint, so an artifact persisted
/// at epoch `e` validates only against the same base data *at the same
/// epoch* — publishing any mutation batch staleness-invalidates every
/// previously persisted artifact.
pub(crate) fn epoch_fingerprint(points: &PointSet, weights: &WeightSet, epoch: u64) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(&data_fingerprint(points, weights).to_le_bytes());
    h.update(&epoch.to_le_bytes());
    h.finish()
}

/// What a materialized threshold comparison decided for one RTK weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RtkThresholdOutcome {
    /// `f_w(q) ≤ s_k(w)` certified: the weight is in the result.
    Member,
    /// `f_w(q) > s_k(w)` certified: the weight is not in the result.
    NonMember,
    /// The materialized buckets bracket `k` but the score falls between
    /// the bracketing thresholds — fall back to the grid scan.
    Straddle,
}

/// Per-weight `kth_score[w][k_bucket]` table: the k-th smallest
/// `f_w(p)` over `P` for every weight `w` and materialized k-bucket.
///
/// Built with [`ThresholdIndex::build`] (or
/// [`crate::Gir::build_threshold_index`]), attached with
/// [`crate::Gir::attach_threshold_index`], persisted with
/// [`crate::persist::write_threshold`] /
/// [`crate::persist::read_threshold`].
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdIndex {
    /// Materialized k values, sorted strictly ascending, all ≥ 1.
    buckets: Vec<usize>,
    /// `|P|` at build time. Buckets beyond it hold `+∞` (every query
    /// point is a member when `k > |P|`).
    n_points: usize,
    /// `|W|` at build time.
    n_weights: usize,
    /// Data dimensionality at build time.
    dims: usize,
    /// Column-major per k-bucket: `scores[bi · n_weights + wid]`.
    scores: Vec<f64>,
    /// [`epoch_fingerprint`] of the `(P, W, epoch)` triple the table was
    /// built from (or last repaired to).
    fingerprint: u64,
    /// Snapshot epoch the table serves. `0` for tables built over
    /// immutable sets; the mutable engine restamps it on every publish.
    epoch: u64,
}

impl ThresholdIndex {
    /// Materializes the table: one [`KBestHeap`] top-k scan of `P` per
    /// weight, using the same scalar [`dot`] kernel as the query-time
    /// refine path so stored thresholds compare exactly against query
    /// scores.
    ///
    /// `buckets` is sorted and deduplicated; every bucket must be ≥ 1.
    ///
    /// # Errors
    ///
    /// [`RrqError::DimensionMismatch`] when the sets disagree on
    /// dimensionality, [`RrqError::InvalidParameter`] for an empty or
    /// zero-containing bucket list.
    pub fn build(points: &PointSet, weights: &WeightSet, buckets: &[usize]) -> RrqResult<Self> {
        if points.dim() != weights.dim() {
            return Err(RrqError::DimensionMismatch {
                expected: points.dim(),
                actual: weights.dim(),
            });
        }
        let mut bs: Vec<usize> = buckets.to_vec();
        bs.sort_unstable();
        bs.dedup();
        let Some(&max_bucket) = bs.last() else {
            return Err(RrqError::InvalidParameter {
                name: "buckets",
                message: "at least one k-bucket is required".to_string(),
            });
        };
        if bs[0] == 0 {
            return Err(RrqError::InvalidParameter {
                name: "buckets",
                message: "k-buckets must be ≥ 1".to_string(),
            });
        }
        let n_points = points.len();
        let n_weights = weights.len();
        let cap = max_bucket.min(n_points);
        let mut scores = vec![f64::INFINITY; bs.len() * n_weights];
        let mut kth: Vec<f64> = Vec::with_capacity(cap);
        for (wid, w) in weights.iter() {
            kth.clear();
            if cap > 0 {
                // Non-negative finite scores make the IEEE bit pattern
                // order-preserving, so the rank-domain heap doubles as a
                // k-smallest-score oracle without an extra comparator.
                let mut heap = KBestHeap::new(cap);
                for (_, p) in points.iter() {
                    let s = dot(w, p);
                    heap.offer(s.to_bits() as usize, WeightId(0));
                }
                kth.extend(
                    heap.into_result()
                        .entries()
                        .iter()
                        .map(|e| f64::from_bits(e.rank as u64)),
                );
            }
            for (bi, &b) in bs.iter().enumerate() {
                if b <= kth.len() {
                    scores[bi * n_weights + wid.0] = kth[b - 1];
                }
            }
        }
        let fingerprint = epoch_fingerprint(points, weights, 0);
        Ok(Self {
            buckets: bs,
            n_points,
            n_weights,
            dims: points.dim(),
            scores,
            fingerprint,
            epoch: 0,
        })
    }

    /// Reassembles an index from persisted parts, re-validating the
    /// structural invariants a corrupted-but-checksum-valid artifact
    /// could violate.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        buckets: Vec<usize>,
        n_points: usize,
        n_weights: usize,
        dims: usize,
        scores: Vec<f64>,
        fingerprint: u64,
        epoch: u64,
    ) -> RrqResult<Self> {
        let sorted = buckets.windows(2).all(|w| w[0] < w[1]);
        if buckets.is_empty() || buckets[0] == 0 || !sorted {
            return Err(RrqError::InvalidParameter {
                name: "buckets",
                message: "persisted k-buckets must be strictly ascending and ≥ 1".to_string(),
            });
        }
        if scores.len() != buckets.len() * n_weights {
            return Err(RrqError::InvalidParameter {
                name: "scores",
                message: format!(
                    "score table holds {} entries, header implies {}",
                    scores.len(),
                    buckets.len() * n_weights
                ),
            });
        }
        Ok(Self {
            buckets,
            n_points,
            n_weights,
            dims,
            scores,
            fingerprint,
            epoch,
        })
    }

    /// The standard serving bucket ladder: the query `k` values a sweep
    /// will ask, plus a power-of-two rank ladder up to `n_points`.
    ///
    /// The explicit `ks` make RTK answers exact one-comparison
    /// decisions; the ladder gives RKR's self-refining heap bound a
    /// nearby bucket to certify `rank > bound` against wherever the
    /// bound lands (the next rung is at most 2× above it).
    pub fn default_buckets(ks: &[usize], n_points: usize) -> Vec<usize> {
        let mut buckets: Vec<usize> = ks.iter().copied().filter(|&k| k >= 1).collect();
        let mut rung = 1usize;
        while rung < n_points {
            buckets.push(rung);
            rung = rung.saturating_mul(2);
        }
        if n_points >= 1 {
            buckets.push(n_points);
        }
        buckets.sort_unstable();
        buckets.dedup();
        buckets
    }

    /// The materialized k values, strictly ascending.
    pub fn buckets(&self) -> &[usize] {
        &self.buckets
    }

    /// `|P|` at build time.
    pub fn n_points(&self) -> usize {
        self.n_points
    }

    /// `|W|` at build time.
    pub fn n_weights(&self) -> usize {
        self.n_weights
    }

    /// Data dimensionality at build time.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Fingerprint of the data-set pair (and epoch) the table was built
    /// from.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Snapshot epoch the table serves (0 for immutable builds).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The raw column-major score table (`scores[bi · |W| + wid]`).
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Heap footprint of the table, for index-memory accounting.
    pub fn memory_bytes(&self) -> usize {
        self.scores.len() * std::mem::size_of::<f64>()
            + self.buckets.len() * std::mem::size_of::<usize>()
    }

    /// Checks the index matches the live data sets it is about to serve.
    ///
    /// # Errors
    ///
    /// [`RrqError::ArtifactStale`] naming the first mismatch.
    pub fn validate_for(&self, points: &PointSet, weights: &WeightSet) -> RrqResult<()> {
        if self.epoch != 0 {
            // A mutable-engine artifact can only be re-attached through
            // the engine that knows the current epoch
            // (`crate::snapshot::DynamicEngine::check_threshold_artifact`).
            return Err(RrqError::ArtifactStale { what: "epoch" });
        }
        self.validate_shape(points.dim(), points.len(), weights.len())?;
        if self.fingerprint != epoch_fingerprint(points, weights, 0) {
            return Err(RrqError::ArtifactStale {
                what: "data fingerprint",
            });
        }
        Ok(())
    }

    /// The dimensionality/cardinality part of staleness validation,
    /// shared between the immutable attach path and the mutable engine's
    /// epoch-aware artifact check.
    pub(crate) fn validate_shape(
        &self,
        dims: usize,
        n_points: usize,
        n_weights: usize,
    ) -> RrqResult<()> {
        if self.dims != dims {
            return Err(RrqError::ArtifactStale {
                what: "dimensionality",
            });
        }
        if self.n_points != n_points {
            return Err(RrqError::ArtifactStale {
                what: "point cardinality",
            });
        }
        if self.n_weights != n_weights {
            return Err(RrqError::ArtifactStale {
                what: "weight cardinality",
            });
        }
        Ok(())
    }

    #[inline]
    fn score_at(&self, bucket_idx: usize, wid: usize) -> f64 {
        self.scores[bucket_idx * self.n_weights + wid]
    }

    /// Decides RTK membership of weight `wid` for query score `fq` and
    /// query parameter `k`, if the materialized thresholds certify it.
    ///
    /// Membership is `rank < k ⟺ fq ≤ s_k(w)`. A bucket equal to `k`
    /// decides exactly; otherwise the bracketing buckets decide via
    /// monotonicity (`fq ≤ s_lo ≤ s_k` certifies membership,
    /// `fq > s_hi ≥ s_k` certifies non-membership) and everything in
    /// between is [`RtkThresholdOutcome::Straddle`].
    #[inline]
    pub(crate) fn decide_rtk(&self, wid: usize, k: usize, fq: f64) -> RtkThresholdOutcome {
        if k > self.n_points {
            // rank ≤ |P| < k: every weight is a member.
            return RtkThresholdOutcome::Member;
        }
        match self.buckets.binary_search(&k) {
            Ok(bi) => {
                if fq <= self.score_at(bi, wid) {
                    RtkThresholdOutcome::Member
                } else {
                    RtkThresholdOutcome::NonMember
                }
            }
            Err(ins) => {
                if ins > 0 && fq <= self.score_at(ins - 1, wid) {
                    return RtkThresholdOutcome::Member;
                }
                if ins < self.buckets.len() && fq > self.score_at(ins, wid) {
                    return RtkThresholdOutcome::NonMember;
                }
                RtkThresholdOutcome::Straddle
            }
        }
    }

    /// Whether the thresholds certify `rank(q, w) > bound` — i.e. a
    /// bounded [`crate::Gir`] scan (`gin_rank`) would return `None`, so
    /// the RKR heap offer can be skipped without changing the result.
    ///
    /// Uses the smallest materialized bucket `b ≥ bound + 1`:
    /// `fq > s_b(w) ≥ s_{bound+1}(w)` implies at least `bound + 1`
    /// points score strictly below `fq`.
    #[inline]
    pub(crate) fn certifies_rank_above(&self, wid: usize, bound: usize, fq: f64) -> bool {
        let target = bound.saturating_add(1);
        let ins = match self.buckets.binary_search(&target) {
            Ok(i) => i,
            Err(i) => i,
        };
        // Buckets beyond |P| hold +∞, so `fq > s` is naturally false
        // there: an unsaturated heap (bound == usize::MAX) never skips.
        ins < self.buckets.len() && fq > self.score_at(ins, wid)
    }

    // ---- incremental maintenance (the mutable engine's write path) ----

    /// Whether a mutation whose score under weight `wid` is `s` can
    /// change any materialized threshold of that weight — the
    /// *self-application*: this is exactly the reverse-top-`B` membership
    /// test at the largest materialized bucket `B`. A point with
    /// `s > s_B(w)` sits below every materialized top-`b` (`b ≤ B`), so
    /// inserting or deleting it leaves the whole column bit-identical;
    /// ties (`s == s_b`) leave the b-th smallest value unchanged, so `≤`
    /// is the exact affectedness frontier for deletes and a tight
    /// superset for inserts.
    #[inline]
    pub(crate) fn row_affected(&self, wid: usize, s: f64) -> bool {
        let last = self.buckets.len() - 1;
        s <= self.score_at(last, wid)
    }

    /// Recomputes the full score column of `wid` from the live point
    /// rows, with the same oracle (and the same left-to-right [`dot`]
    /// kernel) as [`Self::build`] — a repaired column is therefore
    /// byte-identical to a rebuild-from-scratch over the same rows in
    /// the same order.
    pub(crate) fn recompute_column(&mut self, wid: usize, w: &[f64], live_points: &[&[f64]]) {
        let max_bucket = self.buckets.last().copied().unwrap_or(0);
        let cap = max_bucket.min(live_points.len());
        let mut kth: Vec<f64> = Vec::with_capacity(cap);
        if cap > 0 {
            let mut heap = KBestHeap::new(cap);
            for &p in live_points {
                let s = dot(w, p);
                heap.offer(s.to_bits() as usize, WeightId(0));
            }
            kth.extend(
                heap.into_result()
                    .entries()
                    .iter()
                    .map(|e| f64::from_bits(e.rank as u64)),
            );
        }
        for (bi, &b) in self.buckets.iter().enumerate() {
            self.scores[bi * self.n_weights + wid] = if b <= kth.len() {
                kth[b - 1]
            } else {
                f64::INFINITY
            };
        }
    }

    /// Widens the table by `n_new` all-`+∞` columns for freshly appended
    /// weights (which are then repaired like any affected column).
    pub(crate) fn push_weight_columns(&mut self, n_new: usize) {
        if n_new == 0 {
            return;
        }
        let old_w = self.n_weights;
        let new_w = old_w + n_new;
        let mut scores = vec![f64::INFINITY; self.buckets.len() * new_w];
        for bi in 0..self.buckets.len() {
            scores[bi * new_w..bi * new_w + old_w]
                .copy_from_slice(&self.scores[bi * old_w..(bi + 1) * old_w]);
        }
        self.scores = scores;
        self.n_weights = new_w;
    }

    /// Compaction: keeps exactly the columns in `keep` (ascending live
    /// weight ids), preserving their stored values — compaction renames
    /// ids but never changes a threshold, so a compacted table still
    /// equals a rebuild over the compacted data.
    pub(crate) fn retain_weight_columns(&mut self, keep: &[usize]) {
        let old_w = self.n_weights;
        let new_w = keep.len();
        let mut scores = Vec::with_capacity(self.buckets.len() * new_w);
        for bi in 0..self.buckets.len() {
            for &wid in keep {
                scores.push(self.scores[bi * old_w + wid]);
            }
        }
        self.scores = scores;
        self.n_weights = new_w;
    }

    /// Updates the live point cardinality (drives the `k > |P|` fast
    /// answer of [`Self::decide_rtk`]).
    pub(crate) fn set_live_points(&mut self, n: usize) {
        self.n_points = n;
    }

    /// Restamps the table to a new epoch over the given base data
    /// (called by the mutable engine at publish time, after repairs).
    pub(crate) fn stamp(&mut self, points: &PointSet, weights: &WeightSet, epoch: u64) {
        self.epoch = epoch;
        self.fingerprint = epoch_fingerprint(points, weights, epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrq_data::synthetic;

    fn workload(dim: usize, np: usize, nw: usize, seed: u64) -> (PointSet, WeightSet) {
        (
            synthetic::uniform_points(dim, np, 10_000.0, seed).unwrap(),
            synthetic::uniform_weights(dim, nw, seed + 1).unwrap(),
        )
    }

    /// The b-th smallest dot score over P under w, by sorting.
    fn kth_by_sort(points: &PointSet, w: &[f64], b: usize) -> f64 {
        let mut scores: Vec<f64> = points.iter().map(|(_, p)| dot(w, p)).collect();
        scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
        scores[b - 1]
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn build_matches_sort_oracle_for_every_bucket() {
        let (p, w) = workload(4, 60, 12, 7);
        let buckets = [1usize, 5, 17, 60];
        let idx = ThresholdIndex::build(&p, &w, &buckets).unwrap();
        for (wid, wrow) in w.iter() {
            for (bi, &b) in buckets.iter().enumerate() {
                let want = kth_by_sort(&p, wrow, b);
                let got = idx.scores()[bi * w.len() + wid.0];
                assert_eq!(got.to_bits(), want.to_bits(), "w{} b{}", wid.0, b);
            }
        }
    }

    #[test]
    fn buckets_beyond_p_hold_infinity() {
        let (p, w) = workload(3, 10, 4, 3);
        let idx = ThresholdIndex::build(&p, &w, &[5, 10, 11, 500]).unwrap();
        for wid in 0..w.len() {
            assert!(idx.scores()[2 * w.len() + wid].is_infinite(), "b=11");
            assert!(idx.scores()[3 * w.len() + wid].is_infinite(), "b=500");
            assert!(idx.scores()[w.len() + wid].is_finite(), "b=10=|P|");
        }
    }

    #[test]
    fn buckets_are_sorted_and_deduped() {
        let (p, w) = workload(2, 20, 3, 1);
        let idx = ThresholdIndex::build(&p, &w, &[9, 3, 3, 1]).unwrap();
        assert_eq!(idx.buckets(), &[1, 3, 9]);
    }

    #[test]
    fn zero_or_empty_buckets_are_rejected() {
        let (p, w) = workload(2, 20, 3, 1);
        assert!(matches!(
            ThresholdIndex::build(&p, &w, &[]),
            Err(RrqError::InvalidParameter {
                name: "buckets",
                ..
            })
        ));
        assert!(matches!(
            ThresholdIndex::build(&p, &w, &[0, 2]),
            Err(RrqError::InvalidParameter {
                name: "buckets",
                ..
            })
        ));
    }

    #[test]
    fn decide_rtk_is_exact_on_materialized_buckets() {
        let (p, w) = workload(3, 40, 8, 11);
        let k = 6;
        let idx = ThresholdIndex::build(&p, &w, &[k]).unwrap();
        for (wid, wrow) in w.iter() {
            let sk = kth_by_sort(&p, wrow, k);
            // A query score exactly at the threshold is a member
            // (strict-< rank semantics put ties on the member side).
            assert_eq!(
                idx.decide_rtk(wid.0, k, sk),
                RtkThresholdOutcome::Member,
                "tie at s_k"
            );
            assert_eq!(
                idx.decide_rtk(wid.0, k, sk + sk.abs() * 1e-12 + 1e-12),
                RtkThresholdOutcome::NonMember
            );
            assert_eq!(idx.decide_rtk(wid.0, k, 0.0), RtkThresholdOutcome::Member);
        }
    }

    #[test]
    fn decide_rtk_brackets_unmaterialized_k() {
        let (p, w) = workload(3, 40, 5, 13);
        let idx = ThresholdIndex::build(&p, &w, &[2, 10]).unwrap();
        for (wid, wrow) in w.iter() {
            let s2 = kth_by_sort(&p, wrow, 2);
            let s5 = kth_by_sort(&p, wrow, 5);
            let s10 = kth_by_sort(&p, wrow, 10);
            // Below the low bracket: member for any k in [2, 10].
            assert_eq!(idx.decide_rtk(wid.0, 5, s2), RtkThresholdOutcome::Member);
            // Above the high bracket: non-member.
            let above = s10 + s10.abs() * 1e-12 + 1e-12;
            assert_eq!(
                idx.decide_rtk(wid.0, 5, above),
                RtkThresholdOutcome::NonMember
            );
            // Strictly between the brackets (when they differ): straddle
            // or an exact decision consistent with the sort oracle.
            if s2 < s5 && s5 < s10 {
                let d = idx.decide_rtk(wid.0, 5, s5);
                assert_ne!(d, RtkThresholdOutcome::NonMember, "s5 is a member score");
            }
        }
    }

    #[test]
    fn k_beyond_p_is_always_member() {
        let (p, w) = workload(2, 15, 4, 5);
        let idx = ThresholdIndex::build(&p, &w, &[1]).unwrap();
        for wid in 0..w.len() {
            assert_eq!(
                idx.decide_rtk(wid, 16, f64::MAX),
                RtkThresholdOutcome::Member
            );
        }
    }

    #[test]
    fn certifies_rank_above_agrees_with_sort_oracle() {
        let (p, w) = workload(3, 30, 6, 17);
        let idx = ThresholdIndex::build(&p, &w, &[4, 12]).unwrap();
        for (wid, wrow) in w.iter() {
            let mut scores: Vec<f64> = p.iter().map(|(_, pt)| dot(wrow, pt)).collect();
            scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for bound in [0usize, 3, 5, 11, 29, usize::MAX] {
                for &fq in &[scores[3], scores[11], scores[20], 0.0, f64::MAX] {
                    let certified = idx.certifies_rank_above(wid.0, bound, fq);
                    let rank = scores.iter().filter(|&&s| s < fq).count();
                    if certified {
                        assert!(rank > bound, "w{} bound {bound} fq {fq}", wid.0);
                    }
                }
            }
            // An unsaturated heap never skips.
            assert!(!idx.certifies_rank_above(wid.0, usize::MAX, f64::MAX));
        }
    }

    #[test]
    fn validate_rejects_stale_data() {
        let (p, w) = workload(3, 25, 5, 19);
        let idx = ThresholdIndex::build(&p, &w, &[3]).unwrap();
        idx.validate_for(&p, &w).unwrap();
        let (p2, w2) = workload(3, 25, 5, 23);
        assert!(matches!(
            idx.validate_for(&p2, &w2),
            Err(RrqError::ArtifactStale {
                what: "data fingerprint"
            })
        ));
        let (p3, w3) = workload(3, 26, 5, 19);
        assert!(matches!(
            idx.validate_for(&p3, &w3),
            Err(RrqError::ArtifactStale { .. })
        ));
    }

    #[test]
    fn from_parts_revalidates_structure() {
        assert!(matches!(
            ThresholdIndex::from_parts(vec![3, 2], 10, 2, 2, vec![0.0; 4], 1, 0),
            Err(RrqError::InvalidParameter {
                name: "buckets",
                ..
            })
        ));
        assert!(matches!(
            ThresholdIndex::from_parts(vec![2, 3], 10, 2, 2, vec![0.0; 3], 1, 0),
            Err(RrqError::InvalidParameter { name: "scores", .. })
        ));
        let ok = ThresholdIndex::from_parts(vec![2, 3], 10, 2, 2, vec![0.0; 4], 1, 0).unwrap();
        assert_eq!(ok.buckets(), &[2, 3]);
        assert_eq!(ok.epoch(), 0);
    }

    #[test]
    fn nonzero_epoch_artifact_is_stale_for_immutable_attach() {
        let (p, w) = workload(3, 25, 5, 19);
        let built = ThresholdIndex::build(&p, &w, &[3]).unwrap();
        let stamped = ThresholdIndex::from_parts(
            built.buckets().to_vec(),
            built.n_points(),
            built.n_weights(),
            built.dims(),
            built.scores().to_vec(),
            built.fingerprint(),
            4,
        )
        .unwrap();
        assert!(matches!(
            stamped.validate_for(&p, &w),
            Err(RrqError::ArtifactStale { what: "epoch" })
        ));
    }

    #[test]
    fn recompute_column_matches_build_bit_for_bit() {
        let (p, w) = workload(4, 50, 9, 29);
        let buckets = [1usize, 4, 13, 50];
        let mut idx = ThresholdIndex::build(&p, &w, &buckets).unwrap();
        // Scribble over two columns, then repair them from the same rows.
        let rows: Vec<&[f64]> = p.iter().map(|(_, row)| row).collect();
        let oracle = idx.clone();
        for wid in [2usize, 7] {
            for bi in 0..buckets.len() {
                idx.scores[bi * idx.n_weights + wid] = -1.0;
            }
            idx.recompute_column(wid, w.weight(WeightId(wid)), &rows);
        }
        assert_eq!(idx.scores(), oracle.scores());
    }

    #[test]
    fn push_and_retain_weight_columns_relayout_correctly() {
        let (p, w) = workload(3, 30, 4, 31);
        let mut idx = ThresholdIndex::build(&p, &w, &[2, 8]).unwrap();
        let before = idx.scores().to_vec();
        idx.push_weight_columns(2);
        assert_eq!(idx.n_weights(), 6);
        for bi in 0..2 {
            assert_eq!(
                &idx.scores()[bi * 6..bi * 6 + 4],
                &before[bi * 4..bi * 4 + 4]
            );
            assert!(idx.scores()[bi * 6 + 4].is_infinite());
            assert!(idx.scores()[bi * 6 + 5].is_infinite());
        }
        // Drop columns 1 and 4 (a deleted base weight and a deleted
        // appended slot): survivors keep their values in order.
        idx.retain_weight_columns(&[0, 2, 3]);
        assert_eq!(idx.n_weights(), 3);
        for bi in 0..2 {
            assert_eq!(idx.scores()[bi * 3], before[bi * 4]);
            assert_eq!(idx.scores()[bi * 3 + 1], before[bi * 4 + 2]);
            assert_eq!(idx.scores()[bi * 3 + 2], before[bi * 4 + 3]);
        }
    }
}
