//! Persistent scoped worker pool for the parallel query engine.
//!
//! PR 3's [`ParGir`](crate::ParGir) spawns a fresh `std::thread::scope`
//! per query, which the performance notes flag as the dominant cost for
//! small `|W|`. [`pool_scope`] amortises that cost: it spawns `workers`
//! long-lived threads once, hands the caller a [`WorkerPool`] handle, and
//! joins everything when the closure returns. Each query submitted
//! through [`WorkerPool::run`] is a batch of boxed shard jobs fed through
//! one mpsc channel — no per-query spawn, no per-query join, just a
//! channel send per shard.
//!
//! The pool is *scoped*, not `'static`: jobs may borrow anything that
//! outlives the `pool_scope` call (the [`Gir`](crate::Gir) index, the
//! data sets), which is what lets the engine stay `unsafe`-free. The
//! price is an invariant lifetime — `WorkerPool<'env>` only accepts jobs
//! that live for exactly the environment it was created in; per-query
//! state (the query vector, shared-bound cells) must be owned by the job
//! (cloned or `Arc`ed).
//!
//! Guarantees:
//!
//! * **Order**: [`WorkerPool::run`] returns job results in submission
//!   order regardless of which worker finished first — the merge order
//!   the deterministic counter contract requires.
//! * **Panic containment**: a panicking job is caught on the worker
//!   (`catch_unwind`), reported to the caller as a [`PoolError`], and the
//!   worker survives to serve later queries — a poisoned query must not
//!   poison the pool. The pool can only deliver this if every job of a
//!   `run` call eventually *finishes* (normally or by unwinding):
//!   barrier-coupled job sets must guarantee that a panicking member
//!   releases its peers, otherwise they block forever inside the job and
//!   [`WorkerPool::run`] never returns. The engine's epoch-snapshot sync
//!   honours that contract by poisoning its barrier on unwind, which
//!   makes every peer panic out of the rendezvous and surface here as
//!   [`PoolError::JobPanicked`].
//! * **Serialisation**: concurrent `run` calls are serialised by an
//!   internal lock, so barrier-coupled job sets (the epoch-snapshot mode
//!   of [`ParGir`](crate::ParGir)) never interleave with another query's
//!   jobs. Within one `run` call every job can claim a distinct idle
//!   worker, so submitting at most [`WorkerPool::workers`] coupled jobs
//!   cannot deadlock.
//! * **Join on drop**: `pool_scope` drops the handle (disconnecting the
//!   channel) and the underlying `thread::scope` joins every worker
//!   before returning — no detached threads outlive the call.

use rrq_obs::FlightRecorder;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard};

/// A type-erased unit of work the pool's workers execute.
type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Locks a pool mutex. Pool mutexes are only held for counter updates
/// and never across a job, so poisoning means a bug worth propagating.
fn locked<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // rrq-lint: allow(no-unwrap-in-lib) -- a poisoned pool mutex means a panic escaped containment; propagate it
    mutex.lock().expect("worker pool mutex poisoned")
}

/// Why a [`WorkerPool::run`] call failed. The pool itself stays usable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// At least one job panicked; the payload's text, when extractable.
    /// Jobs that completed alongside it ran to completion but their
    /// results are discarded — a query with a panicked shard has no
    /// meaningful merged answer.
    JobPanicked(String),
    /// The result channel closed before every job reported — workers
    /// disappeared mid-query. Unreachable under `pool_scope` (workers
    /// outlive the handle) but reported rather than hung.
    Disconnected,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::JobPanicked(msg) => write!(f, "pool job panicked: {msg}"),
            Self::Disconnected => write!(f, "pool workers disconnected mid-query"),
        }
    }
}

impl std::error::Error for PoolError {}

/// Usage counters of a pool, for lifecycle assertions and telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Completed [`WorkerPool::run`] calls.
    pub queries: u64,
    /// Jobs submitted across all `run` calls.
    pub jobs: u64,
}

/// Instantaneous job-flow telemetry of a pool, for the periodic sampler
/// (queue depth, in-flight jobs, per-worker utilisation). One snapshot
/// is one lock acquisition, so all fields are mutually consistent.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolTelemetry {
    /// Jobs handed to the pool (via [`WorkerPool::run`] or
    /// [`WorkerPool::submit`]) so far.
    pub submitted: u64,
    /// Jobs a worker (or the inline path) has begun executing.
    pub started: u64,
    /// Jobs that finished executing (normally or by unwinding).
    pub finished: u64,
    /// Jobs whose panic was caught by [`WorkerPool::submit`]'s
    /// containment wrapper ([`WorkerPool::run`] reports its panics
    /// through [`PoolError`] instead and does not count here).
    pub panicked: u64,
    /// Jobs completed per worker thread, indexed by worker; empty for a
    /// zero-worker (inline) pool.
    pub per_worker: Vec<u64>,
}

impl PoolTelemetry {
    /// Jobs sitting in the channel, not yet picked up.
    pub fn queue_depth(&self) -> u64 {
        self.submitted.saturating_sub(self.started)
    }

    /// Jobs currently executing on a worker.
    pub fn in_flight(&self) -> u64 {
        self.started.saturating_sub(self.finished)
    }
}

/// Handle to a set of long-lived worker threads created by
/// [`pool_scope`]. Submit work with [`run`](Self::run); the workers stay
/// parked on the channel between queries.
pub struct WorkerPool<'env> {
    tx: Sender<Job<'env>>,
    workers: usize,
    /// Serialises `run` calls (see module docs).
    query_lock: Mutex<()>,
    counters: Mutex<PoolStats>,
    /// Shared with the workers (they were spawned before this handle
    /// existed), hence the `Arc`.
    telemetry: Arc<Mutex<PoolTelemetry>>,
    /// Optional flight recorder whose recent-query ring is appended to
    /// [`PoolError::JobPanicked`] messages (see
    /// [`WorkerPool::attach_flight_recorder`]).
    flight: Mutex<Option<&'env FlightRecorder>>,
}

/// Spawns `workers` pool threads inside a `std::thread::scope`, runs `f`
/// with the pool handle, then disconnects and joins every worker.
///
/// `workers == 0` is legal: the handle executes jobs inline on the
/// calling thread ([`WorkerPool::run`] still catches panics), which
/// keeps degenerate configurations deadlock-free.
pub fn pool_scope<'env, R>(workers: usize, f: impl FnOnce(&WorkerPool<'env>) -> R) -> R {
    std::thread::scope(|s| {
        let (tx, rx) = channel::<Job<'env>>();
        let rx = Arc::new(Mutex::new(rx));
        let telemetry = Arc::new(Mutex::new(PoolTelemetry {
            per_worker: vec![0; workers],
            ..PoolTelemetry::default()
        }));
        for idx in 0..workers {
            let rx = Arc::clone(&rx);
            let telemetry = Arc::clone(&telemetry);
            s.spawn(move || worker_loop(idx, &rx, &telemetry));
        }
        let pool = WorkerPool {
            tx,
            workers,
            query_lock: Mutex::new(()),
            counters: Mutex::new(PoolStats::default()),
            telemetry,
            flight: Mutex::new(None),
        };
        let out = f(&pool);
        // Dropping the handle (its `tx`) disconnects the channel; every
        // worker's `recv` errors out and the scope joins them.
        drop(pool);
        out
    })
}

/// A worker: pull one job at a time until the submission side hangs up.
/// The receiver lock is released before the job runs, so other workers
/// keep draining the queue while this one works.
fn worker_loop(idx: usize, rx: &Mutex<Receiver<Job<'_>>>, telemetry: &Mutex<PoolTelemetry>) {
    loop {
        let job = locked(rx).recv();
        match job {
            Ok(job) => {
                locked(telemetry).started += 1;
                job();
                let mut t = locked(telemetry);
                t.finished += 1;
                t.per_worker[idx] += 1;
            }
            Err(_) => return,
        }
    }
}

/// Best-effort text of a panic payload.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl<'env> WorkerPool<'env> {
    /// Number of worker threads serving this pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Usage counters so far.
    pub fn stats(&self) -> PoolStats {
        *locked(&self.counters)
    }

    /// A consistent snapshot of the job-flow telemetry (queue depth,
    /// in-flight jobs, per-worker completion counts).
    pub fn telemetry(&self) -> PoolTelemetry {
        locked(&self.telemetry).clone()
    }

    /// Attaches a [`FlightRecorder`] so a panicking job's
    /// [`PoolError::JobPanicked`] message carries the last-N query
    /// records — what the pool was *doing* when the query died, not just
    /// the panic text. The ring must outlive the pool's environment (it
    /// is borrowed for `'env`); attaching replaces any earlier ring.
    pub fn attach_flight_recorder(&self, ring: &'env FlightRecorder) {
        *locked(&self.flight) = Some(ring);
    }

    /// The panic text plus, when a ring is attached, its flight dump.
    fn panic_report(&self, payload: &(dyn std::any::Any + Send)) -> String {
        let mut msg = panic_text(payload);
        if let Some(ring) = *locked(&self.flight) {
            msg.push('\n');
            msg.push_str(&ring.dump_text());
        }
        msg
    }

    /// Runs `job` inline on the calling thread with the same telemetry
    /// accounting a worker would apply (minus a worker slot).
    fn run_inline(&self, job: Job<'env>) {
        locked(&self.telemetry).started += 1;
        job();
        locked(&self.telemetry).finished += 1;
    }

    /// Submits one fire-and-forget job without blocking for completion —
    /// the streaming interface the load generator paces an open-loop
    /// arrival process with ([`WorkerPool::run`] blocks until a whole
    /// batch finishes, which would couple submission to service and
    /// reintroduce coordinated omission).
    ///
    /// The job is responsible for reporting its own completion (e.g.
    /// through a channel it captures). A panicking job is contained: the
    /// worker survives and the panic is counted in
    /// [`PoolTelemetry::panicked`] — but whatever completion signal the
    /// job owed its consumer dies with it, so drain loops must either
    /// trust their jobs not to panic or watch the panic counter.
    ///
    /// `submit` does not take the query lock; interleaving it with
    /// concurrent [`WorkerPool::run`] calls is safe but mixes both
    /// workloads' jobs in the one queue.
    pub fn submit(&self, job: Box<dyn FnOnce() + Send + 'env>) -> Result<(), PoolError> {
        locked(&self.telemetry).submitted += 1;
        let telemetry = Arc::clone(&self.telemetry);
        // AssertUnwindSafe: as in `run`, the captures die with the
        // closure and the failure is visible (panic counter).
        let wrapped: Job<'env> = Box::new(move || {
            if catch_unwind(AssertUnwindSafe(job)).is_err() {
                locked(&telemetry).panicked += 1;
            }
        });
        if self.workers == 0 {
            self.run_inline(wrapped);
            Ok(())
        } else {
            self.tx.send(wrapped).map_err(|_| {
                // Roll the pre-count back: a job the channel never
                // accepted must not sit in `submitted` forever, or
                // `queue_depth()` reports a phantom backlog for the
                // rest of the pool's life. Counting *before* the send
                // (with rollback) rather than after keeps the
                // `submitted ≥ started` invariant — a concurrent
                // telemetry snapshot never observes a started job that
                // was not yet counted as submitted.
                let mut t = locked(&self.telemetry);
                t.submitted = t.submitted.saturating_sub(1);
                PoolError::Disconnected
            })
        }
    }

    /// Executes one query's jobs on the pool and returns their results
    /// **in submission order**. Blocks until every job finished.
    ///
    /// Jobs may be coupled (barriers) only if `jobs.len() <=
    /// self.workers()`, and any coupling must release its peers when a
    /// member unwinds (see the module docs on panic containment) — a
    /// coupled job blocked forever on a panicked peer would block this
    /// call forever too. On a panic inside any job the first payload is
    /// returned as [`PoolError::JobPanicked`] after all jobs of this
    /// call finished — the workers themselves survive.
    pub fn run<T: Send + 'env>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
    ) -> Result<Vec<T>, PoolError> {
        let n = jobs.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let _query = locked(&self.query_lock);
        {
            let mut c = locked(&self.counters);
            c.queries += 1;
            c.jobs += n as u64;
        }
        locked(&self.telemetry).submitted += n as u64;
        let (result_tx, result_rx) = channel::<(usize, std::thread::Result<T>)>();
        for (idx, job) in jobs.into_iter().enumerate() {
            let result_tx = result_tx.clone();
            // AssertUnwindSafe: a panicked job's captures are dropped
            // with the closure and never observed again — the query is
            // reported failed as a whole, so no broken invariant leaks.
            let wrapped: Job<'env> = Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(job));
                let _ = result_tx.send((idx, outcome));
            });
            if self.workers == 0 {
                self.run_inline(wrapped);
            } else if self.tx.send(wrapped).is_err() {
                return Err(PoolError::Disconnected);
            }
        }
        drop(result_tx);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut panicked: Option<String> = None;
        for _ in 0..n {
            match result_rx.recv() {
                Ok((idx, Ok(value))) => slots[idx] = Some(value),
                Ok((_, Err(payload))) => {
                    panicked.get_or_insert_with(|| self.panic_report(payload.as_ref()));
                }
                Err(_) => return Err(PoolError::Disconnected),
            }
        }
        if let Some(msg) = panicked {
            return Err(PoolError::JobPanicked(msg));
        }
        let mut out = Vec::with_capacity(n);
        for slot in slots {
            match slot {
                Some(value) => out.push(value),
                // Every index reported exactly once above; an empty slot
                // would mean a duplicate index, i.e. a pool bug.
                None => return Err(PoolError::Disconnected),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;
    use std::thread::ThreadId;

    fn id_jobs<'env>(
        barrier: &'env Barrier,
        n: usize,
    ) -> Vec<Box<dyn FnOnce() -> ThreadId + Send + 'env>> {
        (0..n)
            .map(|_| {
                let job: Box<dyn FnOnce() -> ThreadId + Send + 'env> = Box::new(move || {
                    // Rendezvous forces each job onto a distinct worker.
                    barrier.wait();
                    std::thread::current().id()
                });
                job
            })
            .collect()
    }

    #[test]
    fn results_come_back_in_submission_order() {
        pool_scope(4, |pool| {
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
                (0..16usize).map(|i| Box::new(move || i * i) as _).collect();
            let out = pool.run(jobs).unwrap();
            assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
        });
    }

    #[test]
    fn workers_are_reused_across_queries_without_respawn() {
        let barrier = Barrier::new(3);
        let sorted_ids = |ids: Vec<ThreadId>| {
            let mut ids: Vec<String> = ids.into_iter().map(|id| format!("{id:?}")).collect();
            ids.sort();
            ids
        };
        pool_scope(3, |pool| {
            let seen = sorted_ids(pool.run(id_jobs(&barrier, 3)).unwrap());
            let mut distinct = seen.clone();
            distinct.dedup();
            assert_eq!(distinct.len(), 3, "barrier forces three distinct workers");
            for _ in 0..2 {
                let again = sorted_ids(pool.run(id_jobs(&barrier, 3)).unwrap());
                assert_eq!(
                    again, seen,
                    "later queries run on the original workers — no respawn"
                );
            }
            assert_eq!(
                pool.stats(),
                PoolStats {
                    queries: 3,
                    jobs: 9
                }
            );
        });
    }

    #[test]
    fn jobs_can_borrow_the_environment() {
        let data: Vec<u64> = (0..1000).collect();
        let total = pool_scope(2, |pool| {
            let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = data
                .chunks(250)
                .map(|chunk| Box::new(move || chunk.iter().sum::<u64>()) as _)
                .collect();
            pool.run(jobs).unwrap().into_iter().sum::<u64>()
        });
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn panic_propagates_as_error_without_poisoning_later_queries() {
        pool_scope(2, |pool| {
            let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
                Box::new(|| 1),
                Box::new(|| panic!("shard exploded")),
                Box::new(|| 3),
            ];
            match pool.run(jobs) {
                Err(PoolError::JobPanicked(msg)) => assert!(msg.contains("shard exploded")),
                other => panic!("expected JobPanicked, got {other:?}"),
            }
            // The pool is not poisoned: the same workers answer again.
            let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![Box::new(|| 10), Box::new(|| 20)];
            assert_eq!(pool.run(jobs).unwrap(), vec![10, 20]);
            assert_eq!(
                pool.stats(),
                PoolStats {
                    queries: 2,
                    jobs: 5
                }
            );
        });
    }

    #[test]
    fn panic_error_carries_attached_flight_recorder_dump() {
        use rrq_obs::{FlightRecord, QueryKind};
        let ring = FlightRecorder::new(4);
        ring.record(FlightRecord {
            kind: QueryKind::Rkr,
            cell: 42,
            k: 7,
            multiplications: 1234,
            ..FlightRecord::default()
        });
        pool_scope(2, |pool| {
            pool.attach_flight_recorder(&ring);
            let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> =
                vec![Box::new(|| 1), Box::new(|| panic!("query 1 died"))];
            match pool.run(jobs) {
                Err(PoolError::JobPanicked(msg)) => {
                    assert!(msg.contains("query 1 died"), "{msg}");
                    assert!(msg.contains("flight recorder"), "ring dump missing: {msg}");
                    assert!(msg.contains("rkr cell=42"), "records missing: {msg}");
                }
                other => panic!("expected JobPanicked, got {other:?}"),
            }
            // Without an attached ring the message stays bare.
            let bare = pool_scope(1, |p| {
                let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![Box::new(|| panic!("bare"))];
                match p.run(jobs) {
                    Err(PoolError::JobPanicked(msg)) => msg,
                    other => panic!("expected JobPanicked, got {other:?}"),
                }
            });
            assert!(!bare.contains("flight recorder"), "{bare}");
        });
    }

    #[test]
    fn zero_workers_runs_inline_and_still_catches_panics() {
        pool_scope(0, |pool| {
            assert_eq!(pool.workers(), 0);
            let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![Box::new(|| 7), Box::new(|| 8)];
            assert_eq!(pool.run(jobs).unwrap(), vec![7, 8]);
            let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![Box::new(|| panic!("inline"))];
            assert!(matches!(pool.run(jobs), Err(PoolError::JobPanicked(_))));
        });
    }

    #[test]
    fn scope_exit_joins_idle_workers() {
        // Workers park on `recv` between queries. If dropping the handle
        // failed to disconnect them, the underlying `thread::scope`
        // would block forever — so merely *returning* here proves the
        // drop-disconnect-join chain. The counter pins that every job
        // ran on a pool thread, not the caller.
        let ran = AtomicUsize::new(0);
        pool_scope(3, |pool| {
            let caller = std::thread::current().id();
            let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..3)
                .map(|_| {
                    let ran = &ran;
                    Box::new(move || {
                        assert_ne!(std::thread::current().id(), caller);
                        // ORDERING: Relaxed — a pure event counter; the
                        // join inside `thread::scope` is the
                        // happens-before edge that makes it visible to
                        // the assert below.
                        ran.fetch_add(1, Ordering::Relaxed);
                    }) as _
                })
                .collect();
            pool.run(jobs).unwrap();
        });
        // ORDERING: Relaxed — reads after the scope join; no concurrent
        // writers remain.
        assert_eq!(ran.load(Ordering::Relaxed), 3);
        // A fresh scope over the same stack frame works fine — nothing
        // from the previous pool leaked.
        pool_scope(2, |pool| assert_eq!(pool.workers(), 2));
    }

    #[test]
    fn more_jobs_than_workers_queue_and_complete() {
        pool_scope(1, |pool| {
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
                (0..32usize).map(|i| Box::new(move || i) as _).collect();
            assert_eq!(pool.run(jobs).unwrap(), (0..32).collect::<Vec<_>>());
        });
    }

    #[test]
    fn empty_job_list_is_a_noop() {
        pool_scope(2, |pool| {
            let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = Vec::new();
            assert_eq!(pool.run(jobs).unwrap(), Vec::<u32>::new());
            assert_eq!(pool.stats(), PoolStats::default());
        });
    }

    #[test]
    fn telemetry_counts_run_jobs_and_balances_at_rest() {
        pool_scope(3, |pool| {
            let t0 = pool.telemetry();
            assert_eq!((t0.submitted, t0.started, t0.finished), (0, 0, 0));
            assert_eq!(t0.per_worker, vec![0, 0, 0]);

            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
                (0..12usize).map(|i| Box::new(move || i) as _).collect();
            pool.run(jobs).unwrap();
            // `run` blocks until every job finished, so at rest the flow
            // counters balance and the per-worker counts sum to the total.
            let t = pool.telemetry();
            assert_eq!((t.submitted, t.started, t.finished), (12, 12, 12));
            assert_eq!(t.queue_depth(), 0);
            assert_eq!(t.in_flight(), 0);
            assert_eq!(t.per_worker.iter().sum::<u64>(), 12);
            assert_eq!(t.panicked, 0);
        });
    }

    #[test]
    fn submit_executes_without_blocking_and_reports_through_channel() {
        pool_scope(2, |pool| {
            let (done_tx, done_rx) = channel::<usize>();
            for i in 0..8usize {
                let done_tx = done_tx.clone();
                pool.submit(Box::new(move || {
                    let _ = done_tx.send(i);
                }))
                .unwrap();
            }
            let mut got: Vec<usize> = (0..8).map(|_| done_rx.recv().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, (0..8).collect::<Vec<_>>());
            let t = pool.telemetry();
            assert_eq!(t.submitted, 8);
            assert_eq!(t.finished, 8);
            assert_eq!(t.per_worker.iter().sum::<u64>(), 8);
        });
    }

    #[test]
    fn submit_contains_panics_and_counts_them() {
        pool_scope(2, |pool| {
            let (done_tx, done_rx) = channel::<u32>();
            pool.submit(Box::new(|| panic!("streamed job exploded")))
                .unwrap();
            let tx = done_tx.clone();
            pool.submit(Box::new(move || {
                let _ = tx.send(5);
            }))
            .unwrap();
            assert_eq!(done_rx.recv().unwrap(), 5, "pool survives the panic");
            // Wait for the panicked job's accounting (it may finish after
            // the healthy one).
            loop {
                let t = pool.telemetry();
                if t.finished == 2 {
                    assert_eq!(t.panicked, 1);
                    break;
                }
                std::thread::yield_now();
            }
        });
    }

    #[test]
    fn submit_runs_inline_on_a_zero_worker_pool() {
        pool_scope(0, |pool| {
            let (done_tx, done_rx) = channel::<u32>();
            pool.submit(Box::new(move || {
                let _ = done_tx.send(9);
            }))
            .unwrap();
            assert_eq!(done_rx.recv().unwrap(), 9);
            pool.submit(Box::new(|| panic!("inline stream panic")))
                .unwrap();
            let t = pool.telemetry();
            assert_eq!((t.submitted, t.finished, t.panicked), (2, 2, 1));
            assert!(t.per_worker.is_empty());
        });
    }

    #[test]
    fn rejected_submit_does_not_inflate_queue_depth() {
        // A pool whose workers are gone (receiver dropped) rejects the
        // job; the pre-counted submission must be rolled back or
        // queue_depth() reports a phantom backlog forever.
        let (tx, rx) = channel::<Job<'static>>();
        drop(rx);
        let pool = WorkerPool {
            tx,
            workers: 1,
            query_lock: Mutex::new(()),
            counters: Mutex::new(PoolStats::default()),
            telemetry: Arc::new(Mutex::new(PoolTelemetry {
                per_worker: vec![0; 1],
                ..PoolTelemetry::default()
            })),
            flight: Mutex::new(None),
        };
        assert!(matches!(
            pool.submit(Box::new(|| {})),
            Err(PoolError::Disconnected)
        ));
        let t = pool.telemetry();
        assert_eq!(t.submitted, 0, "rejected job must not stay counted");
        assert_eq!(t.queue_depth(), 0);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn queue_depth_saturates_on_transient_inversion() {
        // Snapshot torn against a concurrent submit: derived reads
        // saturate instead of wrapping to u64::MAX.
        let t = PoolTelemetry {
            submitted: 3,
            started: 5,
            finished: 6,
            ..PoolTelemetry::default()
        };
        assert_eq!(t.queue_depth(), 0);
        assert_eq!(t.in_flight(), 0);
    }
}
