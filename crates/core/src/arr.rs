//! Aggregate reverse rank queries — the authors' own follow-up to the
//! paper (Dong et al., *"Aggregate Reverse Rank Queries"*, DEXA 2016,
//! cited as [7] in the related work): reverse top-k and reverse k-ranks
//! "were designed for only one product and cannot handle product
//! bundling", so the aggregate query finds the top-k preferences for a
//! *set* of query products.
//!
//! The aggregate rank of a preference `w` with respect to a bundle `Q`
//! is either the sum or the maximum of the per-product ranks:
//!
//! ```text
//! rank_sum(w, Q) = Σ_{q ∈ Q} rank(w, q)
//! rank_max(w, Q) = max_{q ∈ Q} rank(w, q)
//! ```
//!
//! and the query returns the `k` preferences with the smallest aggregate
//! (ties broken by weight id, as everywhere in this workspace).
//!
//! The GIR implementation reuses the Grid-index kernel per bundle
//! member with a shared, self-refining heap bound: while accumulating a
//! weight's aggregate, the remaining budget shrinks, so later bundle
//! members scan with ever-tighter early-termination bounds.

use crate::gir::{DominBuffer, Gir, Scratch};
use crate::grid::GridTable;
use rrq_types::{dot_counted, rank_of, KBestHeap, PointSet, QueryStats, RkrResult, WeightSet};

/// How per-product ranks combine into a bundle rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// `Σ rank(w, q)` — total visibility of the bundle.
    Sum,
    /// `max rank(w, q)` — the bundle is only as visible as its worst
    /// member.
    Max,
}

/// Definition-level oracle for aggregate reverse k-ranks.
///
/// # Panics
///
/// Panics if `queries` is empty or any dimensionality mismatches.
pub fn aggregate_reverse_k_ranks_naive(
    points: &PointSet,
    weights: &WeightSet,
    queries: &[impl AsRef<[f64]>],
    k: usize,
    agg: Aggregate,
    stats: &mut QueryStats,
) -> RkrResult {
    assert!(!queries.is_empty(), "bundle must be non-empty");
    let mut heap = KBestHeap::new(k);
    for (wid, w) in weights.iter() {
        stats.weights_visited += 1;
        let mut combined = 0usize;
        for q in queries {
            let q = q.as_ref();
            assert_eq!(q.len(), points.dim(), "query dimensionality");
            stats.multiplications += (points.len() + 1) as u64 * points.dim() as u64;
            let r = rank_of(points, w, q);
            combined = match agg {
                Aggregate::Sum => combined + r,
                Aggregate::Max => combined.max(r),
            };
        }
        heap.offer(combined, wid);
    }
    heap.into_result()
}

impl<'a, G: GridTable> Gir<'a, G> {
    /// Aggregate reverse k-ranks over a product bundle, Grid-index
    /// accelerated. Returns the `k` preferences with the smallest
    /// aggregate rank (entries carry the aggregate).
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty or any query's dimensionality
    /// differs from the data's.
    pub fn aggregate_reverse_k_ranks(
        &self,
        queries: &[impl AsRef<[f64]>],
        k: usize,
        agg: Aggregate,
        stats: &mut QueryStats,
    ) -> RkrResult {
        assert!(!queries.is_empty(), "bundle must be non-empty");
        let points = self.points_ref();
        let dim = points.dim();
        // Per-bundle-member state: quantised query and a dominator buffer
        // (dominance is a property of the individual query point).
        let mut qas: Vec<Vec<u8>> = Vec::with_capacity(queries.len());
        for q in queries {
            let q = q.as_ref();
            assert_eq!(q.len(), dim, "query dimensionality");
            qas.push(crate::approx::ApproxVectors::quantize_point(self.grid(), q));
        }
        let mut domins: Vec<DominBuffer> = (0..queries.len())
            .map(|_| DominBuffer::new(self.total_points()))
            .collect();
        let mut scratch = Scratch::new(dim);
        let mut w_scratch = vec![0u8; dim];
        let mut heap = KBestHeap::new(k);
        'weights: for wid in 0..self.total_weights() {
            if !self.admit_weight(wid, stats, &mut rrq_obs::NoopSink) {
                continue;
            }
            stats.weights_visited += 1;
            let w = self.weight_data(wid);
            let wa = self.w_approx_row(wid, &mut w_scratch).to_vec();
            let threshold = heap.threshold();
            let mut combined = 0usize;
            for (j, q) in queries.iter().enumerate() {
                let q = q.as_ref();
                let fq = dot_counted(w, q, stats);
                // Remaining early-termination budget for this member.
                let budget = match agg {
                    Aggregate::Sum => {
                        if threshold == usize::MAX {
                            usize::MAX
                        } else {
                            threshold - combined // combined <= threshold here
                        }
                    }
                    Aggregate::Max => threshold,
                };
                match self.gin_rank(
                    &wa,
                    w,
                    &qas[j],
                    fq,
                    budget,
                    &mut domins[j],
                    &mut scratch,
                    stats,
                    &rrq_obs::NoopRecorder,
                    &mut rrq_obs::NoopSink,
                ) {
                    None => continue 'weights, // aggregate surely exceeds bound
                    Some(r) => {
                        combined = match agg {
                            Aggregate::Sum => combined + r,
                            Aggregate::Max => combined.max(r),
                        };
                        if combined > threshold {
                            continue 'weights;
                        }
                    }
                }
            }
            heap.offer(combined, rrq_types::WeightId(wid));
        }
        heap.into_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gir::GirConfig;
    use rrq_data::synthetic;
    use rrq_types::PointId;

    fn workload(seed: u64) -> (PointSet, WeightSet) {
        (
            synthetic::uniform_points(4, 300, 10_000.0, seed).unwrap(),
            synthetic::uniform_weights(4, 80, seed + 1).unwrap(),
        )
    }

    fn bundle(p: &PointSet, ids: &[usize]) -> Vec<Vec<f64>> {
        ids.iter().map(|&i| p.point(PointId(i)).to_vec()).collect()
    }

    #[test]
    fn gir_matches_naive_for_sum_and_max() {
        for seed in 0..3 {
            let (p, w) = workload(seed);
            let gir = Gir::with_defaults(&p, &w);
            let queries = bundle(&p, &[3, 77, 141]);
            for agg in [Aggregate::Sum, Aggregate::Max] {
                for k in [1usize, 5, 20] {
                    let mut s1 = QueryStats::default();
                    let mut s2 = QueryStats::default();
                    assert_eq!(
                        gir.aggregate_reverse_k_ranks(&queries, k, agg, &mut s1),
                        aggregate_reverse_k_ranks_naive(&p, &w, &queries, k, agg, &mut s2),
                        "seed {seed} agg {agg:?} k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn singleton_bundle_equals_plain_rkr() {
        use rrq_types::RkrQuery;
        let (p, w) = workload(7);
        let gir = Gir::with_defaults(&p, &w);
        let q = p.point(PointId(42)).to_vec();
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        let arr =
            gir.aggregate_reverse_k_ranks(std::slice::from_ref(&q), 10, Aggregate::Sum, &mut s1);
        let rkr = gir.reverse_k_ranks(&q, 10, &mut s2);
        assert_eq!(arr, rkr);
    }

    #[test]
    fn sum_dominates_max() {
        // For every weight, sum-aggregate >= max-aggregate, so the best
        // max-aggregate in W is <= the best sum-aggregate.
        let (p, w) = workload(9);
        let gir = Gir::with_defaults(&p, &w);
        let queries = bundle(&p, &[10, 20]);
        let mut s = QueryStats::default();
        let sum = gir.aggregate_reverse_k_ranks(&queries, 1, Aggregate::Sum, &mut s);
        let max = gir.aggregate_reverse_k_ranks(&queries, 1, Aggregate::Max, &mut s);
        assert!(max.entries()[0].rank <= sum.entries()[0].rank);
    }

    #[test]
    fn works_with_packed_and_coarse_grids() {
        let (p, w) = workload(11);
        let queries = bundle(&p, &[0, 299]);
        for config in [
            GirConfig {
                partitions: 4,
                ..Default::default()
            },
            GirConfig {
                packed: true,
                ..Default::default()
            },
        ] {
            let gir = Gir::new(&p, &w, config);
            let mut s1 = QueryStats::default();
            let mut s2 = QueryStats::default();
            assert_eq!(
                gir.aggregate_reverse_k_ranks(&queries, 8, Aggregate::Sum, &mut s1),
                aggregate_reverse_k_ranks_naive(&p, &w, &queries, 8, Aggregate::Sum, &mut s2),
                "{config:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_bundle_is_rejected() {
        let (p, w) = workload(13);
        let gir = Gir::with_defaults(&p, &w);
        let mut s = QueryStats::default();
        let empty: Vec<Vec<f64>> = Vec::new();
        gir.aggregate_reverse_k_ranks(&empty, 3, Aggregate::Sum, &mut s);
    }

    #[test]
    fn k_exceeding_w_returns_everything() {
        let (p, w) = workload(15);
        let gir = Gir::with_defaults(&p, &w);
        let queries = bundle(&p, &[1, 2]);
        let mut s = QueryStats::default();
        let r = gir.aggregate_reverse_k_ranks(&queries, 1000, Aggregate::Sum, &mut s);
        assert_eq!(r.len(), w.len());
    }
}
