//! Sparse-weight optimisation — the paper's second future-work extension
//! (§7): "do optimization when the user preferences data w ∈ W has many
//! zero entries … since in practice, a user is normally interested in a
//! few attributes of the products."
//!
//! A zero weight component contributes exactly 0 to every score, so both
//! the bound assembly and the refinement inner product may skip it. The
//! scan cost per `(p, w)` pair drops from `d` to `nnz(w)` additions, and —
//! because the equal-width upper bound `Grid[pa+1][wa+1]` of a zero
//! component is *positive* — skipping also tightens `U`, improving the
//! Case 1 filter.

use crate::grid::Grid;
use rrq_types::point::dominates;
use rrq_types::{
    KBestHeap, PointId, PointSet, QueryStats, RkrQuery, RkrResult, RtkQuery, RtkResult, WeightSet,
};

/// One non-zero component of a sparse weight.
#[derive(Debug, Clone, Copy)]
struct NzEntry {
    /// Dimension index.
    dim: u32,
    /// Quantised cell of the component.
    cell: u8,
    /// The component value.
    value: f64,
}

/// GIR specialised for sparse preference vectors.
///
/// Produces exactly the same results as [`crate::Gir`]; only the per-pair
/// cost model changes. Dense weights degrade gracefully (`nnz = d`).
pub struct SparseGir<'a> {
    points: &'a PointSet,
    weights: &'a WeightSet,
    grid: Grid,
    /// Byte-format approximate point vectors.
    p_cells: Vec<u8>,
    /// Non-zero entries of every weight, concatenated.
    nz: Vec<NzEntry>,
    /// Start offsets into `nz` per weight (len + 1 entries).
    offsets: Vec<usize>,
}

impl<'a> SparseGir<'a> {
    /// Builds the index (grid, quantised points, sparse weight lists).
    ///
    /// # Panics
    ///
    /// Panics if the sets have different dimensionality or `partitions`
    /// is outside `2..=255`.
    pub fn new(points: &'a PointSet, weights: &'a WeightSet, partitions: usize) -> Self {
        assert_eq!(
            points.dim(),
            weights.dim(),
            "P and W must share dimensionality"
        );
        // Scale the weight axis to the observed maximum component, like
        // the dense Gir (sparse weights concentrate mass on few dims, so
        // their non-zero components are comparatively large).
        let w_max = weights
            .as_flat()
            .iter()
            .cloned()
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let grid = Grid::with_ranges(partitions, points.value_range(), w_max);
        let dim = points.dim();
        let mut p_cells = Vec::with_capacity(points.len() * dim);
        for (_, p) in points.iter() {
            p_cells.extend(p.iter().map(|&v| grid.point_cell(v)));
        }
        let mut nz = Vec::new();
        let mut offsets = Vec::with_capacity(weights.len() + 1);
        offsets.push(0);
        for (_, w) in weights.iter() {
            for (d, &v) in w.iter().enumerate() {
                if v > 0.0 {
                    nz.push(NzEntry {
                        dim: d as u32,
                        cell: grid.weight_cell(v),
                        value: v,
                    });
                }
            }
            offsets.push(nz.len());
        }
        Self {
            points,
            weights,
            grid,
            p_cells,
            nz,
            offsets,
        }
    }

    /// Average number of non-zero components per weight.
    pub fn mean_nnz(&self) -> f64 {
        if self.weights.is_empty() {
            0.0
        } else {
            self.nz.len() as f64 / self.weights.len() as f64
        }
    }

    #[inline]
    fn weight_nz(&self, wid: usize) -> &[NzEntry] {
        &self.nz[self.offsets[wid]..self.offsets[wid + 1]]
    }

    /// Sparse inner product `Σ_{nz} w[i]·x[i]`, counted as `nnz`
    /// multiplications.
    #[inline]
    fn sparse_dot(nz: &[NzEntry], x: &[f64], stats: &mut QueryStats) -> f64 {
        stats.multiplications += nz.len() as u64;
        let mut acc = 0.0;
        for e in nz {
            acc += e.value * x[e.dim as usize];
        }
        acc
    }

    /// The sparse GInTop-k kernel: counts points preceding `q` under
    /// weight `wid`, stopping (returning `None`) once the count exceeds
    /// `bound`.
    #[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
    fn gin_rank(
        &self,
        wid: usize,
        q: &[f64],
        fq: f64,
        bound: usize,
        domin: &mut [bool],
        domin_len: &mut usize,
        stats: &mut QueryStats,
    ) -> Option<usize> {
        let nz = self.weight_nz(wid);
        let d = self.points.dim();
        let mut rank = *domin_len;
        if rank > bound {
            stats.early_terminations += 1;
            return None;
        }
        // Equal-width factorisation (see Grid::classify): corner products
        // are i·j·cell_area, so both sparse bound sums reduce to integer
        // multiply-accumulates over the non-zero dimensions.
        let cell_area = self.grid.point_range() * self.grid.weight_range()
            / (self.grid.partitions() * self.grid.partitions()) as f64;
        for id in 0..self.points.len() {
            if domin[id] {
                stats.domin_skips += 1;
                continue;
            }
            let pa = &self.p_cells[id * d..(id + 1) * d];
            stats.points_visited += 1;
            stats.bound_additions += 2 * nz.len() as u64;
            let mut lsum: u32 = 0;
            let mut sab: u32 = 0;
            for e in nz {
                let a = pa[e.dim as usize] as u32;
                let b = e.cell as u32;
                lsum += a * b;
                sab += a + b;
            }
            let usum = lsum + sab + nz.len() as u32;
            let preceded = if (usum as f64) * cell_area < fq {
                stats.filtered_case1 += 1;
                let p = self.points.point(PointId(id));
                if dominates(p, q) {
                    domin[id] = true;
                    *domin_len += 1;
                }
                true
            } else if (lsum as f64) * cell_area >= fq {
                stats.filtered_case2 += 1;
                false
            } else {
                // Case 3: refine in place with the sparse inner product.
                stats.refined += 1;
                let p = self.points.point(PointId(id));
                Self::sparse_dot(nz, p, stats) < fq
            };
            if preceded {
                rank += 1;
                if rank > bound {
                    stats.early_terminations += 1;
                    return None;
                }
            }
        }
        Some(rank)
    }
}

impl RtkQuery for SparseGir<'_> {
    fn name(&self) -> &'static str {
        "GIR-SPARSE"
    }

    fn reverse_top_k(&self, q: &[f64], k: usize, stats: &mut QueryStats) -> RtkResult {
        assert_eq!(q.len(), self.points.dim(), "query dimensionality");
        if k == 0 {
            return RtkResult::default();
        }
        let mut domin = vec![false; self.points.len()];
        let mut domin_len = 0usize;
        let mut out = Vec::new();
        for (wid, _) in self.weights.iter() {
            stats.weights_visited += 1;
            let nz = self.weight_nz(wid.0);
            let fq = Self::sparse_dot(nz, q, stats);
            if let Some(rank) =
                self.gin_rank(wid.0, q, fq, k - 1, &mut domin, &mut domin_len, stats)
            {
                debug_assert!(rank < k);
                out.push(wid);
            }
            if domin_len >= k {
                return RtkResult::default();
            }
        }
        RtkResult::from_weights(out)
    }
}

impl RkrQuery for SparseGir<'_> {
    fn name(&self) -> &'static str {
        "GIR-SPARSE"
    }

    fn reverse_k_ranks(&self, q: &[f64], k: usize, stats: &mut QueryStats) -> RkrResult {
        assert_eq!(q.len(), self.points.dim(), "query dimensionality");
        let mut domin = vec![false; self.points.len()];
        let mut domin_len = 0usize;
        let mut heap = KBestHeap::new(k);
        for (wid, _) in self.weights.iter() {
            stats.weights_visited += 1;
            let nz = self.weight_nz(wid.0);
            let fq = Self::sparse_dot(nz, q, stats);
            let bound = heap.threshold();
            if let Some(rank) =
                self.gin_rank(wid.0, q, fq, bound, &mut domin, &mut domin_len, stats)
            {
                heap.offer(rank, wid);
            }
        }
        heap.into_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gir::{Gir, GirConfig};
    use rrq_baselines::Naive;
    use rrq_data::synthetic;

    fn sparse_workload(seed: u64) -> (PointSet, WeightSet) {
        (
            synthetic::uniform_points(10, 300, 10_000.0, seed).unwrap(),
            synthetic::sparse_weights(10, 60, 3, seed + 1).unwrap(),
        )
    }

    #[test]
    fn matches_naive_on_sparse_weights() {
        let (p, w) = sparse_workload(1);
        let sparse = SparseGir::new(&p, &w, 32);
        let naive = Naive::new(&p, &w);
        for qid in [0usize, 100, 250] {
            let q = p.point(PointId(qid)).to_vec();
            for k in [1usize, 10, 30] {
                let mut s1 = QueryStats::default();
                let mut s2 = QueryStats::default();
                assert_eq!(
                    sparse.reverse_top_k(&q, k, &mut s1),
                    naive.reverse_top_k(&q, k, &mut s2),
                    "RTK q {qid} k {k}"
                );
                let mut s3 = QueryStats::default();
                let mut s4 = QueryStats::default();
                assert_eq!(
                    sparse.reverse_k_ranks(&q, k, &mut s3),
                    naive.reverse_k_ranks(&q, k, &mut s4),
                    "RKR q {qid} k {k}"
                );
            }
        }
    }

    #[test]
    fn matches_dense_gir_on_dense_weights() {
        let p = synthetic::uniform_points(5, 200, 10_000.0, 3).unwrap();
        let w = synthetic::uniform_weights(5, 50, 4).unwrap();
        let sparse = SparseGir::new(&p, &w, 32);
        let dense = Gir::new(&p, &w, GirConfig::default());
        let q = p.point(PointId(7)).to_vec();
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        assert_eq!(
            sparse.reverse_top_k(&q, 15, &mut s1),
            dense.reverse_top_k(&q, 15, &mut s2)
        );
    }

    #[test]
    fn sparse_saves_bound_additions() {
        let (p, w) = sparse_workload(5);
        let sparse = SparseGir::new(&p, &w, 32);
        let dense = Gir::new(
            &p,
            &w,
            GirConfig {
                use_domin: true,
                ..Default::default()
            },
        );
        assert!(sparse.mean_nnz() <= 3.0);
        let q = p.point(PointId(50)).to_vec();
        let mut s_sparse = QueryStats::default();
        let mut s_dense = QueryStats::default();
        sparse.reverse_k_ranks(&q, 20, &mut s_sparse);
        dense.reverse_k_ranks(&q, 20, &mut s_dense);
        assert!(
            s_sparse.bound_additions * 2 < s_dense.bound_additions,
            "sparse {} vs dense {}",
            s_sparse.bound_additions,
            s_dense.bound_additions
        );
    }

    #[test]
    fn mean_nnz_reports_support() {
        let (p, w) = sparse_workload(7);
        let sparse = SparseGir::new(&p, &w, 16);
        let nnz = sparse.mean_nnz();
        assert!(nnz > 0.5 && nnz <= 3.0, "nnz {nnz}");
        let _ = p;
    }

    #[test]
    fn all_zero_support_dimension_is_skipped_correctly() {
        // Weights supported on dim 0 only: score reduces to p[0]·w[0].
        let p = PointSet::from_flat(3, 10.0, &[1.0, 9.0, 9.0, 5.0, 0.0, 0.0]).unwrap();
        let w = WeightSet::from_flat(3, &[1.0, 0.0, 0.0]).unwrap();
        let sparse = SparseGir::new(&p, &w, 8);
        let naive = Naive::new(&p, &w);
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        // q = (3, 0, 0): under w only the first point (p[0]=1) precedes it.
        let q = [3.0, 0.0, 0.0];
        assert_eq!(
            sparse.reverse_k_ranks(&q, 1, &mut s1),
            naive.reverse_k_ranks(&q, 1, &mut s2)
        );
    }
}
