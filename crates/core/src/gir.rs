//! The GIR algorithm: Grid-index filtered scan for reverse top-k and
//! reverse k-ranks (paper §4, Algorithms 1–3).
//!
//! GIR is an optimised simple scan. For each weight it walks the
//! *approximate* vectors `P⁽ᴬ⁾`, assembling score bounds from the
//! Grid-index by pure addition. Most points are classified without a
//! multiplication:
//!
//! * **Case 1** (`U[f_w(p)] < f_w(q)`): `p` surely precedes `q` — count
//!   it. If it also dominates `q` it enters the global `Domin` buffer and
//!   is never scanned again.
//! * **Case 2** (`L[f_w(p)] ≥ f_w(q)`): `p` surely does not precede `q` —
//!   skip it.
//! * **Case 3** (otherwise): incomparable — defer to a refinement pass
//!   that checks the original data.
//!
//! The scan terminates as soon as the rank bound is hit: `k` for RTK
//! (Alg. 2), the self-refining `minRank` heap bound for RKR (Alg. 3).
//!
//! Note on strictness: the paper states Case 1 as `U < f_w(q)` in §3.1
//! but writes `≤` in Alg. 1 line 5; because `rank` counts *strictly*
//! preceding points, `<` is the safe direction and is what we implement
//! (a point with `f_w(p) = f_w(q)` does not improve `q`'s rank).

use crate::approx::{ApproxVectors, PackedApproxVectors};
use crate::grid::{Grid, GridTable};
use crate::snapshot::{DeltaIndex, EngineState};
use crate::threshold::{RtkThresholdOutcome, ThresholdIndex};
use rrq_obs::{
    span, timed_leaf, BoundSource, ExplainClass, ExplainDoc, ExplainKind, ExplainSink,
    NoopRecorder, NoopSink, Recorder, RANK_CERTIFIED,
};
use rrq_types::{
    dot_counted, KBestHeap, PointId, PointSet, QueryStats, RkrQuery, RkrResult, RtkQuery,
    RtkResult, WeightSet,
};
use std::borrow::Cow;
use std::sync::Arc;

/// Configuration of the GIR algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GirConfig {
    /// Number of value-range partitions `n` (the paper's default is 32,
    /// justified by Theorem 1).
    pub partitions: usize,
    /// Keep the global `Domin` buffer of query-dominating points
    /// (Alg. 1 lines 7–8). On by default; the ablation bench disables it.
    pub use_domin: bool,
    /// Scan from bit-packed approximate vectors (paper §3.2) instead of
    /// byte-per-dimension rows. Saves ~8× approximate-vector memory at the
    /// cost of per-row decoding. Off by default.
    pub packed: bool,
}

impl Default for GirConfig {
    fn default() -> Self {
        Self {
            partitions: 32,
            use_domin: true,
            packed: false,
        }
    }
}

impl GirConfig {
    /// A configuration tuned for modern (SIMD) hardware: `n = 128`.
    ///
    /// The paper's `n = 32` follows Theorem 1, whose model understates
    /// bound widths (see EXPERIMENTS.md); with vectorised scans the extra
    /// table memory (133 KB, still cache-resident) buys a markedly lower
    /// refinement rate and wins wall-clock across dimensionalities.
    pub fn tuned() -> Self {
        Self {
            partitions: 128,
            ..Self::default()
        }
    }
}

enum PointStore<'a> {
    Bytes(ApproxVectors),
    Packed(PackedApproxVectors),
    /// Borrowed byte-format cells — the epoch snapshot layer's base data
    /// owns the quantisation and hands out views ([`Gir::snapshot_view`]).
    BytesRef(&'a ApproxVectors),
}

impl PointStore<'_> {
    /// The flat byte-format cell matrix, when this store has one — the
    /// precondition of the blocked fast scan.
    fn flat_bytes(&self) -> Option<&[u8]> {
        match self {
            PointStore::Bytes(b) => Some(b.as_flat()),
            PointStore::BytesRef(b) => Some(b.as_flat()),
            PointStore::Packed(_) => None,
        }
    }
}

enum WeightStore<'a> {
    Bytes(ApproxVectors),
    Packed(PackedApproxVectors),
    /// Borrowed byte-format cells (see [`PointStore::BytesRef`]).
    BytesRef(&'a ApproxVectors),
}

/// The Grid-index reverse rank algorithm bound to a data set pair.
///
/// Generic over the corner-product table: the paper's equal-width
/// [`Grid`] by default, or the quantile [`crate::AdaptiveGrid`] extension.
///
/// ```
/// use rrq_core::Gir;
/// use rrq_types::{PointSet, WeightSet, QueryStats, RtkQuery, RkrQuery, WeightId};
///
/// let products = PointSet::from_flat(2, 10.0, &[
///     1.0, 9.0,   // cheap, weak battery
///     8.0, 2.0,   // pricey, great battery
/// ])?;
/// let users = WeightSet::from_flat(2, &[
///     0.9, 0.1,   // price-sensitive
///     0.1, 0.9,   // battery-obsessed
/// ])?;
/// let gir = Gir::with_defaults(&products, &users);
/// let mut stats = QueryStats::default();
///
/// // Who shortlists the cheap phone?
/// let fans = gir.reverse_top_k(&[1.0, 9.0], 1, &mut stats);
/// assert!(fans.contains(WeightId(0)));
/// // And the k-ranks query never returns empty:
/// let best = gir.reverse_k_ranks(&[8.0, 2.0], 1, &mut stats);
/// assert_eq!(best.entries()[0].weight, WeightId(1));
/// # Ok::<(), rrq_types::RrqError>(())
/// ```
pub struct Gir<'a, G: GridTable = Grid> {
    points: &'a PointSet,
    weights: &'a WeightSet,
    grid: G,
    p_approx: PointStore<'a>,
    w_approx: WeightStore<'a>,
    /// `Σ pa[k]` per point — the per-point constant of the integer-domain
    /// upper-bound sum used by the equal-width fast path. Owned by the
    /// engine, or borrowed from snapshot base data for views.
    p_cell_sums: Cow<'a, [u32]>,
    /// Dimension-major (column) copy of the approximate point cells:
    /// `p_cols[k · |P| + id] = pa_id[k]`. The blocked scan's
    /// multiply-accumulate reads 64 contiguous bytes per dimension and
    /// multiplies by a broadcast weight cell, which vectorises — the
    /// row-major layout cannot.
    p_cols: Cow<'a, [u8]>,
    config: GirConfig,
    /// Optional materialized per-weight k-th-score table. When present,
    /// RTK membership and RKR skip certification become one threshold
    /// comparison per weight; only straddling candidates fall into the
    /// grid scan. Attached via [`Gir::attach_threshold_index`];
    /// `Arc`-shared so epoch snapshots can hand the same table to many
    /// concurrent views.
    threshold: Option<Arc<ThresholdIndex>>,
    /// Mutation overlay of a snapshot view: tombstone bitmaps plus the
    /// append logs of points and weights inserted after the base build.
    /// `None` for engines built directly over immutable sets — every
    /// static scan compiles down to exactly the pre-update code paths.
    delta: Option<&'a DeltaIndex>,
}

impl<'a> Gir<'a, Grid> {
    /// Builds the (equal-width) Grid-index and pre-quantises both data
    /// sets (the preprocessing step of §3.1).
    ///
    /// # Panics
    ///
    /// Panics if the sets have different dimensionality or the
    /// configuration is invalid (`partitions` outside `2..=255`).
    pub fn new(points: &'a PointSet, weights: &'a WeightSet, config: GirConfig) -> Self {
        // Paper §3.1 quantises each data set over its own value range.
        // Normalised preferences concentrate near 1/d, so scaling the
        // weight axis to the observed maximum component keeps the cells
        // meaningful in high dimensions.
        let w_max = weights
            .as_flat()
            .iter()
            .cloned()
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let grid = Grid::with_ranges(config.partitions, points.value_range(), w_max);
        Self::with_grid(points, weights, grid, config)
    }

    /// With the paper's default configuration (`n = 32`, `Domin` on,
    /// byte-format approximate vectors).
    pub fn with_defaults(points: &'a PointSet, weights: &'a WeightSet) -> Self {
        Self::new(points, weights, GirConfig::default())
    }

    /// Chooses the number of partitions with Theorem 1 for the target
    /// worst-case filter failure rate `epsilon`, rounded up to the next
    /// power of two (cells pack into `log₂ n` bits) and clamped to the
    /// `u8` cell limit of 128.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < epsilon < 1` (and on dimensionality mismatch).
    pub fn auto(points: &'a PointSet, weights: &'a WeightSet, epsilon: f64) -> Self {
        let n = crate::model::required_partitions(points.dim(), epsilon);
        let n = crate::model::next_power_of_two(n).clamp(2, 128);
        Self::new(
            points,
            weights,
            GirConfig {
                partitions: n,
                ..GirConfig::default()
            },
        )
    }
}

impl<'a> Gir<'a, &'a Grid> {
    /// Builds a borrowed scan view over an epoch snapshot: the base data
    /// and grid are shared (nothing is re-quantised per view), the delta
    /// overlay drives tombstone skips and append-tail scans, and the
    /// snapshot's threshold table — already repaired to this epoch — is
    /// attached without revalidation.
    pub(crate) fn snapshot_view(state: &'a EngineState) -> Self {
        let base = state.base();
        Self {
            points: base.points(),
            weights: base.weights(),
            grid: base.grid(),
            p_approx: PointStore::BytesRef(base.p_approx()),
            w_approx: WeightStore::BytesRef(base.w_approx()),
            p_cell_sums: Cow::Borrowed(base.p_cell_sums()),
            p_cols: Cow::Borrowed(base.p_cols()),
            config: base.config(),
            threshold: state.threshold_arc(),
            delta: Some(state.delta()),
        }
    }
}

impl<'a, G: GridTable> Gir<'a, G> {
    /// Builds the algorithm around a caller-supplied corner table (used by
    /// the adaptive-grid extension). `config.partitions` is ignored in
    /// favour of `grid.partitions()`.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different dimensionality.
    pub fn with_grid(
        points: &'a PointSet,
        weights: &'a WeightSet,
        grid: G,
        config: GirConfig,
    ) -> Self {
        assert_eq!(
            points.dim(),
            weights.dim(),
            "P and W must share dimensionality"
        );
        let bytes = ApproxVectors::from_points(&grid, points);
        let p_cell_sums: Vec<u32> = bytes
            .iter()
            .map(|row| row.iter().map(|&c| c as u32).sum())
            .collect();
        let n_points = points.len();
        let dim = points.dim();
        let mut p_cols = vec![0u8; n_points * dim];
        for (id, row) in bytes.iter().enumerate() {
            for (k, &c) in row.iter().enumerate() {
                p_cols[k * n_points + id] = c;
            }
        }
        let p_approx = if config.packed {
            let bits = PackedApproxVectors::bits_for_partitions(grid.partitions());
            PointStore::Packed(PackedApproxVectors::pack(&bytes, bits))
        } else {
            PointStore::Bytes(bytes)
        };
        let w_bytes = ApproxVectors::from_weights(&grid, weights);
        let w_approx = if config.packed {
            let bits = PackedApproxVectors::bits_for_partitions(grid.partitions());
            WeightStore::Packed(PackedApproxVectors::pack(&w_bytes, bits))
        } else {
            WeightStore::Bytes(w_bytes)
        };
        Self {
            points,
            weights,
            grid,
            p_approx,
            w_approx,
            p_cell_sums: Cow::Owned(p_cell_sums),
            p_cols: Cow::Owned(p_cols),
            config,
            threshold: None,
            delta: None,
        }
    }

    /// Materializes a [`ThresholdIndex`] for this engine's data sets at
    /// the given k-buckets (one top-k oracle scan of `P` per weight).
    /// Build-only; attach the result with
    /// [`Self::attach_threshold_index`] to serve from it.
    ///
    /// # Errors
    ///
    /// Propagates [`ThresholdIndex::build`] validation failures.
    pub fn build_threshold_index(&self, buckets: &[usize]) -> rrq_types::RrqResult<ThresholdIndex> {
        ThresholdIndex::build(self.points, self.weights, buckets)
    }

    /// Attaches a materialized threshold index after validating it
    /// against the live data sets (dimensions, cardinalities and the
    /// build-time data fingerprint must all match).
    ///
    /// # Errors
    ///
    /// [`rrq_types::RrqError::ArtifactStale`] when the index was built
    /// from different data — a stale artifact is rejected here rather
    /// than silently serving wrong thresholds.
    pub fn attach_threshold_index(&mut self, index: ThresholdIndex) -> rrq_types::RrqResult<()> {
        index.validate_for(self.points, self.weights)?;
        self.threshold = Some(Arc::new(index));
        Ok(())
    }

    /// Detaches and returns the threshold index, if one is attached
    /// (cloning the table when snapshot views still share it).
    pub fn detach_threshold_index(&mut self) -> Option<ThresholdIndex> {
        self.threshold
            .take()
            .map(|a| Arc::try_unwrap(a).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// The attached threshold index, if any.
    pub fn threshold_index(&self) -> Option<&ThresholdIndex> {
        self.threshold.as_deref()
    }

    /// The underlying corner table.
    pub fn grid(&self) -> &G {
        &self.grid
    }

    pub(crate) fn points_ref(&self) -> &'a PointSet {
        self.points
    }

    pub(crate) fn w_approx_row<'s>(&'s self, wid: usize, scratch: &'s mut [u8]) -> &'s [u8] {
        self.w_row(wid, scratch)
    }

    /// Total point-id width of this engine: base points plus the append
    /// tail (tombstoned slots included — ids are never reused within an
    /// epoch). `DominBuffer`s must span this width.
    pub(crate) fn total_points(&self) -> usize {
        self.points.len() + self.delta.map_or(0, |d| d.appended_points_len())
    }

    /// Total weight-id width: base weights plus the append tail.
    pub(crate) fn total_weights(&self) -> usize {
        self.weights.len() + self.delta.map_or(0, |d| d.appended_weights_len())
    }

    /// Per-weight admission check over a mutable snapshot: a tombstoned
    /// weight is booked as a skip and refused; a live appended weight
    /// books its append-tail visit. Static engines admit every id.
    /// Callers book `weights_visited` only for admitted weights — deleted
    /// weights are invisible to the funnel beyond the tombstone count.
    pub(crate) fn admit_weight<S: ExplainSink>(
        &self,
        wid: usize,
        stats: &mut QueryStats,
        sink: &mut S,
    ) -> bool {
        let Some(dx) = self.delta else {
            return true;
        };
        if dx.weight_tombstoned(wid) {
            stats.tombstones_skipped += 1;
            if sink.enabled() {
                sink.tombstone_skip();
            }
            return false;
        }
        if wid >= self.weights.len() {
            stats.appended_scanned += 1;
            if sink.enabled() {
                sink.appended_scan();
            }
        }
        true
    }

    /// The original data row of weight `wid`, serving appended ids from
    /// the delta's append log.
    pub(crate) fn weight_data(&self, wid: usize) -> &[f64] {
        let base = self.weights.len();
        if wid < base {
            self.weights.weight(rrq_types::WeightId(wid))
        } else {
            self.delta
                // rrq-lint: allow(no-unwrap-in-lib) -- an appended id can only come from total_weights(), which counts the delta
                .expect("appended weight id requires a delta overlay")
                .appended_weight(wid - base)
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> GirConfig {
        self.config
    }

    /// Memory used by the index structures (grid table + approximate
    /// vectors), in bytes — the "negligible memory cost" of the paper's
    /// abstract.
    pub fn index_memory_bytes(&self) -> usize {
        let p_mem = match &self.p_approx {
            PointStore::Bytes(b) => b.memory_bytes(),
            PointStore::Packed(p) => p.memory_bytes(),
            PointStore::BytesRef(b) => b.memory_bytes(),
        };
        let w_mem = match &self.w_approx {
            WeightStore::Bytes(b) => b.memory_bytes(),
            WeightStore::Packed(p) => p.memory_bytes(),
            WeightStore::BytesRef(b) => b.memory_bytes(),
        };
        let t_mem = self.threshold.as_ref().map_or(0, |t| t.memory_bytes());
        self.grid.memory_bytes() + p_mem + w_mem + t_mem
    }

    /// Decodes (or borrows) the approximate row of weight `wid` into
    /// `scratch` when packed, serving appended ids from the delta's
    /// pre-quantised append log.
    fn w_row<'s>(&'s self, wid: usize, scratch: &'s mut [u8]) -> &'s [u8] {
        let base = self.weights.len();
        if wid >= base {
            return self
                .delta
                // rrq-lint: allow(no-unwrap-in-lib) -- an appended id can only come from total_weights(), which counts the delta
                .expect("appended weight id requires a delta overlay")
                .appended_weight_cells(wid - base);
        }
        match &self.w_approx {
            WeightStore::Bytes(b) => b.row(wid),
            WeightStore::BytesRef(b) => b.row(wid),
            WeightStore::Packed(p) => {
                p.decode_row(wid, scratch);
                scratch
            }
        }
    }

    /// GInTop-k (Alg. 1): scans `P⁽ᴬ⁾` under weight `w`, counting points
    /// preceding `q`. Returns `None` as soon as the count *exceeds*
    /// `bound` (the paper's `-1`), else `Some(exact rank)`.
    ///
    /// `scratch` buffers avoid per-call allocation; `domin` is the shared
    /// dominating-point buffer. `rec` receives per-refinement leaf timings
    /// and `sink` per-cell classification provenance — a [`NoopRecorder`]
    /// / [`NoopSink`] monomorphises either away entirely.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn gin_rank<R: Recorder + ?Sized, S: ExplainSink>(
        &self,
        wa: &[u8],
        w: &[f64],
        qa: &[u8],
        fq: f64,
        bound: usize,
        domin: &mut DominBuffer,
        scratch: &mut Scratch,
        stats: &mut QueryStats,
        rec: &R,
        sink: &mut S,
    ) -> Option<usize> {
        let mut rank = domin.len();
        if rank > bound {
            stats.early_terminations += 1;
            if sink.enabled() {
                sink.early_termination();
            }
            return None;
        }
        let n_points = self.points.len();
        // Equal-width grids admit an integer-domain classifier with no
        // per-pair floating point work; irregular tables fall back to the
        // bound-sum classifier.
        let prepared = self.grid.prepare_scan(wa, fq);
        // Fast path: byte-format cells + integer-domain classifier. The
        // scan is blocked: 64 points are classified branchlessly into
        // bitmasks, then only the interesting bits are acted on — whole
        // Case 2 stretches cost nothing beyond the multiply-accumulate.
        //
        // Explained runs take the scalar path instead: the blocked scan is
        // pinned to produce identical results *and* QueryStats (see
        // `blocked_and_scalar_paths_report_identical_stats`), so per-cell
        // provenance recorded here describes the blocked scan faithfully.
        // Snapshots whose delta touches points (tombstones or appends)
        // also take the scalar path, which books the per-entry mutation
        // counters; weight-only deltas keep the fast path.
        if !sink.enabled() && self.delta.is_none_or(|dx| dx.points_unchanged()) {
            if let (Some(flat), Some(ps)) = (self.p_approx.flat_bytes(), &prepared) {
                return self.gin_rank_blocked(flat, ps, wa, w, qa, fq, bound, domin, stats, rec);
            }
        }
        for id in 0..n_points {
            if let Some(dx) = self.delta {
                if dx.point_tombstoned(id) {
                    stats.tombstones_skipped += 1;
                    if sink.enabled() {
                        sink.tombstone_skip();
                    }
                    continue;
                }
            }
            if domin.contains(id) {
                stats.domin_skips += 1;
                if sink.enabled() {
                    sink.domin_skip(self.pa_row(id, scratch));
                }
                continue;
            }
            let pa: &[u8] = match &self.p_approx {
                PointStore::Bytes(b) => b.row(id),
                PointStore::BytesRef(b) => b.row(id),
                PointStore::Packed(p) => {
                    p.decode_row(id, &mut scratch.row);
                    &scratch.row
                }
            };
            let live = self.classify_candidate(
                id,
                pa,
                self.p_cell_sums[id],
                self.points.point(PointId(id)),
                &prepared,
                wa,
                w,
                qa,
                fq,
                bound,
                &mut rank,
                domin,
                stats,
                rec,
                sink,
            );
            if !live {
                return None;
            }
        }
        // Append tail: points inserted after the base build, scanned in
        // insertion order so every engine (and the rebuilt oracle, whose
        // dense ids preserve this order) visits candidates identically.
        if let Some(dx) = self.delta {
            for j in 0..dx.appended_points_len() {
                let id = n_points + j;
                if dx.point_tombstoned(id) {
                    stats.tombstones_skipped += 1;
                    if sink.enabled() {
                        sink.tombstone_skip();
                    }
                    continue;
                }
                if domin.contains(id) {
                    stats.domin_skips += 1;
                    if sink.enabled() {
                        sink.domin_skip(dx.appended_point_cells(j));
                    }
                    continue;
                }
                stats.appended_scanned += 1;
                if sink.enabled() {
                    sink.appended_scan();
                }
                let live = self.classify_candidate(
                    id,
                    dx.appended_point_cells(j),
                    dx.appended_point_cell_sum(j),
                    dx.appended_point(j),
                    &prepared,
                    wa,
                    w,
                    qa,
                    fq,
                    bound,
                    &mut rank,
                    domin,
                    stats,
                    rec,
                    sink,
                );
                if !live {
                    return None;
                }
            }
        }
        Some(rank)
    }

    /// Classifies one live candidate (base or appended) against the query
    /// score and folds the outcome into `rank` — the shared per-point body
    /// of the scalar scan. Returns `false` when the scan terminated early
    /// (`rank` exceeded `bound`, already booked).
    #[allow(clippy::too_many_arguments)]
    fn classify_candidate<R: Recorder + ?Sized, S: ExplainSink>(
        &self,
        id: usize,
        pa: &[u8],
        pa_sum: u32,
        p_data: &[f64],
        prepared: &Option<crate::grid::PreparedScan>,
        wa: &[u8],
        w: &[f64],
        qa: &[u8],
        fq: f64,
        bound: usize,
        rank: &mut usize,
        domin: &mut DominBuffer,
        stats: &mut QueryStats,
        rec: &R,
        sink: &mut S,
    ) -> bool {
        stats.points_visited += 1;
        // Eqs. 3-4: both bound sums cost 2d additions (no
        // multiplication on the original data).
        stats.bound_additions += 2 * p_data.len() as u64;
        let case = match prepared {
            Some(ps) => ps.classify(pa, wa, pa_sum),
            None => self.grid.classify(pa, wa, fq),
        };
        if sink.enabled() {
            // The generic bound sums (Eqs. 3/4) that decided the
            // class; the integer-domain classifier is pinned
            // equivalent to them.
            let lower = self.grid.score_lower(pa, wa);
            let upper = self.grid.score_upper(pa, wa);
            let class = match case {
                crate::grid::BoundCase::Precedes => ExplainClass::Precedes,
                crate::grid::BoundCase::Succeeds => ExplainClass::Succeeds,
                crate::grid::BoundCase::Incomparable => ExplainClass::Refined,
            };
            sink.classify(pa, class, lower, upper);
        }
        let preceded = match case {
            crate::grid::BoundCase::Precedes => {
                stats.filtered_case1 += 1;
                // Cell-level dominance test (Alg. 1 line 7): if every
                // approximate cell of p lies strictly below q's cell,
                // then p[i] < α[pa[i]+1] <= α[qa[i]] <= q[i] for all
                // i, i.e. p strictly dominates q. Conservative (same-
                // cell dominators are missed) but touches no original
                // data.
                if self.config.use_domin && cells_dominate(pa, qa) {
                    domin.insert(id);
                    if sink.enabled() {
                        sink.domin_insert(pa);
                    }
                }
                true
            }
            crate::grid::BoundCase::Succeeds => {
                stats.filtered_case2 += 1;
                false
            }
            crate::grid::BoundCase::Incomparable => {
                // Case 3 refinement against the original data.
                // (Alg. 1 defers this to a post-scan pass; refining
                // in place is equivalent and keeps the rank count
                // complete, so early termination fires exactly as
                // early as SIM's.)
                stats.refined += 1;
                timed_leaf(rec, "refine", || dot_counted(w, p_data, stats) < fq)
            }
        };
        if preceded {
            *rank += 1;
            if *rank > bound {
                stats.early_terminations += 1;
                if sink.enabled() {
                    sink.early_termination();
                }
                return false;
            }
        }
        true
    }

    /// Borrows (or decodes into `scratch`) the approximate row of point
    /// `id`.
    fn pa_row<'s>(&'s self, id: usize, scratch: &'s mut Scratch) -> &'s [u8] {
        match &self.p_approx {
            PointStore::Bytes(b) => b.row(id),
            PointStore::BytesRef(b) => b.row(id),
            PointStore::Packed(p) => {
                p.decode_row(id, &mut scratch.row);
                &scratch.row
            }
        }
    }
}

impl<'a, G: GridTable> Gir<'a, G> {
    /// Blocked fast scan (see `gin_rank`): classifies 64 points at a time
    /// into bitmasks with no data-dependent branches, then acts on set
    /// bits in index order (preserving early-termination semantics).
    #[allow(clippy::too_many_arguments)]
    fn gin_rank_blocked<R: Recorder + ?Sized>(
        &self,
        cells: &[u8],
        ps: &crate::grid::PreparedScan,
        wa: &[u8],
        w: &[f64],
        qa: &[u8],
        fq: f64,
        bound: usize,
        domin: &mut DominBuffer,
        stats: &mut QueryStats,
        rec: &R,
    ) -> Option<usize> {
        let d = self.points.dim();
        let threshold = ps.threshold();
        let upper_offset = ps.upper_offset();
        let mut rank = domin.len();
        if rank > bound {
            stats.early_terminations += 1;
            return None;
        }
        let n_points = self.points.len();
        let mut base = 0usize;
        let mut lsums = [0u32; 64];
        while base < n_points {
            let block_len = (n_points - base).min(64);
            // Pass 1a: column-major multiply-accumulate. Each dimension
            // contributes 64 contiguous cells multiplied by one broadcast
            // weight cell — a shape LLVM vectorises.
            lsums[..block_len].fill(0);
            for (k, &wk) in wa.iter().enumerate() {
                let wk = wk as u32;
                let col = &self.p_cols[k * n_points + base..k * n_points + base + block_len];
                for (acc, &c) in lsums[..block_len].iter_mut().zip(col) {
                    *acc += c as u32 * wk;
                }
            }
            // Pass 1b: branchless classification into bitmasks.
            let mut m_case1: u64 = 0;
            let mut m_incomp: u64 = 0;
            let sums = &self.p_cell_sums[base..base + block_len];
            for j in 0..block_len {
                let lsum = lsums[j];
                let usum = lsum + sums[j] + upper_offset;
                let c1 = usum < threshold;
                let inc = !c1 & (lsum < threshold);
                m_case1 |= (c1 as u64) << j;
                m_incomp |= (inc as u64) << j;
            }
            // Mask out known dominators (already counted in `rank`);
            // blocks are 64-aligned, so this is one word load. Bits at or
            // beyond `block_len` are never set: only real point ids are
            // ever inserted.
            let m_domin: u64 = if domin.len() > 0 {
                domin.block_mask(base)
            } else {
                0
            };
            let m_case1 = m_case1 & !m_domin;
            let m_incomp = m_incomp & !m_domin;
            // Block-level counters are applied once the block's outcome is
            // known, so that early termination at bit `j` books exactly
            // the prefix `0..=j` the scalar fallback would have counted —
            // the two paths must produce identical `QueryStats`.
            // Pass 2: act on interesting bits in ascending index order.
            let mut remaining = m_case1 | m_incomp;
            while remaining != 0 {
                let j = remaining.trailing_zeros() as usize;
                remaining &= remaining - 1;
                let id = base + j;
                let bit = 1u64 << j;
                let preceded = if m_case1 & bit != 0 {
                    if self.config.use_domin {
                        let row = &cells[id * d..id * d + d];
                        if cells_dominate(row, qa) {
                            domin.insert(id);
                        }
                    }
                    true
                } else {
                    stats.refined += 1;
                    timed_leaf(rec, "refine", || {
                        let p = self.points.point(PointId(id));
                        dot_counted(w, p, stats) < fq
                    })
                };
                if preceded {
                    rank += 1;
                    if rank > bound {
                        // The scalar loop stops right after classifying
                        // bit `j`: book bits 0..=j only.
                        let upto = u64::MAX >> (63 - j as u32);
                        apply_block_stats(stats, upto, m_case1, m_incomp, m_domin, d);
                        stats.early_terminations += 1;
                        return None;
                    }
                }
            }
            let full = if block_len == 64 {
                u64::MAX
            } else {
                (1u64 << block_len) - 1
            };
            apply_block_stats(stats, full, m_case1, m_incomp, m_domin, d);
            base += block_len;
        }
        Some(rank)
    }
}

/// Reusable per-query buffers (row decode buffer for the packed store).
pub(crate) struct Scratch {
    row: Vec<u8>,
}

impl Scratch {
    pub(crate) fn new(dim: usize) -> Self {
        Self {
            row: vec![0u8; dim],
        }
    }
}

/// Books the blocked scan's per-block counters for the lanes selected by
/// `upto`, reproducing what the scalar loop counts lane by lane: a
/// dominated lane is one `domin_skip` and nothing else (the scalar loop
/// skips it before touching bounds); every other lane is one visited
/// point plus the 2·d bound additions of Eqs. 3–4, classified as Case 1,
/// Case 3 (`m_incomp`, whose refinement cost is booked per-bit in pass
/// 2), or Case 2 (everything else).
///
/// `m_case1` / `m_incomp` must already have dominated lanes masked out.
#[inline]
fn apply_block_stats(
    stats: &mut QueryStats,
    upto: u64,
    m_case1: u64,
    m_incomp: u64,
    m_domin: u64,
    d: usize,
) {
    let visited = (upto & !m_domin).count_ones() as u64;
    stats.points_visited += visited;
    stats.bound_additions += visited * 2 * d as u64;
    stats.domin_skips += (upto & m_domin).count_ones() as u64;
    stats.filtered_case1 += (upto & m_case1).count_ones() as u64;
    stats.filtered_case2 += (upto & !(m_case1 | m_incomp | m_domin)).count_ones() as u64;
}

/// Whether every approximate cell of `pa` lies strictly below the
/// corresponding cell of `qa` — a sufficient condition for strict
/// dominance of the underlying vectors (half-open cells make the upper
/// boundary strict).
#[inline]
fn cells_dominate(pa: &[u8], qa: &[u8]) -> bool {
    pa.iter().zip(qa).all(|(&a, &b)| a < b)
}

/// Dense bitset of dominating points plus a count. Word-aligned with the
/// blocked scan's 64-point blocks so a block's dominator mask is a single
/// word load.
pub(crate) struct DominBuffer {
    words: Vec<u64>,
    len: usize,
}

impl DominBuffer {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            words: vec![0u64; n.div_ceil(64)],
            len: 0,
        }
    }

    #[inline]
    fn contains(&self, id: usize) -> bool {
        self.words[id >> 6] >> (id & 63) & 1 != 0
    }

    /// The dominator mask of the 64-point block starting at `base`
    /// (`base` must be 64-aligned).
    #[inline]
    fn block_mask(&self, base: usize) -> u64 {
        debug_assert_eq!(base % 64, 0);
        self.words[base >> 6]
    }

    fn insert(&mut self, id: usize) {
        let (word, bit) = (id >> 6, 1u64 << (id & 63));
        if self.words[word] & bit == 0 {
            self.words[word] |= bit;
            self.len += 1;
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }
}

impl<G: GridTable> Gir<'_, G> {
    /// GIRTop-k (Alg. 2), generic over the recorder: the untraced entry
    /// point instantiates this with [`NoopRecorder`] (all instrumentation
    /// folds away), the traced one with a live recorder. The phase tree
    /// is `rtk → {quantize, scan → refine}`.
    pub(crate) fn rtk_impl<R: Recorder + ?Sized, S: ExplainSink>(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &R,
        sink: &mut S,
    ) -> RtkResult {
        assert_eq!(q.len(), self.points.dim(), "query dimensionality");
        if k == 0 {
            return RtkResult::default();
        }
        if sink.enabled() {
            sink.begin_query(ExplainKind::Rtk, q, k as u64, self.grid.partitions() as u64);
        }
        let _query = span(rec, "rtk");
        let mut domin = DominBuffer::new(self.total_points());
        let mut scratch = Scratch::new(self.points.dim());
        let mut w_scratch = vec![0u8; self.points.dim()];
        let qa = timed_leaf(rec, "quantize", || {
            ApproxVectors::quantize_point(&self.grid, q)
        });
        let _scan = span(rec, "scan");
        let mut out = Vec::new();
        for wid in 0..self.total_weights() {
            if !self.admit_weight(wid, stats, sink) {
                continue;
            }
            stats.weights_visited += 1;
            if sink.enabled() {
                sink.weight(wid as u64);
            }
            let w = self.weight_data(wid);
            let wa = self.w_row(wid, &mut w_scratch);
            let fq = dot_counted(w, q, stats);
            if let Some(ti) = &self.threshold {
                // One comparison against the materialized k-th score
                // decides membership exactly (same `dot` kernel, same
                // tie semantics); only straddling candidates scan.
                match ti.decide_rtk(wid, k, fq) {
                    RtkThresholdOutcome::Member => {
                        stats.threshold_hits += 1;
                        if sink.enabled() {
                            sink.threshold_hit(wid as u64, true);
                            sink.result(wid as u64, RANK_CERTIFIED);
                        }
                        out.push(rrq_types::WeightId(wid));
                        continue;
                    }
                    RtkThresholdOutcome::NonMember => {
                        stats.threshold_hits += 1;
                        if sink.enabled() {
                            sink.threshold_hit(wid as u64, false);
                        }
                        continue;
                    }
                    RtkThresholdOutcome::Straddle => {}
                }
            }
            if let Some(rank) = self.gin_rank(
                wa,
                w,
                &qa,
                fq,
                k - 1,
                &mut domin,
                &mut scratch,
                stats,
                rec,
                sink,
            ) {
                debug_assert!(rank < k);
                if sink.enabled() {
                    sink.result(wid as u64, rank as u64);
                }
                out.push(rrq_types::WeightId(wid));
            }
            // Alg. 2 lines 7–8: with k dominators no weight can qualify.
            if domin.len() >= k {
                if sink.enabled() {
                    sink.invalidate_results();
                    sink.bound_event(BoundSource::LocalScan, wid as u64, domin.len() as u64, true);
                }
                return RtkResult::default();
            }
        }
        RtkResult::from_weights(out)
    }

    /// GIRk-Rank (Alg. 3), generic over the recorder (see
    /// [`Self::rtk_impl`]). The phase tree is
    /// `rkr → {quantize, scan → {refine, heap}}`.
    pub(crate) fn rkr_impl<R: Recorder + ?Sized, S: ExplainSink>(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &R,
        sink: &mut S,
    ) -> RkrResult {
        assert_eq!(q.len(), self.points.dim(), "query dimensionality");
        if sink.enabled() {
            sink.begin_query(ExplainKind::Rkr, q, k as u64, self.grid.partitions() as u64);
        }
        let _query = span(rec, "rkr");
        let mut domin = DominBuffer::new(self.total_points());
        let mut scratch = Scratch::new(self.points.dim());
        let mut w_scratch = vec![0u8; self.points.dim()];
        let qa = timed_leaf(rec, "quantize", || {
            ApproxVectors::quantize_point(&self.grid, q)
        });
        let _scan = span(rec, "scan");
        let mut heap = KBestHeap::new(k);
        for wid in 0..self.total_weights() {
            if !self.admit_weight(wid, stats, sink) {
                continue;
            }
            stats.weights_visited += 1;
            if sink.enabled() {
                sink.weight(wid as u64);
            }
            let w = self.weight_data(wid);
            let wa = self.w_row(wid, &mut w_scratch);
            let fq = dot_counted(w, q, stats);
            let bound = heap.threshold();
            if let Some(ti) = &self.threshold {
                // `rank > bound` certified from the materialized scores
                // means the bounded scan would return `None`: skip it.
                // The heap never sees the weight either way, so results
                // and bound evolution are untouched.
                if ti.certifies_rank_above(wid, bound, fq) {
                    stats.threshold_hits += 1;
                    if sink.enabled() {
                        sink.threshold_hit(wid as u64, false);
                    }
                    continue;
                }
            }
            if let Some(rank) = self.gin_rank(
                wa,
                w,
                &qa,
                fq,
                bound,
                &mut domin,
                &mut scratch,
                stats,
                rec,
                sink,
            ) {
                timed_leaf(rec, "heap", || heap.offer(rank, rrq_types::WeightId(wid)));
                if sink.enabled() {
                    // Each `minRank` tightening (Alg. 3's self-refining
                    // bound) enters the timeline with its deciding weight.
                    let after = heap.threshold();
                    if after < bound {
                        sink.bound_event(BoundSource::LocalScan, wid as u64, after as u64, false);
                    }
                }
            }
        }
        let result = heap.into_result();
        if sink.enabled() {
            for e in result.entries() {
                sink.result(e.weight.0 as u64, e.rank as u64);
            }
        }
        result
    }

    /// GIRTop-k with full pruning provenance: records the per-cell
    /// classification map, filter→refine funnel, bound timeline and
    /// result set into `doc`. Results and `QueryStats` are identical to
    /// [`RtkQuery::reverse_top_k`] — only the scan takes the (pinned
    /// equivalent) scalar path so every classification is observable.
    pub fn reverse_top_k_explained(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        doc: &mut ExplainDoc,
    ) -> RtkResult {
        doc.set_engine("GIR");
        self.rtk_impl(q, k, stats, &NoopRecorder, doc)
    }

    /// GIRk-Rank with full pruning provenance (see
    /// [`Self::reverse_top_k_explained`]).
    pub fn reverse_k_ranks_explained(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        doc: &mut ExplainDoc,
    ) -> RkrResult {
        doc.set_engine("GIR");
        self.rkr_impl(q, k, stats, &NoopRecorder, doc)
    }
}

impl<G: GridTable> RtkQuery for Gir<'_, G> {
    fn name(&self) -> &'static str {
        "GIR"
    }

    /// GIRTop-k (Alg. 2).
    fn reverse_top_k(&self, q: &[f64], k: usize, stats: &mut QueryStats) -> RtkResult {
        self.rtk_impl(q, k, stats, &NoopRecorder, &mut NoopSink)
    }

    fn reverse_top_k_traced(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &dyn Recorder,
    ) -> RtkResult {
        self.rtk_impl(q, k, stats, rec, &mut NoopSink)
    }
}

impl<G: GridTable> RkrQuery for Gir<'_, G> {
    fn name(&self) -> &'static str {
        "GIR"
    }

    /// GIRk-Rank (Alg. 3).
    fn reverse_k_ranks(&self, q: &[f64], k: usize, stats: &mut QueryStats) -> RkrResult {
        self.rkr_impl(q, k, stats, &NoopRecorder, &mut NoopSink)
    }

    fn reverse_k_ranks_traced(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &dyn Recorder,
    ) -> RkrResult {
        self.rkr_impl(q, k, stats, rec, &mut NoopSink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrq_baselines::Naive;
    use rrq_data::synthetic;

    fn workload(dim: usize, np: usize, nw: usize, seed: u64) -> (PointSet, WeightSet) {
        (
            synthetic::uniform_points(dim, np, 10_000.0, seed).unwrap(),
            synthetic::uniform_weights(dim, nw, seed + 1).unwrap(),
        )
    }

    fn configs() -> Vec<GirConfig> {
        vec![
            GirConfig::default(),
            GirConfig {
                partitions: 4,
                ..Default::default()
            },
            GirConfig {
                partitions: 128,
                ..Default::default()
            },
            GirConfig {
                use_domin: false,
                ..Default::default()
            },
            GirConfig {
                packed: true,
                ..Default::default()
            },
            GirConfig {
                partitions: 64,
                packed: true,
                use_domin: false,
            },
        ]
    }

    #[test]
    fn rtk_matches_naive_across_configs() {
        let (p, w) = workload(4, 300, 80, 1);
        let naive = Naive::new(&p, &w);
        for config in configs() {
            let gir = Gir::new(&p, &w, config);
            for qid in [0usize, 50, 150] {
                let q = p.point(PointId(qid)).to_vec();
                for k in [1usize, 5, 25] {
                    let mut s1 = QueryStats::default();
                    let mut s2 = QueryStats::default();
                    assert_eq!(
                        gir.reverse_top_k(&q, k, &mut s1),
                        naive.reverse_top_k(&q, k, &mut s2),
                        "config {config:?} q {qid} k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn rkr_matches_naive_across_configs() {
        let (p, w) = workload(4, 300, 80, 2);
        let naive = Naive::new(&p, &w);
        for config in configs() {
            let gir = Gir::new(&p, &w, config);
            for qid in [0usize, 50, 150] {
                let q = p.point(PointId(qid)).to_vec();
                for k in [1usize, 5, 25] {
                    let mut s1 = QueryStats::default();
                    let mut s2 = QueryStats::default();
                    assert_eq!(
                        gir.reverse_k_ranks(&q, k, &mut s1),
                        naive.reverse_k_ranks(&q, k, &mut s2),
                        "config {config:?} q {qid} k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_naive_on_clustered_and_anticorrelated_data() {
        for (pp, seed) in [("CL", 3u64), ("AC", 4u64)] {
            let p = if pp == "CL" {
                synthetic::clustered_points(5, 250, 10_000.0, 7, 0.1, seed).unwrap()
            } else {
                synthetic::anticorrelated_points(5, 250, 10_000.0, seed).unwrap()
            };
            let w = synthetic::clustered_weights(5, 60, 4, 0.05, seed + 10).unwrap();
            let gir = Gir::with_defaults(&p, &w);
            let naive = Naive::new(&p, &w);
            let q = p.point(PointId(11)).to_vec();
            let mut s1 = QueryStats::default();
            let mut s2 = QueryStats::default();
            assert_eq!(
                gir.reverse_top_k(&q, 10, &mut s1),
                naive.reverse_top_k(&q, 10, &mut s2),
                "{pp}"
            );
            let mut s3 = QueryStats::default();
            let mut s4 = QueryStats::default();
            assert_eq!(
                gir.reverse_k_ranks(&q, 10, &mut s3),
                naive.reverse_k_ranks(&q, 10, &mut s4),
                "{pp}"
            );
        }
    }

    #[test]
    fn high_dimensional_queries_match_naive() {
        let (p, w) = workload(20, 150, 40, 5);
        let gir = Gir::with_defaults(&p, &w);
        let naive = Naive::new(&p, &w);
        let q = p.point(PointId(9)).to_vec();
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        assert_eq!(
            gir.reverse_top_k(&q, 10, &mut s1),
            naive.reverse_top_k(&q, 10, &mut s2)
        );
        let mut s3 = QueryStats::default();
        let mut s4 = QueryStats::default();
        assert_eq!(
            gir.reverse_k_ranks(&q, 10, &mut s3),
            naive.reverse_k_ranks(&q, 10, &mut s4)
        );
    }

    #[test]
    fn grid_filters_most_pairs() {
        // The paper's headline: GIR decides over 99 % of the data without
        // an exact score computation. The operative metric is refinements
        // per (p, w) pair over a whole realistic query (k ≪ |W|), where
        // Case 1/2 classification, the Domin buffer *and* early
        // termination all contribute.
        let (p, w) = workload(6, 2000, 500, 7);
        let gir = Gir::with_defaults(&p, &w);
        // Average over several query positions: the per-query rate swings
        // by ~0.1 at this deliberately small test scale (2K × 500)
        // depending on where the query ranks. The rate climbs with |W| as
        // the minRank bound sharpens — the benchmark harness
        // (table4/fig15) measures the paper-scale behaviour.
        let mut stats = QueryStats::default();
        for qid in [123usize, 500, 1000, 1500] {
            let q = p.point(PointId(qid)).to_vec();
            gir.reverse_k_ranks(&q, 10, &mut stats);
        }
        let total_pairs = (4 * p.len() * w.len()) as f64;
        let effective = 1.0 - stats.refined as f64 / total_pairs;
        assert!(effective > 0.8, "effective filter rate {effective}");
        // The intrinsic per-pair bound tightness (Case 1/2 over classified
        // pairs) is lower — simplex weights quantise coarsely — but still
        // removes the large majority of exact computations.
        let intrinsic = stats.filter_rate().expect("pairs classified");
        assert!(intrinsic > 0.6, "intrinsic filter rate {intrinsic}");
    }

    #[test]
    fn gir_saves_multiplications_versus_naive() {
        let (p, w) = workload(6, 1000, 300, 8);
        let gir = Gir::with_defaults(&p, &w);
        let naive = Naive::new(&p, &w);
        let q = p.point(PointId(77)).to_vec();
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        gir.reverse_k_ranks(&q, 10, &mut s1);
        naive.reverse_k_ranks(&q, 10, &mut s2);
        assert!(
            s1.multiplications * 4 < s2.multiplications,
            "GIR {} vs NAIVE {}",
            s1.multiplications,
            s2.multiplications
        );
    }

    #[test]
    fn packed_and_byte_modes_agree_exactly() {
        let (p, w) = workload(5, 400, 60, 9);
        let bytes = Gir::new(
            &p,
            &w,
            GirConfig {
                packed: false,
                ..Default::default()
            },
        );
        let packed = Gir::new(
            &p,
            &w,
            GirConfig {
                packed: true,
                ..Default::default()
            },
        );
        let q = p.point(PointId(5)).to_vec();
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        assert_eq!(
            bytes.reverse_top_k(&q, 20, &mut s1),
            packed.reverse_top_k(&q, 20, &mut s2)
        );
        // The blocked byte scan books exactly the per-point work of the
        // scalar packed fallback — including the early-termination prefix
        // — so every counter matches, not just the results.
        assert_eq!(s1, s2);
        // And the packed index is smaller.
        assert!(packed.index_memory_bytes() < bytes.index_memory_bytes());
    }

    #[test]
    fn blocked_and_scalar_paths_report_identical_stats() {
        // Regression: the blocked fast scan booked dominated lanes in
        // `points_visited`/`bound_additions`, credited `domin_skips` only
        // for Case-1 bits, and on early termination had already counted
        // the whole 64-point block — so benchdiff-gated counters diverged
        // between the bytes and packed configurations of the *same*
        // algorithm. The two paths must report identical `QueryStats` on
        // identical workloads, early termination and Domin buffer
        // included.
        let (p, w) = workload(4, 515, 120, 21); // partial final block
        for use_domin in [true, false] {
            let bytes = Gir::new(
                &p,
                &w,
                GirConfig {
                    packed: false,
                    use_domin,
                    ..Default::default()
                },
            );
            let packed = Gir::new(
                &p,
                &w,
                GirConfig {
                    packed: true,
                    use_domin,
                    ..Default::default()
                },
            );
            for qid in [0usize, 250, 514] {
                let q = p.point(PointId(qid)).to_vec();
                // Small k maximises early terminations; large k exercises
                // full scans.
                for k in [1usize, 5, 60] {
                    let mut s1 = QueryStats::default();
                    let mut s2 = QueryStats::default();
                    assert_eq!(
                        bytes.reverse_top_k(&q, k, &mut s1),
                        packed.reverse_top_k(&q, k, &mut s2),
                        "rtk use_domin={use_domin} q={qid} k={k}"
                    );
                    assert_eq!(s1, s2, "rtk stats use_domin={use_domin} q={qid} k={k}");
                    let mut s3 = QueryStats::default();
                    let mut s4 = QueryStats::default();
                    assert_eq!(
                        bytes.reverse_k_ranks(&q, k, &mut s3),
                        packed.reverse_k_ranks(&q, k, &mut s4),
                        "rkr use_domin={use_domin} q={qid} k={k}"
                    );
                    assert_eq!(s3, s4, "rkr stats use_domin={use_domin} q={qid} k={k}");
                }
            }
        }
    }

    #[test]
    fn rtk_with_dominated_query_is_empty() {
        let (p, w) = workload(3, 500, 50, 10);
        let gir = Gir::with_defaults(&p, &w);
        let q = vec![9_999.0, 9_999.0, 9_999.0];
        let mut stats = QueryStats::default();
        assert!(gir.reverse_top_k(&q, 10, &mut stats).is_empty());
    }

    #[test]
    fn k_zero_rtk_is_empty() {
        let (p, w) = workload(3, 50, 10, 11);
        let gir = Gir::with_defaults(&p, &w);
        let q = p.point(PointId(0)).to_vec();
        let mut stats = QueryStats::default();
        assert!(gir.reverse_top_k(&q, 0, &mut stats).is_empty());
    }

    #[test]
    fn rkr_k_exceeding_w_returns_all_with_exact_ranks() {
        let (p, w) = workload(3, 200, 30, 12);
        let gir = Gir::with_defaults(&p, &w);
        let naive = Naive::new(&p, &w);
        let q = p.point(PointId(42)).to_vec();
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        let got = gir.reverse_k_ranks(&q, 100, &mut s1);
        assert_eq!(got.len(), 30);
        assert_eq!(got, naive.reverse_k_ranks(&q, 100, &mut s2));
    }

    #[test]
    fn external_query_point_not_in_p() {
        let (p, w) = workload(4, 300, 60, 13);
        let gir = Gir::with_defaults(&p, &w);
        let naive = Naive::new(&p, &w);
        let q = vec![1_234.5, 6_789.0, 42.0, 5_000.0];
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        assert_eq!(
            gir.reverse_top_k(&q, 15, &mut s1),
            naive.reverse_top_k(&q, 15, &mut s2)
        );
    }

    #[test]
    #[should_panic(expected = "share dimensionality")]
    fn rejects_mismatched_dimensions() {
        let p = synthetic::uniform_points(3, 10, 1.0, 1).unwrap();
        let w = synthetic::uniform_weights(4, 10, 2).unwrap();
        Gir::with_defaults(&p, &w);
    }

    #[test]
    fn blocked_scan_handles_all_block_shapes() {
        // The fast path processes 64-point blocks; exercise sizes around
        // the boundary (partial final block, exact multiple, tiny set).
        let naive_check = |n: usize| {
            let p = synthetic::uniform_points(3, n, 10_000.0, n as u64).unwrap();
            let w = synthetic::uniform_weights(3, 20, n as u64 + 1).unwrap();
            let gir = Gir::with_defaults(&p, &w);
            let naive = Naive::new(&p, &w);
            let q = p.point(PointId(n / 2)).to_vec();
            let mut s1 = QueryStats::default();
            let mut s2 = QueryStats::default();
            assert_eq!(
                gir.reverse_k_ranks(&q, 5, &mut s1),
                naive.reverse_k_ranks(&q, 5, &mut s2),
                "n = {n}"
            );
        };
        for n in [1usize, 63, 64, 65, 127, 128, 129, 200] {
            naive_check(n);
        }
    }

    #[test]
    fn blocked_and_fallback_paths_agree() {
        // The packed store takes the per-point fallback path; results must
        // be identical to the blocked byte path for the same queries.
        let (p, w) = workload(7, 500, 80, 77);
        let blocked = Gir::new(
            &p,
            &w,
            GirConfig {
                packed: false,
                ..Default::default()
            },
        );
        let fallback = Gir::new(
            &p,
            &w,
            GirConfig {
                packed: true,
                ..Default::default()
            },
        );
        for qid in [0usize, 250, 499] {
            let q = p.point(PointId(qid)).to_vec();
            let mut s1 = QueryStats::default();
            let mut s2 = QueryStats::default();
            assert_eq!(
                blocked.reverse_top_k(&q, 25, &mut s1),
                fallback.reverse_top_k(&q, 25, &mut s2)
            );
            let mut s3 = QueryStats::default();
            let mut s4 = QueryStats::default();
            assert_eq!(
                blocked.reverse_k_ranks(&q, 25, &mut s3),
                fallback.reverse_k_ranks(&q, 25, &mut s4)
            );
        }
    }

    #[test]
    fn domin_buffer_counts_are_consistent() {
        // Domin skips only ever grow the saving; results never change.
        let (p, w) = workload(4, 600, 150, 88);
        let with = Gir::with_defaults(&p, &w);
        let without = Gir::new(
            &p,
            &w,
            GirConfig {
                use_domin: false,
                ..Default::default()
            },
        );
        // A query point deep in the data (many dominators).
        let q = vec![8_000.0; 4];
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        assert_eq!(
            with.reverse_k_ranks(&q, 10, &mut s1),
            without.reverse_k_ranks(&q, 10, &mut s2)
        );
        assert!(s1.domin_skips > 0, "dominators must be discovered");
        assert_eq!(s2.domin_skips, 0);
        assert!(s1.points_visited <= s2.points_visited);
    }

    #[test]
    fn index_memory_is_negligible() {
        // The whole point of the paper: index memory ≪ data memory.
        let (p, w) = workload(6, 5000, 5000, 14);
        let gir = Gir::new(
            &p,
            &w,
            GirConfig {
                packed: true,
                ..Default::default()
            },
        );
        let data_bytes = (p.as_flat().len() + w.as_flat().len()) * 8;
        assert!(gir.index_memory_bytes() < data_bytes / 4);
    }
}
