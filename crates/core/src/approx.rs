//! Approximate (quantised) vectors `P⁽ᴬ⁾` and `W⁽ᴬ⁾`, with the bit-string
//! compression of paper §3.2.
//!
//! [`ApproxVectors`] stores one byte per dimension — the fast scan format.
//! [`PackedApproxVectors`] stores exactly `b = log₂ n` bits per dimension
//! (the paper's Figure 6 shows `p⁽ᵃ⁾ = (2, 0, 2)` packed into the 6-bit
//! string `100010`), cutting approximate-vector storage to `b/64` of the
//! original 64-bit float data. Both formats round-trip losslessly.

use crate::grid::GridTable;
use rrq_types::{PointSet, WeightSet};

/// Byte-per-dimension approximate vectors (scan format).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApproxVectors {
    dim: usize,
    cells: Vec<u8>,
}

impl ApproxVectors {
    /// Quantises every point of `points` with `grid`'s point partitions.
    pub fn from_points<G: GridTable>(grid: &G, points: &PointSet) -> Self {
        let dim = points.dim();
        let mut cells = Vec::with_capacity(points.len() * dim);
        for (_, p) in points.iter() {
            cells.extend(p.iter().map(|&v| grid.point_cell(v)));
        }
        Self { dim, cells }
    }

    /// Quantises every weight of `weights` with `grid`'s weight
    /// partitions.
    pub fn from_weights<G: GridTable>(grid: &G, weights: &WeightSet) -> Self {
        let dim = weights.dim();
        let mut cells = Vec::with_capacity(weights.len() * dim);
        for (_, w) in weights.iter() {
            cells.extend(w.iter().map(|&v| grid.weight_cell(v)));
        }
        Self { dim, cells }
    }

    /// Quantises a single vector (e.g. a query point) with the point
    /// partitions.
    pub fn quantize_point<G: GridTable>(grid: &G, v: &[f64]) -> Vec<u8> {
        v.iter().map(|&x| grid.point_cell(x)).collect()
    }

    /// Number of vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Whether the collection is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u8] {
        &self.cells[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates over rows.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.cells.chunks_exact(self.dim)
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.cells.len()
    }

    /// Borrow the flat row-major cell storage (hot scan loops index it
    /// directly to avoid per-row slicing overhead).
    #[inline]
    pub fn as_flat(&self) -> &[u8] {
        &self.cells
    }
}

/// Bit-packed approximate vectors: `bits` bits per dimension, rows packed
/// back to back in a `u64` little-endian bit stream (paper §3.2 /
/// Figure 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedApproxVectors {
    dim: usize,
    bits: u32,
    len: usize,
    words: Vec<u64>,
}

impl PackedApproxVectors {
    /// Packs byte-format approximate vectors using `bits` bits per
    /// dimension.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 8` and every cell fits in `bits` bits.
    pub fn pack(approx: &ApproxVectors, bits: u32) -> Self {
        assert!((1..=8).contains(&bits), "bits per dimension must be 1..=8");
        let max = if bits == 8 {
            u8::MAX
        } else {
            (1u8 << bits) - 1
        };
        let dim = approx.dim();
        let len = approx.len();
        let total_bits = (len * dim) as u64 * bits as u64;
        let mut words = vec![0u64; total_bits.div_ceil(64) as usize];
        let mut bitpos = 0u64;
        for row in approx.iter() {
            for &cell in row {
                assert!(cell <= max, "cell {cell} does not fit in {bits} bits");
                let word = (bitpos / 64) as usize;
                let off = bitpos % 64;
                words[word] |= (cell as u64) << off;
                let spill = off + bits as u64;
                if spill > 64 {
                    words[word + 1] |= (cell as u64) >> (64 - off);
                }
                bitpos += bits as u64;
            }
        }
        Self {
            dim,
            bits,
            len,
            words,
        }
    }

    /// The number of bits a grid with `n` partitions needs per dimension:
    /// `⌈log₂ n⌉`.
    pub fn bits_for_partitions(n: usize) -> u32 {
        assert!(n >= 2);
        usize::BITS - (n - 1).leading_zeros()
    }

    /// Number of vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the collection is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Bits per dimension.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Decodes row `i` into `out` (length `dim`).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != dim` or `i` is out of bounds (debug).
    #[inline]
    pub fn decode_row(&self, i: usize, out: &mut [u8]) {
        assert_eq!(out.len(), self.dim);
        debug_assert!(i < self.len);
        let mask = if self.bits == 8 {
            u64::from(u8::MAX)
        } else {
            (1u64 << self.bits) - 1
        };
        let mut bitpos = (i * self.dim) as u64 * self.bits as u64;
        for cell in out.iter_mut() {
            let word = (bitpos / 64) as usize;
            let off = bitpos % 64;
            let mut v = self.words[word] >> off;
            let spill = off + self.bits as u64;
            if spill > 64 {
                v |= self.words[word + 1] << (64 - off);
            }
            *cell = (v & mask) as u8;
            bitpos += self.bits as u64;
        }
    }

    /// Unpacks everything back to the byte format.
    pub fn unpack(&self) -> ApproxVectors {
        let mut cells = vec![0u8; self.len * self.dim];
        for i in 0..self.len {
            self.decode_row(i, &mut cells[i * self.dim..(i + 1) * self.dim]);
        }
        ApproxVectors {
            dim: self.dim,
            cells,
        }
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// Borrow the packed payload words (for persistence).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reassembles a packed collection from its raw parts (the inverse
    /// of the accessors; used by the persistence layer).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=8` or the word count does not
    /// match `len · dim · bits` bits.
    pub fn from_parts(dim: usize, bits: u32, len: usize, words: Vec<u64>) -> Self {
        assert!((1..=8).contains(&bits), "bits per dimension must be 1..=8");
        let expected = ((len * dim) as u64 * bits as u64).div_ceil(64) as usize;
        assert_eq!(words.len(), expected, "payload size mismatch");
        Self {
            dim,
            bits,
            len,
            words,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrq_data::synthetic;

    use crate::grid::Grid;

    fn grid() -> Grid {
        Grid::new(4, 1.0)
    }

    #[test]
    fn figure_6_packing() {
        // p⁽ᵃ⁾ = (2, 0, 2) with b = 2 → bit-string (LSB-first here):
        // 10 00 10.
        let av = ApproxVectors {
            dim: 3,
            cells: vec![2, 0, 2],
        };
        let packed = PackedApproxVectors::pack(&av, 2);
        assert_eq!(packed.words[0] & 0b11_11_11, 0b10_00_10);
        let mut out = [0u8; 3];
        packed.decode_row(0, &mut out);
        assert_eq!(out, [2, 0, 2]);
    }

    #[test]
    fn from_points_matches_grid_cells() {
        let ps = synthetic::uniform_points(3, 50, 1.0, 1).unwrap();
        let g = grid();
        let av = ApproxVectors::from_points(&g, &ps);
        assert_eq!(av.len(), 50);
        assert_eq!(av.dim(), 3);
        for (i, (_, p)) in ps.iter().enumerate() {
            for (k, &v) in p.iter().enumerate() {
                assert_eq!(av.row(i)[k], g.point_cell(v));
            }
        }
    }

    #[test]
    fn from_weights_matches_grid_cells() {
        let ws = synthetic::uniform_weights(4, 50, 2).unwrap();
        let g = Grid::new(32, 1.0);
        let av = ApproxVectors::from_weights(&g, &ws);
        for (i, (_, w)) in ws.iter().enumerate() {
            for (k, &v) in w.iter().enumerate() {
                assert_eq!(av.row(i)[k], g.weight_cell(v));
            }
        }
    }

    #[test]
    fn pack_round_trips_across_bit_widths() {
        for n in [2usize, 4, 16, 32, 64, 128, 255] {
            let bits = PackedApproxVectors::bits_for_partitions(n);
            let g = Grid::new(n, 10_000.0);
            let ps = synthetic::uniform_points(7, 300, 10_000.0, n as u64).unwrap();
            let av = ApproxVectors::from_points(&g, &ps);
            let packed = PackedApproxVectors::pack(&av, bits);
            assert_eq!(packed.unpack(), av, "n = {n}");
        }
    }

    #[test]
    fn bits_for_partitions_is_ceil_log2() {
        assert_eq!(PackedApproxVectors::bits_for_partitions(2), 1);
        assert_eq!(PackedApproxVectors::bits_for_partitions(4), 2);
        assert_eq!(PackedApproxVectors::bits_for_partitions(5), 3);
        assert_eq!(PackedApproxVectors::bits_for_partitions(32), 5);
        assert_eq!(PackedApproxVectors::bits_for_partitions(33), 6);
        assert_eq!(PackedApproxVectors::bits_for_partitions(128), 7);
        assert_eq!(PackedApproxVectors::bits_for_partitions(256), 8);
    }

    #[test]
    fn packed_is_much_smaller_than_floats() {
        // §3.2: with b = 6 the approximate vectors cost less than 1/10 of
        // the original 64-bit data.
        let g = Grid::new(64, 10_000.0);
        let ps = synthetic::uniform_points(6, 1000, 10_000.0, 9).unwrap();
        let av = ApproxVectors::from_points(&g, &ps);
        let packed = PackedApproxVectors::pack(&av, 6);
        let original = ps.as_flat().len() * 8;
        assert!(
            packed.memory_bytes() * 10 <= original,
            "packed {} vs original {original}",
            packed.memory_bytes()
        );
    }

    #[test]
    fn decode_row_handles_word_boundaries() {
        // 7-bit cells force straddling of 64-bit word boundaries.
        let cells: Vec<u8> = (0..100u8).map(|i| i % 128).collect();
        let av = ApproxVectors { dim: 10, cells };
        let packed = PackedApproxVectors::pack(&av, 7);
        assert_eq!(packed.unpack(), av);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn pack_rejects_oversized_cells() {
        let av = ApproxVectors {
            dim: 1,
            cells: vec![4],
        };
        PackedApproxVectors::pack(&av, 2);
    }

    #[test]
    fn empty_collections() {
        let av = ApproxVectors {
            dim: 3,
            cells: vec![],
        };
        assert!(av.is_empty());
        let packed = PackedApproxVectors::pack(&av, 2);
        assert!(packed.is_empty());
        assert_eq!(packed.unpack(), av);
    }

    #[test]
    fn quantize_point_matches_rows() {
        let g = grid();
        let q = [0.62, 0.15, 0.73];
        assert_eq!(ApproxVectors::quantize_point(&g, &q), vec![2, 0, 2]);
    }
}
