//! The Grid-index: a pre-computed multiplication table over quantised
//! value ranges (paper §3.1).
//!
//! The value range of product attributes `[0, r)` and of weight components
//! `[0, 1]` are each divided into `n` equal partitions with boundary
//! vectors `α_p` and `α_w` (each `n + 1` values). The index is the dense
//! table `Grid[i][j] = α_p[i] · α_w[j]` (Eq. 1). For a pair of cells
//! `(i, j)` the product `p[k]·w[k]` of any members is bracketed by
//! `Grid[i][j]` (lower-left corner) and `Grid[i+1][j+1]` (upper-right
//! corner), so score bounds are assembled by pure addition (Eqs. 3–4).

/// Common interface of corner-product tables: the equal-width [`Grid`] of
/// the paper and the quantile-boundary [`crate::AdaptiveGrid`] extension.
///
/// Implementations must satisfy the bracketing contract: for any product
/// attribute `v_p` and weight component `v_w`,
/// `pair bounds of (point_cell(v_p), weight_cell(v_w))` bracket
/// `v_p · v_w`, and consequently [`GridTable::score_lower`] /
/// [`GridTable::score_upper`] bracket the true inner product.
pub trait GridTable {
    /// Number of partitions per range.
    fn partitions(&self) -> usize;
    /// Quantises a product attribute into its cell.
    fn point_cell(&self, v: f64) -> u8;
    /// Quantises a weight component into its cell.
    fn weight_cell(&self, v: f64) -> u8;
    /// Eq. 3 lower bound, `Σ Grid[pa[k]][wa[k]]`.
    fn score_lower(&self, pa: &[u8], wa: &[u8]) -> f64;
    /// Eq. 4 upper bound, `Σ Grid[pa[k]+1][wa[k]+1]`.
    fn score_upper(&self, pa: &[u8], wa: &[u8]) -> f64;
    /// Memory footprint of the table in bytes.
    fn memory_bytes(&self) -> usize;

    /// Prepares an integer-domain fast scan for a fixed weight row and
    /// query score, when the table supports it (the equal-width [`Grid`]
    /// does; boundary-irregular tables return `None` and scans fall back
    /// to [`GridTable::classify`]).
    fn prepare_scan(&self, _wa: &[u8], _fq: f64) -> Option<PreparedScan> {
        None
    }

    /// Three-way classification of a `(p, w)` pair against the query
    /// score (paper §3.1, Cases 1–3). The default assembles both Eq. 3/4
    /// bounds; [`Grid`] overrides it with an equivalent fused evaluation.
    #[inline]
    fn classify(&self, pa: &[u8], wa: &[u8], fq: f64) -> BoundCase {
        if self.score_upper(pa, wa) < fq {
            BoundCase::Precedes
        } else if self.score_lower(pa, wa) >= fq {
            BoundCase::Succeeds
        } else {
            BoundCase::Incomparable
        }
    }
}

/// A shared reference is itself a corner table — this is what lets the
/// epoch snapshot layer build a borrowed [`crate::Gir`] view over a grid
/// owned by the immutable base data ([`crate::snapshot::EngineState`])
/// without cloning the table. Every method forwards, including the
/// `prepare_scan`/`classify` fast paths, so a view scans exactly like an
/// owning engine.
impl<G: GridTable + ?Sized> GridTable for &G {
    #[inline]
    fn partitions(&self) -> usize {
        (**self).partitions()
    }

    #[inline]
    fn point_cell(&self, v: f64) -> u8 {
        (**self).point_cell(v)
    }

    #[inline]
    fn weight_cell(&self, v: f64) -> u8 {
        (**self).weight_cell(v)
    }

    #[inline]
    fn score_lower(&self, pa: &[u8], wa: &[u8]) -> f64 {
        (**self).score_lower(pa, wa)
    }

    #[inline]
    fn score_upper(&self, pa: &[u8], wa: &[u8]) -> f64 {
        (**self).score_upper(pa, wa)
    }

    #[inline]
    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }

    #[inline]
    fn prepare_scan(&self, wa: &[u8], fq: f64) -> Option<PreparedScan> {
        (**self).prepare_scan(wa, fq)
    }

    #[inline]
    fn classify(&self, pa: &[u8], wa: &[u8], fq: f64) -> BoundCase {
        (**self).classify(pa, wa, fq)
    }
}

/// Integer-domain classification state for one `(w, q)` pair over an
/// equal-width grid (see [`Grid::prepare_scan`]).
///
/// Because every corner product of the equal-width grid is
/// `i · j · cell_area`, the Case 1–3 tests reduce to comparing the
/// integer sums `Σ pa[k]·wa[k]` (lower) and
/// `Σ (pa[k]+1)(wa[k]+1) = lower + Σpa + Σwa + d` (upper) against a
/// single integer threshold (the smallest `t` with `t · cell_area ≥
/// f_w(q)`). The scan inner loop thus performs no floating-point work
/// per pair at all.
#[derive(Debug, Clone, Copy)]
pub struct PreparedScan {
    /// Smallest integer `t` with `t · cell_area ≥ f_w(q)`, clamped into
    /// `u32` — so `sum < t ⇔ sum · cell_area < f_w(q)` exactly.
    threshold: u32,
    /// `Σ wa[k] + d` — the per-weight constant of the upper-bound sum.
    upper_offset: u32,
}

impl PreparedScan {
    /// The integer threshold: the smallest `t` with `t · cell_area ≥ f_w(q)`.
    #[inline]
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// The per-weight upper-bound offset `Σ wa[k] + d`.
    #[inline]
    pub fn upper_offset(&self) -> u32 {
        self.upper_offset
    }
}

impl PreparedScan {
    /// Classifies one point given its cell row and the precomputed cell
    /// sum `Σ pa[k]`.
    #[inline]
    pub fn classify(&self, pa: &[u8], wa: &[u8], pa_sum: u32) -> BoundCase {
        debug_assert_eq!(pa.len(), wa.len());
        // Fixed-width 8-lane chunks give LLVM a vectorisable shape for
        // the widening u8 multiply-accumulate.
        let mut lsum: u32 = 0;
        let mut ca = pa.chunks_exact(8);
        let mut cb = wa.chunks_exact(8);
        for (a8, b8) in (&mut ca).zip(&mut cb) {
            let mut s: u32 = 0;
            for k in 0..8 {
                s += a8[k] as u32 * b8[k] as u32;
            }
            lsum += s;
        }
        for (&a, &b) in ca.remainder().iter().zip(cb.remainder()) {
            lsum += a as u32 * b as u32;
        }
        // usum = Σ (pa+1)(wa+1) = lsum + Σpa + Σwa + d.
        if lsum + pa_sum + self.upper_offset < self.threshold {
            BoundCase::Precedes
        } else if lsum >= self.threshold {
            BoundCase::Succeeds
        } else {
            BoundCase::Incomparable
        }
    }
}

/// Outcome of bounding one `(p, w)` pair against the query score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundCase {
    /// Case 1: `U[f_w(p)] < f_w(q)` — `p` surely precedes `q`.
    Precedes,
    /// Case 2: `L[f_w(p)] ≥ f_w(q)` — `p` surely does not precede `q`.
    Succeeds,
    /// Case 3: the bounds straddle `f_w(q)`; refinement needed.
    Incomparable,
}

/// The pre-computed corner-product table.
///
/// Memory: `(n+1)² · 8` bytes — 8.5 KB for the paper's default `n = 32`,
/// comfortably L1-resident.
///
/// ```
/// use rrq_core::Grid;
///
/// // 4 partitions over product range [0, 1) — the paper's Figure 4.
/// let grid = Grid::new(4, 1.0);
/// let (p, w) = (0.62, 0.12);
/// let (i, j) = (grid.point_cell(p), grid.weight_cell(w));
/// assert_eq!((i, j), (2, 0));
/// // The cell corners bracket the product:
/// assert!(grid.pair_lower(i, j) <= p * w);
/// assert!(p * w <= grid.pair_upper(i, j));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    n: usize,
    point_range: f64,
    weight_range: f64,
    /// The area of one grid cell, `point_range · weight_range / n²`.
    /// Because the boundaries are equal-width, every corner product is
    /// `i · j · cell_area`, which lets [`GridTable::classify`] evaluate
    /// both bound sums as one integer multiply-accumulate.
    cell_area: f64,
    /// Row-major `(n+1) × (n+1)` corner products.
    table: Vec<f64>,
}

impl Grid {
    /// Builds the table for `n` partitions over a product value range
    /// `[0, point_range)` and the full weight range `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 2` and `point_range > 0`.
    pub fn new(n: usize, point_range: f64) -> Self {
        Self::with_ranges(n, point_range, 1.0)
    }

    /// Builds the table with an explicit weight value range
    /// `[0, weight_range]`.
    ///
    /// Paper §3.1 quantises each data set over *its own* value range
    /// ("r is the range of the attribute value"). For normalised
    /// preference vectors the per-component range shrinks like `~1/d`,
    /// so scaling the weight axis to the observed maximum component is
    /// essential for tight bounds in high dimensions; [`crate::Gir`]
    /// does this automatically.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= n <= 255` and both ranges are positive.
    pub fn with_ranges(n: usize, point_range: f64, weight_range: f64) -> Self {
        assert!(n >= 2, "need at least 2 partitions");
        assert!(n <= 255, "cell indexes are u8: n must be <= 255");
        assert!(
            point_range.is_finite() && point_range > 0.0,
            "point range must be positive"
        );
        assert!(
            weight_range.is_finite() && weight_range > 0.0,
            "weight range must be positive"
        );
        let stride = n + 1;
        let mut table = vec![0.0; stride * stride];
        for i in 0..=n {
            let alpha_p = point_range * i as f64 / n as f64;
            for j in 0..=n {
                let alpha_w = weight_range * j as f64 / n as f64;
                table[i * stride + j] = alpha_p * alpha_w;
            }
        }
        Self {
            n,
            point_range,
            weight_range,
            cell_area: point_range * weight_range / (n * n) as f64,
            table,
        }
    }

    /// Number of partitions `n` (the table is `(n+1)²`).
    #[inline]
    pub fn partitions(&self) -> usize {
        self.n
    }

    /// The product value range `r` the grid was built for.
    #[inline]
    pub fn point_range(&self) -> f64 {
        self.point_range
    }

    /// The weight value range the grid was built for.
    #[inline]
    pub fn weight_range(&self) -> f64 {
        self.weight_range
    }

    /// Memory footprint of the table in bytes (paper §5.3 example:
    /// `32 × 32` needs under 8 KB… precisely `(33)² · 8`).
    pub fn memory_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<f64>()
    }

    /// The corner product `α_p[i] · α_w[j]`.
    ///
    /// # Panics
    ///
    /// Panics (in debug) if an index exceeds `n`.
    #[inline]
    pub fn corner(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i <= self.n && j <= self.n);
        self.table[i * (self.n + 1) + j]
    }

    /// Lower bound of `p[k]·w[k]` for a pair in cells `(i, j)`
    /// (`Grid[i][j]`).
    #[inline]
    pub fn pair_lower(&self, i: u8, j: u8) -> f64 {
        self.corner(i as usize, j as usize)
    }

    /// Upper bound of `p[k]·w[k]` for a pair in cells `(i, j)`
    /// (`Grid[i+1][j+1]`).
    #[inline]
    pub fn pair_upper(&self, i: u8, j: u8) -> f64 {
        self.corner(i as usize + 1, j as usize + 1)
    }

    /// Quantises a product attribute into its cell index
    /// `⌊v · n / r⌋`, clamped to `n − 1` so `v = r` (or rounding spill)
    /// stays in the last cell.
    #[inline]
    pub fn point_cell(&self, v: f64) -> u8 {
        debug_assert!(v >= 0.0);
        let cell = (v * self.n as f64 / self.point_range) as usize;
        cell.min(self.n - 1) as u8
    }

    /// Quantises a weight component into its cell index
    /// `⌊v · n / weight_range⌋`, clamped to `n − 1` (so the range maximum
    /// stays in the last cell).
    #[inline]
    pub fn weight_cell(&self, v: f64) -> u8 {
        debug_assert!(v >= 0.0);
        let cell = (v * self.n as f64 / self.weight_range) as usize;
        cell.min(self.n - 1) as u8
    }

    /// Score lower bound `L[f_w(p)] = Σ Grid[p⁽ᵃ⁾[k]][w⁽ᵃ⁾[k]]` (Eq. 3).
    #[inline]
    pub fn score_lower(&self, pa: &[u8], wa: &[u8]) -> f64 {
        debug_assert_eq!(pa.len(), wa.len());
        let stride = self.n + 1;
        let mut acc = 0.0;
        for (&a, &b) in pa.iter().zip(wa) {
            acc += self.table[a as usize * stride + b as usize];
        }
        acc
    }

    /// Score upper bound `U[f_w(p)] = Σ Grid[p⁽ᵃ⁾[k]+1][w⁽ᵃ⁾[k]+1]`
    /// (Eq. 4).
    #[inline]
    pub fn score_upper(&self, pa: &[u8], wa: &[u8]) -> f64 {
        debug_assert_eq!(pa.len(), wa.len());
        let stride = self.n + 1;
        let mut acc = 0.0;
        for (&a, &b) in pa.iter().zip(wa) {
            acc += self.table[(a as usize + 1) * stride + (b as usize + 1)];
        }
        acc
    }
}

impl GridTable for Grid {
    #[inline]
    fn partitions(&self) -> usize {
        Grid::partitions(self)
    }

    #[inline]
    fn point_cell(&self, v: f64) -> u8 {
        Grid::point_cell(self, v)
    }

    #[inline]
    fn weight_cell(&self, v: f64) -> u8 {
        Grid::weight_cell(self, v)
    }

    #[inline]
    fn score_lower(&self, pa: &[u8], wa: &[u8]) -> f64 {
        Grid::score_lower(self, pa, wa)
    }

    #[inline]
    fn score_upper(&self, pa: &[u8], wa: &[u8]) -> f64 {
        Grid::score_upper(self, pa, wa)
    }

    #[inline]
    fn memory_bytes(&self) -> usize {
        Grid::memory_bytes(self)
    }

    fn prepare_scan(&self, wa: &[u8], fq: f64) -> Option<PreparedScan> {
        // The classifier contract requires the smallest integer t with
        // t·cell_area ≥ fq, so that `sum < t ⇔ sum·cell_area < fq` for
        // every integer corner sum. `⌈fq / cell_area⌉` is only that
        // integer up to division rounding: when fq lies exactly on a
        // cell corner (fq = m·cell_area) the quotient can round up past
        // m, which classified a point with U[f_w(p)] = f_w(q) as
        // `Precedes` — strict-< rank semantics forbid that. Settle the
        // off-by-one with exact multiplicative checks in both directions.
        let t = (fq / self.cell_area).ceil();
        let mut threshold = if t <= 0.0 {
            0
        } else if t >= u32::MAX as f64 {
            u32::MAX
        } else {
            t as u32
        };
        while threshold > 0 && ((threshold - 1) as f64) * self.cell_area >= fq {
            threshold -= 1;
        }
        while threshold < u32::MAX && (threshold as f64) * self.cell_area < fq {
            threshold += 1;
        }
        let wa_sum: u32 = wa.iter().map(|&b| b as u32).sum();
        Some(PreparedScan {
            threshold,
            upper_offset: wa_sum + wa.len() as u32,
        })
    }

    /// Fused evaluation exploiting the equal-width factorisation: every
    /// corner product is `i · j · cell_area`, so
    /// `L = cell_area · Σ pa[k]·wa[k]` and
    /// `U = cell_area · Σ (pa[k]+1)(wa[k]+1)`. The integer sums
    /// vectorise; the scaling costs a single multiplication per pair
    /// instead of `d` table loads per bound.
    #[inline]
    fn classify(&self, pa: &[u8], wa: &[u8], fq: f64) -> BoundCase {
        debug_assert_eq!(pa.len(), wa.len());
        let mut lsum: u32 = 0;
        let mut sab: u32 = 0;
        for (&pk, &wk) in pa.iter().zip(wa) {
            let a = pk as u32;
            let b = wk as u32;
            lsum += a * b;
            sab += a + b;
        }
        let usum = lsum + sab + pa.len() as u32;
        if (usum as f64) * self.cell_area < fq {
            BoundCase::Precedes
        } else if (lsum as f64) * self.cell_area >= fq {
            BoundCase::Succeeds
        } else {
            BoundCase::Incomparable
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrq_types::dot;

    #[test]
    fn corners_are_products_of_boundaries() {
        let g = Grid::new(4, 1.0);
        // α_p = α_w = (0, 0.25, 0.5, 0.75, 1) — the paper's Figure 4.
        assert_eq!(g.corner(0, 0), 0.0);
        assert!((g.corner(2, 1) - 0.5 * 0.25).abs() < 1e-12);
        assert!((g.corner(4, 4) - 1.0).abs() < 1e-12);
        assert!((g.corner(3, 1) - 0.75 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn paper_example_bounds() {
        // §3.1: p[1] = 0.62, w[1] = 0.12 → cells (2, 0);
        // Grid[2][0] = 0.5·0 = 0, Grid[3][1] = 0.75·0.25.
        let g = Grid::new(4, 1.0);
        assert_eq!(g.point_cell(0.62), 2);
        assert_eq!(g.weight_cell(0.12), 0);
        assert_eq!(g.pair_lower(2, 0), 0.0);
        assert!((g.pair_upper(2, 0) - 0.75 * 0.25).abs() < 1e-12);
        let prod = 0.62 * 0.12;
        assert!(g.pair_lower(2, 0) <= prod && prod <= g.pair_upper(2, 0));
    }

    #[test]
    fn paper_figure_4_approximate_vector() {
        // p = (0.62, 0.15, 0.73) → p⁽ᵃ⁾ = (2, 0, 2);
        // w = (0.12, 0.6, 0.28) → w⁽ᵃ⁾ = (0, 2, 1).
        let g = Grid::new(4, 1.0);
        let pa: Vec<u8> = [0.62, 0.15, 0.73]
            .iter()
            .map(|&v| g.point_cell(v))
            .collect();
        assert_eq!(pa, vec![2, 0, 2]);
        let wa: Vec<u8> = [0.12, 0.6, 0.28]
            .iter()
            .map(|&v| g.weight_cell(v))
            .collect();
        assert_eq!(wa, vec![0, 2, 1]);
    }

    #[test]
    fn cells_scale_with_point_range() {
        let g = Grid::new(8, 10_000.0);
        assert_eq!(g.point_cell(0.0), 0);
        assert_eq!(g.point_cell(1_249.9), 0);
        assert_eq!(g.point_cell(1_250.0), 1);
        assert_eq!(g.point_cell(9_999.9), 7);
        // Clamp: exactly the range (or beyond by rounding) stays in-range.
        assert_eq!(g.point_cell(10_000.0), 7);
    }

    #[test]
    fn weight_cell_clamps_at_one() {
        let g = Grid::new(32, 1.0);
        assert_eq!(g.weight_cell(1.0), 31);
        assert_eq!(g.weight_cell(0.0), 0);
        assert_eq!(g.weight_cell(0.999_999), 31);
    }

    #[test]
    fn score_bounds_bracket_true_score() {
        let g = Grid::new(16, 100.0);
        let p = [12.5, 93.0, 0.1, 55.5];
        let w = [0.25, 0.25, 0.1, 0.4];
        let pa: Vec<u8> = p.iter().map(|&v| g.point_cell(v)).collect();
        let wa: Vec<u8> = w.iter().map(|&v| g.weight_cell(v)).collect();
        let score = dot(&w, &p);
        let lo = g.score_lower(&pa, &wa);
        let hi = g.score_upper(&pa, &wa);
        assert!(lo <= score, "lower {lo} > score {score}");
        assert!(score <= hi, "score {score} > upper {hi}");
        assert!(hi - lo > 0.0);
    }

    #[test]
    fn finer_grids_give_tighter_bounds() {
        let coarse = Grid::new(4, 100.0);
        let fine = Grid::new(64, 100.0);
        let p = [37.7, 81.2];
        let w = [0.33, 0.67];
        let width = |g: &Grid| {
            let pa: Vec<u8> = p.iter().map(|&v| g.point_cell(v)).collect();
            let wa: Vec<u8> = w.iter().map(|&v| g.weight_cell(v)).collect();
            g.score_upper(&pa, &wa) - g.score_lower(&pa, &wa)
        };
        assert!(width(&fine) < width(&coarse) / 4.0);
    }

    #[test]
    fn memory_matches_paper_example() {
        // §5.3: a 32×32 Grid-index needs under 8 K(B) — the exact table is
        // (33)²·8 = 8 712 bytes, "less than 8 K" in the paper's loose
        // 32·32·8 accounting.
        let g = Grid::new(32, 1.0);
        assert_eq!(g.memory_bytes(), 33 * 33 * 8);
        assert!(g.memory_bytes() < 10 * 1024);
    }

    #[test]
    fn prepared_scan_matches_classify_on_cell_corners() {
        // Regression: `prepare_scan` used `⌈fq / cell_area⌉` as the integer
        // threshold. When the division rounds up past an exact integer
        // (fq sitting exactly on a cell corner, i.e. fq = m·cell_area),
        // a point with U[f_w(p)] = f_w(q) was classified `Precedes`,
        // violating the strict-< rank semantics. The integer classifier
        // must agree with the float [`GridTable::classify`] on every
        // corner-exact score, in both directions.
        use rrq_data::rng::{Rng, StdRng};
        let mut corner_hits = 0u64;
        for &(n, pr, wr) in &[
            (4usize, 10.0f64, 0.3f64),
            (32, 10_000.0, 0.123),
            (128, 7.7, 0.9),
            (3, 1.0 / 3.0, 0.1),
            (17, 255.0, 0.317),
        ] {
            let g = Grid::with_ranges(n, pr, wr);
            // Reconstruct the private cell area with the same expression
            // the constructor uses, so `m as f64 * ca` is bit-identical
            // to the classifier's own corner products.
            let ca = pr * wr / ((n * n) as f64);
            let mut rng = StdRng::seed_from_u64(n as u64 ^ 0xC0DE);
            for _ in 0..400 {
                let d = 1 + rng.gen_range(0..10);
                let pa: Vec<u8> = (0..d).map(|_| rng.gen_range(0..n) as u8).collect();
                let wa: Vec<u8> = (0..d).map(|_| rng.gen_range(0..n) as u8).collect();
                let pa_sum: u32 = pa.iter().map(|&c| c as u32).sum();
                let wa_sum: u32 = wa.iter().map(|&c| c as u32).sum();
                let lsum: u32 = pa.iter().zip(&wa).map(|(&a, &b)| a as u32 * b as u32).sum();
                let usum = lsum + pa_sum + wa_sum + d as u32;
                // Corner-exact scores around both decision boundaries.
                for m in [lsum, usum, lsum + 1, usum.saturating_sub(1), usum + 1] {
                    let fq = m as f64 * ca;
                    let ps = g.prepare_scan(&wa, fq).expect("equal-width grid");
                    let got = ps.classify(&pa, &wa, pa_sum);
                    let want = GridTable::classify(&g, &pa, &wa, fq);
                    assert_eq!(
                        got, want,
                        "n={n} pr={pr} wr={wr} pa={pa:?} wa={wa:?} m={m} fq={fq}"
                    );
                    corner_hits += 1;
                }
            }
        }
        assert!(corner_hits > 0);
    }

    #[test]
    fn prepared_scan_threshold_is_strict_at_exact_upper_bound() {
        // Direct statement of the Def. 2 boundary: a point whose upper
        // bound sum times the cell area is exactly f_w(q) does not
        // strictly precede q, so it must not be Case 1.
        for &(n, pr, wr) in &[(4usize, 10.0f64, 0.3f64), (32, 10_000.0, 0.123)] {
            let g = Grid::with_ranges(n, pr, wr);
            let ca = pr * wr / ((n * n) as f64);
            for usum in 1u32..400 {
                let fq = usum as f64 * ca;
                let ps = g.prepare_scan(&[0], fq).expect("equal-width grid");
                // `threshold` is the smallest integer t with t·ca ≥ fq:
                // usum·ca = fq ≥ fq, so usum ≥ t must hold, i.e. a sum
                // equal to the corner is never strictly below threshold.
                assert!(
                    usum >= ps.threshold(),
                    "n={n} pr={pr} wr={wr} usum={usum}: corner-exact sum \
                     classified strictly below threshold ({})",
                    ps.threshold()
                );
                // And the threshold is tight from below: any sum smaller
                // than it is genuinely below fq.
                if ps.threshold() > 0 {
                    assert!(
                        ((ps.threshold() - 1) as f64) * ca < fq,
                        "n={n} usum={usum}: threshold {} over-conservative",
                        ps.threshold()
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_one_partition() {
        Grid::new(1, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_range() {
        Grid::new(4, 0.0);
    }
}
