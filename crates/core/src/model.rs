//! The analytical performance model of the Grid-index (paper §5.3).
//!
//! * [`dice_probability`] — the exact probability that the sum of `d`
//!   uniform discrete sub-scores lands on a given value (Eq. 15, the
//!   classic dice problem of Uspensky).
//! * [`score_distribution`] — mean and standard deviation of the score
//!   under the CLT normal approximation (Lemma 1 / Eq. 19).
//! * [`worst_case_filter_rate`] — `F_worst = 2Φ(√(3d)/n²)` (Eq. 25),
//!   where `Φ` is the *upper-tail* area of the standard normal
//!   distribution (the paper's Figure 9(b) convention).
//! * [`required_partitions`] — Theorem 1: the smallest `n` guaranteeing a
//!   filter rate of at least `1 − ε`.
//! * [`score_histogram`] — the empirical bound-score distribution of
//!   Figure 8.
//!
//! The standard-normal machinery (`erf`-based CDF and a bisection
//! inverse) is implemented here from scratch; no external special-function
//! crate is sanctioned.

use crate::approx::ApproxVectors;
use crate::grid::Grid;
use rrq_types::{PointSet, WeightSet};

/// Abramowitz–Stegun 7.1.26 approximation of the error function
/// (|error| < 1.5e-7, ample for table look-ups the paper does by hand).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal CDF `P(Z ≤ z)`.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// The paper's `Φ(z)`: the upper-tail area `P(Z > z)` of the standard
/// normal distribution (Figure 9(b)).
pub fn phi_upper(z: f64) -> f64 {
    1.0 - normal_cdf(z)
}

/// Inverse of [`phi_upper`] by bisection: the `z ≥ 0` with
/// `P(Z > z) = tail`.
///
/// # Panics
///
/// Panics unless `0 < tail <= 0.5`.
pub fn phi_upper_inverse(tail: f64) -> f64 {
    assert!(tail > 0.0 && tail <= 0.5, "tail must be in (0, 0.5]");
    let (mut lo, mut hi) = (0.0f64, 9.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if phi_upper(mid) > tail {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Eq. 15: the probability that `d` i.i.d. uniform draws from
/// `{1, …, faces}` sum to `s` (the paper instantiates `faces = n²`).
///
/// Returns 0 outside the support `[d, d·faces]`.
///
/// # Panics
///
/// Panics if `d == 0` or `faces == 0`.
pub fn dice_probability(s: u64, d: u32, faces: u64) -> f64 {
    assert!(d > 0 && faces > 0);
    let d64 = d as u64;
    if s < d64 || s > d64 * faces {
        return 0.0;
    }
    // Σ_k (-1)^k C(d, k) C(s - faces·k - 1, d - 1) / faces^d
    let mut acc = 0.0f64;
    let kmax = (s - d64) / faces;
    for k in 0..=kmax.min(d64) {
        let top = s - faces * k - 1;
        let term = binomial_f64(d64, k) * binomial_f64(top, d64 - 1);
        if k % 2 == 0 {
            acc += term;
        } else {
            acc -= term;
        }
    }
    acc / (faces as f64).powi(d as i32)
}

/// `C(n, k)` in floating point (exact for the modest sizes the model
/// needs; computed multiplicatively to avoid overflow).
fn binomial_f64(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc *= (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Lemma 1 / Eq. 19: the CLT approximation of the score distribution.
/// For sub-scores `p[i]·w[i]` uniform on `[0, r)`, the score
/// `S = Σ p[i]·w[i]` is approximately `N(μ', σ'²)` with `μ' = r·d/2` and
/// `σ' = r·√d / (2√3)`.
pub fn score_distribution(d: usize, r: f64) -> (f64, f64) {
    let mu = 0.5 * r * d as f64;
    let sigma = r * (d as f64).sqrt() / (2.0 * 3.0f64.sqrt());
    (mu, sigma)
}

/// Eq. 25: the worst-case filtering performance of an `n`-partition
/// Grid-index on `d`-dimensional data, `F_worst = 2Φ(√(3d)/n²)`.
///
/// # Panics
///
/// Panics if `d == 0` or `n < 2`.
pub fn worst_case_filter_rate(d: usize, n: usize) -> f64 {
    assert!(d > 0 && n >= 2);
    let z = (3.0 * d as f64).sqrt() / (n * n) as f64;
    (2.0 * phi_upper(z)).min(1.0)
}

/// Theorem 1: the smallest number of partitions `n` whose worst-case
/// filter rate is at least `1 − ε`.
///
/// Solves `Φ(δ/2) = (1−ε)/2` for `δ/2` and returns the least `n` with
/// `√(3d)/n² < δ/2`, i.e. `n = ⌈√(√(3d)/z)⌉` (with `z = δ/2`).
///
/// # Panics
///
/// Panics unless `0 < epsilon < 1` and `d > 0`.
pub fn required_partitions(d: usize, epsilon: f64) -> usize {
    assert!(d > 0);
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    let z = phi_upper_inverse((1.0 - epsilon) / 2.0);
    let n = ((3.0 * d as f64).sqrt() / z).sqrt();
    let mut n = n.ceil() as usize;
    n = n.max(2);
    // Guard against floating point landing exactly on the boundary.
    while worst_case_filter_rate(d, n) < 1.0 - epsilon {
        n += 1;
    }
    n
}

/// Rounds `n` up to the next power of two (the paper stores `b = log₂ n`
/// bits per dimension, so practical grids use power-of-two `n`).
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two()
}

/// A histogram of Grid-index bound-midpoint scores `(L + U)/2` over all
/// `(p, w)` pairs, normalised to frequencies — the empirical distribution
/// the paper's Figure 8 plots to justify the normal approximation
/// (the midpoint is the grid's unbiased score estimate; `L` alone is
/// systematically rounded down on coarse grids).
///
/// The score axis `[0, d·r)` is divided into `buckets` equal cells.
///
/// # Panics
///
/// Panics if `buckets == 0` or the sets mismatch dimensionality.
pub fn score_histogram(
    grid: &Grid,
    points: &PointSet,
    weights: &WeightSet,
    buckets: usize,
) -> Vec<f64> {
    assert!(buckets > 0);
    assert_eq!(points.dim(), weights.dim());
    let pa = ApproxVectors::from_points(grid, points);
    let wa = ApproxVectors::from_weights(grid, weights);
    let max_score = grid.point_range() * points.dim() as f64;
    let mut counts = vec![0u64; buckets];
    for i in 0..pa.len() {
        for j in 0..wa.len() {
            let lo = grid.score_lower(pa.row(i), wa.row(j));
            let hi = grid.score_upper(pa.row(i), wa.row(j));
            let s = 0.5 * (lo + hi);
            let b = ((s / max_score) * buckets as f64) as usize;
            counts[b.min(buckets - 1)] += 1;
        }
    }
    let total: u64 = counts.iter().sum();
    counts
        .into_iter()
        .map(|c| c as f64 / total.max(1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrq_data::synthetic;

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
        assert!(erf(6.0) > 0.999_999);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn phi_upper_matches_paper_table_lookup() {
        // Paper example: Φ(0.0125) ≈ 0.495.
        assert!((phi_upper(0.0125) - 0.495).abs() < 5e-4);
    }

    #[test]
    fn phi_upper_inverse_round_trips() {
        for tail in [0.5, 0.495, 0.25, 0.1, 0.01, 1e-4] {
            let z = phi_upper_inverse(tail);
            assert!((phi_upper(z) - tail).abs() < 1e-6, "tail {tail}");
        }
    }

    #[test]
    fn dice_probability_single_die_is_uniform() {
        for s in 1..=6 {
            assert!((dice_probability(s, 1, 6) - 1.0 / 6.0).abs() < 1e-12);
        }
        assert_eq!(dice_probability(0, 1, 6), 0.0);
        assert_eq!(dice_probability(7, 1, 6), 0.0);
    }

    #[test]
    fn dice_probability_two_dice_triangle() {
        // Classic 2d6: P(7) = 6/36, P(2) = P(12) = 1/36.
        assert!((dice_probability(7, 2, 6) - 6.0 / 36.0).abs() < 1e-12);
        assert!((dice_probability(2, 2, 6) - 1.0 / 36.0).abs() < 1e-12);
        assert!((dice_probability(12, 2, 6) - 1.0 / 36.0).abs() < 1e-12);
    }

    #[test]
    fn dice_probability_sums_to_one() {
        for (d, faces) in [(3u32, 4u64), (4, 16), (2, 100)] {
            let total: f64 = (d as u64..=d as u64 * faces)
                .map(|s| dice_probability(s, d, faces))
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "d={d} faces={faces}");
        }
    }

    #[test]
    fn dice_probability_is_symmetric() {
        // P(s) = P(d·(faces+1) − s).
        let (d, faces) = (4u32, 9u64);
        for s in 4..=20 {
            let mirror = d as u64 * (faces + 1) - s;
            assert!(
                (dice_probability(s, d, faces) - dice_probability(mirror, d, faces)).abs() < 1e-12
            );
        }
    }

    #[test]
    fn score_distribution_matches_eq_19() {
        let (mu, sigma) = score_distribution(20, 1.0);
        assert!((mu - 10.0).abs() < 1e-12);
        assert!((sigma - 20.0f64.sqrt() / (2.0 * 3.0f64.sqrt())).abs() < 1e-12);
    }

    #[test]
    fn worst_case_filter_rate_monotone_in_n() {
        let mut last = 0.0;
        for n in [4usize, 8, 16, 32, 64, 128] {
            let f = worst_case_filter_rate(20, n);
            assert!(f >= last, "n={n}");
            last = f;
        }
        assert!(last > 0.999);
    }

    #[test]
    fn paper_example_d20_needs_n32() {
        // §5.3: for d = 20 and ε = 1 %, n = 32 suffices (the next power of
        // two above the analytic minimum).
        let n = required_partitions(20, 0.01);
        assert!(n <= 32, "analytic minimum {n} must be ≤ 32");
        assert_eq!(next_power_of_two(n), 32, "paper rounds up to 32, got {n}");
        assert!(worst_case_filter_rate(20, 32) > 0.99);
    }

    #[test]
    fn required_partitions_guarantee_holds() {
        for d in [2usize, 6, 10, 20, 50] {
            for eps in [0.05, 0.01] {
                let n = required_partitions(d, eps);
                assert!(
                    worst_case_filter_rate(d, n) >= 1.0 - eps,
                    "d={d} eps={eps} n={n}"
                );
                if n > 2 {
                    assert!(
                        worst_case_filter_rate(d, n - 1) < 1.0 - eps,
                        "n is not minimal for d={d} eps={eps}"
                    );
                }
            }
        }
    }

    #[test]
    fn required_partitions_grows_with_dimension() {
        assert!(required_partitions(50, 0.01) >= required_partitions(6, 0.01));
    }

    #[test]
    fn score_histogram_is_bell_shaped() {
        // Figure 8: d = 4, n = 4 — already clearly unimodal and centred.
        let grid = Grid::new(4, 1.0);
        let p = synthetic::uniform_points(4, 300, 1.0, 1).unwrap();
        let w = synthetic::uniform_weights(4, 300, 2).unwrap();
        let h = score_histogram(&grid, &p, &w, 40);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let peak = h
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        // Weight components average 1/d, so true scores concentrate near
        // μ = d·E[p]·E[w] = 0.5; the coarse n = 4 grid widens bounds, so
        // midpoints centre a little above (bucket 40·(0.5..1.0)/4 ≈ 5–10).
        assert!((3..=11).contains(&peak), "peak bucket {peak}");
        // Tails are thin.
        assert!(h[39] < 0.01);
    }

    #[test]
    fn binomial_reference_values() {
        assert_eq!(binomial_f64(5, 2), 10.0);
        assert_eq!(binomial_f64(10, 0), 1.0);
        assert_eq!(binomial_f64(3, 5), 0.0);
        assert!((binomial_f64(52, 5) - 2_598_960.0).abs() < 1e-6);
    }
}
