//! Parallel query engine for GIR.
//!
//! [`ParGir`] answers a *single* reverse top-k / reverse k-ranks query
//! with several workers, each scanning a contiguous shard of the weight
//! set `W` with its own [`DominBuffer`], [`Scratch`] and [`QueryStats`].
//! Per-weight work is embarrassingly parallel — a weight's rank count
//! depends only on `(w, q, P)` — so sharding `W` and merging shard
//! outputs canonically reproduces the sequential answer **byte for
//! byte**:
//!
//! * RTK: membership of each weight is independent; the merged,
//!   canonically sorted id list equals the sequential one. The Alg. 2
//!   "`k` dominators ⇒ empty" exit is safe per worker, because `Domin`
//!   membership is a property of `(p, q)` alone: `k` dominators force
//!   every weight's rank to at least `k`, so the *global* result is
//!   empty whenever any worker saturates.
//! * RKR: each worker keeps a local [`KBestHeap`] over its shard; a
//!   k-best heap retains exactly the `k` lexicographically smallest
//!   `(rank, weight_id)` pairs offered, so merging shard heaps
//!   ([`KBestHeap::merge`]) yields the exact k-best of the union. A
//!   worker's scan bound (its local heap threshold) is always at least
//!   the global k-th rank, hence never skips a global top-k entry.
//!
//! Three bound-sharing modes ([`BoundMode`]) trade bound sharpness
//! against reproducibility:
//!
//! * [`BoundMode::Shared`] (default): RKR workers publish their
//!   full-heap threshold into one shared atomic `minRank`
//!   (`AtomicUsize::fetch_min`) and read it before each scan, tightening
//!   early termination across shards; RTK workers broadcast dominator
//!   saturation through an `AtomicBool`. Results stay exact, but
//!   *counters* depend on cross-thread timing.
//! * [`BoundMode::Local`] ([`ParConfig::deterministic`]): workers use
//!   only locally derived bounds. At a fixed thread count every worker's
//!   work — and therefore the merged [`QueryStats`] — is bit-identical
//!   across runs, at the price of losing all cross-shard pruning.
//! * [`BoundMode::Epoch`] ([`ParConfig::epoch`]): the epoch-snapshot
//!   compromise. Workers scan with a *frozen* snapshot of the merged
//!   cross-shard bound and exchange fresh bounds only at deterministic
//!   epoch boundaries (every `N` weights of the shard), through a
//!   barrier-synchronised [`EpochSync`]. Because every worker reads the
//!   merged bound only after *all* workers published their epoch-`r`
//!   value (and before any publishes epoch `r+1` — two barriers per
//!   boundary), the bound each weight is scanned under is a pure
//!   function of `(data, query, shards, epoch)`. Counters are exactly
//!   reproducible run-to-run **and** most of the shared-mode pruning
//!   survives — `rrq-benchdiff` can gate epoch-mode documents at its
//!   default zero counter tolerance.
//!
//! Execution substrate: by default each query opens a fresh
//! `std::thread::scope`. Attaching a persistent [`WorkerPool`] with
//! [`ParGir::with_pool`] dispatches shard jobs to long-lived workers
//! instead, amortising spawn/join across a query batch; pooled jobs own
//! their per-query state (the pool outlives any single query), so they
//! run under the [`NoopRecorder`] and the engine books `par.pool_reuse`
//! / `par.epoch_syncs` on the caller's recorder. Shard decomposition,
//! merge order and counters are identical on both substrates — the
//! differential harness in `tests/par_equivalence.rs` pins that.
//!
//! Tracing: the untraced entry points run workers under the (trivially
//! `Sync`) [`NoopRecorder`]. The traced ones ask the recorder for a
//! thread-safe view via [`Recorder::as_sync`]; recorders that cannot
//! cross threads (e.g. the `RefCell`-based `MetricsRecorder`) make the
//! engine fall back to the sequential path — still traced, still exact —
//! after booking one `par.sequential_fallback` count. The same counter
//! is booked when a pool is attached but cannot host a parallel query
//! (0/1 workers, or a 1-thread configuration).

use crate::approx::ApproxVectors;
use crate::gir::{DominBuffer, Gir, Scratch};
use crate::grid::{Grid, GridTable};
use crate::pool::WorkerPool;
use crate::threshold::RtkThresholdOutcome;
use rrq_obs::{
    span, timed_leaf, BoundSource, ExplainDoc, ExplainKind, ExplainSink, NoopRecorder, NoopSink,
    Recorder, RANK_CERTIFIED,
};
use rrq_types::{
    dot_counted, KBestHeap, QueryStats, RkrQuery, RkrResult, RtkQuery, RtkResult, WeightId,
};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;

/// How workers share scan bounds across shards. See the module docs for
/// the full contract of each mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundMode {
    /// Live atomic bounds: sharpest pruning, timing-dependent counters.
    Shared,
    /// Worker-local bounds only: reproducible counters, no cross-shard
    /// pruning.
    Local,
    /// Frozen cross-shard bound refreshed every `N` shard weights at
    /// barrier-synchronised boundaries: reproducible counters *and*
    /// cross-shard pruning. `N` is clamped to at least 1.
    Epoch(usize),
}

/// Configuration of the parallel query engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    /// Worker threads per query. `0` and `1` both mean "run the
    /// sequential engine on the calling thread".
    pub threads: usize,
    /// Cross-shard bound sharing mode.
    pub mode: BoundMode,
}

impl Default for ParConfig {
    /// All available cores, shared-bound mode.
    fn default() -> Self {
        Self {
            threads: thread::available_parallelism().map_or(1, |n| n.get()),
            mode: BoundMode::Shared,
        }
    }
}

impl ParConfig {
    /// Shared-bound mode with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            mode: BoundMode::Shared,
        }
    }

    /// Local-bound (deterministic) mode with an explicit thread count.
    pub fn deterministic(threads: usize) -> Self {
        Self {
            threads,
            mode: BoundMode::Local,
        }
    }

    /// Epoch-snapshot mode: exchange merged bounds every `every` shard
    /// weights (clamped to at least 1). Deterministic counters *with*
    /// cross-shard pruning.
    pub fn epoch(threads: usize, every: usize) -> Self {
        Self {
            threads,
            mode: BoundMode::Epoch(every.max(1)),
        }
    }
}

/// Locks an engine mutex. Epoch slots and barrier state are held only
/// for a few word writes, never across scanning, so poisoning means a
/// worker panicked mid-publish — propagate.
fn locked<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // rrq-lint: allow(no-unwrap-in-lib) -- a poisoned epoch mutex means a worker panicked; re-raise it
    mutex.lock().expect("epoch mutex poisoned")
}

/// Per-worker bound slots merged at epoch boundaries.
struct EpochSlots {
    /// Latest published RKR scan bound per worker (`usize::MAX` = none).
    bounds: Vec<usize>,
    /// Latest published RTK saturation per worker.
    saturated: Vec<bool>,
    /// Total boundary exchanges performed (for `par.epoch_syncs`).
    syncs: u64,
}

/// Rendezvous state of a [`PoisonBarrier`].
struct BarrierState {
    /// Participants blocked on the current generation.
    arrived: usize,
    /// Completed rendezvous count; waking waiters compare against it to
    /// tell a real release from a spurious condvar wakeup.
    generation: u64,
    /// Set when a participant unwound; pending and future waiters panic
    /// instead of waiting for a peer that will never arrive.
    poisoned: bool,
}

/// A reusable rendezvous like `std::sync::Barrier`, plus [`poison`]
/// (Self::poison): a participant that unwinds mid-protocol marks the
/// barrier, and every peer blocked (or about to block) in [`wait`]
/// (Self::wait) panics out instead of deadlocking on the missing
/// arrival. That panic unwinds through the worker like any shard panic:
/// the pool's `catch_unwind` turns it into [`PoolError::JobPanicked`]
/// (crate::pool::PoolError::JobPanicked), and the scoped substrate
/// re-raises it on join.
struct PoisonBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    workers: usize,
}

const EPOCH_PEER_PANICKED: &str =
    "epoch-snapshot peer panicked; abandoning the barrier-coupled scan";

impl PoisonBarrier {
    fn new(workers: usize) -> Self {
        Self {
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
            workers,
        }
    }

    /// Blocks until all `workers` participants arrive. Panics if the
    /// barrier is — or becomes, while waiting — poisoned.
    fn wait(&self) {
        let mut st = locked(&self.state);
        if st.poisoned {
            panic!("{EPOCH_PEER_PANICKED}");
        }
        st.arrived += 1;
        if st.arrived == self.workers {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
            return;
        }
        let gen = st.generation;
        while st.generation == gen && !st.poisoned {
            // rrq-lint: allow(no-unwrap-in-lib) -- only this module locks the barrier mutex and never panics under it
            st = self.cv.wait(st).expect("epoch barrier mutex poisoned");
        }
        if st.poisoned {
            panic!("{EPOCH_PEER_PANICKED}");
        }
    }

    /// Marks the barrier poisoned and wakes every waiter. Called during
    /// unwind, so it must not panic itself: a poisoned mutex is taken
    /// over instead of re-raised (the flag write is a single bool).
    fn poison(&self) {
        let mut st = match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        st.poisoned = true;
        self.cv.notify_all();
    }
}

/// Barrier-coupled snapshot exchange for [`BoundMode::Epoch`].
///
/// The double barrier is what makes the protocol deterministic: after
/// the first rendezvous every worker's epoch-`r` value is visible and
/// *frozen*; all workers then read the same merged snapshot; the second
/// rendezvous keeps any fast worker from publishing its epoch-`r+1`
/// value before a slow worker finished reading epoch `r`.
///
/// Every epoch worker must arm a [`panic_guard`](Self::panic_guard)
/// before its first [`exchange`](Self::exchange): if the worker unwinds,
/// the guard poisons the underlying [`PoisonBarrier`] so peers panic out
/// of the protocol instead of hanging on a rendezvous that can never
/// complete.
struct EpochSync {
    barrier: PoisonBarrier,
    slots: Mutex<EpochSlots>,
}

/// RAII token tying a worker's participation in an [`EpochSync`] to its
/// unwind path: dropped during a panic, it poisons the sync's barrier.
struct EpochPanicGuard<'a> {
    sync: &'a EpochSync,
}

impl Drop for EpochPanicGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.sync.barrier.poison();
        }
    }
}

impl EpochSync {
    fn new(workers: usize) -> Self {
        Self {
            barrier: PoisonBarrier::new(workers),
            slots: Mutex::new(EpochSlots {
                bounds: vec![usize::MAX; workers],
                saturated: vec![false; workers],
                syncs: 0,
            }),
        }
    }

    /// Arms the unwind-to-poison coupling for one worker; hold the guard
    /// for the whole scan (see the type docs).
    fn panic_guard(&self) -> EpochPanicGuard<'_> {
        EpochPanicGuard { sync: self }
    }

    /// Publishes worker `me`'s state, rendezvouses with every other
    /// worker, and returns the merged `(min bound, any saturated)`
    /// snapshot of this boundary. Panics if a peer panicked (see
    /// [`PoisonBarrier`]).
    fn exchange(&self, me: usize, bound: usize, saturated: bool) -> (usize, bool) {
        {
            let mut slots = locked(&self.slots);
            slots.bounds[me] = bound;
            slots.saturated[me] = saturated;
            slots.syncs += 1;
        }
        self.barrier.wait();
        let snapshot = {
            let slots = locked(&self.slots);
            (
                slots.bounds.iter().copied().min().unwrap_or(usize::MAX),
                slots.saturated.iter().any(|&s| s),
            )
        };
        self.barrier.wait();
        snapshot
    }

    /// Boundary exchanges performed so far (summed over workers).
    fn syncs(&self) -> u64 {
        locked(&self.slots).syncs
    }
}

/// The sub-range of `range` a worker scans in epoch `round`
/// (saturating: `every` may be `usize::MAX`). Empty once the shard is
/// exhausted — the worker then only participates in the barriers.
fn epoch_chunk(range: &Range<usize>, round: usize, every: usize) -> (usize, usize) {
    let lo = range
        .start
        .saturating_add(round.saturating_mul(every))
        .min(range.end);
    let hi = range
        .start
        .saturating_add(round.saturating_add(1).saturating_mul(every))
        .min(range.end);
    (lo, hi)
}

/// Number of barrier-coupled scan rounds for the given shards: every
/// worker runs the same count (idling on short shards), otherwise the
/// barriers would deadlock.
fn epoch_rounds(shards: &[Range<usize>], epoch: usize) -> usize {
    let longest = shards.iter().map(|r| r.len()).max().unwrap_or(0);
    longest.div_ceil(epoch.max(1)).max(1)
}

/// A [`Gir`] instance wrapped with intra-query parallel execution.
///
/// Construct with [`Gir::parallel`] or [`ParGir::new`]; answers the same
/// [`RtkQuery`] / [`RkrQuery`] traits with byte-identical results.
/// Attach a persistent [`WorkerPool`] with [`ParGir::with_pool`] to
/// amortise thread spawn/join across a query batch.
///
/// ```
/// use rrq_core::{Gir, ParConfig};
/// use rrq_types::{PointSet, WeightSet, QueryStats, RtkQuery};
///
/// let products = PointSet::from_flat(2, 10.0, &[1.0, 9.0, 8.0, 2.0])?;
/// let users = WeightSet::from_flat(2, &[0.9, 0.1, 0.1, 0.9])?;
/// let gir = Gir::with_defaults(&products, &users);
/// let par = gir.parallel(ParConfig::deterministic(2));
///
/// let mut s1 = QueryStats::default();
/// let mut s2 = QueryStats::default();
/// let q = [1.0, 9.0];
/// assert_eq!(
///     par.reverse_top_k(&q, 1, &mut s1),
///     gir.reverse_top_k(&q, 1, &mut s2),
/// );
/// # Ok::<(), rrq_types::RrqError>(())
/// ```
pub struct ParGir<'p, 'a, G: GridTable = Grid> {
    gir: &'a Gir<'a, G>,
    config: ParConfig,
    /// Persistent execution substrate; `None` scopes fresh threads per
    /// query. The pool's environment lifetime must equal `'a` (the
    /// index borrow) because pooled jobs carry the index reference.
    pool: Option<&'p WorkerPool<'a>>,
}

impl<'a, G: GridTable> Gir<'a, G> {
    /// Wraps this instance with the parallel query engine.
    pub fn parallel(&'a self, config: ParConfig) -> ParGir<'a, 'a, G> {
        ParGir {
            gir: self,
            config,
            pool: None,
        }
    }
}

impl<'p, 'a, G: GridTable> ParGir<'p, 'a, G> {
    /// See [`Gir::parallel`].
    pub fn new(gir: &'a Gir<'a, G>, config: ParConfig) -> ParGir<'a, 'a, G> {
        gir.parallel(config)
    }

    /// Dispatches queries to `pool`'s persistent workers instead of
    /// scoping fresh threads. The effective worker count becomes
    /// `min(config.threads, pool.workers())`; a pool with fewer than two
    /// workers routes queries through the sequential engine (booking
    /// `par.sequential_fallback` on traced runs).
    pub fn with_pool<'q>(self, pool: &'q WorkerPool<'a>) -> ParGir<'q, 'a, G> {
        ParGir {
            gir: self.gir,
            config: self.config,
            pool: Some(pool),
        }
    }

    /// [`ParGir::with_pool`] that tolerates an absent pool — handy for
    /// callers whose pool is itself optional (e.g. the bench runner).
    pub fn with_pool_opt<'q>(self, pool: Option<&'q WorkerPool<'a>>) -> ParGir<'q, 'a, G> {
        ParGir {
            gir: self.gir,
            config: self.config,
            pool,
        }
    }

    /// The parallel configuration in effect.
    pub fn config(&self) -> ParConfig {
        self.config
    }

    /// The wrapped sequential instance.
    pub fn inner(&self) -> &'a Gir<'a, G> {
        self.gir
    }

    /// Effective worker count for a weight set of `nw` entries: never
    /// more workers than weights (or than the attached pool has), never
    /// fewer than one.
    fn effective_threads(&self, nw: usize) -> usize {
        let mut threads = self.config.threads.max(1).min(nw.max(1));
        if let Some(pool) = self.pool {
            threads = threads.min(pool.workers());
        }
        threads
    }

    /// Contiguous shard ranges covering `0..nw` — fixed by `(nw,
    /// threads)` alone, which is what makes local- and epoch-mode
    /// counters reproducible.
    fn shards(nw: usize, threads: usize) -> Vec<Range<usize>> {
        let chunk = nw.div_ceil(threads);
        (0..threads)
            .map(|t| (t * chunk).min(nw)..((t + 1) * chunk).min(nw))
            .collect()
    }
}

/// One worker's RTK shard outcome.
struct RtkShard<S> {
    members: Vec<WeightId>,
    stats: QueryStats,
    /// Worker accumulated `k` dominators (or saw the broadcast): the
    /// global result is empty.
    saturated: bool,
    /// Per-shard explain sink, absorbed by the caller in worker-index
    /// order ([`NoopSink`] on untraced paths).
    sink: S,
}

/// One worker's RKR shard outcome: the per-shard k-best heap, its
/// query counters and its explain sink (absorbed in worker-index order).
type RkrShard<S> = (KBestHeap, QueryStats, S);

impl<'a, G: GridTable + Sync> ParGir<'_, 'a, G> {
    /// Parallel GIRTop-k over a `Sync` recorder (monomorphised to
    /// [`NoopRecorder`] by the untraced entry point).
    fn rtk_par<R: Recorder + Sync + ?Sized, S: ExplainSink + Default + Send + 'a>(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &R,
        sink: &mut S,
    ) -> RtkResult {
        let gir = self.gir;
        let nw = gir.total_weights();
        let threads = self.effective_threads(nw);
        if threads <= 1 {
            if self.pool.is_some() {
                rec.add_count("par.sequential_fallback", 1);
            }
            return gir.rtk_impl(q, k, stats, rec, sink);
        }
        assert_eq!(q.len(), gir.points_ref().dim(), "query dimensionality");
        if k == 0 {
            return RtkResult::default();
        }
        if sink.enabled() {
            sink.begin_query(
                ExplainKind::Rtk,
                q,
                k as u64,
                gir.grid().partitions() as u64,
            );
        }
        let _query = span(rec, "rtk");
        let qa = timed_leaf(rec, "quantize", || {
            ApproxVectors::quantize_point(gir.grid(), q)
        });
        let shards = Self::shards(nw, threads);
        let mode = self.config.mode;
        let (shard_results, epoch_syncs) = match self.pool {
            Some(pool) => {
                let reused = pool.stats().queries > 0;
                let out = rtk_on_pool::<G, S>(pool, gir, q, &qa, k, shards, mode);
                if reused {
                    rec.add_count("par.pool_reuse", 1);
                }
                out
            }
            None => rtk_on_scope(gir, q, &qa, k, shards, mode, rec),
        };
        if epoch_syncs > 0 {
            rec.add_count("par.epoch_syncs", epoch_syncs);
        }
        // Merge in worker-index order: counters reproducible, result
        // canonical.
        let mut members = Vec::new();
        let mut empty = false;
        for shard in shard_results {
            stats.merge(&shard.stats);
            empty |= shard.saturated;
            members.extend_from_slice(&shard.members);
            sink.absorb(shard.sink);
        }
        if empty {
            // Saturation empties the result globally; drop shard-recorded
            // result events so the document matches what is returned.
            sink.invalidate_results();
            return RtkResult::default();
        }
        RtkResult::from_weights(members)
    }

    /// Parallel GIRk-Rank over a `Sync` recorder.
    fn rkr_par<R: Recorder + Sync + ?Sized, S: ExplainSink + Default + Send + 'a>(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &R,
        sink: &mut S,
    ) -> RkrResult {
        let gir = self.gir;
        let nw = gir.total_weights();
        let threads = self.effective_threads(nw);
        if threads <= 1 {
            if self.pool.is_some() {
                rec.add_count("par.sequential_fallback", 1);
            }
            return gir.rkr_impl(q, k, stats, rec, sink);
        }
        assert_eq!(q.len(), gir.points_ref().dim(), "query dimensionality");
        if sink.enabled() {
            sink.begin_query(
                ExplainKind::Rkr,
                q,
                k as u64,
                gir.grid().partitions() as u64,
            );
        }
        let _query = span(rec, "rkr");
        let qa = timed_leaf(rec, "quantize", || {
            ApproxVectors::quantize_point(gir.grid(), q)
        });
        let shards = Self::shards(nw, threads);
        let mode = self.config.mode;
        let (shard_results, epoch_syncs) = match self.pool {
            Some(pool) => {
                let reused = pool.stats().queries > 0;
                let out = rkr_on_pool::<G, S>(pool, gir, q, &qa, k, shards, mode);
                if reused {
                    rec.add_count("par.pool_reuse", 1);
                }
                out
            }
            None => rkr_on_scope(gir, q, &qa, k, shards, mode, rec),
        };
        if epoch_syncs > 0 {
            rec.add_count("par.epoch_syncs", epoch_syncs);
        }
        let mut heap = KBestHeap::new(k);
        for (shard_heap, shard_stats, shard_sink) in shard_results {
            stats.merge(&shard_stats);
            heap.merge(shard_heap);
            sink.absorb(shard_sink);
        }
        let result = heap.into_result();
        if sink.enabled() {
            // Workers record no result events (only the merged heap knows
            // the survivors); the canonical result set is recorded here.
            for e in result.entries() {
                sink.result(e.weight.0 as u64, e.rank as u64);
            }
        }
        result
    }

    /// Parallel GIRTop-k with full pruning provenance (see
    /// [`Gir::reverse_top_k_explained`]). Shard sinks merge in
    /// worker-index order, so local- and epoch-mode documents are
    /// reproducible run to run; shared-atomic mode is honestly
    /// scheduling-dependent and its documents may differ.
    pub fn reverse_top_k_explained(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        doc: &mut ExplainDoc,
    ) -> RtkResult {
        self.describe_into(doc);
        self.rtk_par(q, k, stats, &NoopRecorder, doc)
    }

    /// Parallel GIRk-Rank with full pruning provenance (see
    /// [`Self::reverse_top_k_explained`]).
    pub fn reverse_k_ranks_explained(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        doc: &mut ExplainDoc,
    ) -> RkrResult {
        self.describe_into(doc);
        self.rkr_par(q, k, stats, &NoopRecorder, doc)
    }

    fn describe_into(&self, doc: &mut ExplainDoc) {
        doc.set_engine("ParGir");
        doc.push_config("threads", &self.config.threads.to_string());
        let mode = match self.config.mode {
            BoundMode::Shared => "shared".to_string(),
            BoundMode::Local => "local".to_string(),
            BoundMode::Epoch(every) => format!("epoch({every})"),
        };
        doc.push_config("mode", &mode);
        if self.pool.is_some() {
            doc.push_config("pool", "yes");
        }
    }
}

/// Runs the RTK shard workers on fresh scoped threads.
fn rtk_on_scope<
    G: GridTable + Sync,
    R: Recorder + Sync + ?Sized,
    S: ExplainSink + Default + Send,
>(
    gir: &Gir<'_, G>,
    q: &[f64],
    qa: &[u8],
    k: usize,
    shards: Vec<Range<usize>>,
    mode: BoundMode,
    rec: &R,
) -> (Vec<RtkShard<S>>, u64) {
    let flag = AtomicBool::new(false);
    let sync = EpochSync::new(shards.len());
    let rounds = match mode {
        BoundMode::Epoch(every) => epoch_rounds(&shards, every),
        _ => 0,
    };
    let out: Vec<RtkShard<S>> = thread::scope(|s| {
        let handles: Vec<_> = shards
            .into_iter()
            .enumerate()
            .map(|(me, range)| {
                let (flag, sync) = (&flag, &sync);
                s.spawn(move || match mode {
                    BoundMode::Shared => rtk_worker(gir, q, qa, k, range, Some(flag), rec),
                    BoundMode::Local => rtk_worker(gir, q, qa, k, range, None, rec),
                    BoundMode::Epoch(every) => {
                        rtk_worker_epoch(gir, q, qa, k, range, me, sync, every, rounds, rec)
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            // rrq-lint: allow(no-unwrap-in-lib) -- a panicked worker already poisoned the query; re-raise it
            .map(|h| h.join().expect("parallel RTK worker panicked"))
            .collect()
    });
    (out, sync.syncs())
}

/// Runs the RTK shard workers on a persistent pool. Jobs own their
/// per-query state (the pool may outlive it) and run untraced — the
/// caller books pool-level counters on its own recorder.
fn rtk_on_pool<'env, G: GridTable + Sync, S: ExplainSink + Default + Send + 'env>(
    pool: &WorkerPool<'env>,
    gir: &'env Gir<'env, G>,
    q: &[f64],
    qa: &[u8],
    k: usize,
    shards: Vec<Range<usize>>,
    mode: BoundMode,
) -> (Vec<RtkShard<S>>, u64) {
    let workers = shards.len();
    let rounds = match mode {
        BoundMode::Epoch(every) => epoch_rounds(&shards, every),
        _ => 0,
    };
    let flag = Arc::new(AtomicBool::new(false));
    let sync = Arc::new(EpochSync::new(workers));
    let jobs: Vec<Box<dyn FnOnce() -> RtkShard<S> + Send + 'env>> = shards
        .into_iter()
        .enumerate()
        .map(|(me, range)| {
            let q = q.to_vec();
            let qa = qa.to_vec();
            let flag = Arc::clone(&flag);
            let sync = Arc::clone(&sync);
            let job: Box<dyn FnOnce() -> RtkShard<S> + Send + 'env> =
                Box::new(move || match mode {
                    BoundMode::Shared => {
                        rtk_worker(gir, &q, &qa, k, range, Some(&flag), &NoopRecorder)
                    }
                    BoundMode::Local => rtk_worker(gir, &q, &qa, k, range, None, &NoopRecorder),
                    BoundMode::Epoch(every) => rtk_worker_epoch(
                        gir,
                        &q,
                        &qa,
                        k,
                        range,
                        me,
                        &sync,
                        every,
                        rounds,
                        &NoopRecorder,
                    ),
                });
            job
        })
        .collect();
    let out = match pool.run(jobs) {
        Ok(shards) => shards,
        Err(err) => panic!("parallel RTK query failed on the worker pool: {err}"),
    };
    (out, sync.syncs())
}

/// Runs the RKR shard workers on fresh scoped threads.
fn rkr_on_scope<
    G: GridTable + Sync,
    R: Recorder + Sync + ?Sized,
    S: ExplainSink + Default + Send,
>(
    gir: &Gir<'_, G>,
    q: &[f64],
    qa: &[u8],
    k: usize,
    shards: Vec<Range<usize>>,
    mode: BoundMode,
    rec: &R,
) -> (Vec<RkrShard<S>>, u64) {
    let min_rank = AtomicUsize::new(usize::MAX);
    let sync = EpochSync::new(shards.len());
    let rounds = match mode {
        BoundMode::Epoch(every) => epoch_rounds(&shards, every),
        _ => 0,
    };
    let out: Vec<(KBestHeap, QueryStats, S)> = thread::scope(|s| {
        let handles: Vec<_> = shards
            .into_iter()
            .enumerate()
            .map(|(me, range)| {
                let (min_rank, sync) = (&min_rank, &sync);
                s.spawn(move || match mode {
                    BoundMode::Shared => rkr_worker(gir, q, qa, k, range, Some(min_rank), rec),
                    BoundMode::Local => rkr_worker(gir, q, qa, k, range, None, rec),
                    BoundMode::Epoch(every) => {
                        rkr_worker_epoch(gir, q, qa, k, range, me, sync, every, rounds, rec)
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            // rrq-lint: allow(no-unwrap-in-lib) -- a panicked worker already poisoned the query; re-raise it
            .map(|h| h.join().expect("parallel RKR worker panicked"))
            .collect()
    });
    (out, sync.syncs())
}

/// Runs the RKR shard workers on a persistent pool (see
/// [`rtk_on_pool`] for the ownership contract).
fn rkr_on_pool<'env, G: GridTable + Sync, S: ExplainSink + Default + Send + 'env>(
    pool: &WorkerPool<'env>,
    gir: &'env Gir<'env, G>,
    q: &[f64],
    qa: &[u8],
    k: usize,
    shards: Vec<Range<usize>>,
    mode: BoundMode,
) -> (Vec<RkrShard<S>>, u64) {
    let workers = shards.len();
    let rounds = match mode {
        BoundMode::Epoch(every) => epoch_rounds(&shards, every),
        _ => 0,
    };
    let min_rank = Arc::new(AtomicUsize::new(usize::MAX));
    let sync = Arc::new(EpochSync::new(workers));
    let jobs: Vec<Box<dyn FnOnce() -> RkrShard<S> + Send + 'env>> = shards
        .into_iter()
        .enumerate()
        .map(|(me, range)| {
            let q = q.to_vec();
            let qa = qa.to_vec();
            let min_rank = Arc::clone(&min_rank);
            let sync = Arc::clone(&sync);
            let job: Box<dyn FnOnce() -> RkrShard<S> + Send + 'env> =
                Box::new(move || match mode {
                    BoundMode::Shared => {
                        rkr_worker(gir, &q, &qa, k, range, Some(&min_rank), &NoopRecorder)
                    }
                    BoundMode::Local => rkr_worker(gir, &q, &qa, k, range, None, &NoopRecorder),
                    BoundMode::Epoch(every) => rkr_worker_epoch(
                        gir,
                        &q,
                        &qa,
                        k,
                        range,
                        me,
                        &sync,
                        every,
                        rounds,
                        &NoopRecorder,
                    ),
                });
            job
        })
        .collect();
    let out = match pool.run(jobs) {
        Ok(shards) => shards,
        Err(err) => panic!("parallel RKR query failed on the worker pool: {err}"),
    };
    (out, sync.syncs())
}

/// Per-worker mutable state of an RTK scan.
struct RtkState<S> {
    domin: DominBuffer,
    scratch: Scratch,
    w_scratch: Vec<u8>,
    stats: QueryStats,
    members: Vec<WeightId>,
    sink: S,
}

impl<S: ExplainSink + Default> RtkState<S> {
    fn new<G: GridTable>(gir: &Gir<'_, G>) -> Self {
        let dim = gir.points_ref().dim();
        Self {
            domin: DominBuffer::new(gir.total_points()),
            scratch: Scratch::new(dim),
            w_scratch: vec![0u8; dim],
            stats: QueryStats::default(),
            members: Vec::new(),
            sink: S::default(),
        }
    }
}

/// Scans `wids` for RTK membership (Alg. 2 body). Returns `true` when
/// the scan saturated — locally (`k` dominators) or through the
/// shared-mode broadcast `flag`.
#[allow(clippy::too_many_arguments)]
fn rtk_scan_chunk<G: GridTable + Sync, R: Recorder + Sync + ?Sized, S: ExplainSink>(
    gir: &Gir<'_, G>,
    q: &[f64],
    qa: &[u8],
    k: usize,
    wids: Range<usize>,
    flag: Option<&AtomicBool>,
    state: &mut RtkState<S>,
    rec: &R,
) -> bool {
    for wid in wids {
        if let Some(f) = flag {
            // ORDERING: relaxed — the saturation flag is an optimisation
            // hint; a stale read only means scanning a few extra weights.
            if f.load(Ordering::Relaxed) {
                // Another shard proved the global result empty.
                if state.sink.enabled() {
                    state
                        .sink
                        .bound_event(BoundSource::SharedAtomic, wid as u64, k as u64, true);
                }
                return true;
            }
        }
        if !gir.admit_weight(wid, &mut state.stats, &mut state.sink) {
            continue;
        }
        state.stats.weights_visited += 1;
        if state.sink.enabled() {
            state.sink.weight(wid as u64);
        }
        let w = gir.weight_data(wid);
        let wa = gir.w_approx_row(wid, &mut state.w_scratch);
        let fq = dot_counted(w, q, &mut state.stats);
        if let Some(ti) = gir.threshold_index() {
            // Same short-circuit as the sequential scan: membership
            // decided by one comparison against the materialized k-th
            // score; only straddling candidates fall into gin_rank.
            match ti.decide_rtk(wid, k, fq) {
                RtkThresholdOutcome::Member => {
                    state.stats.threshold_hits += 1;
                    if state.sink.enabled() {
                        state.sink.threshold_hit(wid as u64, true);
                        state.sink.result(wid as u64, RANK_CERTIFIED);
                    }
                    state.members.push(WeightId(wid));
                    continue;
                }
                RtkThresholdOutcome::NonMember => {
                    state.stats.threshold_hits += 1;
                    if state.sink.enabled() {
                        state.sink.threshold_hit(wid as u64, false);
                    }
                    continue;
                }
                RtkThresholdOutcome::Straddle => {}
            }
        }
        if let Some(rank) = gir.gin_rank(
            wa,
            w,
            qa,
            fq,
            k - 1,
            &mut state.domin,
            &mut state.scratch,
            &mut state.stats,
            rec,
            &mut state.sink,
        ) {
            debug_assert!(rank < k);
            if state.sink.enabled() {
                state.sink.result(wid as u64, rank as u64);
            }
            state.members.push(WeightId(wid));
        }
        // Alg. 2 lines 7–8, shard-locally: `Domin` membership depends
        // only on `(p, q)`, so `k` dominators empty the global result.
        if state.domin.len() >= k {
            if state.sink.enabled() {
                state.sink.bound_event(
                    BoundSource::LocalScan,
                    wid as u64,
                    state.domin.len() as u64,
                    true,
                );
            }
            if let Some(f) = flag {
                // ORDERING: relaxed — broadcast of a sticky hint; readers
                // tolerate missing it (see the load above).
                f.store(true, Ordering::Relaxed);
            }
            return true;
        }
    }
    false
}

/// Scans one contiguous shard of `W` for RTK membership. `flag` is the
/// cross-shard saturation broadcast of shared-bound mode; local mode
/// passes `None`.
fn rtk_worker<G: GridTable + Sync, R: Recorder + Sync + ?Sized, S: ExplainSink + Default>(
    gir: &Gir<'_, G>,
    q: &[f64],
    qa: &[u8],
    k: usize,
    range: Range<usize>,
    flag: Option<&AtomicBool>,
    rec: &R,
) -> RtkShard<S> {
    let _scan = span(rec, "scan");
    let mut state = RtkState::<S>::new(gir);
    let saturated = rtk_scan_chunk(gir, q, qa, k, range, flag, &mut state, rec);
    RtkShard {
        members: state.members,
        stats: state.stats,
        saturated,
        sink: state.sink,
    }
}

/// Epoch-snapshot RTK shard worker: scan `every` weights, then exchange
/// saturation through the barrier-coupled `sync`. Every worker runs the
/// same `rounds` count (idling once its shard is exhausted or
/// saturated), so the barriers always pair up; when a boundary snapshot
/// reports saturation, *all* workers observe it at the same round and
/// stop uniformly — which is what keeps counters deterministic.
#[allow(clippy::too_many_arguments)]
fn rtk_worker_epoch<G: GridTable + Sync, R: Recorder + Sync + ?Sized, S: ExplainSink + Default>(
    gir: &Gir<'_, G>,
    q: &[f64],
    qa: &[u8],
    k: usize,
    range: Range<usize>,
    me: usize,
    sync: &EpochSync,
    every: usize,
    rounds: usize,
    rec: &R,
) -> RtkShard<S> {
    let _scan = span(rec, "scan");
    // If this worker panics anywhere in the scan, poison the sync so
    // barrier peers unwind too instead of hanging (see EpochSync docs).
    let _poison_on_unwind = sync.panic_guard();
    let every = every.max(1);
    let mut state = RtkState::<S>::new(gir);
    let mut saturated = false;
    for round in 0..rounds {
        if !saturated {
            let (lo, hi) = epoch_chunk(&range, round, every);
            saturated = rtk_scan_chunk(gir, q, qa, k, lo..hi, None, &mut state, rec);
        }
        if round + 1 < rounds {
            let (_, any_saturated) = sync.exchange(me, usize::MAX, saturated);
            if any_saturated {
                // Uniform early exit: every worker sees the same
                // snapshot at the same boundary.
                if !saturated && state.sink.enabled() {
                    state.sink.bound_event(
                        BoundSource::EpochExchange,
                        round as u64,
                        state.domin.len() as u64,
                        true,
                    );
                }
                saturated = true;
                break;
            }
        }
    }
    RtkShard {
        members: state.members,
        stats: state.stats,
        saturated,
        sink: state.sink,
    }
}

/// Per-worker mutable state of an RKR scan.
struct RkrState<S> {
    domin: DominBuffer,
    scratch: Scratch,
    w_scratch: Vec<u8>,
    stats: QueryStats,
    heap: KBestHeap,
    sink: S,
}

impl<S: ExplainSink + Default> RkrState<S> {
    fn new<G: GridTable>(gir: &Gir<'_, G>, k: usize) -> Self {
        let dim = gir.points_ref().dim();
        Self {
            domin: DominBuffer::new(gir.total_points()),
            scratch: Scratch::new(dim),
            w_scratch: vec![0u8; dim],
            stats: QueryStats::default(),
            heap: KBestHeap::new(k),
            sink: S::default(),
        }
    }
}

/// Scans `wids` for RKR candidates (Alg. 3 body). `shared` is the live
/// atomic bound of shared mode; `frozen_bound` is the epoch snapshot
/// (use `usize::MAX` when absent). Both only ever *tighten* the local
/// heap threshold, which alone is already sound.
#[allow(clippy::too_many_arguments)]
fn rkr_scan_chunk<G: GridTable + Sync, R: Recorder + Sync + ?Sized, S: ExplainSink>(
    gir: &Gir<'_, G>,
    q: &[f64],
    qa: &[u8],
    wids: Range<usize>,
    shared: Option<&AtomicUsize>,
    frozen_bound: usize,
    state: &mut RkrState<S>,
    rec: &R,
) {
    for wid in wids {
        if !gir.admit_weight(wid, &mut state.stats, &mut state.sink) {
            continue;
        }
        state.stats.weights_visited += 1;
        if state.sink.enabled() {
            state.sink.weight(wid as u64);
        }
        let w = gir.weight_data(wid);
        let wa = gir.w_approx_row(wid, &mut state.w_scratch);
        let fq = dot_counted(w, q, &mut state.stats);
        // The local heap threshold alone is already sound (a shard's
        // k-best threshold is never below the global k-th rank); the
        // shared/frozen bound only tightens it further.
        let mut bound = state.heap.threshold().min(frozen_bound);
        if let Some(m) = shared {
            // ORDERING: relaxed — the shared bound only tightens pruning;
            // a stale value is still a sound (looser) bound.
            let published = m.load(Ordering::Relaxed);
            if published < bound {
                if state.sink.enabled() {
                    state.sink.bound_event(
                        BoundSource::SharedAtomic,
                        wid as u64,
                        published as u64,
                        false,
                    );
                }
                bound = published;
            }
        }
        if let Some(ti) = gir.threshold_index() {
            // Same certification as the sequential scan, against the
            // exact bound this shard would have scanned with: the heap
            // never sees the weight either way.
            if ti.certifies_rank_above(wid, bound, fq) {
                state.stats.threshold_hits += 1;
                if state.sink.enabled() {
                    state.sink.threshold_hit(wid as u64, false);
                }
                continue;
            }
        }
        if let Some(rank) = gir.gin_rank(
            wa,
            w,
            qa,
            fq,
            bound,
            &mut state.domin,
            &mut state.scratch,
            &mut state.stats,
            rec,
            &mut state.sink,
        ) {
            timed_leaf(rec, "heap", || state.heap.offer(rank, WeightId(wid)));
            if state.sink.enabled() {
                // Local `minRank` tightening (Alg. 3), same event the
                // sequential engine records.
                let after = state.heap.threshold();
                if after < bound {
                    state
                        .sink
                        .bound_event(BoundSource::LocalScan, wid as u64, after as u64, false);
                }
            }
            if let Some(m) = shared {
                if state.heap.is_full() {
                    // ORDERING: relaxed — monotone min; any interleaving
                    // leaves a valid bound.
                    m.fetch_min(state.heap.threshold(), Ordering::Relaxed);
                }
            }
        }
    }
}

/// Scans one contiguous shard of `W` for RKR candidates. `shared` is
/// the cross-shard `minRank` bound of shared-bound mode; local mode
/// passes `None`.
fn rkr_worker<G: GridTable + Sync, R: Recorder + Sync + ?Sized, S: ExplainSink + Default>(
    gir: &Gir<'_, G>,
    q: &[f64],
    qa: &[u8],
    k: usize,
    range: Range<usize>,
    shared: Option<&AtomicUsize>,
    rec: &R,
) -> (KBestHeap, QueryStats, S) {
    let _scan = span(rec, "scan");
    let mut state = RkrState::<S>::new(gir, k);
    rkr_scan_chunk(gir, q, qa, range, shared, usize::MAX, &mut state, rec);
    (state.heap, state.stats, state.sink)
}

/// Epoch-snapshot RKR shard worker: scan `every` weights under the
/// frozen snapshot of the merged cross-shard bound, publish the local
/// heap threshold, rendezvous, and adopt the refreshed snapshot. The
/// merged minimum over all published local thresholds is a sound global
/// bound (every local threshold is ≥ the global k-th rank), and because
/// the exchange happens at data-determined boundaries the bound in
/// effect at every single weight is reproducible.
#[allow(clippy::too_many_arguments)]
fn rkr_worker_epoch<G: GridTable + Sync, R: Recorder + Sync + ?Sized, S: ExplainSink + Default>(
    gir: &Gir<'_, G>,
    q: &[f64],
    qa: &[u8],
    k: usize,
    range: Range<usize>,
    me: usize,
    sync: &EpochSync,
    every: usize,
    rounds: usize,
    rec: &R,
) -> (KBestHeap, QueryStats, S) {
    let _scan = span(rec, "scan");
    // Unwind-to-poison coupling, same as the RTK epoch worker.
    let _poison_on_unwind = sync.panic_guard();
    let every = every.max(1);
    let mut state = RkrState::<S>::new(gir, k);
    let mut frozen_bound = usize::MAX;
    for round in 0..rounds {
        let (lo, hi) = epoch_chunk(&range, round, every);
        rkr_scan_chunk(gir, q, qa, lo..hi, None, frozen_bound, &mut state, rec);
        if round + 1 < rounds {
            let (min_bound, _) = sync.exchange(me, state.heap.threshold(), false);
            if state.sink.enabled() && min_bound < frozen_bound {
                // The epoch snapshot tightened: deterministic, recorded
                // against the round number rather than a single weight.
                state.sink.bound_event(
                    BoundSource::EpochExchange,
                    round as u64,
                    min_bound as u64,
                    false,
                );
            }
            frozen_bound = min_bound;
        }
    }
    (state.heap, state.stats, state.sink)
}

impl<G: GridTable + Sync> RtkQuery for ParGir<'_, '_, G> {
    /// Same label as the wrapped engine: the parallel engine answers the
    /// same algorithm, and benchmark run keys must line up between
    /// sequential and parallel documents.
    fn name(&self) -> &'static str {
        "GIR"
    }

    fn reverse_top_k(&self, q: &[f64], k: usize, stats: &mut QueryStats) -> RtkResult {
        self.rtk_par(q, k, stats, &NoopRecorder, &mut NoopSink)
    }

    fn reverse_top_k_traced(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &dyn Recorder,
    ) -> RtkResult {
        match rec.as_sync() {
            Some(sync_rec) => self.rtk_par(q, k, stats, sync_rec, &mut NoopSink),
            None => {
                rec.add_count("par.sequential_fallback", 1);
                self.gir.rtk_impl(q, k, stats, rec, &mut NoopSink)
            }
        }
    }
}

impl<G: GridTable + Sync> RkrQuery for ParGir<'_, '_, G> {
    fn name(&self) -> &'static str {
        "GIR"
    }

    fn reverse_k_ranks(&self, q: &[f64], k: usize, stats: &mut QueryStats) -> RkrResult {
        self.rkr_par(q, k, stats, &NoopRecorder, &mut NoopSink)
    }

    fn reverse_k_ranks_traced(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &dyn Recorder,
    ) -> RkrResult {
        match rec.as_sync() {
            Some(sync_rec) => self.rkr_par(q, k, stats, sync_rec, &mut NoopSink),
            None => {
                rec.add_count("par.sequential_fallback", 1);
                self.gir.rkr_impl(q, k, stats, rec, &mut NoopSink)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gir::GirConfig;
    use crate::pool::pool_scope;
    use rrq_data::synthetic;
    use rrq_obs::{MetricsRecorder, SharedRecorder};
    use rrq_types::{PointId, PointSet, WeightSet};

    fn workload(dim: usize, np: usize, nw: usize, seed: u64) -> (PointSet, WeightSet) {
        (
            synthetic::uniform_points(dim, np, 10_000.0, seed).unwrap(),
            synthetic::uniform_weights(dim, nw, seed + 1).unwrap(),
        )
    }

    fn gir_configs() -> Vec<GirConfig> {
        vec![
            GirConfig::default(),
            GirConfig {
                partitions: 4,
                ..Default::default()
            },
            GirConfig {
                use_domin: false,
                ..Default::default()
            },
            GirConfig {
                packed: true,
                ..Default::default()
            },
        ]
    }

    fn par_modes() -> Vec<ParConfig> {
        vec![
            ParConfig::with_threads(2),
            ParConfig::with_threads(4),
            ParConfig::deterministic(3),
            ParConfig::deterministic(4),
            ParConfig::epoch(3, 1),
            ParConfig::epoch(4, 16),
            ParConfig::epoch(2, usize::MAX), // one round: equals Local
            ParConfig::with_threads(1),      // sequential delegation
        ]
    }

    #[test]
    fn parallel_results_are_byte_identical_to_sequential() {
        let (p, w) = workload(4, 300, 81, 31);
        for config in gir_configs() {
            let gir = Gir::new(&p, &w, config);
            for par_cfg in par_modes() {
                let par = gir.parallel(par_cfg);
                for qid in [0usize, 150, 299] {
                    let q = p.point(PointId(qid)).to_vec();
                    for k in [1usize, 5, 25] {
                        let mut sp = QueryStats::default();
                        let mut ss = QueryStats::default();
                        assert_eq!(
                            par.reverse_top_k(&q, k, &mut sp),
                            gir.reverse_top_k(&q, k, &mut ss),
                            "rtk {config:?} {par_cfg:?} q={qid} k={k}"
                        );
                        let mut sp = QueryStats::default();
                        let mut ss = QueryStats::default();
                        assert_eq!(
                            par.reverse_k_ranks(&q, k, &mut sp),
                            gir.reverse_k_ranks(&q, k, &mut ss),
                            "rkr {config:?} {par_cfg:?} q={qid} k={k}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_mode_counters_are_reproducible() {
        let (p, w) = workload(5, 400, 120, 32);
        let gir = Gir::with_defaults(&p, &w);
        for par_cfg in [ParConfig::deterministic(4), ParConfig::epoch(4, 16)] {
            let par = gir.parallel(par_cfg);
            let q = p.point(PointId(123)).to_vec();
            for _ in 0..3 {
                let mut first = QueryStats::default();
                let r1 = par.reverse_k_ranks(&q, 10, &mut first);
                let mut second = QueryStats::default();
                let r2 = par.reverse_k_ranks(&q, 10, &mut second);
                assert_eq!(r1, r2);
                assert_eq!(first, second, "{par_cfg:?} counters must not drift");
                let mut first = QueryStats::default();
                let r1 = par.reverse_top_k(&q, 10, &mut first);
                let mut second = QueryStats::default();
                let r2 = par.reverse_top_k(&q, 10, &mut second);
                assert_eq!(r1, r2);
                assert_eq!(first, second, "{par_cfg:?} counters must not drift");
            }
        }
    }

    #[test]
    fn epoch_mode_prunes_at_least_as_well_as_local_mode() {
        // The whole point of epoch snapshots: cross-shard bounds come
        // back (fewer points visited than local mode) without giving up
        // reproducibility. A tiny epoch at k=1 on a large P makes the
        // effect visible deterministically.
        let (p, w) = workload(4, 2_000, 64, 38);
        let gir = Gir::with_defaults(&p, &w);
        let q = p.point(PointId(55)).to_vec();
        let mut local = QueryStats::default();
        let mut epoch = QueryStats::default();
        let r_local = gir
            .parallel(ParConfig::deterministic(4))
            .reverse_k_ranks(&q, 1, &mut local);
        let r_epoch = gir
            .parallel(ParConfig::epoch(4, 1))
            .reverse_k_ranks(&q, 1, &mut epoch);
        assert_eq!(r_local, r_epoch);
        assert!(
            epoch.points_visited <= local.points_visited,
            "epoch bounds must never scan more than local-only bounds \
             (epoch {} vs local {})",
            epoch.points_visited,
            local.points_visited
        );
    }

    #[test]
    fn sequential_delegation_reports_sequential_counters() {
        // threads <= 1 runs the sequential engine outright — even the
        // counters match, shard-reset artefacts included. Ditto 0.
        let (p, w) = workload(3, 200, 40, 33);
        let gir = Gir::with_defaults(&p, &w);
        let q = p.point(PointId(7)).to_vec();
        for threads in [0usize, 1] {
            let par = gir.parallel(ParConfig::with_threads(threads));
            let mut sp = QueryStats::default();
            let mut ss = QueryStats::default();
            assert_eq!(
                par.reverse_k_ranks(&q, 5, &mut sp),
                gir.reverse_k_ranks(&q, 5, &mut ss)
            );
            assert_eq!(sp, ss);
        }
    }

    #[test]
    fn more_workers_than_weights() {
        let (p, w) = workload(3, 150, 5, 34);
        let gir = Gir::with_defaults(&p, &w);
        let par = gir.parallel(ParConfig::with_threads(16));
        let q = p.point(PointId(75)).to_vec();
        let mut sp = QueryStats::default();
        let mut ss = QueryStats::default();
        assert_eq!(
            par.reverse_top_k(&q, 3, &mut sp),
            gir.reverse_top_k(&q, 3, &mut ss)
        );
        let mut sp = QueryStats::default();
        let mut ss = QueryStats::default();
        assert_eq!(
            par.reverse_k_ranks(&q, 3, &mut sp),
            gir.reverse_k_ranks(&q, 3, &mut ss)
        );
    }

    #[test]
    fn saturated_and_edge_queries_match_sequential() {
        let (p, w) = workload(3, 500, 50, 35);
        let gir = Gir::with_defaults(&p, &w);
        for par_cfg in [
            ParConfig::with_threads(4),
            ParConfig::deterministic(4),
            ParConfig::epoch(4, 4),
        ] {
            let par = gir.parallel(par_cfg);
            // Dominated query: every shard saturates its Domin buffer.
            let dominated = vec![9_999.0; 3];
            let mut stats = QueryStats::default();
            assert!(par.reverse_top_k(&dominated, 10, &mut stats).is_empty());
            // k = 0.
            let q = p.point(PointId(0)).to_vec();
            let mut stats = QueryStats::default();
            assert!(par.reverse_top_k(&q, 0, &mut stats).is_empty());
            let mut stats = QueryStats::default();
            assert!(par.reverse_k_ranks(&q, 0, &mut stats).is_empty());
            // k exceeding |W|: all weights come back, exact ranks.
            let mut sp = QueryStats::default();
            let mut ss = QueryStats::default();
            let got = par.reverse_k_ranks(&q, 100, &mut sp);
            assert_eq!(got.len(), 50);
            assert_eq!(got, gir.reverse_k_ranks(&q, 100, &mut ss));
            // External query point.
            let external = vec![1_234.5, 42.0, 5_000.0];
            let mut sp = QueryStats::default();
            let mut ss = QueryStats::default();
            assert_eq!(
                par.reverse_top_k(&external, 15, &mut sp),
                gir.reverse_top_k(&external, 15, &mut ss)
            );
        }
    }

    #[test]
    fn pooled_engine_matches_scoped_engine_exactly() {
        let (p, w) = workload(4, 300, 90, 39);
        let gir = Gir::with_defaults(&p, &w);
        let q = p.point(PointId(42)).to_vec();
        for par_cfg in [
            ParConfig::with_threads(3),
            ParConfig::deterministic(3),
            ParConfig::epoch(3, 8),
        ] {
            pool_scope(3, |pool| {
                let scoped = gir.parallel(par_cfg);
                let pooled = gir.parallel(par_cfg).with_pool(pool);
                for k in [1usize, 7, 30] {
                    let mut sp = QueryStats::default();
                    let mut ss = QueryStats::default();
                    assert_eq!(
                        pooled.reverse_top_k(&q, k, &mut sp),
                        scoped.reverse_top_k(&q, k, &mut ss),
                        "rtk {par_cfg:?} k={k}"
                    );
                    if par_cfg.mode != BoundMode::Shared {
                        assert_eq!(sp, ss, "rtk counters {par_cfg:?} k={k}");
                    }
                    let mut sp = QueryStats::default();
                    let mut ss = QueryStats::default();
                    assert_eq!(
                        pooled.reverse_k_ranks(&q, k, &mut sp),
                        scoped.reverse_k_ranks(&q, k, &mut ss),
                        "rkr {par_cfg:?} k={k}"
                    );
                    if par_cfg.mode != BoundMode::Shared {
                        assert_eq!(sp, ss, "rkr counters {par_cfg:?} k={k}");
                    }
                }
            });
        }
    }

    #[test]
    fn pool_reuse_and_epoch_syncs_are_booked_on_traced_runs() {
        let (p, w) = workload(4, 250, 64, 40);
        let gir = Gir::with_defaults(&p, &w);
        let q = p.point(PointId(10)).to_vec();
        pool_scope(2, |pool| {
            let par = gir.parallel(ParConfig::epoch(2, 8)).with_pool(pool);
            let rec = SharedRecorder::new();
            for _ in 0..3 {
                let mut stats = QueryStats::default();
                let _ = par.reverse_k_ranks_traced(&q, 5, &mut stats, &rec);
            }
            // First query builds no reuse; the second and third do.
            assert_eq!(rec.counter("par.pool_reuse"), Some(2));
            // 64 weights over 2 workers at epoch 8 → 4 rounds → 3
            // boundaries × 2 workers × 3 queries = 18 exchanges.
            assert_eq!(rec.counter("par.epoch_syncs"), Some(18));
            assert_eq!(rec.counter("par.sequential_fallback"), None);
        });
    }

    #[test]
    fn undersized_pool_falls_back_sequentially_and_counts_it() {
        let (p, w) = workload(3, 200, 40, 41);
        let gir = Gir::with_defaults(&p, &w);
        let q = p.point(PointId(3)).to_vec();
        for workers in [0usize, 1] {
            pool_scope(workers, |pool| {
                let par = gir.parallel(ParConfig::with_threads(4)).with_pool(pool);
                let rec = SharedRecorder::new();
                let mut sp = QueryStats::default();
                let mut ss = QueryStats::default();
                let got = par.reverse_k_ranks_traced(&q, 5, &mut sp, &rec);
                assert_eq!(got, gir.reverse_k_ranks(&q, 5, &mut ss));
                assert_eq!(sp, ss, "fallback runs the sequential engine");
                assert_eq!(rec.counter("par.sequential_fallback"), Some(1));
                assert_eq!(pool.stats().queries, 0, "no jobs reach the pool");
            });
        }
    }

    #[test]
    fn traced_runs_parallel_under_shared_recorder() {
        let (p, w) = workload(4, 250, 60, 36);
        let gir = Gir::with_defaults(&p, &w);
        let par = gir.parallel(ParConfig::deterministic(3));
        let q = p.point(PointId(40)).to_vec();
        let rec = SharedRecorder::new();
        let mut st = QueryStats::default();
        let mut su = QueryStats::default();
        let traced = par.reverse_k_ranks_traced(&q, 8, &mut st, &rec);
        assert_eq!(traced, par.reverse_k_ranks(&q, 8, &mut su));
        assert_eq!(st, su, "tracing must not change deterministic counters");
        assert_eq!(rec.counter("par.sequential_fallback"), None);
        let tree = rec.span_tree();
        assert!(
            !tree.roots.is_empty(),
            "worker spans must land in the shared recorder"
        );
    }

    #[test]
    fn traced_falls_back_sequentially_for_non_sync_recorder() {
        let (p, w) = workload(4, 250, 60, 37);
        let gir = Gir::with_defaults(&p, &w);
        let par = gir.parallel(ParConfig::with_threads(4));
        let q = p.point(PointId(41)).to_vec();
        let rec = MetricsRecorder::new();
        let mut st = QueryStats::default();
        let mut ss = QueryStats::default();
        let traced = par.reverse_top_k_traced(&q, 8, &mut st, &rec);
        assert_eq!(traced, gir.reverse_top_k(&q, 8, &mut ss));
        assert_eq!(st, ss, "fallback runs the sequential engine");
        assert_eq!(rec.counter("par.sequential_fallback"), Some(1));
    }

    #[test]
    fn shard_ranges_cover_weights_exactly() {
        for nw in [1usize, 2, 5, 64, 81, 100] {
            for threads in [1usize, 2, 3, 4, 7, 16] {
                let shards = ParGir::<Grid>::shards(nw, threads);
                assert_eq!(shards.len(), threads);
                let mut next = 0usize;
                for r in &shards {
                    assert_eq!(r.start, next.min(nw));
                    assert!(r.end <= nw);
                    next = r.end.max(next);
                }
                assert_eq!(shards.last().unwrap().end, nw);
                let total: usize = shards.iter().map(|r| r.len()).sum();
                assert_eq!(total, nw, "nw={nw} threads={threads}");
            }
        }
    }

    #[test]
    fn epoch_rounds_cover_the_longest_shard() {
        let shards = ParGir::<Grid>::shards(100, 3); // chunks of 34
        assert_eq!(epoch_rounds(&shards, 10), 4);
        assert_eq!(epoch_rounds(&shards, 34), 1);
        assert_eq!(epoch_rounds(&shards, 1), 34);
        assert_eq!(epoch_rounds(&shards, usize::MAX), 1);
        assert_eq!(epoch_rounds(&[], 8), 1);
    }

    #[test]
    fn epoch_peer_panic_poisons_the_barrier_instead_of_hanging() {
        use crate::pool::PoolError;
        // A barrier-coupled job set where one member panics before its
        // first exchange: without unwind-to-poison the surviving peer
        // would wait forever inside `EpochSync::exchange` and
        // `WorkerPool::run` would never return. With it, the peer
        // panics out of the rendezvous and the pool reports the query
        // as JobPanicked — and stays usable.
        let sync = EpochSync::new(2);
        pool_scope(2, |pool| {
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
                Box::new(|| {
                    let _guard = sync.panic_guard();
                    panic!("epoch shard exploded");
                }),
                Box::new(|| {
                    let _guard = sync.panic_guard();
                    sync.exchange(1, 7, false).0
                }),
            ];
            match pool.run(jobs) {
                Err(PoolError::JobPanicked(_)) => {}
                other => panic!("expected JobPanicked, got {other:?}"),
            }
            // The pool survived the coupled failure.
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![Box::new(|| 1), Box::new(|| 2)];
            assert_eq!(pool.run(jobs).unwrap(), vec![1, 2]);
        });
    }

    #[test]
    fn poisoned_barrier_rejects_late_waiters() {
        // A worker that has not yet reached the rendezvous when the
        // poison lands must also panic on its next wait, not enqueue
        // itself on a barrier that can never complete again.
        let barrier = PoisonBarrier::new(2);
        barrier.poison();
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| barrier.wait())).is_err());
    }
}
