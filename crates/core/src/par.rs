//! Deterministic parallel query engine for GIR.
//!
//! [`ParGir`] answers a *single* reverse top-k / reverse k-ranks query
//! with several `std::thread::scope` workers, each scanning a contiguous
//! shard of the weight set `W` with its own [`DominBuffer`], [`Scratch`]
//! and [`QueryStats`]. Per-weight work is embarrassingly parallel — a
//! weight's rank count depends only on `(w, q, P)` — so sharding `W` and
//! merging shard outputs canonically reproduces the sequential answer
//! **byte for byte**:
//!
//! * RTK: membership of each weight is independent; the merged,
//!   canonically sorted id list equals the sequential one. The Alg. 2
//!   "`k` dominators ⇒ empty" exit is safe per worker, because `Domin`
//!   membership is a property of `(p, q)` alone: `k` dominators force
//!   every weight's rank to at least `k`, so the *global* result is
//!   empty whenever any worker saturates.
//! * RKR: each worker keeps a local [`KBestHeap`] over its shard; a
//!   k-best heap retains exactly the `k` lexicographically smallest
//!   `(rank, weight_id)` pairs offered, so merging shard heaps
//!   ([`KBestHeap::merge`]) yields the exact k-best of the union. A
//!   worker's scan bound (its local heap threshold) is always at least
//!   the global k-th rank, hence never skips a global top-k entry.
//!
//! Two execution modes trade bound sharpness for reproducibility:
//!
//! * **Shared-bound** (default): RKR workers publish their full-heap
//!   threshold into one shared atomic `minRank`
//!   (`AtomicUsize::fetch_min`) and read it before each scan, tightening
//!   early termination across shards; RTK workers broadcast dominator
//!   saturation through an `AtomicBool`. Results stay exact, but
//!   *counters* depend on cross-thread timing.
//! * **Deterministic** ([`ParConfig::deterministic`]): workers use only
//!   locally derived bounds. At a fixed thread count every worker's
//!   work — and therefore the merged [`QueryStats`] — is bit-identical
//!   across runs, so `rrq-benchdiff` can gate parallel benchmark
//!   documents at its default exact-counter thresholds.
//!
//! Tracing: the untraced entry points run workers under the (trivially
//! `Sync`) [`NoopRecorder`]. The traced ones ask the recorder for a
//! thread-safe view via [`Recorder::as_sync`]; recorders that cannot
//! cross threads (e.g. the `RefCell`-based `MetricsRecorder`) make the
//! engine fall back to the sequential path — still traced, still exact —
//! after booking one `par.sequential_fallback` count.

use crate::approx::ApproxVectors;
use crate::gir::{DominBuffer, Gir, Scratch};
use crate::grid::{Grid, GridTable};
use rrq_obs::{span, timed_leaf, NoopRecorder, Recorder};
use rrq_types::{
    dot_counted, KBestHeap, QueryStats, RkrQuery, RkrResult, RtkQuery, RtkResult, WeightId,
};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::thread;

/// Configuration of the parallel query engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    /// Worker threads per query. `0` and `1` both mean "run the
    /// sequential engine on the calling thread".
    pub threads: usize,
    /// Use only locally derived scan bounds, making merged counters
    /// bit-reproducible across same-seed runs at a fixed thread count.
    /// Results are byte-identical to sequential either way.
    pub deterministic: bool,
}

impl Default for ParConfig {
    /// All available cores, shared-bound mode.
    fn default() -> Self {
        Self {
            threads: thread::available_parallelism().map_or(1, |n| n.get()),
            deterministic: false,
        }
    }
}

impl ParConfig {
    /// Shared-bound mode with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            deterministic: false,
        }
    }

    /// Deterministic mode with an explicit thread count.
    pub fn deterministic(threads: usize) -> Self {
        Self {
            threads,
            deterministic: true,
        }
    }
}

/// A [`Gir`] instance wrapped with intra-query parallel execution.
///
/// Construct with [`Gir::parallel`] or [`ParGir::new`]; answers the same
/// [`RtkQuery`] / [`RkrQuery`] traits with byte-identical results.
///
/// ```
/// use rrq_core::{Gir, ParConfig};
/// use rrq_types::{PointSet, WeightSet, QueryStats, RtkQuery};
///
/// let products = PointSet::from_flat(2, 10.0, &[1.0, 9.0, 8.0, 2.0])?;
/// let users = WeightSet::from_flat(2, &[0.9, 0.1, 0.1, 0.9])?;
/// let gir = Gir::with_defaults(&products, &users);
/// let par = gir.parallel(ParConfig::deterministic(2));
///
/// let mut s1 = QueryStats::default();
/// let mut s2 = QueryStats::default();
/// let q = [1.0, 9.0];
/// assert_eq!(
///     par.reverse_top_k(&q, 1, &mut s1),
///     gir.reverse_top_k(&q, 1, &mut s2),
/// );
/// # Ok::<(), rrq_types::RrqError>(())
/// ```
pub struct ParGir<'a, G: GridTable = Grid> {
    gir: &'a Gir<'a, G>,
    config: ParConfig,
}

impl<'a, G: GridTable> Gir<'a, G> {
    /// Wraps this instance with the parallel query engine.
    pub fn parallel(&'a self, config: ParConfig) -> ParGir<'a, G> {
        ParGir { gir: self, config }
    }
}

impl<'a, G: GridTable> ParGir<'a, G> {
    /// See [`Gir::parallel`].
    pub fn new(gir: &'a Gir<'a, G>, config: ParConfig) -> Self {
        Self { gir, config }
    }

    /// The parallel configuration in effect.
    pub fn config(&self) -> ParConfig {
        self.config
    }

    /// The wrapped sequential instance.
    pub fn inner(&self) -> &'a Gir<'a, G> {
        self.gir
    }

    /// Effective worker count for a weight set of `nw` entries: never
    /// more workers than weights, never fewer than one.
    fn effective_threads(&self, nw: usize) -> usize {
        self.config.threads.max(1).min(nw.max(1))
    }

    /// Contiguous shard ranges covering `0..nw` — fixed by `(nw,
    /// threads)` alone, which is what makes deterministic-mode counters
    /// reproducible.
    fn shards(nw: usize, threads: usize) -> Vec<Range<usize>> {
        let chunk = nw.div_ceil(threads);
        (0..threads)
            .map(|t| (t * chunk).min(nw)..((t + 1) * chunk).min(nw))
            .collect()
    }
}

/// One worker's RTK shard outcome.
struct RtkShard {
    members: Vec<WeightId>,
    stats: QueryStats,
    /// Worker accumulated `k` dominators: the global result is empty.
    saturated: bool,
}

impl<G: GridTable + Sync> ParGir<'_, G> {
    /// Parallel GIRTop-k over a `Sync` recorder (monomorphised to
    /// [`NoopRecorder`] by the untraced entry point).
    fn rtk_par<R: Recorder + Sync + ?Sized>(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &R,
    ) -> RtkResult {
        let gir = self.gir;
        let nw = gir.weights_ref().len();
        let threads = self.effective_threads(nw);
        if threads <= 1 {
            return gir.rtk_impl(q, k, stats, rec);
        }
        assert_eq!(q.len(), gir.points_ref().dim(), "query dimensionality");
        if k == 0 {
            return RtkResult::default();
        }
        let _query = span(rec, "rtk");
        let qa = timed_leaf(rec, "quantize", || {
            ApproxVectors::quantize_point(gir.grid(), q)
        });
        let saturated = AtomicBool::new(false);
        let flag = (!self.config.deterministic).then_some(&saturated);
        let shard_results: Vec<RtkShard> = thread::scope(|s| {
            let handles: Vec<_> = Self::shards(nw, threads)
                .into_iter()
                .map(|range| {
                    let qa = &qa;
                    s.spawn(move || rtk_worker(gir, q, qa, k, range, flag, rec))
                })
                .collect();
            handles
                .into_iter()
                // rrq-lint: allow(no-unwrap-in-lib) -- a panicked worker already poisoned the query; re-raise it
                .map(|h| h.join().expect("parallel RTK worker panicked"))
                .collect()
        });
        // Merge in worker-index order: counters reproducible, result
        // canonical.
        let mut members = Vec::new();
        let mut empty = false;
        for shard in &shard_results {
            stats.merge(&shard.stats);
            empty |= shard.saturated;
            members.extend_from_slice(&shard.members);
        }
        if empty {
            return RtkResult::default();
        }
        RtkResult::from_weights(members)
    }

    /// Parallel GIRk-Rank over a `Sync` recorder.
    fn rkr_par<R: Recorder + Sync + ?Sized>(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &R,
    ) -> RkrResult {
        let gir = self.gir;
        let nw = gir.weights_ref().len();
        let threads = self.effective_threads(nw);
        if threads <= 1 {
            return gir.rkr_impl(q, k, stats, rec);
        }
        assert_eq!(q.len(), gir.points_ref().dim(), "query dimensionality");
        let _query = span(rec, "rkr");
        let qa = timed_leaf(rec, "quantize", || {
            ApproxVectors::quantize_point(gir.grid(), q)
        });
        let min_rank = AtomicUsize::new(usize::MAX);
        let shared = (!self.config.deterministic).then_some(&min_rank);
        let shard_results: Vec<(KBestHeap, QueryStats)> = thread::scope(|s| {
            let handles: Vec<_> = Self::shards(nw, threads)
                .into_iter()
                .map(|range| {
                    let qa = &qa;
                    s.spawn(move || rkr_worker(gir, q, qa, k, range, shared, rec))
                })
                .collect();
            handles
                .into_iter()
                // rrq-lint: allow(no-unwrap-in-lib) -- a panicked worker already poisoned the query; re-raise it
                .map(|h| h.join().expect("parallel RKR worker panicked"))
                .collect()
        });
        let mut heap = KBestHeap::new(k);
        for (shard_heap, shard_stats) in shard_results {
            stats.merge(&shard_stats);
            heap.merge(shard_heap);
        }
        heap.into_result()
    }
}

/// Scans one contiguous shard of `W` for RTK membership (Alg. 2 body
/// over the shard). `flag` is the cross-shard saturation broadcast of
/// shared-bound mode; deterministic mode passes `None`.
fn rtk_worker<G: GridTable + Sync, R: Recorder + Sync + ?Sized>(
    gir: &Gir<'_, G>,
    q: &[f64],
    qa: &[u8],
    k: usize,
    range: Range<usize>,
    flag: Option<&AtomicBool>,
    rec: &R,
) -> RtkShard {
    let _scan = span(rec, "scan");
    let dim = gir.points_ref().dim();
    let mut domin = DominBuffer::new(gir.points_ref().len());
    let mut scratch = Scratch::new(dim);
    let mut w_scratch = vec![0u8; dim];
    let mut stats = QueryStats::default();
    let mut members = Vec::new();
    for wid in range {
        if let Some(f) = flag {
            // ORDERING: relaxed — the saturation flag is an optimisation
            // hint; a stale read only means scanning a few extra weights.
            if f.load(Ordering::Relaxed) {
                // Another shard proved the global result empty.
                return RtkShard {
                    members,
                    stats,
                    saturated: true,
                };
            }
        }
        stats.weights_visited += 1;
        let w = gir.weights_ref().weight(WeightId(wid));
        let wa = gir.w_approx_row(wid, &mut w_scratch);
        let fq = dot_counted(w, q, &mut stats);
        if let Some(rank) = gir.gin_rank(
            wa,
            w,
            qa,
            fq,
            k - 1,
            &mut domin,
            &mut scratch,
            &mut stats,
            rec,
        ) {
            debug_assert!(rank < k);
            members.push(WeightId(wid));
        }
        // Alg. 2 lines 7–8, shard-locally: `Domin` membership depends
        // only on `(p, q)`, so `k` dominators empty the global result.
        if domin.len() >= k {
            if let Some(f) = flag {
                // ORDERING: relaxed — broadcast of a sticky hint; readers
                // tolerate missing it (see the load above).
                f.store(true, Ordering::Relaxed);
            }
            return RtkShard {
                members,
                stats,
                saturated: true,
            };
        }
    }
    RtkShard {
        members,
        stats,
        saturated: false,
    }
}

/// Scans one contiguous shard of `W` for RKR candidates (Alg. 3 body
/// over the shard). `shared` is the cross-shard `minRank` bound of
/// shared-bound mode; deterministic mode passes `None`.
fn rkr_worker<G: GridTable + Sync, R: Recorder + Sync + ?Sized>(
    gir: &Gir<'_, G>,
    q: &[f64],
    qa: &[u8],
    k: usize,
    range: Range<usize>,
    shared: Option<&AtomicUsize>,
    rec: &R,
) -> (KBestHeap, QueryStats) {
    let _scan = span(rec, "scan");
    let dim = gir.points_ref().dim();
    let mut domin = DominBuffer::new(gir.points_ref().len());
    let mut scratch = Scratch::new(dim);
    let mut w_scratch = vec![0u8; dim];
    let mut stats = QueryStats::default();
    let mut heap = KBestHeap::new(k);
    for wid in range {
        stats.weights_visited += 1;
        let w = gir.weights_ref().weight(WeightId(wid));
        let wa = gir.w_approx_row(wid, &mut w_scratch);
        let fq = dot_counted(w, q, &mut stats);
        // The local heap threshold alone is already sound (a shard's
        // k-best threshold is never below the global k-th rank); the
        // shared bound only tightens it further.
        let mut bound = heap.threshold();
        if let Some(m) = shared {
            // ORDERING: relaxed — the shared bound only tightens pruning;
            // a stale value is still a sound (looser) bound.
            bound = bound.min(m.load(Ordering::Relaxed));
        }
        if let Some(rank) = gir.gin_rank(
            wa,
            w,
            qa,
            fq,
            bound,
            &mut domin,
            &mut scratch,
            &mut stats,
            rec,
        ) {
            timed_leaf(rec, "heap", || heap.offer(rank, WeightId(wid)));
            if let Some(m) = shared {
                if heap.is_full() {
                    // ORDERING: relaxed — monotone min; any interleaving
                    // leaves a valid bound.
                    m.fetch_min(heap.threshold(), Ordering::Relaxed);
                }
            }
        }
    }
    (heap, stats)
}

impl<G: GridTable + Sync> RtkQuery for ParGir<'_, G> {
    /// Same label as the wrapped engine: the parallel engine answers the
    /// same algorithm, and benchmark run keys must line up between
    /// sequential and parallel documents.
    fn name(&self) -> &'static str {
        "GIR"
    }

    fn reverse_top_k(&self, q: &[f64], k: usize, stats: &mut QueryStats) -> RtkResult {
        self.rtk_par(q, k, stats, &NoopRecorder)
    }

    fn reverse_top_k_traced(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &dyn Recorder,
    ) -> RtkResult {
        match rec.as_sync() {
            Some(sync_rec) => self.rtk_par(q, k, stats, sync_rec),
            None => {
                rec.add_count("par.sequential_fallback", 1);
                self.gir.rtk_impl(q, k, stats, rec)
            }
        }
    }
}

impl<G: GridTable + Sync> RkrQuery for ParGir<'_, G> {
    fn name(&self) -> &'static str {
        "GIR"
    }

    fn reverse_k_ranks(&self, q: &[f64], k: usize, stats: &mut QueryStats) -> RkrResult {
        self.rkr_par(q, k, stats, &NoopRecorder)
    }

    fn reverse_k_ranks_traced(
        &self,
        q: &[f64],
        k: usize,
        stats: &mut QueryStats,
        rec: &dyn Recorder,
    ) -> RkrResult {
        match rec.as_sync() {
            Some(sync_rec) => self.rkr_par(q, k, stats, sync_rec),
            None => {
                rec.add_count("par.sequential_fallback", 1);
                self.gir.rkr_impl(q, k, stats, rec)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gir::GirConfig;
    use rrq_data::synthetic;
    use rrq_obs::{MetricsRecorder, SharedRecorder};
    use rrq_types::{PointId, PointSet, WeightSet};

    fn workload(dim: usize, np: usize, nw: usize, seed: u64) -> (PointSet, WeightSet) {
        (
            synthetic::uniform_points(dim, np, 10_000.0, seed).unwrap(),
            synthetic::uniform_weights(dim, nw, seed + 1).unwrap(),
        )
    }

    fn gir_configs() -> Vec<GirConfig> {
        vec![
            GirConfig::default(),
            GirConfig {
                partitions: 4,
                ..Default::default()
            },
            GirConfig {
                use_domin: false,
                ..Default::default()
            },
            GirConfig {
                packed: true,
                ..Default::default()
            },
        ]
    }

    fn par_modes() -> Vec<ParConfig> {
        vec![
            ParConfig::with_threads(2),
            ParConfig::with_threads(4),
            ParConfig::deterministic(3),
            ParConfig::deterministic(4),
            ParConfig::with_threads(1), // sequential delegation
        ]
    }

    #[test]
    fn parallel_results_are_byte_identical_to_sequential() {
        let (p, w) = workload(4, 300, 81, 31);
        for config in gir_configs() {
            let gir = Gir::new(&p, &w, config);
            for par_cfg in par_modes() {
                let par = gir.parallel(par_cfg);
                for qid in [0usize, 150, 299] {
                    let q = p.point(PointId(qid)).to_vec();
                    for k in [1usize, 5, 25] {
                        let mut sp = QueryStats::default();
                        let mut ss = QueryStats::default();
                        assert_eq!(
                            par.reverse_top_k(&q, k, &mut sp),
                            gir.reverse_top_k(&q, k, &mut ss),
                            "rtk {config:?} {par_cfg:?} q={qid} k={k}"
                        );
                        let mut sp = QueryStats::default();
                        let mut ss = QueryStats::default();
                        assert_eq!(
                            par.reverse_k_ranks(&q, k, &mut sp),
                            gir.reverse_k_ranks(&q, k, &mut ss),
                            "rkr {config:?} {par_cfg:?} q={qid} k={k}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_mode_counters_are_reproducible() {
        let (p, w) = workload(5, 400, 120, 32);
        let gir = Gir::with_defaults(&p, &w);
        let par = gir.parallel(ParConfig::deterministic(4));
        let q = p.point(PointId(123)).to_vec();
        for _ in 0..3 {
            let mut first = QueryStats::default();
            let r1 = par.reverse_k_ranks(&q, 10, &mut first);
            let mut second = QueryStats::default();
            let r2 = par.reverse_k_ranks(&q, 10, &mut second);
            assert_eq!(r1, r2);
            assert_eq!(first, second, "deterministic counters must not drift");
            let mut first = QueryStats::default();
            let r1 = par.reverse_top_k(&q, 10, &mut first);
            let mut second = QueryStats::default();
            let r2 = par.reverse_top_k(&q, 10, &mut second);
            assert_eq!(r1, r2);
            assert_eq!(first, second, "deterministic counters must not drift");
        }
    }

    #[test]
    fn sequential_delegation_reports_sequential_counters() {
        // threads <= 1 runs the sequential engine outright — even the
        // counters match, shard-reset artefacts included. Ditto 0.
        let (p, w) = workload(3, 200, 40, 33);
        let gir = Gir::with_defaults(&p, &w);
        let q = p.point(PointId(7)).to_vec();
        for threads in [0usize, 1] {
            let par = gir.parallel(ParConfig::with_threads(threads));
            let mut sp = QueryStats::default();
            let mut ss = QueryStats::default();
            assert_eq!(
                par.reverse_k_ranks(&q, 5, &mut sp),
                gir.reverse_k_ranks(&q, 5, &mut ss)
            );
            assert_eq!(sp, ss);
        }
    }

    #[test]
    fn more_workers_than_weights() {
        let (p, w) = workload(3, 150, 5, 34);
        let gir = Gir::with_defaults(&p, &w);
        let par = gir.parallel(ParConfig::with_threads(16));
        let q = p.point(PointId(75)).to_vec();
        let mut sp = QueryStats::default();
        let mut ss = QueryStats::default();
        assert_eq!(
            par.reverse_top_k(&q, 3, &mut sp),
            gir.reverse_top_k(&q, 3, &mut ss)
        );
        let mut sp = QueryStats::default();
        let mut ss = QueryStats::default();
        assert_eq!(
            par.reverse_k_ranks(&q, 3, &mut sp),
            gir.reverse_k_ranks(&q, 3, &mut ss)
        );
    }

    #[test]
    fn saturated_and_edge_queries_match_sequential() {
        let (p, w) = workload(3, 500, 50, 35);
        let gir = Gir::with_defaults(&p, &w);
        for par_cfg in [ParConfig::with_threads(4), ParConfig::deterministic(4)] {
            let par = gir.parallel(par_cfg);
            // Dominated query: every shard saturates its Domin buffer.
            let dominated = vec![9_999.0; 3];
            let mut stats = QueryStats::default();
            assert!(par.reverse_top_k(&dominated, 10, &mut stats).is_empty());
            // k = 0.
            let q = p.point(PointId(0)).to_vec();
            let mut stats = QueryStats::default();
            assert!(par.reverse_top_k(&q, 0, &mut stats).is_empty());
            let mut stats = QueryStats::default();
            assert!(par.reverse_k_ranks(&q, 0, &mut stats).is_empty());
            // k exceeding |W|: all weights come back, exact ranks.
            let mut sp = QueryStats::default();
            let mut ss = QueryStats::default();
            let got = par.reverse_k_ranks(&q, 100, &mut sp);
            assert_eq!(got.len(), 50);
            assert_eq!(got, gir.reverse_k_ranks(&q, 100, &mut ss));
            // External query point.
            let external = vec![1_234.5, 42.0, 5_000.0];
            let mut sp = QueryStats::default();
            let mut ss = QueryStats::default();
            assert_eq!(
                par.reverse_top_k(&external, 15, &mut sp),
                gir.reverse_top_k(&external, 15, &mut ss)
            );
        }
    }

    #[test]
    fn traced_runs_parallel_under_shared_recorder() {
        let (p, w) = workload(4, 250, 60, 36);
        let gir = Gir::with_defaults(&p, &w);
        let par = gir.parallel(ParConfig::deterministic(3));
        let q = p.point(PointId(40)).to_vec();
        let rec = SharedRecorder::new();
        let mut st = QueryStats::default();
        let mut su = QueryStats::default();
        let traced = par.reverse_k_ranks_traced(&q, 8, &mut st, &rec);
        assert_eq!(traced, par.reverse_k_ranks(&q, 8, &mut su));
        assert_eq!(st, su, "tracing must not change deterministic counters");
        assert_eq!(rec.counter("par.sequential_fallback"), None);
        let tree = rec.span_tree();
        assert!(
            !tree.roots.is_empty(),
            "worker spans must land in the shared recorder"
        );
    }

    #[test]
    fn traced_falls_back_sequentially_for_non_sync_recorder() {
        let (p, w) = workload(4, 250, 60, 37);
        let gir = Gir::with_defaults(&p, &w);
        let par = gir.parallel(ParConfig::with_threads(4));
        let q = p.point(PointId(41)).to_vec();
        let rec = MetricsRecorder::new();
        let mut st = QueryStats::default();
        let mut ss = QueryStats::default();
        let traced = par.reverse_top_k_traced(&q, 8, &mut st, &rec);
        assert_eq!(traced, gir.reverse_top_k(&q, 8, &mut ss));
        assert_eq!(st, ss, "fallback runs the sequential engine");
        assert_eq!(rec.counter("par.sequential_fallback"), Some(1));
    }

    #[test]
    fn shard_ranges_cover_weights_exactly() {
        for nw in [1usize, 2, 5, 64, 81, 100] {
            for threads in [1usize, 2, 3, 4, 7, 16] {
                let shards = ParGir::<Grid>::shards(nw, threads);
                assert_eq!(shards.len(), threads);
                let mut next = 0usize;
                for r in &shards {
                    assert_eq!(r.start, next.min(nw));
                    assert!(r.end <= nw);
                    next = r.end.max(next);
                }
                assert_eq!(shards.last().unwrap().end, nw);
                let total: usize = shards.iter().map(|r| r.len()).sum();
                assert_eq!(total, nw, "nw={nw} threads={threads}");
            }
        }
    }
}
