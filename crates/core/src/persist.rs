//! Persistence for the Grid-index artefacts (paper §3.2).
//!
//! The paper stores approximate vectors as `b·d`-bit strings so that
//! "the storage overhead by the compressed 6-bit data is less than 1/10
//! of the original data" and "reading approximate vectors with
//! bit-string binary compression only has half the time costs compared
//! to regular I/O operations". This module provides that on-disk format:
//! a bit-packed approximate-vector file plus the few scalars needed to
//! rebuild the corner table (`n` and the two value ranges — the table
//! itself is recomputed in microseconds).
//!
//! ```text
//! magic   (4 bytes)  "RRQA"
//! version (u16 LE)
//! dim     (u32 LE)
//! rows    (u64 LE)
//! bits    (u8)
//! n       (u16 LE)   grid partitions
//! p_range (f64 LE)
//! w_range (f64 LE)
//! words   (u64 LE)   number of 64-bit payload words
//! payload (words × u64 LE)
//! ```

use crate::approx::{ApproxVectors, PackedApproxVectors};
use crate::grid::Grid;
use rrq_types::{RrqError, RrqResult};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"RRQA";
const VERSION: u16 = 1;

fn io_error(e: std::io::Error) -> RrqError {
    RrqError::InvalidParameter {
        name: "io",
        message: e.to_string(),
    }
}

/// A persisted approximate-vector file: the packed cells plus the grid
/// geometry they were quantised with.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxFile {
    /// The bit-packed approximate vectors.
    pub vectors: PackedApproxVectors,
    /// Grid partitions `n`.
    pub partitions: usize,
    /// Product value range.
    pub point_range: f64,
    /// Weight value range.
    pub weight_range: f64,
}

impl ApproxFile {
    /// Rebuilds the corner table this file was quantised with.
    ///
    /// # Panics
    ///
    /// Panics if the stored geometry is invalid (corrupted file that
    /// passed structural checks).
    pub fn rebuild_grid(&self) -> Grid {
        Grid::with_ranges(self.partitions, self.point_range, self.weight_range)
    }

    /// Unpacks to byte-format approximate vectors.
    pub fn unpack(&self) -> ApproxVectors {
        self.vectors.unpack()
    }
}

/// Writes packed approximate vectors with their grid geometry.
///
/// # Errors
///
/// Wraps I/O failures in [`RrqError::InvalidParameter`].
pub fn write_approx(path: &Path, vectors: &PackedApproxVectors, grid: &Grid) -> RrqResult<()> {
    let file = std::fs::File::create(path).map_err(io_error)?;
    let mut out = BufWriter::new(file);
    (|| -> std::io::Result<()> {
        out.write_all(MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&(vectors.dim() as u32).to_le_bytes())?;
        out.write_all(&(vectors.len() as u64).to_le_bytes())?;
        out.write_all(&[vectors.bits() as u8])?;
        out.write_all(&(grid.partitions() as u16).to_le_bytes())?;
        out.write_all(&grid.point_range().to_le_bytes())?;
        out.write_all(&grid.weight_range().to_le_bytes())?;
        let words = vectors.words();
        out.write_all(&(words.len() as u64).to_le_bytes())?;
        for &w in words {
            out.write_all(&w.to_le_bytes())?;
        }
        out.flush()
    })()
    .map_err(io_error)
}

/// Reads a packed approximate-vector file.
///
/// # Errors
///
/// Fails on I/O errors, bad magic/version, or structurally inconsistent
/// headers.
pub fn read_approx(path: &Path) -> RrqResult<ApproxFile> {
    let file = std::fs::File::open(path).map_err(io_error)?;
    let mut input = BufReader::new(file);
    (|| -> std::io::Result<ApproxFile> {
        let mut magic = [0u8; 4];
        input.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "bad approx-file magic",
            ));
        }
        let mut b2 = [0u8; 2];
        input.read_exact(&mut b2)?;
        let version = u16::from_le_bytes(b2);
        if version != VERSION {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unsupported approx-file version {version}"),
            ));
        }
        let mut b4 = [0u8; 4];
        input.read_exact(&mut b4)?;
        let dim = u32::from_le_bytes(b4) as usize;
        let mut b8 = [0u8; 8];
        input.read_exact(&mut b8)?;
        let rows = u64::from_le_bytes(b8) as usize;
        let mut b1 = [0u8; 1];
        input.read_exact(&mut b1)?;
        let bits = b1[0] as u32;
        input.read_exact(&mut b2)?;
        let partitions = u16::from_le_bytes(b2) as usize;
        input.read_exact(&mut b8)?;
        let point_range = f64::from_le_bytes(b8);
        input.read_exact(&mut b8)?;
        let weight_range = f64::from_le_bytes(b8);
        input.read_exact(&mut b8)?;
        let n_words = u64::from_le_bytes(b8) as usize;
        let expected = ((rows * dim) as u64 * bits as u64).div_ceil(64) as usize;
        if n_words != expected || !(1..=8).contains(&bits) || partitions < 2 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "inconsistent approx-file header",
            ));
        }
        let mut words = vec![0u64; n_words];
        for w in &mut words {
            input.read_exact(&mut b8)?;
            *w = u64::from_le_bytes(b8);
        }
        Ok(ApproxFile {
            vectors: PackedApproxVectors::from_parts(dim, bits, rows, words),
            partitions,
            point_range,
            weight_range,
        })
    })()
    .map_err(io_error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrq_data::synthetic;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rrq_persist_{}_{name}", std::process::id()))
    }

    fn sample() -> (PackedApproxVectors, Grid) {
        let grid = Grid::with_ranges(32, 10_000.0, 0.8);
        let ps = synthetic::uniform_points(6, 500, 10_000.0, 1).unwrap();
        let av = ApproxVectors::from_points(&grid, &ps);
        (PackedApproxVectors::pack(&av, 5), grid)
    }

    #[test]
    fn round_trips_exactly() {
        let (packed, grid) = sample();
        let path = tmp("rt.bin");
        write_approx(&path, &packed, &grid).unwrap();
        let back = read_approx(&path).unwrap();
        assert_eq!(back.vectors, packed);
        assert_eq!(back.partitions, 32);
        assert_eq!(back.point_range, 10_000.0);
        assert_eq!(back.weight_range, 0.8);
        let rebuilt = back.rebuild_grid();
        assert_eq!(rebuilt.partitions(), 32);
        assert_eq!(back.unpack(), packed.unpack());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_is_much_smaller_than_floats() {
        // §3.2: b = 5..6 bits per dim vs 64-bit floats → < 1/10 the bytes.
        let (packed, grid) = sample();
        let path = tmp("small.bin");
        write_approx(&path, &packed, &grid).unwrap();
        let file_len = std::fs::metadata(&path).unwrap().len() as usize;
        let original = 500 * 6 * 8;
        assert!(file_len * 10 < original + 1000, "{file_len} vs {original}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_corrupted_headers() {
        let (packed, grid) = sample();
        let path = tmp("corrupt.bin");
        write_approx(&path, &packed, &grid).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X'; // break magic
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_approx(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncated_payload() {
        let (packed, grid) = sample();
        let path = tmp("trunc.bin");
        write_approx(&path, &packed, &grid).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(read_approx(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_inconsistent_word_count() {
        let (packed, grid) = sample();
        let path = tmp("badwords.bin");
        write_approx(&path, &packed, &grid).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // words count field sits after 4+2+4+8+1+2+8+8 = 37 bytes.
        bytes[37] = bytes[37].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_approx(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
