//! Persistence for the Grid-index artefacts (paper §3.2) and the
//! threshold index.
//!
//! The paper stores approximate vectors as `b·d`-bit strings so that
//! "the storage overhead by the compressed 6-bit data is less than 1/10
//! of the original data" and "reading approximate vectors with
//! bit-string binary compression only has half the time costs compared
//! to regular I/O operations". This module provides that on-disk format:
//! a bit-packed approximate-vector file plus the few scalars needed to
//! rebuild the corner table (`n` and the two value ranges — the table
//! itself is recomputed in microseconds).
//!
//! Every artifact carries a magic tag, a format version, and an
//! FNV-1a-64 checksum of its payload, and the reader requires the file
//! length to match the header *exactly*. A truncated, trailing-garbage
//! or bit-flipped file is rejected with a typed [`RrqError`] variant
//! (`ArtifactBadMagic`, `ArtifactBadVersion`, `ArtifactTruncated`,
//! `ArtifactChecksum`) instead of being silently misread.
//!
//! Approximate-vector file (`RRQA`, version 2):
//!
//! ```text
//! magic    (4 bytes)  "RRQA"
//! version  (u16 LE)   2
//! dim      (u32 LE)
//! rows     (u64 LE)
//! bits     (u8)
//! n        (u16 LE)   grid partitions
//! p_range  (f64 LE)
//! w_range  (f64 LE)
//! words    (u64 LE)   number of 64-bit payload words
//! checksum (u64 LE)   FNV-1a-64 of the payload bytes
//! payload  (words × u64 LE)
//! ```
//!
//! Threshold-index file (`RRQT`, version 2):
//!
//! ```text
//! magic       (4 bytes)  "RRQT"
//! version     (u16 LE)   2
//! dims        (u32 LE)
//! n_points    (u64 LE)
//! n_weights   (u64 LE)
//! n_buckets   (u64 LE)
//! epoch       (u64 LE)   mutable-engine epoch the table was stamped at
//!                        (0 for a static build)
//! fingerprint (u64 LE)   FNV-1a-64 of the (P, W, epoch) it was built from
//! checksum    (u64 LE)   FNV-1a-64 of the payload bytes
//! payload     buckets (n_buckets × u64 LE)
//!             then scores (n_buckets · n_weights × f64 LE)
//! ```
//!
//! Version 2 added the epoch field; version-1 files are rejected with
//! [`RrqError::ArtifactBadVersion`] rather than being read with an
//! assumed epoch — an artifact that cannot prove which data version it
//! describes is stale by definition.

use crate::approx::{ApproxVectors, PackedApproxVectors};
use crate::grid::Grid;
use crate::threshold::{fnv1a64, ThresholdIndex};
use rrq_types::{RrqError, RrqResult};
use std::path::Path;

const APPROX_MAGIC: &[u8; 4] = b"RRQA";
const APPROX_VERSION: u16 = 2;
/// Fixed byte size of the RRQA header, everything before the payload.
const APPROX_HEADER: usize = 4 + 2 + 4 + 8 + 1 + 2 + 8 + 8 + 8 + 8;

const THRESHOLD_MAGIC: &[u8; 4] = b"RRQT";
const THRESHOLD_VERSION: u16 = 2;
/// Fixed byte size of the RRQT header, everything before the payload.
const THRESHOLD_HEADER: usize = 4 + 2 + 4 + 8 + 8 + 8 + 8 + 8 + 8;

fn write_error(e: std::io::Error) -> RrqError {
    RrqError::ArtifactIo {
        op: "write",
        message: e.to_string(),
    }
}

/// Sequential reader over an in-memory artifact image that reports
/// reads past the end as typed truncation errors.
struct ArtifactCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ArtifactCursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> RrqResult<&'a [u8]> {
        let end = self.pos.saturating_add(n);
        if end > self.bytes.len() {
            return Err(RrqError::ArtifactTruncated {
                expected: end,
                actual: self.bytes.len(),
            });
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> RrqResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> RrqResult<u16> {
        let mut b = [0u8; 2];
        b.copy_from_slice(self.take(2)?);
        Ok(u16::from_le_bytes(b))
    }

    fn u32(&mut self) -> RrqResult<u32> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> RrqResult<u64> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self) -> RrqResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
}

/// Reads the whole file, checks magic and version, and verifies the
/// byte length matches the header-declared payload size exactly —
/// short files *and* trailing garbage are both truncation-class
/// corruption. Returns the validated image.
fn read_artifact(
    path: &Path,
    magic: &[u8; 4],
    magic_name: &'static str,
    version: u16,
) -> RrqResult<Vec<u8>> {
    let bytes = std::fs::read(path).map_err(|e| RrqError::ArtifactIo {
        op: "read",
        message: e.to_string(),
    })?;
    let mut cur = ArtifactCursor::new(&bytes);
    if cur.take(4)? != magic {
        return Err(RrqError::ArtifactBadMagic {
            expected: magic_name,
        });
    }
    let actual_version = cur.u16()?;
    if actual_version != version {
        return Err(RrqError::ArtifactBadVersion {
            expected: version,
            actual: actual_version,
        });
    }
    Ok(bytes)
}

/// Verifies the payload's FNV-1a-64 checksum against the header value.
fn check_payload(payload: &[u8], recorded: u64) -> RrqResult<()> {
    let actual = fnv1a64(payload);
    if actual != recorded {
        return Err(RrqError::ArtifactChecksum {
            expected: recorded,
            actual,
        });
    }
    Ok(())
}

/// Checks the file length equals the header-declared total exactly.
fn check_exact_len(bytes: &[u8], expected: usize) -> RrqResult<()> {
    if bytes.len() != expected {
        return Err(RrqError::ArtifactTruncated {
            expected,
            actual: bytes.len(),
        });
    }
    Ok(())
}

/// A persisted approximate-vector file: the packed cells plus the grid
/// geometry they were quantised with.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxFile {
    /// The bit-packed approximate vectors.
    pub vectors: PackedApproxVectors,
    /// Grid partitions `n`.
    pub partitions: usize,
    /// Product value range.
    pub point_range: f64,
    /// Weight value range.
    pub weight_range: f64,
}

impl ApproxFile {
    /// Rebuilds the corner table this file was quantised with.
    ///
    /// # Panics
    ///
    /// Panics if the stored geometry is invalid (corrupted file that
    /// passed structural checks).
    pub fn rebuild_grid(&self) -> Grid {
        Grid::with_ranges(self.partitions, self.point_range, self.weight_range)
    }

    /// Unpacks to byte-format approximate vectors.
    pub fn unpack(&self) -> ApproxVectors {
        self.vectors.unpack()
    }
}

/// Writes packed approximate vectors with their grid geometry.
///
/// # Errors
///
/// Wraps I/O failures in [`RrqError::ArtifactIo`].
pub fn write_approx(path: &Path, vectors: &PackedApproxVectors, grid: &Grid) -> RrqResult<()> {
    let words = vectors.words();
    let mut payload = Vec::with_capacity(words.len() * 8);
    for &w in words {
        payload.extend_from_slice(&w.to_le_bytes());
    }
    let mut image = Vec::with_capacity(APPROX_HEADER + payload.len());
    image.extend_from_slice(APPROX_MAGIC);
    image.extend_from_slice(&APPROX_VERSION.to_le_bytes());
    image.extend_from_slice(&(vectors.dim() as u32).to_le_bytes());
    image.extend_from_slice(&(vectors.len() as u64).to_le_bytes());
    image.push(vectors.bits() as u8);
    image.extend_from_slice(&(grid.partitions() as u16).to_le_bytes());
    image.extend_from_slice(&grid.point_range().to_le_bytes());
    image.extend_from_slice(&grid.weight_range().to_le_bytes());
    image.extend_from_slice(&(words.len() as u64).to_le_bytes());
    image.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    image.extend_from_slice(&payload);
    std::fs::write(path, image).map_err(write_error)
}

/// Reads a packed approximate-vector file.
///
/// # Errors
///
/// [`RrqError::ArtifactIo`] on filesystem failure;
/// [`RrqError::ArtifactBadMagic`] / [`RrqError::ArtifactBadVersion`] /
/// [`RrqError::ArtifactTruncated`] / [`RrqError::ArtifactChecksum`] on
/// a corrupted file; [`RrqError::InvalidParameter`] when the header is
/// internally inconsistent.
pub fn read_approx(path: &Path) -> RrqResult<ApproxFile> {
    let bytes = read_artifact(path, APPROX_MAGIC, "RRQA", APPROX_VERSION)?;
    let mut cur = ArtifactCursor::new(&bytes);
    let _ = cur.take(4 + 2)?; // magic + version, validated above
    let dim = cur.u32()? as usize;
    let rows = cur.u64()? as usize;
    let bits = cur.u8()? as u32;
    let partitions = cur.u16()? as usize;
    let point_range = cur.f64()?;
    let weight_range = cur.f64()?;
    let n_words = cur.u64()? as usize;
    let checksum = cur.u64()?;
    let expected_words = ((rows * dim) as u64 * bits as u64).div_ceil(64) as usize;
    if n_words != expected_words || !(1..=8).contains(&bits) || partitions < 2 {
        return Err(RrqError::InvalidParameter {
            name: "header",
            message: "inconsistent approx-file header".to_string(),
        });
    }
    check_exact_len(&bytes, APPROX_HEADER + n_words * 8)?;
    let payload = &bytes[APPROX_HEADER..];
    check_payload(payload, checksum)?;
    let mut cur = ArtifactCursor::new(payload);
    let mut words = vec![0u64; n_words];
    for w in &mut words {
        *w = cur.u64()?;
    }
    Ok(ApproxFile {
        vectors: PackedApproxVectors::from_parts(dim, bits, rows, words),
        partitions,
        point_range,
        weight_range,
    })
}

/// Writes a [`ThresholdIndex`] as a checksummed `RRQT` artifact.
///
/// # Errors
///
/// Wraps I/O failures in [`RrqError::ArtifactIo`].
pub fn write_threshold(path: &Path, index: &ThresholdIndex) -> RrqResult<()> {
    let buckets = index.buckets();
    let scores = index.scores();
    let mut payload = Vec::with_capacity((buckets.len() + scores.len()) * 8);
    for &b in buckets {
        payload.extend_from_slice(&(b as u64).to_le_bytes());
    }
    for &s in scores {
        payload.extend_from_slice(&s.to_bits().to_le_bytes());
    }
    let mut image = Vec::with_capacity(THRESHOLD_HEADER + payload.len());
    image.extend_from_slice(THRESHOLD_MAGIC);
    image.extend_from_slice(&THRESHOLD_VERSION.to_le_bytes());
    image.extend_from_slice(&(index.dims() as u32).to_le_bytes());
    image.extend_from_slice(&(index.n_points() as u64).to_le_bytes());
    image.extend_from_slice(&(index.n_weights() as u64).to_le_bytes());
    image.extend_from_slice(&(buckets.len() as u64).to_le_bytes());
    image.extend_from_slice(&index.epoch().to_le_bytes());
    image.extend_from_slice(&index.fingerprint().to_le_bytes());
    image.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    image.extend_from_slice(&payload);
    std::fs::write(path, image).map_err(write_error)
}

/// Reads a `RRQT` threshold-index artifact.
///
/// The returned index still carries its build-time data fingerprint;
/// attaching it via [`crate::Gir::attach_threshold_index`] re-validates
/// it against the live data sets, so a structurally intact but stale
/// artifact is rejected at attach time, not served.
///
/// # Errors
///
/// [`RrqError::ArtifactIo`] on filesystem failure;
/// [`RrqError::ArtifactBadMagic`] / [`RrqError::ArtifactBadVersion`] /
/// [`RrqError::ArtifactTruncated`] / [`RrqError::ArtifactChecksum`] on
/// a corrupted file; [`RrqError::InvalidParameter`] when the decoded
/// table violates the index's structural invariants.
pub fn read_threshold(path: &Path) -> RrqResult<ThresholdIndex> {
    let bytes = read_artifact(path, THRESHOLD_MAGIC, "RRQT", THRESHOLD_VERSION)?;
    let mut cur = ArtifactCursor::new(&bytes);
    let _ = cur.take(4 + 2)?; // magic + version, validated above
    let dims = cur.u32()? as usize;
    let n_points = cur.u64()? as usize;
    let n_weights = cur.u64()? as usize;
    let n_buckets = cur.u64()? as usize;
    let epoch = cur.u64()?;
    let fingerprint = cur.u64()?;
    let checksum = cur.u64()?;
    let n_scores = n_buckets
        .checked_mul(n_weights)
        .ok_or_else(|| RrqError::InvalidParameter {
            name: "header",
            message: "threshold-index table size overflows".to_string(),
        })?;
    let payload_len =
        (n_buckets + n_scores)
            .checked_mul(8)
            .ok_or_else(|| RrqError::InvalidParameter {
                name: "header",
                message: "threshold-index payload size overflows".to_string(),
            })?;
    check_exact_len(&bytes, THRESHOLD_HEADER + payload_len)?;
    let payload = &bytes[THRESHOLD_HEADER..];
    check_payload(payload, checksum)?;
    let mut cur = ArtifactCursor::new(payload);
    let mut buckets = Vec::with_capacity(n_buckets);
    for _ in 0..n_buckets {
        buckets.push(cur.u64()? as usize);
    }
    let mut scores = Vec::with_capacity(n_scores);
    for _ in 0..n_scores {
        scores.push(cur.f64()?);
    }
    ThresholdIndex::from_parts(
        buckets,
        n_points,
        n_weights,
        dims,
        scores,
        fingerprint,
        epoch,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrq_data::synthetic;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rrq_persist_{}_{name}", std::process::id()))
    }

    fn sample() -> (PackedApproxVectors, Grid) {
        let grid = Grid::with_ranges(32, 10_000.0, 0.8);
        let ps = synthetic::uniform_points(6, 500, 10_000.0, 1).unwrap();
        let av = ApproxVectors::from_points(&grid, &ps);
        (PackedApproxVectors::pack(&av, 5), grid)
    }

    fn sample_threshold() -> ThresholdIndex {
        let p = synthetic::uniform_points(4, 80, 10_000.0, 3).unwrap();
        let w = synthetic::uniform_weights(4, 16, 4).unwrap();
        ThresholdIndex::build(&p, &w, &[1, 10, 50]).unwrap()
    }

    #[test]
    fn round_trips_exactly() {
        let (packed, grid) = sample();
        let path = tmp("rt.bin");
        write_approx(&path, &packed, &grid).unwrap();
        let back = read_approx(&path).unwrap();
        assert_eq!(back.vectors, packed);
        assert_eq!(back.partitions, 32);
        assert_eq!(back.point_range, 10_000.0);
        assert_eq!(back.weight_range, 0.8);
        let rebuilt = back.rebuild_grid();
        assert_eq!(rebuilt.partitions(), 32);
        assert_eq!(back.unpack(), packed.unpack());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_is_much_smaller_than_floats() {
        // §3.2: b = 5..6 bits per dim vs 64-bit floats → < 1/10 the bytes.
        let (packed, grid) = sample();
        let path = tmp("small.bin");
        write_approx(&path, &packed, &grid).unwrap();
        let file_len = std::fs::metadata(&path).unwrap().len() as usize;
        let original = 500 * 6 * 8;
        assert!(file_len * 10 < original + 1000, "{file_len} vs {original}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let (packed, grid) = sample();
        let path = tmp("corrupt.bin");
        write_approx(&path, &packed, &grid).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_approx(&path),
            Err(RrqError::ArtifactBadMagic { expected: "RRQA" })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_unknown_version() {
        let (packed, grid) = sample();
        let path = tmp("badver.bin");
        write_approx(&path, &packed, &grid).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4] = 9; // version low byte
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_approx(&path),
            Err(RrqError::ArtifactBadVersion {
                expected: 2,
                actual: 9
            })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncated_payload() {
        let (packed, grid) = sample();
        let path = tmp("trunc.bin");
        write_approx(&path, &packed, &grid).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            read_approx(&path),
            Err(RrqError::ArtifactTruncated { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_trailing_garbage() {
        let (packed, grid) = sample();
        let path = tmp("tail.bin");
        write_approx(&path, &packed, &grid).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"garbage");
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_approx(&path),
            Err(RrqError::ArtifactTruncated { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_flipped_payload_bit() {
        let (packed, grid) = sample();
        let path = tmp("flip.bin");
        write_approx(&path, &packed, &grid).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_approx(&path),
            Err(RrqError::ArtifactChecksum { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_inconsistent_word_count() {
        let (packed, grid) = sample();
        let path = tmp("badwords.bin");
        write_approx(&path, &packed, &grid).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // words count field sits after 4+2+4+8+1+2+8+8 = 37 bytes.
        bytes[37] = bytes[37].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();
        // The declared word count no longer matches the geometry-derived
        // count, which the reader flags before trusting any length.
        assert!(read_approx(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_missing_file_with_io_error() {
        let path = tmp("does_not_exist.bin");
        assert!(matches!(
            read_approx(&path),
            Err(RrqError::ArtifactIo { op: "read", .. })
        ));
    }

    #[test]
    fn threshold_round_trips_exactly() {
        let idx = sample_threshold();
        let path = tmp("thr_rt.bin");
        write_threshold(&path, &idx).unwrap();
        let back = read_threshold(&path).unwrap();
        assert_eq!(back, idx);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn threshold_rejects_bad_magic_and_version() {
        let idx = sample_threshold();
        let path = tmp("thr_magic.bin");
        write_threshold(&path, &idx).unwrap();
        let good = std::fs::read(&path).unwrap();

        let mut bytes = good.clone();
        bytes[1] = b'Z';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_threshold(&path),
            Err(RrqError::ArtifactBadMagic { expected: "RRQT" })
        ));

        let mut bytes = good.clone();
        bytes[4] = 7;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_threshold(&path),
            Err(RrqError::ArtifactBadVersion {
                expected: 2,
                actual: 7
            })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn threshold_rejects_truncation_and_garbage() {
        let idx = sample_threshold();
        let path = tmp("thr_trunc.bin");
        write_threshold(&path, &idx).unwrap();
        let good = std::fs::read(&path).unwrap();

        std::fs::write(&path, &good[..good.len() - 5]).unwrap();
        assert!(matches!(
            read_threshold(&path),
            Err(RrqError::ArtifactTruncated { .. })
        ));

        let mut bytes = good.clone();
        bytes.push(0);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_threshold(&path),
            Err(RrqError::ArtifactTruncated { .. })
        ));

        // Headers shorter than the fixed prefix are truncation too.
        std::fs::write(&path, &good[..10]).unwrap();
        assert!(matches!(
            read_threshold(&path),
            Err(RrqError::ArtifactTruncated { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn threshold_rejects_corrupted_scores() {
        let idx = sample_threshold();
        let path = tmp("thr_flip.bin");
        write_threshold(&path, &idx).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_threshold(&path),
            Err(RrqError::ArtifactChecksum { .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
