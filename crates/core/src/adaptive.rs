//! Non-equal-width Grid-index — the paper's first future-work extension
//! (§7): "adapt GIR to different data distributions by using
//! non-equal-width Grid-index … by merging and splitting some grids of
//! the equal-width Grid-index based on the distributions of the given P
//! and W".
//!
//! This implementation chooses partition boundaries directly from data
//! *quantiles*: each of the `n` point partitions holds an equal share of
//! the observed attribute values (pooled over all dimensions, since the
//! grid is shared across dimensions), and likewise for weights. On skewed
//! data this equalises cell population, which tightens the bounds exactly
//! where the mass is and therefore raises the filter rate over the uniform
//! grid.

use crate::grid::GridTable;
use rrq_types::{PointSet, WeightSet};

/// A corner-product table with quantile-placed partition boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveGrid {
    n: usize,
    /// Ascending point boundaries `α_p[0..=n]`; `α_p[0] = 0`,
    /// `α_p[n] = point range`.
    alpha_p: Vec<f64>,
    /// Ascending weight boundaries `α_w[0..=n]`; `α_w[0] = 0`,
    /// `α_w[n] = 1`.
    alpha_w: Vec<f64>,
    /// Row-major `(n+1) × (n+1)` corner products.
    table: Vec<f64>,
}

impl AdaptiveGrid {
    /// Builds boundaries from the empirical quantiles of `points` and
    /// `weights` (values pooled across dimensions).
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= n <= 255` and both sets are non-empty and share
    /// dimensionality.
    pub fn from_data(n: usize, points: &PointSet, weights: &WeightSet) -> Self {
        assert!((2..=255).contains(&n), "partitions must be in 2..=255");
        assert_eq!(points.dim(), weights.dim(), "dimensionality mismatch");
        assert!(!points.is_empty() && !weights.is_empty(), "empty data");
        let alpha_p = quantile_boundaries(points.as_flat(), n, points.value_range());
        let alpha_w = quantile_boundaries(weights.as_flat(), n, 1.0);
        Self::from_boundaries(alpha_p, alpha_w)
    }

    /// Builds the table from explicit boundary vectors (each of length
    /// `n + 1`, strictly ascending, starting at 0).
    ///
    /// # Panics
    ///
    /// Panics on malformed boundaries.
    pub fn from_boundaries(alpha_p: Vec<f64>, alpha_w: Vec<f64>) -> Self {
        assert_eq!(alpha_p.len(), alpha_w.len(), "boundary lengths differ");
        let n = alpha_p.len() - 1;
        assert!((2..=255).contains(&n), "partitions must be in 2..=255");
        for alpha in [&alpha_p, &alpha_w] {
            assert_eq!(alpha[0], 0.0, "boundaries must start at 0");
            assert!(
                alpha.windows(2).all(|w| w[0] < w[1]),
                "boundaries must be strictly ascending"
            );
        }
        let stride = n + 1;
        let mut table = vec![0.0; stride * stride];
        for i in 0..=n {
            for j in 0..=n {
                table[i * stride + j] = alpha_p[i] * alpha_w[j];
            }
        }
        Self {
            n,
            alpha_p,
            alpha_w,
            table,
        }
    }

    /// The point partition boundaries.
    pub fn point_boundaries(&self) -> &[f64] {
        &self.alpha_p
    }

    /// The weight partition boundaries.
    pub fn weight_boundaries(&self) -> &[f64] {
        &self.alpha_w
    }
}

/// Locates `v` in ascending boundaries: the cell `i` with
/// `alpha[i] <= v < alpha[i+1]`, clamped to `[0, n-1]`.
#[inline]
fn locate(alpha: &[f64], v: f64) -> u8 {
    let n = alpha.len() - 1;
    // partition_point returns the count of boundaries <= v; the cell is
    // one less (boundary alpha[0] = 0 always counts).
    let upper = alpha.partition_point(|&b| b <= v);
    (upper.saturating_sub(1)).min(n - 1) as u8
}

/// Equal-population boundaries over `values` in `[0, range]`: boundary `i`
/// is the `i/n` quantile, de-duplicated into strict ascent.
fn quantile_boundaries(values: &[f64], n: usize, range: f64) -> Vec<f64> {
    let mut sorted: Vec<f64> = values.to_vec();
    // rrq-lint: allow(no-unwrap-in-lib) -- loader-validated finite values always compare
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let mut alpha = Vec::with_capacity(n + 1);
    alpha.push(0.0);
    for i in 1..n {
        let idx = (i * sorted.len()) / n;
        let q = sorted[idx.min(sorted.len() - 1)];
        // rrq-lint: allow(no-unwrap-in-lib) -- alpha starts with a pushed 0.0 and only grows
        let prev = *alpha.last().expect("non-empty");
        // Enforce strict ascent: degenerate quantiles (heavy ties) fall
        // back to a minimal step towards the range end.
        let min_step = range * 1e-9;
        alpha.push(if q <= prev { prev + min_step } else { q });
    }
    // rrq-lint: allow(no-unwrap-in-lib) -- alpha starts with a pushed 0.0 and only grows
    let prev = *alpha.last().expect("non-empty");
    alpha.push(range.max(prev + range * 1e-9));
    alpha
}

impl GridTable for AdaptiveGrid {
    #[inline]
    fn partitions(&self) -> usize {
        self.n
    }

    #[inline]
    fn point_cell(&self, v: f64) -> u8 {
        locate(&self.alpha_p, v)
    }

    #[inline]
    fn weight_cell(&self, v: f64) -> u8 {
        locate(&self.alpha_w, v)
    }

    #[inline]
    fn score_lower(&self, pa: &[u8], wa: &[u8]) -> f64 {
        debug_assert_eq!(pa.len(), wa.len());
        let stride = self.n + 1;
        let mut acc = 0.0;
        for (&a, &b) in pa.iter().zip(wa) {
            acc += self.table[a as usize * stride + b as usize];
        }
        acc
    }

    #[inline]
    fn score_upper(&self, pa: &[u8], wa: &[u8]) -> f64 {
        debug_assert_eq!(pa.len(), wa.len());
        let stride = self.n + 1;
        let mut acc = 0.0;
        for (&a, &b) in pa.iter().zip(wa) {
            acc += self.table[(a as usize + 1) * stride + (b as usize + 1)];
        }
        acc
    }

    fn memory_bytes(&self) -> usize {
        (self.table.len() + self.alpha_p.len() + self.alpha_w.len()) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gir::{Gir, GirConfig};
    use rrq_baselines::Naive;
    use rrq_data::synthetic;
    use rrq_types::{dot, PointId, QueryStats, RkrQuery, RtkQuery};

    fn skewed_workload(seed: u64) -> (PointSet, WeightSet) {
        // Exponential data is exactly where the adaptive grid should win.
        let p = synthetic::exponential_points(5, 400, 10_000.0, 2.0, seed).unwrap();
        let w = synthetic::uniform_weights(5, 80, seed + 1).unwrap();
        (p, w)
    }

    #[test]
    fn locate_brackets_values() {
        let alpha = vec![0.0, 1.0, 5.0, 10.0];
        assert_eq!(locate(&alpha, 0.0), 0);
        assert_eq!(locate(&alpha, 0.99), 0);
        assert_eq!(locate(&alpha, 1.0), 1);
        assert_eq!(locate(&alpha, 4.0), 1);
        assert_eq!(locate(&alpha, 9.99), 2);
        assert_eq!(locate(&alpha, 10.0), 2, "range end clamps to last cell");
        assert_eq!(locate(&alpha, 42.0), 2, "overflow clamps");
    }

    #[test]
    fn boundaries_equalise_population() {
        let (p, w) = skewed_workload(1);
        let g = AdaptiveGrid::from_data(8, &p, &w);
        // Count attribute values per point cell: populations should be
        // within 2x of each other (vs. wildly uneven for a uniform grid on
        // exponential data).
        let mut counts = vec![0usize; 8];
        for &v in p.as_flat() {
            counts[g.point_cell(v) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(min > 0, "counts {counts:?}");
        assert!(max <= 2 * min + 8, "counts not equalised: {counts:?}");
    }

    #[test]
    fn bounds_bracket_true_scores() {
        let (p, w) = skewed_workload(2);
        let g = AdaptiveGrid::from_data(16, &p, &w);
        for (_, pv) in p.iter().take(50) {
            for (_, wv) in w.iter().take(20) {
                let pa: Vec<u8> = pv.iter().map(|&v| g.point_cell(v)).collect();
                let wa: Vec<u8> = wv.iter().map(|&v| g.weight_cell(v)).collect();
                let s = dot(wv, pv);
                assert!(g.score_lower(&pa, &wa) <= s + 1e-9);
                assert!(s <= g.score_upper(&pa, &wa) + 1e-9);
            }
        }
    }

    #[test]
    fn gir_with_adaptive_grid_matches_naive() {
        let (p, w) = skewed_workload(3);
        let grid = AdaptiveGrid::from_data(32, &p, &w);
        let gir = Gir::with_grid(&p, &w, grid, GirConfig::default());
        let naive = Naive::new(&p, &w);
        let q = p.point(PointId(13)).to_vec();
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        assert_eq!(
            gir.reverse_top_k(&q, 10, &mut s1),
            naive.reverse_top_k(&q, 10, &mut s2)
        );
        let mut s3 = QueryStats::default();
        let mut s4 = QueryStats::default();
        assert_eq!(
            gir.reverse_k_ranks(&q, 10, &mut s3),
            naive.reverse_k_ranks(&q, 10, &mut s4)
        );
    }

    #[test]
    fn adaptive_filters_better_than_uniform_on_skewed_data() {
        let (p, w) = skewed_workload(4);
        let n = 8; // Coarse grid accentuates the difference.
        let cfg = GirConfig {
            partitions: n,
            use_domin: false,
            packed: false,
        };
        let uniform = Gir::new(&p, &w, cfg);
        let adaptive = Gir::with_grid(&p, &w, AdaptiveGrid::from_data(n, &p, &w), cfg);
        let q = p.point(PointId(200)).to_vec();
        let mut su = QueryStats::default();
        let mut sa = QueryStats::default();
        // Full classification (no early exit): k = |W|.
        uniform.reverse_k_ranks(&q, w.len(), &mut su);
        adaptive.reverse_k_ranks(&q, w.len(), &mut sa);
        let fu = su.filter_rate().unwrap();
        let fa = sa.filter_rate().unwrap();
        assert!(
            fa > fu,
            "adaptive filter rate {fa} should beat uniform {fu} on skewed data"
        );
    }

    #[test]
    fn from_boundaries_validates() {
        let ok = AdaptiveGrid::from_boundaries(vec![0.0, 1.0, 2.0], vec![0.0, 0.4, 1.0]);
        assert_eq!(ok.partitions(), 2);
        assert_eq!(ok.point_boundaries(), &[0.0, 1.0, 2.0]);
        assert_eq!(ok.weight_boundaries(), &[0.0, 0.4, 1.0]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn from_boundaries_rejects_non_monotone() {
        AdaptiveGrid::from_boundaries(vec![0.0, 2.0, 1.0], vec![0.0, 0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "start at 0")]
    fn from_boundaries_rejects_nonzero_start() {
        AdaptiveGrid::from_boundaries(vec![0.5, 1.0, 2.0], vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn heavy_ties_still_produce_valid_boundaries() {
        // All-equal attribute values: quantiles collapse; the fallback must
        // still produce strictly ascending boundaries.
        let mut p = PointSet::new(2, 10.0).unwrap();
        for _ in 0..50 {
            p.push_slice(&[5.0, 5.0]).unwrap();
        }
        let w = synthetic::uniform_weights(2, 10, 5).unwrap();
        let g = AdaptiveGrid::from_data(4, &p, &w);
        assert!(g.point_boundaries().windows(2).all(|win| win[0] < win[1]));
        // And the bracket property still holds.
        let pa: Vec<u8> = [5.0, 5.0].iter().map(|&v| g.point_cell(v)).collect();
        let wv = w.weight(rrq_types::WeightId(0));
        let wa: Vec<u8> = wv.iter().map(|&v| g.weight_cell(v)).collect();
        let s = dot(wv, &[5.0, 5.0]);
        assert!(g.score_lower(&pa, &wa) <= s && s <= g.score_upper(&pa, &wa));
    }
}
