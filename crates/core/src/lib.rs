//! Grid-index and the GIR algorithm for reverse rank queries — the primary
//! contribution of Dong et al., *"Grid-Index Algorithm for Reverse Rank
//! Queries"*, EDBT 2017.
//!
//! The Grid-index ([`Grid`]) pre-computes the multiplication table of the
//! quantised value ranges of products and preferences (paper Eq. 1). Data
//! is pre-quantised into approximate vectors ([`approx`]), optionally
//! bit-packed exactly as §3.2 describes. Score bounds assembled from the
//! table by pure addition (Eqs. 3–4) let the scan-based GIR algorithm
//! ([`Gir`]) classify almost every `(p, w)` pair without a single
//! multiplication; only the thin "incomparable" slice (Case 3) is refined
//! against the original data.
//!
//! [`model`] implements the analytical machinery of §5.3: the exact
//! dice-sum probability (Eq. 15), the CLT normal approximation (Lemma 1),
//! the worst-case filtering performance (Eq. 25) and Theorem 1's rule for
//! choosing the number of partitions `n`.
//!
//! The two future-work extensions sketched in §7 are implemented too: a
//! non-equal-width (quantile) grid ([`adaptive`]) and a sparse-weight
//! optimisation ([`sparse`]) — plus the authors' DEXA '16 follow-up,
//! aggregate reverse rank queries over product bundles ([`arr`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod approx;
pub mod arr;
pub mod gir;
pub mod grid;
pub mod model;
pub mod par;
pub mod persist;
pub mod pool;
pub mod snapshot;
pub mod sparse;
pub mod threshold;

pub use adaptive::AdaptiveGrid;
pub use approx::{ApproxVectors, PackedApproxVectors};
pub use arr::Aggregate;
pub use gir::{Gir, GirConfig};
pub use grid::Grid;
pub use par::{BoundMode, ParConfig, ParGir};
pub use pool::{pool_scope, PoolError, PoolStats, PoolTelemetry, WorkerPool};
pub use snapshot::{DynamicEngine, EngineState, SnapshotHandle};
pub use sparse::SparseGir;
pub use threshold::ThresholdIndex;
