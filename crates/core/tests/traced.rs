//! The traced query paths must return byte-identical results to the
//! untraced ones, and the recorded phase tree must be consistent with the
//! machine-independent counters.

use rrq_core::Gir;
use rrq_data::synthetic;
use rrq_obs::{MetricsRecorder, SharedRecorder};
use rrq_types::{PointId, QueryStats, RkrQuery, RtkQuery};
use std::collections::BTreeMap;

#[test]
fn traced_gir_matches_untraced_and_records_phases() {
    let p = synthetic::uniform_points(4, 800, 10_000.0, 21).unwrap();
    let w = synthetic::uniform_weights(4, 200, 22).unwrap();
    let gir = Gir::with_defaults(&p, &w);
    let q = p.point(PointId(100)).to_vec();

    let rec = MetricsRecorder::new();
    let mut s_plain = QueryStats::default();
    let mut s_traced = QueryStats::default();

    let rtk_plain = gir.reverse_top_k(&q, 20, &mut s_plain);
    let rtk_traced = gir.reverse_top_k_traced(&q, 20, &mut s_traced, &rec);
    assert_eq!(rtk_plain, rtk_traced, "tracing must not change results");
    assert_eq!(s_plain, s_traced, "tracing must not change counters");

    let rkr_plain = gir.reverse_k_ranks(&q, 10, &mut s_plain);
    let rkr_traced = gir.reverse_k_ranks_traced(&q, 10, &mut s_traced, &rec);
    assert_eq!(rkr_plain, rkr_traced);
    assert_eq!(s_plain, s_traced);

    let phases = rec.phases();
    let paths: Vec<&str> = phases.iter().map(|p| p.path.as_str()).collect();
    assert!(paths.contains(&"rtk"), "{paths:?}");
    assert!(paths.contains(&"rtk/scan"), "{paths:?}");
    assert!(paths.contains(&"rkr"), "{paths:?}");
    assert!(paths.contains(&"rkr/quantize"), "{paths:?}");
    assert!(paths.contains(&"rkr/scan"), "{paths:?}");

    // Refinement leaves fire once per refined pair on the traced pass.
    let refine_calls: u64 = phases
        .iter()
        .filter(|p| p.path.ends_with("/refine"))
        .map(|p| p.calls)
        .sum();
    assert_eq!(
        refine_calls, s_traced.refined,
        "one refine leaf per Case-3 pair"
    );

    // Timing is hierarchical: children never exceed their parent.
    for parent in phases.iter().filter(|p| p.depth == 0) {
        let child_sum: u64 = phases
            .iter()
            .filter(|c| c.depth == 1 && c.path.starts_with(&format!("{}/", parent.path)))
            .map(|c| c.total_ns)
            .sum();
        assert!(
            child_sum <= parent.total_ns,
            "{}: children {child_sum} ns > parent {} ns",
            parent.path,
            parent.total_ns
        );
    }
}

#[test]
fn traced_query_separates_filter_from_refine_time() {
    let p = synthetic::uniform_points(6, 2000, 10_000.0, 5).unwrap();
    let w = synthetic::uniform_weights(6, 300, 6).unwrap();
    let gir = Gir::with_defaults(&p, &w);
    let q = p.point(PointId(42)).to_vec();

    let rec = MetricsRecorder::new();
    let mut stats = QueryStats::default();
    gir.reverse_k_ranks_traced(&q, 10, &mut stats, &rec);

    let phases = rec.phases();
    let scan = phases.iter().find(|p| p.path == "rkr/scan").unwrap();
    let refine = phases.iter().find(|p| p.path == "rkr/scan/refine");
    // Scan time includes refinement; self time is the filter cost.
    if let Some(refine) = refine {
        assert!(refine.total_ns <= scan.total_ns);
        assert_eq!(
            scan.self_ns,
            scan.total_ns
                - phases
                    .iter()
                    .filter(|p| p.depth == 2 && p.path.starts_with("rkr/scan/"))
                    .map(|p| p.total_ns)
                    .sum::<u64>()
        );
    }
}

#[test]
fn concurrent_traced_queries_merge_to_the_sequential_metrics() {
    // Four threads drive the traced GIR paths through one SharedRecorder;
    // the shard-merged phase tree and counters must equal a sequential
    // MetricsRecorder run over the same queries (wall times aside).
    let p = synthetic::uniform_points(4, 900, 10_000.0, 31).unwrap();
    let w = synthetic::uniform_weights(4, 250, 32).unwrap();
    let gir = Gir::with_defaults(&p, &w);
    let queries: Vec<Vec<f64>> = (0..16).map(|i| p.point(PointId(i * 7)).to_vec()).collect();

    let seq_rec = MetricsRecorder::new();
    let mut seq_stats = QueryStats::default();
    let mut seq_results = Vec::new();
    for q in &queries {
        seq_results.push((
            gir.reverse_top_k_traced(q, 15, &mut seq_stats, &seq_rec),
            gir.reverse_k_ranks_traced(q, 8, &mut seq_stats, &seq_rec),
        ));
    }

    let par_rec = SharedRecorder::new();
    let threads = 4;
    let (par_stats, par_results) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (par_rec, gir, queries) = (&par_rec, &gir, &queries);
                s.spawn(move || {
                    let mut stats = QueryStats::default();
                    let results: Vec<_> = queries
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % threads == t)
                        .map(|(_, q)| {
                            (
                                gir.reverse_top_k_traced(q, 15, &mut stats, par_rec),
                                gir.reverse_k_ranks_traced(q, 8, &mut stats, par_rec),
                            )
                        })
                        .collect();
                    (stats, results)
                })
            })
            .collect();
        let mut stats = QueryStats::default();
        let mut results = Vec::new();
        for (t, h) in handles.into_iter().enumerate() {
            let (s, r) = h.join().expect("worker panicked");
            stats.merge(&s);
            results.extend(
                r.into_iter()
                    .enumerate()
                    .map(|(j, res)| (j * threads + t, res)),
            );
        }
        results.sort_by_key(|(i, _)| *i);
        (
            stats,
            results.into_iter().map(|(_, r)| r).collect::<Vec<_>>(),
        )
    });

    assert_eq!(seq_results, par_results, "results are thread-invariant");
    assert_eq!(seq_stats, par_stats, "counters merge exactly");
    let calls = |phases: Vec<rrq_obs::PhaseStat>| -> BTreeMap<String, u64> {
        phases.into_iter().map(|p| (p.path, p.calls)).collect()
    };
    assert_eq!(
        calls(seq_rec.phases()),
        calls(par_rec.phases()),
        "merged phase tree matches the sequential one call-for-call"
    );
}
