//! Differential trace-replay harness for the epoch-versioned mutable
//! engine (`rrq_core::snapshot`).
//!
//! A seeded SplitMix64 generator produces interleaved traces of point /
//! weight inserts and deletes, publishes, compactions and RTK / RKR
//! queries. The trace is replayed twice in lockstep:
//!
//! * against the **mutable engine** — tombstones, append tails,
//!   incremental threshold repair, epoch publishes, compaction folds —
//!   queried through all five engines (sequential, `ParGir`
//!   local/epoch/shared, pool-backed);
//! * against a **rebuild-from-scratch oracle** — a shadow model of the
//!   published live rows, re-indexed with `Gir::new` at every query
//!   point.
//!
//! At every query point the external-id-mapped results must be
//! byte-identical between the two, for every engine, and every explained
//! run's funnel must reconcile *exactly* against the counters of the
//! same run (`Funnel::reconcile`, which includes the new
//! `tombstones_skipped` / `appended_scanned` mirrors). The rebuild
//! legitimately books different counters (its grid re-tightens the
//! weight axis), so counters are reconciled per engine, not compared
//! across the pair — results are the contract.
//!
//! Dedicated edge traces: deleting every point of one grid cell,
//! re-inserting byte-identical duplicate rows (tie semantics), a
//! compaction fold in the middle of a query stream, and k at both edges
//! (1 and beyond the live cardinality).

use rrq_core::{pool_scope, BoundMode, DynamicEngine, EngineState, Gir, GirConfig, ParConfig};
use rrq_data::synthetic;
use rrq_obs::ExplainDoc;
use rrq_types::{PointSet, QueryStats, RkrQuery, RtkQuery, WeightSet};
use std::sync::Arc;

/// SplitMix64 (Steele et al.) — the workspace's seeded trace generator.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

const RANGE: f64 = 100.0;

fn random_point(rng: &mut SplitMix64, dim: usize) -> Vec<f64> {
    (0..dim).map(|_| rng.f64() * RANGE * 0.999).collect()
}

fn random_weight(rng: &mut SplitMix64, dim: usize) -> Vec<f64> {
    let mut row: Vec<f64> = (0..dim).map(|_| rng.f64() + 1e-6).collect();
    let sum: f64 = row.iter().sum();
    for v in &mut row {
        *v /= sum;
    }
    row
}

/// The published live rows, maintained independently of the engine: the
/// ground truth the rebuild oracle indexes. Order is insertion order
/// with deletions folded out — exactly the engine's internal-id order.
#[derive(Default)]
struct Shadow {
    points: Vec<(u64, Vec<f64>)>,
    weights: Vec<(u64, Vec<f64>)>,
}

/// A staged-but-unpublished mutation, mirrored test-side.
enum PendingOp {
    InsP(u64, Vec<f64>),
    DelP(u64),
    InsW(u64, Vec<f64>),
    DelW(u64),
}

impl Shadow {
    fn apply(&mut self, pending: &mut Vec<PendingOp>) {
        for op in pending.drain(..) {
            match op {
                PendingOp::InsP(e, row) => self.points.push((e, row)),
                PendingOp::DelP(e) => self.points.retain(|(x, _)| *x != e),
                PendingOp::InsW(e, row) => self.weights.push((e, row)),
                PendingOp::DelW(e) => self.weights.retain(|(x, _)| *x != e),
            }
        }
    }

    fn rebuild_sets(&self, dim: usize) -> (PointSet, WeightSet, Vec<u64>) {
        let mut p = PointSet::new(dim, RANGE).unwrap();
        for (_, row) in &self.points {
            p.push_slice(row).unwrap();
        }
        let mut w = WeightSet::new(dim).unwrap();
        let mut w_ext = Vec::with_capacity(self.weights.len());
        for (e, row) in &self.weights {
            w.push_slice(row).unwrap();
            w_ext.push(*e);
        }
        (p, w, w_ext)
    }
}

#[derive(Clone, Copy, Debug)]
enum Engine {
    Seq,
    Par(BoundMode),
    Pooled,
}

const ENGINES: [Engine; 5] = [
    Engine::Seq,
    Engine::Par(BoundMode::Local),
    Engine::Par(BoundMode::Epoch(8)),
    Engine::Par(BoundMode::Shared),
    Engine::Pooled,
];

/// Plain (production-path) run: RTK ext-id list and RKR (ext, rank)
/// list, plus the stats of the run.
fn run_plain<F: Fn(usize) -> u64>(
    gir: &Gir<'_, impl rrq_core::grid::GridTable + Sync>,
    engine: Engine,
    q: &[f64],
    k: usize,
    ext_of: F,
) -> (Vec<u64>, Vec<(u64, usize)>, QueryStats) {
    let mut stats = QueryStats::default();
    let (rtk, rkr) = match engine {
        Engine::Seq => (
            gir.reverse_top_k(q, k, &mut stats),
            gir.reverse_k_ranks(q, k, &mut stats),
        ),
        Engine::Par(mode) => {
            let par = gir.parallel(ParConfig { threads: 3, mode });
            (
                par.reverse_top_k(q, k, &mut stats),
                par.reverse_k_ranks(q, k, &mut stats),
            )
        }
        Engine::Pooled => pool_scope(3, |pool| {
            let par = gir
                .parallel(ParConfig {
                    threads: 3,
                    mode: BoundMode::Local,
                })
                .with_pool(pool);
            (
                par.reverse_top_k(q, k, &mut stats),
                par.reverse_k_ranks(q, k, &mut stats),
            )
        }),
    };
    let rtk_ext: Vec<u64> = rtk.weights().iter().map(|wid| ext_of(wid.0)).collect();
    let rkr_ext: Vec<(u64, usize)> = rkr
        .entries()
        .iter()
        .map(|e| (ext_of(e.weight.0), e.rank))
        .collect();
    (rtk_ext, rkr_ext, stats)
}

/// Explained run of the same query: reconciles the funnel against the
/// run's own counters and returns the ext-mapped result sets.
fn run_explained<F: Fn(usize) -> u64>(
    gir: &Gir<'_, impl rrq_core::grid::GridTable + Sync>,
    engine: Engine,
    q: &[f64],
    k: usize,
    ext_of: F,
    label: &str,
) -> (Vec<u64>, Vec<(u64, usize)>) {
    let mut rtk_out = Vec::new();
    let mut rkr_out = Vec::new();
    for rtk in [true, false] {
        let mut stats = QueryStats::default();
        let mut doc = ExplainDoc::new();
        match engine {
            Engine::Seq => {
                if rtk {
                    gir.reverse_top_k_explained(q, k, &mut stats, &mut doc);
                } else {
                    gir.reverse_k_ranks_explained(q, k, &mut stats, &mut doc);
                }
            }
            Engine::Par(mode) => {
                let par = gir.parallel(ParConfig { threads: 3, mode });
                if rtk {
                    par.reverse_top_k_explained(q, k, &mut stats, &mut doc);
                } else {
                    par.reverse_k_ranks_explained(q, k, &mut stats, &mut doc);
                }
            }
            Engine::Pooled => pool_scope(3, |pool| {
                let par = gir
                    .parallel(ParConfig {
                        threads: 3,
                        mode: BoundMode::Local,
                    })
                    .with_pool(pool);
                if rtk {
                    par.reverse_top_k_explained(q, k, &mut stats, &mut doc);
                } else {
                    par.reverse_k_ranks_explained(q, k, &mut stats, &mut doc);
                }
            }),
        }
        doc.funnel
            .reconcile(&stats.counters())
            .unwrap_or_else(|e| panic!("{label} {engine:?} funnel: {e}"));
        if rtk {
            rtk_out = doc
                .results
                .iter()
                .map(|(wid, _)| ext_of(*wid as usize))
                .collect();
        } else {
            rkr_out = doc
                .results
                .iter()
                .map(|(wid, rank)| (ext_of(*wid as usize), *rank as usize))
                .collect();
        }
    }
    (rtk_out, rkr_out)
}

/// The heart of the harness: at one query point, every engine over the
/// mutable snapshot must equal every engine over the rebuilt oracle,
/// after external-id mapping, and every funnel must reconcile.
#[allow(clippy::too_many_arguments)]
fn assert_query_point(
    state: &Arc<EngineState>,
    shadow: &Shadow,
    dim: usize,
    config: GirConfig,
    buckets: Option<&[usize]>,
    q: &[f64],
    k: usize,
    label: &str,
) {
    let view = state.view();
    let (op, ow, ow_ext) = shadow.rebuild_sets(dim);
    let mut oracle = Gir::new(&op, &ow, config);
    if let Some(b) = buckets {
        let idx = oracle.build_threshold_index(b).unwrap();
        oracle.attach_threshold_index(idx).unwrap();
    }

    // The shadow IS the engine's live-row bookkeeping, pinned directly.
    let live_w: Vec<(u64, Vec<f64>)> = state
        .live_weight_entries()
        .iter()
        .map(|(e, r)| (*e, r.to_vec()))
        .collect();
    assert_eq!(live_w, shadow.weights, "{label}: live weights vs shadow");
    let live_p: Vec<(u64, Vec<f64>)> = state
        .live_point_entries()
        .iter()
        .map(|(e, r)| (*e, r.to_vec()))
        .collect();
    assert_eq!(live_p, shadow.points, "{label}: live points vs shadow");

    let (want_rtk, want_rkr, _) = run_plain(&oracle, Engine::Seq, q, k, |wid| ow_ext[wid]);

    for engine in ENGINES {
        let (got_rtk, got_rkr, _) =
            run_plain(&view, engine, q, k, |wid| state.weight_external(wid));
        assert_eq!(got_rtk, want_rtk, "{label} {engine:?}: rtk vs rebuild");
        assert_eq!(got_rkr, want_rkr, "{label} {engine:?}: rkr vs rebuild");

        // Oracle under the same engine must agree with oracle-seq too
        // (per-engine determinism of the rebuilt index).
        let (o_rtk, o_rkr, _) = run_plain(&oracle, engine, q, k, |wid| ow_ext[wid]);
        assert_eq!(o_rtk, want_rtk, "{label} {engine:?}: oracle engines differ");
        assert_eq!(o_rkr, want_rkr, "{label} {engine:?}: oracle engines differ");

        // Explained runs: identical results, exactly reconciled funnel —
        // on the mutable view (tombstone/append mirrors included) and on
        // the rebuild.
        let (e_rtk, e_rkr) =
            run_explained(&view, engine, q, k, |wid| state.weight_external(wid), label);
        assert_eq!(e_rtk, want_rtk, "{label} {engine:?}: explained rtk");
        assert_eq!(e_rkr, want_rkr, "{label} {engine:?}: explained rkr");
        let _ = run_explained(&oracle, engine, q, k, |wid| ow_ext[wid], label);
    }
}

/// Replays one generated trace. Returns the number of query points
/// checked (so callers can assert the trace was not vacuous).
#[allow(clippy::too_many_arguments)]
fn replay_trace(
    dim: usize,
    np0: usize,
    nw0: usize,
    partitions: usize,
    seed: u64,
    n_ops: usize,
    buckets: Option<&[usize]>,
    label_prefix: &str,
) -> usize {
    let p0 = synthetic::uniform_points(dim, np0, RANGE, seed).unwrap();
    let w0 = synthetic::uniform_weights(dim, nw0, seed + 1).unwrap();
    let config = GirConfig {
        partitions,
        ..GirConfig::default()
    };
    let mut engine = DynamicEngine::new(p0.clone(), w0.clone(), config).unwrap();
    if let Some(b) = buckets {
        engine.enable_threshold_index(b).unwrap();
    }

    let mut shadow = Shadow::default();
    for (i, (_, row)) in p0.iter().enumerate() {
        shadow.points.push((i as u64, row.to_vec()));
    }
    for (i, (_, row)) in w0.iter().enumerate() {
        shadow.weights.push((i as u64, row.to_vec()));
    }
    // Stageable set: published live ∪ staged inserts − staged deletes.
    let mut stageable_p: Vec<u64> = shadow.points.iter().map(|(e, _)| *e).collect();
    let mut stageable_w: Vec<u64> = shadow.weights.iter().map(|(e, _)| *e).collect();
    let mut pending: Vec<PendingOp> = Vec::new();

    let mut rng = SplitMix64(seed ^ 0xdead_beef);
    let mut stats = QueryStats::default();
    let mut queries_checked = 0usize;

    for step in 0..n_ops {
        let label = format!("{label_prefix} step {step}");
        match rng.below(100) {
            0..=13 => {
                // Insert a point — half the time a byte-identical
                // duplicate of a live row (tie semantics under re-insert).
                let row = if rng.below(2) == 0 && !shadow.points.is_empty() {
                    let j = rng.below(shadow.points.len() as u64) as usize;
                    shadow.points[j].1.clone()
                } else {
                    random_point(&mut rng, dim)
                };
                let ext = engine.insert_point(&row).unwrap();
                stageable_p.push(ext);
                pending.push(PendingOp::InsP(ext, row));
            }
            14..=23 => {
                if stageable_p.len() > 4 {
                    let j = rng.below(stageable_p.len() as u64) as usize;
                    let ext = stageable_p.swap_remove(j);
                    engine.delete_point(ext).unwrap();
                    pending.push(PendingOp::DelP(ext));
                }
            }
            24..=33 => {
                let row = random_weight(&mut rng, dim);
                let ext = engine.insert_weight(&row).unwrap();
                stageable_w.push(ext);
                pending.push(PendingOp::InsW(ext, row));
            }
            34..=39 => {
                if stageable_w.len() > 3 {
                    let j = rng.below(stageable_w.len() as u64) as usize;
                    let ext = stageable_w.swap_remove(j);
                    engine.delete_weight(ext).unwrap();
                    pending.push(PendingOp::DelW(ext));
                }
            }
            40..=52 => {
                let before = engine.epoch();
                let epoch = engine.publish(&mut stats).unwrap();
                assert_eq!(epoch, before + 1, "{label}: epoch must be monotone");
                shadow.apply(&mut pending);
            }
            53..=55 => {
                engine.compact(&mut stats).unwrap();
                shadow.apply(&mut pending);
                let state = engine.snapshot();
                assert_eq!(
                    state.tombstoned_counts(),
                    (0, 0),
                    "{label}: fold left tombstones"
                );
                assert_eq!(
                    state.appended_counts(),
                    (0, 0),
                    "{label}: fold left appends"
                );
            }
            _ => {
                // Query point: the published snapshot vs the rebuilt
                // shadow. k sweeps both edges.
                let state = engine.snapshot();
                let q = if rng.below(3) == 0 || shadow.points.is_empty() {
                    random_point(&mut rng, dim)
                } else {
                    let j = rng.below(shadow.points.len() as u64) as usize;
                    shadow.points[j].1.clone()
                };
                let k = match rng.below(4) {
                    0 => 1,
                    1 => 2 + rng.below(5) as usize,
                    2 => shadow.weights.len().max(1),
                    _ => shadow.weights.len() + 3,
                };
                assert_query_point(&state, &shadow, dim, config, buckets, &q, k, &label);
                queries_checked += 1;
            }
        }
    }
    // Final barrier: publish what's left and check once more.
    engine.publish(&mut stats).unwrap();
    shadow.apply(&mut pending);
    let state = engine.snapshot();
    let q = random_point(&mut rng, dim);
    assert_query_point(
        &state,
        &shadow,
        dim,
        config,
        buckets,
        &q,
        3,
        &format!("{label_prefix} final"),
    );
    assert!(
        stats.epoch_published > 0,
        "{label_prefix}: no publish in trace"
    );
    queries_checked + 1
}

/// The tentpole matrix: shapes × grids × seeds, no threshold index.
#[test]
fn mutable_engine_equals_rebuild_across_traces() {
    let mut total = 0;
    for (dim, np0, nw0, partitions, seed) in [
        (3usize, 60, 16, 8, 42u64),
        (4, 90, 20, 32, 7),
        (2, 40, 12, 16, 1234),
    ] {
        total += replay_trace(
            dim,
            np0,
            nw0,
            partitions,
            seed,
            90,
            None,
            &format!("trace(d{dim},s{seed})"),
        );
    }
    assert!(total >= 30, "traces checked only {total} query points");
}

/// Same harness with a threshold index attached: incremental repair at
/// every publish must keep the mutable engine equal to an oracle that
/// rebuilds its threshold table from scratch.
#[test]
fn mutable_engine_with_threshold_equals_rebuild() {
    let checked = replay_trace(3, 70, 18, 16, 99, 80, Some(&[1, 4, 16, 64]), "thr-trace");
    assert!(checked >= 8, "threshold trace checked only {checked}");
}

/// Edge trace: every point of one grid cell is deleted (a whole cell
/// goes dark), then byte-identical duplicates are re-inserted. The
/// strictly-preceding rank rule and smaller-id tie-breaks must survive
/// both transitions.
#[test]
fn deleting_a_whole_cell_and_reinserting_duplicates_matches_rebuild() {
    let dim = 3;
    let config = GirConfig {
        partitions: 8,
        ..GirConfig::default()
    };
    // 12 unique points plus 6 byte-identical copies of one row: the
    // copies all quantise into the same cell.
    let dup_row = vec![37.5, 37.5, 37.5];
    let mut p = PointSet::new(dim, RANGE).unwrap();
    let uniq = synthetic::uniform_points(dim, 12, RANGE, 5).unwrap();
    for (_, row) in uniq.iter() {
        p.push_slice(row).unwrap();
    }
    for _ in 0..6 {
        p.push_slice(&dup_row).unwrap();
    }
    let w = synthetic::uniform_weights(dim, 10, 6).unwrap();
    let mut engine = DynamicEngine::new(p.clone(), w.clone(), config).unwrap();
    let mut shadow = Shadow::default();
    for (i, (_, row)) in p.iter().enumerate() {
        shadow.points.push((i as u64, row.to_vec()));
    }
    for (i, (_, row)) in w.iter().enumerate() {
        shadow.weights.push((i as u64, row.to_vec()));
    }
    let mut pending = Vec::new();
    let mut stats = QueryStats::default();

    // Phase 1: delete every copy (ids 12..18) — the whole cell goes dark.
    for ext in 12u64..18 {
        engine.delete_point(ext).unwrap();
        pending.push(PendingOp::DelP(ext));
    }
    engine.publish(&mut stats).unwrap();
    shadow.apply(&mut pending);
    let state = engine.snapshot();
    for k in [1usize, 5, 13] {
        assert_query_point(&state, &shadow, dim, config, None, &dup_row, k, "cell-dark");
    }

    // Phase 2: re-insert byte-identical duplicates (plus one more than
    // before) and query with q equal to the duplicated row — maximal tie
    // pressure on the strictly-preceding rank rule.
    for _ in 0..7 {
        let ext = engine.insert_point(&dup_row).unwrap();
        pending.push(PendingOp::InsP(ext, dup_row.clone()));
    }
    engine.publish(&mut stats).unwrap();
    shadow.apply(&mut pending);
    let state = engine.snapshot();
    for k in [1usize, 5, 10, 13] {
        assert_query_point(
            &state,
            &shadow,
            dim,
            config,
            None,
            &dup_row,
            k,
            "cell-reborn",
        );
    }

    // Phase 3: compaction folds the churn; results must not move.
    engine.compact(&mut stats).unwrap();
    let state = engine.snapshot();
    assert_eq!(state.tombstoned_counts(), (0, 0));
    for k in [1usize, 5, 13] {
        assert_query_point(
            &state,
            &shadow,
            dim,
            config,
            None,
            &dup_row,
            k,
            "cell-compacted",
        );
    }
}

/// Concurrency pinning: pool workers holding an epoch-N snapshot answer
/// identically before and after the main thread publishes N+1 mid-batch
/// — no torn reads — and same-seed runs are counter-exact. The writer
/// never blocks on the readers' `Arc`.
#[test]
fn pinned_epoch_answers_identically_across_a_publish() {
    let dim = 4;
    let config = GirConfig {
        partitions: 16,
        ..GirConfig::default()
    };
    let p = synthetic::uniform_points(dim, 80, RANGE, 21).unwrap();
    let w = synthetic::uniform_weights(dim, 24, 22).unwrap();
    let q = {
        let mut rng = SplitMix64(77);
        random_point(&mut rng, dim)
    };
    let mut engine = DynamicEngine::new(p, w, config).unwrap();
    let mut stats = QueryStats::default();
    engine.delete_point(3).unwrap();
    engine.insert_point(&[1.0, 2.0, 3.0, 4.0]).unwrap();
    engine.publish(&mut stats).unwrap();

    // Pin epoch 1.
    let pinned = engine.snapshot();
    assert_eq!(pinned.epoch(), 1);
    let view = pinned.view();

    pool_scope(3, |pool| {
        let par = engine_view_pooled(&view, pool);
        let mut s1 = QueryStats::default();
        let before = par.reverse_k_ranks(&q, 6, &mut s1);

        // Writer publishes N+1 on the MAIN thread, mid-batch: the pinned
        // snapshot must not observe it.
        let mut wstats = QueryStats::default();
        let mut rng = SplitMix64(99);
        for _ in 0..10 {
            let row = random_point(&mut rng, dim);
            engine.insert_point(&row).unwrap();
        }
        engine.delete_weight(5).unwrap();
        let epoch = engine.publish(&mut wstats).unwrap();
        assert_eq!(epoch, 2);

        let mut s2 = QueryStats::default();
        let after = par.reverse_k_ranks(&q, 6, &mut s2);
        assert_eq!(
            before.entries(),
            after.entries(),
            "pinned snapshot result torn by publish"
        );
        // Same-seed runs are benchdiff-exact: identical counters.
        assert_eq!(s1, s2, "pinned snapshot counters torn by publish");
    });

    // A fresh snapshot sees the new epoch and different live data.
    let fresh = engine.snapshot();
    assert_eq!(fresh.epoch(), 2);
    assert_eq!(fresh.live_point_count(), pinned.live_point_count() + 10);
}

fn engine_view_pooled<'q, 'a>(
    view: &'a Gir<'a, &'a rrq_core::Grid>,
    pool: &'q rrq_core::WorkerPool<'a>,
) -> rrq_core::ParGir<'q, 'a, &'a rrq_core::Grid> {
    view.parallel(ParConfig {
        threads: 3,
        mode: BoundMode::Local,
    })
    .with_pool(pool)
}

/// Unwind safety: a writer that panics mid-batch (after staging, before
/// the publish swap completes) leaves the published state fully
/// serviceable — readers keep their epoch, the handle is not poisoned,
/// and the engine publishes cleanly afterwards.
#[test]
fn panicking_writer_leaves_published_state_intact() {
    let dim = 3;
    let config = GirConfig::default();
    let p = synthetic::uniform_points(dim, 50, RANGE, 31).unwrap();
    let w = synthetic::uniform_weights(dim, 12, 32).unwrap();
    let mut engine = DynamicEngine::new(p, w, config).unwrap();
    let mut stats = QueryStats::default();
    engine.insert_point(&[5.0, 5.0, 5.0]).unwrap();
    engine.publish(&mut stats).unwrap();

    let pinned = engine.snapshot();
    assert_eq!(pinned.epoch(), 1);
    let q = vec![5.0, 5.0, 5.0];
    let mut s = QueryStats::default();
    let before = pinned.view().reverse_k_ranks(&q, 4, &mut s);

    // The writer stages half a batch, publishes it, then panics before
    // staging the rest. catch_unwind plays the role of the caller's
    // supervisor.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut wstats = QueryStats::default();
        engine.delete_point(2).unwrap();
        engine.publish(&mut wstats).unwrap();
        panic!("writer dies mid-batch");
    }));
    assert!(result.is_err(), "writer was supposed to panic");

    // The pinned reader still answers from epoch 1, identically.
    let mut s2 = QueryStats::default();
    let again = pinned.view().reverse_k_ranks(&q, 4, &mut s2);
    assert_eq!(before.entries(), again.entries());
    assert_eq!(s, s2);

    // The handle is not poisoned: fresh snapshots serve the epoch the
    // panicking writer managed to publish, and the engine still works.
    let fresh = engine.snapshot();
    assert_eq!(fresh.epoch(), 2);
    let mut wstats = QueryStats::default();
    engine.insert_weight(&[0.5, 0.3, 0.2]).unwrap();
    let epoch = engine.publish(&mut wstats).unwrap();
    assert_eq!(epoch, 3);
    assert_eq!(engine.snapshot().live_weight_count(), 13);
}
