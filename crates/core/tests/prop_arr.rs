//! Property-style tests for aggregate reverse rank queries: the
//! GIR-accelerated implementation must equal the definition-level oracle
//! for arbitrary bundles, aggregations and data. Cases come from seeded
//! deterministic sweeps (the offline build has no `proptest`).

use rrq_core::arr::aggregate_reverse_k_ranks_naive;
use rrq_core::{Aggregate, Gir, GirConfig};
use rrq_data::rng::{Rng, StdRng};
use rrq_types::{PointId, PointSet, QueryStats, WeightSet};

const RANGE: f64 = 1000.0;
const CASES: usize = 40;

fn random_workload(rng: &mut StdRng) -> (usize, Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let dim = rng.gen_range(1..5);
    let n_points = rng.gen_range(2..60);
    let n_weights = rng.gen_range(1..25);
    let points = (0..n_points)
        .map(|_| (0..dim).map(|_| rng.gen_f64() * 999.0).collect())
        .collect();
    let weights = (0..n_weights)
        .map(|_| (0..dim).map(|_| 0.01 + rng.gen_f64() * 0.99).collect())
        .collect();
    (dim, points, weights)
}

fn build(dim: usize, points: &[Vec<f64>], weights: &[Vec<f64>]) -> (PointSet, WeightSet) {
    let mut ps = PointSet::with_capacity(dim, RANGE, points.len()).unwrap();
    for p in points {
        ps.push_slice(p).unwrap();
    }
    let mut ws = WeightSet::with_capacity(dim, weights.len()).unwrap();
    for w in weights {
        let s: f64 = w.iter().sum();
        let mut n: Vec<f64> = w.iter().map(|v| v / s).collect();
        let drift: f64 = 1.0 - n.iter().sum::<f64>();
        n[0] += drift;
        ws.push_slice(&n).unwrap();
    }
    (ps, ws)
}

#[test]
fn arr_gir_equals_oracle() {
    let mut rng = StdRng::seed_from_u64(0xA44E_0001);
    for case in 0..CASES {
        let (dim, points, weights) = random_workload(&mut rng);
        let k = rng.gen_range(1..12);
        let use_max = case % 2 == 0;
        let n = rng.gen_range(2..64);
        let (p, w) = build(dim, &points, &weights);
        let bundle_len = rng.gen_range(1..4);
        let bundle: Vec<Vec<f64>> = (0..bundle_len)
            .map(|_| p.point(PointId(rng.gen_range(0..p.len()))).to_vec())
            .collect();
        let agg = if use_max {
            Aggregate::Max
        } else {
            Aggregate::Sum
        };
        let gir = Gir::new(
            &p,
            &w,
            GirConfig {
                partitions: n,
                ..Default::default()
            },
        );
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        assert_eq!(
            gir.aggregate_reverse_k_ranks(&bundle, k, agg, &mut s1),
            aggregate_reverse_k_ranks_naive(&p, &w, &bundle, k, agg, &mut s2)
        );
    }
}

/// Bundle aggregates bound their members: for Sum the aggregate of the
/// best weight is at least the best single-member rank, and for Max it
/// equals the worst member's rank under that weight.
#[test]
fn aggregate_ordering_properties() {
    let mut rng = StdRng::seed_from_u64(0xA44E_0002);
    for _ in 0..CASES {
        let (dim, points, weights) = random_workload(&mut rng);
        let (p, w) = build(dim, &points, &weights);
        let qa = p.point(PointId(rng.gen_range(0..p.len()))).to_vec();
        let qb = p.point(PointId(rng.gen_range(0..p.len()))).to_vec();
        let bundle = vec![qa, qb];
        let gir = Gir::with_defaults(&p, &w);
        let mut s = QueryStats::default();
        let sum = gir.aggregate_reverse_k_ranks(&bundle, 1, Aggregate::Sum, &mut s);
        let max = gir.aggregate_reverse_k_ranks(&bundle, 1, Aggregate::Max, &mut s);
        // max-aggregate <= sum-aggregate for the respective winners.
        assert!(max.entries()[0].rank <= sum.entries()[0].rank);
    }
}
