//! Property-based tests for aggregate reverse rank queries: the
//! GIR-accelerated implementation must equal the definition-level oracle
//! for arbitrary bundles, aggregations and data.

use proptest::prelude::*;
use rrq_core::arr::aggregate_reverse_k_ranks_naive;
use rrq_core::{Aggregate, Gir, GirConfig};
use rrq_types::{PointId, PointSet, QueryStats, WeightSet};

const RANGE: f64 = 1000.0;

fn workload_strategy() -> impl Strategy<Value = (usize, Vec<Vec<f64>>, Vec<Vec<f64>>)> {
    (1usize..5).prop_flat_map(|dim| {
        (
            Just(dim),
            prop::collection::vec(prop::collection::vec(0.0f64..999.0, dim), 2..60),
            prop::collection::vec(prop::collection::vec(0.01f64..1.0, dim), 1..25),
        )
    })
}

fn build(dim: usize, points: &[Vec<f64>], weights: &[Vec<f64>]) -> (PointSet, WeightSet) {
    let mut ps = PointSet::with_capacity(dim, RANGE, points.len()).unwrap();
    for p in points {
        ps.push_slice(p).unwrap();
    }
    let mut ws = WeightSet::with_capacity(dim, weights.len()).unwrap();
    for w in weights {
        let s: f64 = w.iter().sum();
        let mut n: Vec<f64> = w.iter().map(|v| v / s).collect();
        let drift: f64 = 1.0 - n.iter().sum::<f64>();
        n[0] += drift;
        ws.push_slice(&n).unwrap();
    }
    (ps, ws)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn arr_gir_equals_oracle(
        (dim, points, weights) in workload_strategy(),
        bundle_sel in prop::collection::vec(any::<prop::sample::Index>(), 1..4),
        k in 1usize..12,
        use_max in any::<bool>(),
        n in 2usize..64,
    ) {
        let (p, w) = build(dim, &points, &weights);
        let bundle: Vec<Vec<f64>> = bundle_sel
            .iter()
            .map(|s| p.point(PointId(s.index(p.len()))).to_vec())
            .collect();
        let agg = if use_max { Aggregate::Max } else { Aggregate::Sum };
        let gir = Gir::new(&p, &w, GirConfig { partitions: n, ..Default::default() });
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        prop_assert_eq!(
            gir.aggregate_reverse_k_ranks(&bundle, k, agg, &mut s1),
            aggregate_reverse_k_ranks_naive(&p, &w, &bundle, k, agg, &mut s2)
        );
    }

    /// Bundle aggregates bound their members: for Sum the aggregate of
    /// the best weight is at least the best single-member rank, and for
    /// Max it equals the worst member's rank under that weight.
    #[test]
    fn aggregate_ordering_properties(
        (dim, points, weights) in workload_strategy(),
        a in any::<prop::sample::Index>(),
        b in any::<prop::sample::Index>(),
    ) {
        let (p, w) = build(dim, &points, &weights);
        let qa = p.point(PointId(a.index(p.len()))).to_vec();
        let qb = p.point(PointId(b.index(p.len()))).to_vec();
        let bundle = vec![qa, qb];
        let gir = Gir::with_defaults(&p, &w);
        let mut s = QueryStats::default();
        let sum = gir.aggregate_reverse_k_ranks(&bundle, 1, Aggregate::Sum, &mut s);
        let max = gir.aggregate_reverse_k_ranks(&bundle, 1, Aggregate::Max, &mut s);
        // max-aggregate <= sum-aggregate for the respective winners.
        prop_assert!(max.entries()[0].rank <= sum.entries()[0].rank);
    }
}
