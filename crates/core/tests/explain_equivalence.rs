//! Explain-document determinism and equivalence matrix.
//!
//! Three properties across a seeded shape × grid × engine-mode sweep:
//!
//! 1. **Determinism** — running the same seeded query twice produces
//!    byte-identical `ExplainDoc` JSON, for the sequential engine and
//!    for `ParGir` in deterministic (local) and epoch bound modes
//!    (shard sinks merge in worker-index order, so the document is a
//!    pure function of the input).
//! 2. **Cross-engine agreement** — sequential and parallel documents of
//!    the same query are structurally equal (header + result set); the
//!    coverage sections legitimately differ because parallel shards
//!    prune with different bounds.
//! 3. **Reconciliation** — every document's funnel agrees *exactly*
//!    with the `QueryStats` the same run produced, and the explained
//!    entry points return the same results and counters as the plain
//!    ones (explain observes the scan, never perturbs it).
//!
//! Plus the fault-injection check: corrupting one cell of a captured
//! document makes `ExplainDoc::diff` name exactly that cell.

use rrq_core::{BoundMode, Gir, GirConfig, ParConfig};
use rrq_data::synthetic;
use rrq_obs::explain::cell_key;
use rrq_obs::ExplainDoc;
use rrq_types::{PointId, PointSet, QueryStats, RkrQuery, RtkQuery, WeightSet};

/// One engine configuration of the sweep.
#[derive(Clone, Copy, Debug)]
enum Engine {
    Seq,
    Par(BoundMode),
}

impl Engine {
    fn deterministic_doc(self) -> bool {
        // Shared-atomic bound exchange is scheduling-dependent: its
        // timeline (and, through tightened pruning, its funnel) may
        // differ run to run. Header and results still agree.
        !matches!(self, Engine::Par(BoundMode::Shared))
    }
}

const ENGINES: [Engine; 4] = [
    Engine::Seq,
    Engine::Par(BoundMode::Local),
    Engine::Par(BoundMode::Epoch(16)),
    Engine::Par(BoundMode::Shared),
];

fn workload(dim: usize, np: usize, nw: usize, seed: u64) -> (PointSet, WeightSet) {
    (
        synthetic::uniform_points(dim, np, 10_000.0, seed).unwrap(),
        synthetic::uniform_weights(dim, nw, seed + 1).unwrap(),
    )
}

/// Runs one explained query on the given engine; returns the document
/// plus the stats of the same run.
fn run_explained(
    gir: &Gir<'_>,
    engine: Engine,
    rtk: bool,
    q: &[f64],
    k: usize,
) -> (ExplainDoc, QueryStats) {
    let mut stats = QueryStats::default();
    let mut doc = ExplainDoc::new();
    match engine {
        Engine::Seq => {
            if rtk {
                gir.reverse_top_k_explained(q, k, &mut stats, &mut doc);
            } else {
                gir.reverse_k_ranks_explained(q, k, &mut stats, &mut doc);
            }
        }
        Engine::Par(mode) => {
            let par = gir.parallel(ParConfig { threads: 3, mode });
            if rtk {
                par.reverse_top_k_explained(q, k, &mut stats, &mut doc);
            } else {
                par.reverse_k_ranks_explained(q, k, &mut stats, &mut doc);
            }
        }
    }
    (doc, stats)
}

/// The full sweep: shapes × grids × k × both query kinds × all engines.
#[test]
fn explain_matrix_is_deterministic_reconciled_and_engine_invariant() {
    for (dim, np, nw, seed) in [(3usize, 240, 80, 11u64), (5, 400, 60, 23)] {
        let (p, w) = workload(dim, np, nw, seed);
        for partitions in [8usize, 32] {
            let gir = Gir::new(
                &p,
                &w,
                GirConfig {
                    partitions,
                    ..GirConfig::default()
                },
            );
            let q = p.point(PointId(np / 2)).to_vec();
            for k in [1usize, 12] {
                for rtk in [true, false] {
                    let label = format!(
                        "dim={dim} n={partitions} k={k} {}",
                        if rtk { "rtk" } else { "rkr" }
                    );
                    let (seq_doc, seq_stats) = run_explained(&gir, Engine::Seq, rtk, &q, k);
                    seq_doc
                        .funnel
                        .reconcile(&seq_stats.counters())
                        .unwrap_or_else(|e| panic!("{label} seq: {e}"));
                    for engine in ENGINES {
                        let (doc, stats) = run_explained(&gir, engine, rtk, &q, k);
                        doc.funnel
                            .reconcile(&stats.counters())
                            .unwrap_or_else(|e| panic!("{label} {engine:?}: {e}"));
                        assert!(
                            seq_doc.structural_eq(&doc),
                            "{label} {engine:?} diverges from seq: {:?}",
                            seq_doc.diff(&doc, true)
                        );
                        if engine.deterministic_doc() {
                            let (again, _) = run_explained(&gir, engine, rtk, &q, k);
                            assert_eq!(
                                doc.to_pretty(),
                                again.to_pretty(),
                                "{label} {engine:?} not byte-reproducible"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// The explained entry points are pure observers: identical results and
/// identical counters to the plain paths, engine by engine.
#[test]
fn explained_paths_do_not_perturb_results_or_stats() {
    let (p, w) = workload(4, 300, 90, 7);
    let gir = Gir::with_defaults(&p, &w);
    let q = p.point(PointId(42)).to_vec();
    let k = 10;

    let mut plain_stats = QueryStats::default();
    let plain_rtk = gir.reverse_top_k(&q, k, &mut plain_stats);
    let (doc, stats) = run_explained(&gir, Engine::Seq, true, &q, k);
    assert_eq!(stats, plain_stats, "rtk counters perturbed by explain");
    let expect: Vec<u64> = plain_rtk.weights().iter().map(|wid| wid.0 as u64).collect();
    let got: Vec<u64> = doc.results.iter().map(|(wid, _)| *wid).collect();
    assert_eq!(got, expect, "rtk result set mismatch");

    let mut plain_stats = QueryStats::default();
    let plain_rkr = gir.reverse_k_ranks(&q, k, &mut plain_stats);
    let (doc, stats) = run_explained(&gir, Engine::Seq, false, &q, k);
    assert_eq!(stats, plain_stats, "rkr counters perturbed by explain");
    let expect: Vec<(u64, u64)> = plain_rkr
        .entries()
        .iter()
        .map(|e| (e.weight.0 as u64, e.rank as u64))
        .collect();
    assert_eq!(doc.results, expect, "rkr result set mismatch");

    // Parallel local mode: same counters as its own plain run.
    let par = gir.parallel(ParConfig {
        threads: 3,
        mode: BoundMode::Local,
    });
    let mut plain_stats = QueryStats::default();
    let _ = par.reverse_k_ranks(&q, k, &mut plain_stats);
    let (_, stats) = run_explained(&gir, Engine::Par(BoundMode::Local), false, &q, k);
    assert_eq!(stats, plain_stats, "par counters perturbed by explain");
}

/// Fault injection: corrupt one cell of a captured document and the
/// diff names exactly that cell, before any later divergence.
#[test]
fn diff_pinpoints_an_injected_cell_divergence() {
    let (p, w) = workload(3, 240, 80, 31);
    let gir = Gir::with_defaults(&p, &w);
    let q = p.point(PointId(17)).to_vec();
    let (doc, _) = run_explained(&gir, Engine::Seq, false, &q, 8);
    assert!(doc.cells.len() >= 3, "need cells to corrupt");

    let mut corrupt = doc.clone();
    // Pick a middle cell so the diff must walk past intact ones, and
    // also drift the timeline — the cell must still win (cells order
    // before timeline).
    let victim = corrupt
        .cells
        .keys()
        .nth(corrupt.cells.len() / 2)
        .unwrap()
        .clone();
    corrupt.cells.get_mut(&victim).unwrap().refined.count += 1;
    corrupt.timeline.clear();

    let d = doc.diff(&corrupt, false).expect("corruption detected");
    assert_eq!(d.section, "cell", "wrong section: {d}");
    assert_eq!(d.key, cell_key(&victim), "wrong cell: {d}");

    // Structural diff ignores coverage: the corrupted doc still agrees.
    assert!(doc.structural_eq(&corrupt));

    // And the diff survives a serialisation round trip.
    let reparsed = ExplainDoc::parse(&corrupt.to_pretty()).unwrap();
    let d2 = doc
        .diff(&reparsed, false)
        .expect("corruption survives JSON");
    assert_eq!(d2.section, "cell");
    assert_eq!(d2.key, cell_key(&victim));
}
