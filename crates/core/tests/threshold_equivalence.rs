//! Differential suite for the materialized threshold index.
//!
//! The contract under test: attaching a [`ThresholdIndex`] changes *how
//! much work* the engines do (weights decided by one k-th-score
//! comparison never reach the grid scan) but never *what they answer*.
//!
//! 1. **Byte-identity** — across shapes × grid resolutions × k values
//!    (materialized buckets, bracket straddles, `k = 1`, `k = |P|`,
//!    `k > |P|`) × engines (sequential, `ParGir` in all three bound
//!    modes, pool-backed), RTK and RKR results with the index attached
//!    equal the results without it, entry for entry.
//! 2. **Funnel reconciliation** — explained runs with the index
//!    attached still reconcile their funnel exactly against the
//!    engine's `QueryStats`: the short-circuit books `threshold_hits`
//!    instead of distorting `scanned`, and indexed sequential/parallel
//!    documents agree structurally.
//! 3. **Sentinel boundaries** — the `usize::MAX` unsaturated-heap
//!    sentinel paths are pinned against the definitional `Naive`
//!    oracle at the heap-size edges (`k = 1`, `k = |P|`, `k = |P|+1`,
//!    `k = |W|`), with and without the index.

use rrq_baselines::Naive;
use rrq_core::{pool_scope, BoundMode, Gir, GirConfig, ParConfig, ThresholdIndex};
use rrq_data::synthetic;
use rrq_obs::ExplainDoc;
use rrq_types::{
    PointId, PointSet, QueryStats, RkrQuery, RkrResult, RtkQuery, RtkResult, WeightSet,
};

fn workload(dim: usize, np: usize, nw: usize, seed: u64) -> (PointSet, WeightSet) {
    (
        synthetic::uniform_points(dim, np, 10_000.0, seed).unwrap(),
        synthetic::uniform_weights(dim, nw, seed + 1).unwrap(),
    )
}

#[derive(Clone, Copy, Debug)]
enum Engine {
    Seq,
    Par(BoundMode),
    Pool,
}

const ENGINES: [Engine; 5] = [
    Engine::Seq,
    Engine::Par(BoundMode::Local),
    Engine::Par(BoundMode::Epoch(16)),
    Engine::Par(BoundMode::Shared),
    Engine::Pool,
];

fn run_rtk(gir: &Gir<'_>, engine: Engine, q: &[f64], k: usize) -> RtkResult {
    let mut stats = QueryStats::default();
    match engine {
        Engine::Seq => gir.reverse_top_k(q, k, &mut stats),
        Engine::Par(mode) => gir
            .parallel(ParConfig { threads: 3, mode })
            .reverse_top_k(q, k, &mut stats),
        Engine::Pool => pool_scope(3, |pool| {
            gir.parallel(ParConfig {
                threads: 3,
                mode: BoundMode::Epoch(16),
            })
            .with_pool(pool)
            .reverse_top_k(q, k, &mut stats)
        }),
    }
}

fn run_rkr(gir: &Gir<'_>, engine: Engine, q: &[f64], k: usize) -> RkrResult {
    let mut stats = QueryStats::default();
    match engine {
        Engine::Seq => gir.reverse_k_ranks(q, k, &mut stats),
        Engine::Par(mode) => gir
            .parallel(ParConfig { threads: 3, mode })
            .reverse_k_ranks(q, k, &mut stats),
        Engine::Pool => pool_scope(3, |pool| {
            gir.parallel(ParConfig {
                threads: 3,
                mode: BoundMode::Epoch(16),
            })
            .with_pool(pool)
            .reverse_k_ranks(q, k, &mut stats)
        }),
    }
}

/// Shapes × grids × k × engines: the indexed engines answer exactly what
/// the plain ones answer.
#[test]
fn indexed_results_are_byte_identical_across_engines() {
    for (dim, np, nw, seed) in [(3usize, 200, 64, 5u64), (4, 350, 90, 9)] {
        let (p, w) = workload(dim, np, nw, seed);
        // Buckets: k = 1, a mid bucket, and |P| — so the swept k values
        // exercise exact bucket hits, bracket straddles on both sides,
        // and the beyond-|P| always-member path.
        let buckets = [1usize, 7, np];
        for partitions in [8usize, 32] {
            let cfg = GirConfig {
                partitions,
                ..GirConfig::default()
            };
            let plain = Gir::new(&p, &w, cfg);
            let mut indexed = Gir::new(&p, &w, cfg);
            let ti = indexed.build_threshold_index(&buckets).unwrap();
            indexed.attach_threshold_index(ti).unwrap();
            let q = p.point(PointId(np / 3)).to_vec();
            for k in [1usize, 6, 7, 8, np, np + 1] {
                let label = format!("dim={dim} n={partitions} k={k}");
                let want_rtk = run_rtk(&plain, Engine::Seq, &q, k);
                let want_rkr = run_rkr(&plain, Engine::Seq, &q, k);
                for engine in ENGINES {
                    assert_eq!(
                        run_rtk(&indexed, engine, &q, k),
                        want_rtk,
                        "{label} rtk {engine:?}"
                    );
                    assert_eq!(
                        run_rtk(&plain, engine, &q, k),
                        want_rtk,
                        "{label} rtk plain {engine:?}"
                    );
                    assert_eq!(
                        run_rkr(&indexed, engine, &q, k),
                        want_rkr,
                        "{label} rkr {engine:?}"
                    );
                    assert_eq!(
                        run_rkr(&plain, engine, &q, k),
                        want_rkr,
                        "{label} rkr plain {engine:?}"
                    );
                }
            }
        }
    }
}

/// On a materialized bucket the short-circuit actually fires: RTK decides
/// (almost) every weight by one comparison, and the work drops.
#[test]
fn threshold_hits_replace_scans_on_bucket_ks() {
    let (p, w) = workload(4, 400, 120, 21);
    let k = 10;
    let plain = Gir::with_defaults(&p, &w);
    let mut indexed = Gir::with_defaults(&p, &w);
    let ti = indexed.build_threshold_index(&[k]).unwrap();
    indexed.attach_threshold_index(ti).unwrap();
    let q = p.point(PointId(50)).to_vec();

    let mut plain_stats = QueryStats::default();
    let mut idx_stats = QueryStats::default();
    let a = plain.reverse_top_k(&q, k, &mut plain_stats);
    let b = indexed.reverse_top_k(&q, k, &mut idx_stats);
    assert_eq!(a, b);
    // Every weight is decided by its bucket: k is materialized, so
    // decide_rtk never straddles.
    assert_eq!(idx_stats.threshold_hits, w.len() as u64);
    assert_eq!(idx_stats.pairs_classified(), 0, "no grid scans at all");
    assert!(plain_stats.pairs_classified() > 0);
    // RKR prunes against the rank-domain bucket ladder (its heap bound
    // is a rank, not k, so it needs rungs near wherever the bound
    // lands): certification skips most scans.
    let mut rkr_indexed = Gir::with_defaults(&p, &w);
    let ladder = ThresholdIndex::default_buckets(&[k], p.len());
    let ti = rkr_indexed.build_threshold_index(&ladder).unwrap();
    rkr_indexed.attach_threshold_index(ti).unwrap();
    let mut plain_stats = QueryStats::default();
    let mut idx_stats = QueryStats::default();
    let a = plain.reverse_k_ranks(&q, k, &mut plain_stats);
    let b = rkr_indexed.reverse_k_ranks(&q, k, &mut idx_stats);
    assert_eq!(a, b);
    assert!(idx_stats.threshold_hits > 0, "certification never fired");
    assert!(
        idx_stats.pairs_classified() < plain_stats.pairs_classified(),
        "indexed RKR did not reduce scanned pairs: {} vs {}",
        idx_stats.pairs_classified(),
        plain_stats.pairs_classified()
    );
}

/// Explained runs with the index attached reconcile exactly, and the
/// indexed sequential and parallel documents agree structurally.
#[test]
fn indexed_explain_funnels_reconcile() {
    let (p, w) = workload(3, 240, 80, 13);
    let np = p.len();
    let mut gir = Gir::with_defaults(&p, &w);
    let ti = gir.build_threshold_index(&[1, 8, np]).unwrap();
    gir.attach_threshold_index(ti).unwrap();
    let q = p.point(PointId(17)).to_vec();
    for k in [1usize, 5, 8, np + 1] {
        for rtk in [true, false] {
            let mut stats = QueryStats::default();
            let mut doc = ExplainDoc::new();
            if rtk {
                gir.reverse_top_k_explained(&q, k, &mut stats, &mut doc);
            } else {
                gir.reverse_k_ranks_explained(&q, k, &mut stats, &mut doc);
            }
            doc.funnel
                .reconcile(&stats.counters())
                .unwrap_or_else(|e| panic!("seq k={k} rtk={rtk}: {e}"));
            assert_eq!(doc.funnel.threshold_hits, stats.threshold_hits);

            let par = gir.parallel(ParConfig {
                threads: 3,
                mode: BoundMode::Local,
            });
            let mut par_stats = QueryStats::default();
            let mut par_doc = ExplainDoc::new();
            if rtk {
                par.reverse_top_k_explained(&q, k, &mut par_stats, &mut par_doc);
            } else {
                par.reverse_k_ranks_explained(&q, k, &mut par_stats, &mut par_doc);
            }
            par_doc
                .funnel
                .reconcile(&par_stats.counters())
                .unwrap_or_else(|e| panic!("par k={k} rtk={rtk}: {e}"));
            assert!(
                doc.structural_eq(&par_doc),
                "k={k} rtk={rtk} indexed seq/par diverge: {:?}",
                doc.diff(&par_doc, true)
            );
        }
    }
    // The funnel survives its JSON round trip with the new counter.
    let mut stats = QueryStats::default();
    let mut doc = ExplainDoc::new();
    gir.reverse_top_k_explained(&q, 8, &mut stats, &mut doc);
    assert!(stats.threshold_hits > 0);
    let reparsed = ExplainDoc::parse(&doc.to_pretty()).unwrap();
    assert_eq!(reparsed.funnel.threshold_hits, doc.funnel.threshold_hits);
}

/// Heap-sentinel boundary pinning against the definitional oracle:
/// `k = 1`, `k = |P|`, `k = |P|+1` (RTK always-member), `k = |W|` (RKR
/// heap never saturates, bound stays `usize::MAX`), across engines,
/// with and without the index.
#[test]
fn sentinel_boundaries_match_naive() {
    let (p, w) = workload(3, 60, 40, 29);
    let (np, nw) = (p.len(), w.len());
    let naive = Naive::new(&p, &w);
    let plain = Gir::with_defaults(&p, &w);
    let mut indexed = Gir::with_defaults(&p, &w);
    let ti = indexed.build_threshold_index(&[1, np / 2, np]).unwrap();
    indexed.attach_threshold_index(ti).unwrap();
    for qi in [0usize, np / 2, np - 1] {
        let q = p.point(PointId(qi)).to_vec();
        for k in [1usize, np, np + 1, nw] {
            let mut stats = QueryStats::default();
            let want_rtk = naive.reverse_top_k(&q, k, &mut stats);
            let want_rkr = naive.reverse_k_ranks(&q, k, &mut stats);
            if k > np {
                // rank ≤ |P| < k: every weight qualifies.
                assert_eq!(want_rtk.weights().len(), nw);
            }
            for gir in [&plain, &indexed] {
                for engine in ENGINES {
                    assert_eq!(
                        run_rtk(gir, engine, &q, k),
                        want_rtk,
                        "q={qi} k={k} rtk {engine:?}"
                    );
                    assert_eq!(
                        run_rkr(gir, engine, &q, k),
                        want_rkr,
                        "q={qi} k={k} rkr {engine:?}"
                    );
                }
            }
        }
    }
}

/// Mutating the engine after the index was persisted makes the stale
/// RRQT artifact fail `check_threshold_artifact` with
/// [`RrqError::ArtifactStale`]: the epoch is folded into both the
/// header and the fingerprint, so a structurally pristine file from
/// epoch N is rejected by an engine at epoch N+1.
#[test]
fn persisted_index_goes_stale_when_engine_mutates() {
    use rrq_core::persist::{read_threshold, write_threshold};
    use rrq_core::DynamicEngine;
    use rrq_types::RrqError;

    let (p, w) = workload(3, 80, 24, 41);
    let mut engine = DynamicEngine::new(p, w, GirConfig::default()).unwrap();
    engine.enable_threshold_index(&[1, 8, 80]).unwrap();
    let state = engine.snapshot();
    let idx = state.threshold_index().expect("index was enabled").clone();
    let path = std::env::temp_dir().join(format!("rrqt_stale_{}.bin", std::process::id()));
    write_threshold(&path, &idx).unwrap();

    // Round trip at the same epoch: still valid.
    let back = read_threshold(&path).unwrap();
    engine.check_threshold_artifact(&back).unwrap();

    // One published mutation later the artifact is rejected — first on
    // the epoch field alone.
    let mut stats = QueryStats::default();
    engine.insert_point(&[3.0, 4.0, 5.0]).unwrap();
    engine.publish(&mut stats).unwrap();
    let back = read_threshold(&path).unwrap();
    assert!(matches!(
        engine.check_threshold_artifact(&back),
        Err(RrqError::ArtifactStale { what: "epoch" })
    ));

    // Even with the epoch header byte-patched to match, the fingerprint
    // (data ‖ epoch) catches the forgery.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[34..42].copy_from_slice(&engine.epoch().to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    let forged = read_threshold(&path).unwrap();
    assert_eq!(forged.epoch(), engine.epoch());
    assert!(matches!(
        engine.check_threshold_artifact(&forged),
        Err(RrqError::ArtifactStale { .. })
    ));

    // Re-enable at the current epoch: the freshly persisted artifact
    // checks clean again.
    let fresh = engine
        .snapshot()
        .threshold_index()
        .expect("repair kept the index attached")
        .clone();
    write_threshold(&path, &fresh).unwrap();
    let back = read_threshold(&path).unwrap();
    engine.check_threshold_artifact(&back).unwrap();
    std::fs::remove_file(&path).ok();
}

/// Corruption-matrix extension for the version-2 epoch header field:
/// flipping epoch bytes leaves the file structurally valid (the
/// checksum covers the payload, not the header) but the reader's
/// output must then fail the epoch/fingerprint staleness check rather
/// than be served.
#[test]
fn corrupted_epoch_header_is_caught_by_staleness_check() {
    use rrq_core::persist::{read_threshold, write_threshold};
    use rrq_core::DynamicEngine;
    use rrq_types::RrqError;

    let (p, w) = workload(3, 50, 16, 43);
    let mut engine = DynamicEngine::new(p, w, GirConfig::default()).unwrap();
    engine.enable_threshold_index(&[4]).unwrap();
    let idx = engine
        .snapshot()
        .threshold_index()
        .expect("index was enabled")
        .clone();
    let path = std::env::temp_dir().join(format!("rrqt_epoch_{}.bin", std::process::id()));
    write_threshold(&path, &idx).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[34] ^= 0x01; // epoch u64 LE at header offset 34..42
    std::fs::write(&path, &bytes).unwrap();
    let tampered = read_threshold(&path).unwrap();
    assert_ne!(tampered.epoch(), idx.epoch());
    assert!(matches!(
        engine.check_threshold_artifact(&tampered),
        Err(RrqError::ArtifactStale { what: "epoch" })
    ));
    // An immutable Gir attach rejects a nonzero-epoch artifact outright.
    let (p2, w2) = workload(3, 50, 16, 43);
    let mut gir = Gir::with_defaults(&p2, &w2);
    assert!(gir.attach_threshold_index(tampered).is_err());
    std::fs::remove_file(&path).ok();
}

/// A stale or mismatched artifact is rejected at attach time.
#[test]
fn attach_rejects_foreign_index() {
    let (p, w) = workload(3, 50, 20, 31);
    let (p2, w2) = workload(3, 50, 20, 37);
    let foreign = ThresholdIndex::build(&p2, &w2, &[5]).unwrap();
    let mut gir = Gir::with_defaults(&p, &w);
    assert!(gir.attach_threshold_index(foreign).is_err());
    assert!(gir.threshold_index().is_none());
    let own = gir.build_threshold_index(&[5]).unwrap();
    gir.attach_threshold_index(own).unwrap();
    assert!(gir.threshold_index().is_some());
    assert!(gir.detach_threshold_index().is_some());
    assert!(gir.threshold_index().is_none());
}
