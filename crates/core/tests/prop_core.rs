//! Property-based tests for the Grid-index invariants and the
//! GIR ≡ NAIVE equivalence on arbitrary inputs.

use proptest::prelude::*;
use rrq_baselines::Naive;
use rrq_core::grid::GridTable;
use rrq_core::{AdaptiveGrid, Gir, GirConfig, Grid, SparseGir};
use rrq_types::{dot, PointId, PointSet, QueryStats, RkrQuery, RtkQuery, WeightSet};

const RANGE: f64 = 1000.0;

fn workload_strategy() -> impl Strategy<Value = (usize, Vec<Vec<f64>>, Vec<Vec<f64>>)> {
    (1usize..6).prop_flat_map(|dim| {
        (
            Just(dim),
            prop::collection::vec(prop::collection::vec(0.0f64..999.0, dim), 2..60),
            prop::collection::vec(prop::collection::vec(0.01f64..1.0, dim), 1..25),
        )
    })
}

fn build(dim: usize, points: &[Vec<f64>], weights: &[Vec<f64>]) -> (PointSet, WeightSet) {
    let mut ps = PointSet::with_capacity(dim, RANGE, points.len()).unwrap();
    for p in points {
        ps.push_slice(p).unwrap();
    }
    let mut ws = WeightSet::with_capacity(dim, weights.len()).unwrap();
    for w in weights {
        let s: f64 = w.iter().sum();
        let normalised: Vec<f64> = w.iter().map(|v| v / s).collect();
        let drift: f64 = 1.0 - normalised.iter().sum::<f64>();
        let mut normalised = normalised;
        normalised[0] += drift;
        ws.push_slice(&normalised).unwrap();
    }
    (ps, ws)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Grid bounds always bracket the true score, for every n.
    #[test]
    fn bounds_bracket_scores(
        (dim, points, weights) in workload_strategy(),
        n in 2usize..100,
    ) {
        let (ps, ws) = build(dim, &points, &weights);
        let grid = Grid::new(n, RANGE);
        for (_, p) in ps.iter().take(10) {
            for (_, w) in ws.iter().take(5) {
                let pa: Vec<u8> = p.iter().map(|&v| grid.point_cell(v)).collect();
                let wa: Vec<u8> = w.iter().map(|&v| grid.weight_cell(v)).collect();
                let s = dot(w, p);
                prop_assert!(grid.score_lower(&pa, &wa) <= s + 1e-9);
                prop_assert!(s <= grid.score_upper(&pa, &wa) + 1e-9);
            }
        }
    }

    /// GIR and NAIVE return identical RTK and RKR results on arbitrary
    /// workloads, queries and k.
    #[test]
    fn gir_equals_naive(
        (dim, points, weights) in workload_strategy(),
        k in 1usize..20,
        qsel in any::<prop::sample::Index>(),
        n in 2usize..64,
    ) {
        let (ps, ws) = build(dim, &points, &weights);
        let gir = Gir::new(&ps, &ws, GirConfig { partitions: n, ..Default::default() });
        let naive = Naive::new(&ps, &ws);
        let q = ps.point(PointId(qsel.index(ps.len()))).to_vec();
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        prop_assert_eq!(gir.reverse_top_k(&q, k, &mut s1), naive.reverse_top_k(&q, k, &mut s2));
        let mut s3 = QueryStats::default();
        let mut s4 = QueryStats::default();
        prop_assert_eq!(gir.reverse_k_ranks(&q, k, &mut s3), naive.reverse_k_ranks(&q, k, &mut s4));
    }

    /// The packed storage mode never changes any result.
    #[test]
    fn packed_mode_is_transparent(
        (dim, points, weights) in workload_strategy(),
        k in 1usize..10,
    ) {
        let (ps, ws) = build(dim, &points, &weights);
        let a = Gir::new(&ps, &ws, GirConfig { packed: false, ..Default::default() });
        let b = Gir::new(&ps, &ws, GirConfig { packed: true, ..Default::default() });
        let q = ps.point(PointId(0)).to_vec();
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        prop_assert_eq!(a.reverse_top_k(&q, k, &mut s1), b.reverse_top_k(&q, k, &mut s2));
    }

    /// The adaptive grid keeps the bracketing contract on arbitrary data.
    #[test]
    fn adaptive_bounds_bracket_scores(
        (dim, points, weights) in workload_strategy(),
        n in 2usize..32,
    ) {
        let (ps, ws) = build(dim, &points, &weights);
        let grid = AdaptiveGrid::from_data(n, &ps, &ws);
        for (_, p) in ps.iter().take(10) {
            for (_, w) in ws.iter().take(5) {
                let pa: Vec<u8> = p.iter().map(|&v| grid.point_cell(v)).collect();
                let wa: Vec<u8> = w.iter().map(|&v| grid.weight_cell(v)).collect();
                let s = dot(w, p);
                prop_assert!(grid.score_lower(&pa, &wa) <= s + 1e-9);
                prop_assert!(s <= grid.score_upper(&pa, &wa) + 1e-9);
            }
        }
    }

    /// GIR with an adaptive grid equals NAIVE.
    #[test]
    fn adaptive_gir_equals_naive(
        (dim, points, weights) in workload_strategy(),
        k in 1usize..10,
    ) {
        let (ps, ws) = build(dim, &points, &weights);
        let grid = AdaptiveGrid::from_data(16, &ps, &ws);
        let gir = Gir::with_grid(&ps, &ws, grid, GirConfig::default());
        let naive = Naive::new(&ps, &ws);
        let q = ps.point(PointId(ps.len() / 2)).to_vec();
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        prop_assert_eq!(gir.reverse_k_ranks(&q, k, &mut s1), naive.reverse_k_ranks(&q, k, &mut s2));
    }

    /// SparseGir equals NAIVE on arbitrary (dense) workloads too.
    #[test]
    fn sparse_gir_equals_naive(
        (dim, points, weights) in workload_strategy(),
        k in 1usize..10,
    ) {
        let (ps, ws) = build(dim, &points, &weights);
        let gir = SparseGir::new(&ps, &ws, 32);
        let naive = Naive::new(&ps, &ws);
        let q = ps.point(PointId(0)).to_vec();
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        prop_assert_eq!(gir.reverse_top_k(&q, k, &mut s1), naive.reverse_top_k(&q, k, &mut s2));
        let mut s3 = QueryStats::default();
        let mut s4 = QueryStats::default();
        prop_assert_eq!(gir.reverse_k_ranks(&q, k, &mut s3), naive.reverse_k_ranks(&q, k, &mut s4));
    }

    /// Quantisation is monotone: larger values never land in smaller cells.
    #[test]
    fn cells_are_monotone(n in 2usize..255, a in 0.0f64..999.0, b in 0.0f64..999.0) {
        let grid = Grid::new(n, RANGE);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(grid.point_cell(lo) <= grid.point_cell(hi));
        prop_assert!(grid.weight_cell(lo / RANGE) <= grid.weight_cell(hi / RANGE));
    }
}
