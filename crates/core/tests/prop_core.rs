//! Property-style tests for the Grid-index invariants and the GIR ≡ NAIVE
//! equivalence, driven by seeded deterministic workload sweeps (the
//! offline build has no `proptest`).

use rrq_baselines::Naive;
use rrq_core::grid::GridTable;
use rrq_core::{AdaptiveGrid, Gir, GirConfig, Grid, SparseGir};
use rrq_data::rng::{Rng, StdRng};
use rrq_types::{dot, PointId, PointSet, QueryStats, RkrQuery, RtkQuery, WeightSet};

const RANGE: f64 = 1000.0;
const CASES: usize = 48;

/// Draws a random workload: dimension, 2..60 points in `[0, 999)`, and
/// 1..25 raw weight rows in `[0.01, 1.0)` (normalised by `build`).
fn random_workload(rng: &mut StdRng) -> (usize, Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let dim = rng.gen_range(1..6);
    let n_points = rng.gen_range(2..60);
    let n_weights = rng.gen_range(1..25);
    let points = (0..n_points)
        .map(|_| (0..dim).map(|_| rng.gen_f64() * 999.0).collect())
        .collect();
    let weights = (0..n_weights)
        .map(|_| (0..dim).map(|_| 0.01 + rng.gen_f64() * 0.99).collect())
        .collect();
    (dim, points, weights)
}

fn build(dim: usize, points: &[Vec<f64>], weights: &[Vec<f64>]) -> (PointSet, WeightSet) {
    let mut ps = PointSet::with_capacity(dim, RANGE, points.len()).unwrap();
    for p in points {
        ps.push_slice(p).unwrap();
    }
    let mut ws = WeightSet::with_capacity(dim, weights.len()).unwrap();
    for w in weights {
        let s: f64 = w.iter().sum();
        let normalised: Vec<f64> = w.iter().map(|v| v / s).collect();
        let drift: f64 = 1.0 - normalised.iter().sum::<f64>();
        let mut normalised = normalised;
        normalised[0] += drift;
        ws.push_slice(&normalised).unwrap();
    }
    (ps, ws)
}

/// Grid bounds always bracket the true score, for every n.
#[test]
fn bounds_bracket_scores() {
    let mut rng = StdRng::seed_from_u64(0xC04E_0001);
    for _ in 0..CASES {
        let (dim, points, weights) = random_workload(&mut rng);
        let n = rng.gen_range(2..100);
        let (ps, ws) = build(dim, &points, &weights);
        let grid = Grid::new(n, RANGE);
        for (_, p) in ps.iter().take(10) {
            for (_, w) in ws.iter().take(5) {
                let pa: Vec<u8> = p.iter().map(|&v| grid.point_cell(v)).collect();
                let wa: Vec<u8> = w.iter().map(|&v| grid.weight_cell(v)).collect();
                let s = dot(w, p);
                assert!(grid.score_lower(&pa, &wa) <= s + 1e-9);
                assert!(s <= grid.score_upper(&pa, &wa) + 1e-9);
            }
        }
    }
}

/// GIR and NAIVE return identical RTK and RKR results on arbitrary
/// workloads, queries and k.
#[test]
fn gir_equals_naive() {
    let mut rng = StdRng::seed_from_u64(0xC04E_0002);
    for _ in 0..CASES {
        let (dim, points, weights) = random_workload(&mut rng);
        let k = rng.gen_range(1..20);
        let n = rng.gen_range(2..64);
        let (ps, ws) = build(dim, &points, &weights);
        let gir = Gir::new(
            &ps,
            &ws,
            GirConfig {
                partitions: n,
                ..Default::default()
            },
        );
        let naive = Naive::new(&ps, &ws);
        let q = ps.point(PointId(rng.gen_range(0..ps.len()))).to_vec();
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        assert_eq!(
            gir.reverse_top_k(&q, k, &mut s1),
            naive.reverse_top_k(&q, k, &mut s2)
        );
        let mut s3 = QueryStats::default();
        let mut s4 = QueryStats::default();
        assert_eq!(
            gir.reverse_k_ranks(&q, k, &mut s3),
            naive.reverse_k_ranks(&q, k, &mut s4)
        );
    }
}

/// The packed storage mode never changes any result.
#[test]
fn packed_mode_is_transparent() {
    let mut rng = StdRng::seed_from_u64(0xC04E_0003);
    for _ in 0..CASES {
        let (dim, points, weights) = random_workload(&mut rng);
        let k = rng.gen_range(1..10);
        let (ps, ws) = build(dim, &points, &weights);
        let a = Gir::new(
            &ps,
            &ws,
            GirConfig {
                packed: false,
                ..Default::default()
            },
        );
        let b = Gir::new(
            &ps,
            &ws,
            GirConfig {
                packed: true,
                ..Default::default()
            },
        );
        let q = ps.point(PointId(0)).to_vec();
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        assert_eq!(
            a.reverse_top_k(&q, k, &mut s1),
            b.reverse_top_k(&q, k, &mut s2)
        );
    }
}

/// The adaptive grid keeps the bracketing contract on arbitrary data.
#[test]
fn adaptive_bounds_bracket_scores() {
    let mut rng = StdRng::seed_from_u64(0xC04E_0004);
    for _ in 0..CASES {
        let (dim, points, weights) = random_workload(&mut rng);
        let n = rng.gen_range(2..32);
        let (ps, ws) = build(dim, &points, &weights);
        let grid = AdaptiveGrid::from_data(n, &ps, &ws);
        for (_, p) in ps.iter().take(10) {
            for (_, w) in ws.iter().take(5) {
                let pa: Vec<u8> = p.iter().map(|&v| grid.point_cell(v)).collect();
                let wa: Vec<u8> = w.iter().map(|&v| grid.weight_cell(v)).collect();
                let s = dot(w, p);
                assert!(grid.score_lower(&pa, &wa) <= s + 1e-9);
                assert!(s <= grid.score_upper(&pa, &wa) + 1e-9);
            }
        }
    }
}

/// GIR with an adaptive grid equals NAIVE.
#[test]
fn adaptive_gir_equals_naive() {
    let mut rng = StdRng::seed_from_u64(0xC04E_0005);
    for _ in 0..CASES {
        let (dim, points, weights) = random_workload(&mut rng);
        let k = rng.gen_range(1..10);
        let (ps, ws) = build(dim, &points, &weights);
        let grid = AdaptiveGrid::from_data(16, &ps, &ws);
        let gir = Gir::with_grid(&ps, &ws, grid, GirConfig::default());
        let naive = Naive::new(&ps, &ws);
        let q = ps.point(PointId(ps.len() / 2)).to_vec();
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        assert_eq!(
            gir.reverse_k_ranks(&q, k, &mut s1),
            naive.reverse_k_ranks(&q, k, &mut s2)
        );
    }
}

/// SparseGir equals NAIVE on arbitrary (dense) workloads too.
#[test]
fn sparse_gir_equals_naive() {
    let mut rng = StdRng::seed_from_u64(0xC04E_0006);
    for _ in 0..CASES {
        let (dim, points, weights) = random_workload(&mut rng);
        let k = rng.gen_range(1..10);
        let (ps, ws) = build(dim, &points, &weights);
        let gir = SparseGir::new(&ps, &ws, 32);
        let naive = Naive::new(&ps, &ws);
        let q = ps.point(PointId(0)).to_vec();
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        assert_eq!(
            gir.reverse_top_k(&q, k, &mut s1),
            naive.reverse_top_k(&q, k, &mut s2)
        );
        let mut s3 = QueryStats::default();
        let mut s4 = QueryStats::default();
        assert_eq!(
            gir.reverse_k_ranks(&q, k, &mut s3),
            naive.reverse_k_ranks(&q, k, &mut s4)
        );
    }
}

/// Quantisation is monotone: larger values never land in smaller cells.
#[test]
fn cells_are_monotone() {
    let mut rng = StdRng::seed_from_u64(0xC04E_0007);
    for _ in 0..256 {
        let n = rng.gen_range(2..255);
        let a = rng.gen_f64() * 999.0;
        let b = rng.gen_f64() * 999.0;
        let grid = Grid::new(n, RANGE);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(grid.point_cell(lo) <= grid.point_cell(hi));
        assert!(grid.weight_cell(lo / RANGE) <= grid.weight_cell(hi / RANGE));
    }
}
