//! Property-style tests over seeded deterministic parameter sweeps: every
//! generator produces structurally valid data across the parameter space,
//! and persistence round-trips exactly.
//!
//! The offline build has no `proptest`, so parameters are drawn from the
//! in-workspace PRNG: same shrink-free case generation every run, which
//! also makes failures trivially reproducible.

use rrq_data::rng::{Rng, StdRng};
use rrq_data::{io, real_sim, synthetic, DataSpec, PointDistribution, WeightDistribution};

const CASES: usize = 32;

/// Uniform points always live in [0, range) and are reproducible.
#[test]
fn uniform_points_valid() {
    let mut rng = StdRng::seed_from_u64(0xDA7A_0001);
    for _ in 0..CASES {
        let dim = rng.gen_range(1..12);
        let n = rng.gen_range(0..300);
        let range = 1.0 + rng.gen_f64() * 1e6;
        let seed = rng.next_u64();
        let a = synthetic::uniform_points(dim, n, range, seed).unwrap();
        assert_eq!(a.len(), n);
        for &v in a.as_flat() {
            assert!((0.0..range).contains(&v));
        }
        let b = synthetic::uniform_points(dim, n, range, seed).unwrap();
        assert_eq!(a, b);
    }
}

/// Clustered and anti-correlated points stay in range for any shape.
#[test]
fn shaped_points_valid() {
    let mut rng = StdRng::seed_from_u64(0xDA7A_0002);
    for _ in 0..CASES {
        let dim = rng.gen_range(1..10);
        let n = rng.gen_range(1..200);
        let clusters = rng.gen_range(1..20);
        let sigma = 0.001 + rng.gen_f64() * 0.499;
        let seed = rng.next_u64();
        let range = 10_000.0;
        let cl = synthetic::clustered_points(dim, n, range, clusters, sigma, seed).unwrap();
        let ac = synthetic::anticorrelated_points(dim, n, range, seed).unwrap();
        for set in [cl, ac] {
            assert_eq!(set.len(), n);
            for &v in set.as_flat() {
                assert!((0.0..range).contains(&v));
            }
        }
    }
}

/// Every weight generator yields simplex vectors for any parameters.
#[test]
fn weights_always_normalised() {
    let mut rng = StdRng::seed_from_u64(0xDA7A_0003);
    for _ in 0..CASES {
        let dim = rng.gen_range(1..12);
        let n = rng.gen_range(1..200);
        let seed = rng.next_u64();
        let nonzero = rng.gen_range(1..12);
        let sets = vec![
            synthetic::uniform_weights(dim, n, seed).unwrap(),
            synthetic::clustered_weights(dim, n, 3, 0.05, seed).unwrap(),
            synthetic::sparse_weights(dim, n, nonzero.min(dim), seed).unwrap(),
        ];
        for ws in sets {
            assert_eq!(ws.len(), n);
            for (_, w) in ws.iter() {
                let sum: f64 = w.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
                assert!(w.iter().all(|&v| v >= 0.0));
            }
        }
    }
}

/// Binary persistence round-trips any generated workload exactly.
#[test]
fn binary_io_round_trips() {
    let mut rng = StdRng::seed_from_u64(0xDA7A_0004);
    for case in 0..CASES {
        let dim = rng.gen_range(1..8);
        let n = rng.gen_range(0..100);
        let seed = rng.next_u64();
        let p = synthetic::uniform_points(dim, n, 1000.0, seed).unwrap();
        let w = synthetic::uniform_weights(dim, n.max(1), seed).unwrap();
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let p_path = dir.join(format!("rrq_prop_p_{pid}_{case}.bin"));
        let w_path = dir.join(format!("rrq_prop_w_{pid}_{case}.bin"));
        io::write_points(&p, &p_path).unwrap();
        io::write_weights(&w, &w_path).unwrap();
        assert_eq!(io::read_points(&p_path).unwrap(), p);
        assert_eq!(io::read_weights(&w_path).unwrap(), w);
        std::fs::remove_file(&p_path).ok();
        std::fs::remove_file(&w_path).ok();
    }
}

/// DataSpec generation never fails for valid parameter combinations and
/// respects requested cardinalities.
#[test]
fn data_spec_total() {
    let mut rng = StdRng::seed_from_u64(0xDA7A_0005);
    let pds = [
        PointDistribution::Uniform,
        PointDistribution::Clustered,
        PointDistribution::AntiCorrelated,
        PointDistribution::Normal,
        PointDistribution::Exponential,
    ];
    let wds = [
        WeightDistribution::Uniform,
        WeightDistribution::Clustered,
        WeightDistribution::Normal,
        WeightDistribution::Exponential,
    ];
    for case in 0..CASES {
        let dim = rng.gen_range(1..10);
        let np = rng.gen_range(1..150);
        let nw = rng.gen_range(1..80);
        let seed = rng.next_u64();
        // Sweep the full distribution grid over the cases.
        let pd = pds[case % pds.len()];
        let wd = wds[(case / pds.len()) % wds.len()];
        let spec = DataSpec {
            points: pd,
            weights: wd,
            dim,
            n_points: np,
            n_weights: nw,
            seed,
        };
        let (p, w) = spec.generate().unwrap();
        assert_eq!(p.len(), np);
        assert_eq!(w.len(), nw);
        assert_eq!(p.dim(), w.dim());
    }
}

/// Simulated real data respects its declared ranges at any size.
#[test]
fn real_sim_ranges() {
    let mut rng = StdRng::seed_from_u64(0xDA7A_0006);
    for _ in 0..CASES {
        let n = rng.gen_range(1..300);
        let seed = rng.next_u64();
        let house = real_sim::house(n, seed).unwrap();
        for &v in house.as_flat() {
            assert!((0.0..100.0).contains(&v));
        }
        let color = real_sim::color(n, seed).unwrap();
        for &v in color.as_flat() {
            assert!((0.0..1.0).contains(&v));
        }
        let dian = real_sim::dianping_restaurants(n, seed).unwrap();
        for &v in dian.as_flat() {
            assert!((0.0..5.0).contains(&v));
        }
        let users = real_sim::dianping_users(n, seed).unwrap();
        for (_, w) in users.iter() {
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }
}
