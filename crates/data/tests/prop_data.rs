//! Property-based tests: every generator produces structurally valid
//! data for arbitrary parameters, and persistence round-trips exactly.

use proptest::prelude::*;
use rrq_data::{io, real_sim, synthetic, DataSpec, PointDistribution, WeightDistribution};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Uniform points always live in [0, range) and are reproducible.
    #[test]
    fn uniform_points_valid(
        dim in 1usize..12,
        n in 0usize..300,
        range in 1.0f64..1e6,
        seed in any::<u64>(),
    ) {
        let a = synthetic::uniform_points(dim, n, range, seed).unwrap();
        prop_assert_eq!(a.len(), n);
        for &v in a.as_flat() {
            prop_assert!((0.0..range).contains(&v));
        }
        let b = synthetic::uniform_points(dim, n, range, seed).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Clustered and anti-correlated points stay in range for any shape.
    #[test]
    fn shaped_points_valid(
        dim in 1usize..10,
        n in 1usize..200,
        clusters in 1usize..20,
        sigma in 0.001f64..0.5,
        seed in any::<u64>(),
    ) {
        let range = 10_000.0;
        let cl = synthetic::clustered_points(dim, n, range, clusters, sigma, seed).unwrap();
        let ac = synthetic::anticorrelated_points(dim, n, range, seed).unwrap();
        for set in [cl, ac] {
            prop_assert_eq!(set.len(), n);
            for &v in set.as_flat() {
                prop_assert!((0.0..range).contains(&v));
            }
        }
    }

    /// Every weight generator yields simplex vectors for any parameters.
    #[test]
    fn weights_always_normalised(
        dim in 1usize..12,
        n in 1usize..200,
        seed in any::<u64>(),
        nonzero in 1usize..12,
    ) {
        let sets = vec![
            synthetic::uniform_weights(dim, n, seed).unwrap(),
            synthetic::clustered_weights(dim, n, 3, 0.05, seed).unwrap(),
            synthetic::sparse_weights(dim, n, nonzero.min(dim), seed).unwrap(),
        ];
        for ws in sets {
            prop_assert_eq!(ws.len(), n);
            for (_, w) in ws.iter() {
                let sum: f64 = w.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
                prop_assert!(w.iter().all(|&v| v >= 0.0));
            }
        }
    }

    /// Binary persistence round-trips any generated workload exactly.
    #[test]
    fn binary_io_round_trips(
        dim in 1usize..8,
        n in 0usize..100,
        seed in any::<u64>(),
    ) {
        let p = synthetic::uniform_points(dim, n, 1000.0, seed).unwrap();
        let w = synthetic::uniform_weights(dim, n.max(1), seed).unwrap();
        let dir = std::env::temp_dir();
        let p_path = dir.join(format!("rrq_prop_p_{}_{seed}_{dim}_{n}.bin", std::process::id()));
        let w_path = dir.join(format!("rrq_prop_w_{}_{seed}_{dim}_{n}.bin", std::process::id()));
        io::write_points(&p, &p_path).unwrap();
        io::write_weights(&w, &w_path).unwrap();
        prop_assert_eq!(io::read_points(&p_path).unwrap(), p);
        prop_assert_eq!(io::read_weights(&w_path).unwrap(), w);
        std::fs::remove_file(&p_path).ok();
        std::fs::remove_file(&w_path).ok();
    }

    /// DataSpec generation never fails for valid parameter combinations
    /// and respects requested cardinalities.
    #[test]
    fn data_spec_total(
        dim in 1usize..10,
        np in 1usize..150,
        nw in 1usize..80,
        seed in any::<u64>(),
        pidx in 0usize..5,
        widx in 0usize..4,
    ) {
        let pd = [
            PointDistribution::Uniform,
            PointDistribution::Clustered,
            PointDistribution::AntiCorrelated,
            PointDistribution::Normal,
            PointDistribution::Exponential,
        ][pidx];
        let wd = [
            WeightDistribution::Uniform,
            WeightDistribution::Clustered,
            WeightDistribution::Normal,
            WeightDistribution::Exponential,
        ][widx];
        let spec = DataSpec { points: pd, weights: wd, dim, n_points: np, n_weights: nw, seed };
        let (p, w) = spec.generate().unwrap();
        prop_assert_eq!(p.len(), np);
        prop_assert_eq!(w.len(), nw);
        prop_assert_eq!(p.dim(), w.dim());
    }

    /// Simulated real data respects its declared ranges at any size.
    #[test]
    fn real_sim_ranges(n in 1usize..300, seed in any::<u64>()) {
        let house = real_sim::house(n, seed).unwrap();
        for &v in house.as_flat() {
            prop_assert!((0.0..100.0).contains(&v));
        }
        let color = real_sim::color(n, seed).unwrap();
        for &v in color.as_flat() {
            prop_assert!((0.0..1.0).contains(&v));
        }
        let dian = real_sim::dianping_restaurants(n, seed).unwrap();
        for &v in dian.as_flat() {
            prop_assert!((0.0..5.0).contains(&v));
        }
        let users = real_sim::dianping_users(n, seed).unwrap();
        for (_, w) in users.iter() {
            let sum: f64 = w.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }
}
