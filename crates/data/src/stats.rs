//! Descriptive statistics over data sets: per-dimension summaries and
//! the cross-dimension correlation matrix.
//!
//! Used to validate the workload generators (anti-correlated data must
//! actually anti-correlate; the HOUSE simulator's latent factor must
//! induce positive correlation) and to guide grid configuration: a large
//! spread between dimensions or strong skew suggests the quantile
//! [`rrq-core`'s AdaptiveGrid] over the equal-width default.

use rrq_types::PointSet;

/// Summary of one dimension of a point set.
#[derive(Debug, Clone, PartialEq)]
pub struct DimSummary {
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

/// Per-dimension summaries of `points`.
///
/// Returns an empty vector for an empty set.
pub fn dim_summaries(points: &PointSet) -> Vec<DimSummary> {
    let d = points.dim();
    if points.is_empty() {
        return Vec::new();
    }
    let n = points.len() as f64;
    let mut mins = vec![f64::INFINITY; d];
    let mut maxs = vec![f64::NEG_INFINITY; d];
    let mut sums = vec![0.0f64; d];
    for (_, row) in points.iter() {
        for (k, &v) in row.iter().enumerate() {
            mins[k] = mins[k].min(v);
            maxs[k] = maxs[k].max(v);
            sums[k] += v;
        }
    }
    let means: Vec<f64> = sums.iter().map(|s| s / n).collect();
    let mut sq = vec![0.0f64; d];
    for (_, row) in points.iter() {
        for (k, &v) in row.iter().enumerate() {
            let dv = v - means[k];
            sq[k] += dv * dv;
        }
    }
    (0..d)
        .map(|k| DimSummary {
            min: mins[k],
            max: maxs[k],
            mean: means[k],
            std_dev: (sq[k] / n).sqrt(),
        })
        .collect()
}

/// The `d × d` Pearson correlation matrix of `points`, row-major.
///
/// Constant dimensions (zero variance) yield `NaN` entries off the
/// diagonal and `1.0` on it.
///
/// # Panics
///
/// Panics if the set is empty.
pub fn correlation_matrix(points: &PointSet) -> Vec<f64> {
    assert!(!points.is_empty(), "correlation of an empty set");
    let d = points.dim();
    let n = points.len() as f64;
    let summaries = dim_summaries(points);
    let mut cov = vec![0.0f64; d * d];
    for (_, row) in points.iter() {
        for i in 0..d {
            let di = row[i] - summaries[i].mean;
            for j in i..d {
                cov[i * d + j] += di * (row[j] - summaries[j].mean);
            }
        }
    }
    let mut out = vec![0.0f64; d * d];
    for i in 0..d {
        for j in i..d {
            let denom = n * summaries[i].std_dev * summaries[j].std_dev;
            let r = if i == j { 1.0 } else { cov[i * d + j] / denom };
            out[i * d + j] = r;
            out[j * d + i] = r;
        }
    }
    out
}

/// Mean off-diagonal correlation — a single-number summary of how
/// correlated (positive) or anti-correlated (negative) the dimensions
/// are.
///
/// # Panics
///
/// Panics if the set is empty or one-dimensional.
pub fn mean_cross_correlation(points: &PointSet) -> f64 {
    let d = points.dim();
    assert!(d >= 2, "cross correlation needs at least two dimensions");
    let m = correlation_matrix(points);
    let mut sum = 0.0;
    let mut count = 0usize;
    for i in 0..d {
        for j in 0..d {
            if i != j && m[i * d + j].is_finite() {
                sum += m[i * d + j];
                count += 1;
            }
        }
    }
    sum / count.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;
    use rrq_types::PointSet;

    #[test]
    fn summaries_of_known_data() {
        let ps = PointSet::from_flat(2, 100.0, &[1.0, 10.0, 3.0, 20.0, 5.0, 30.0]).unwrap();
        let s = dim_summaries(&ps);
        assert_eq!(s[0].min, 1.0);
        assert_eq!(s[0].max, 5.0);
        assert!((s[0].mean - 3.0).abs() < 1e-12);
        assert!((s[0].std_dev - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s[1].mean, 20.0);
    }

    #[test]
    fn summaries_of_empty_set() {
        let ps = PointSet::new(3, 10.0).unwrap();
        assert!(dim_summaries(&ps).is_empty());
    }

    #[test]
    fn correlation_of_perfectly_linear_dims() {
        // dim1 = 2 * dim0 → correlation exactly 1.
        let ps = PointSet::from_flat(2, 100.0, &[1.0, 2.0, 2.0, 4.0, 3.0, 6.0]).unwrap();
        let m = correlation_matrix(&ps);
        assert!((m[1] - 1.0).abs() < 1e-12);
        assert_eq!(m[0], 1.0);
        assert_eq!(m[3], 1.0);
    }

    #[test]
    fn correlation_of_inverse_dims_is_negative_one() {
        let ps = PointSet::from_flat(2, 100.0, &[1.0, 9.0, 5.0, 5.0, 9.0, 1.0]).unwrap();
        let m = correlation_matrix(&ps);
        assert!((m[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn generators_have_expected_correlation_signs() {
        let un = synthetic::uniform_points(4, 20_000, 10_000.0, 1).unwrap();
        assert!(mean_cross_correlation(&un).abs() < 0.05, "UN ~ independent");
        // Perfect plane data has pairwise correlation −1/(d−1); at d = 4
        // the target is ≈ −1/3, diluted a little by the plane offset.
        let ac = synthetic::anticorrelated_points(4, 20_000, 10_000.0, 2).unwrap();
        assert!(
            mean_cross_correlation(&ac) < -0.15,
            "AC must anti-correlate, got {}",
            mean_cross_correlation(&ac)
        );
        let house = crate::real_sim::house(20_000, 3).unwrap();
        assert!(
            mean_cross_correlation(&house) > 0.1,
            "HOUSE's latent factor must correlate categories"
        );
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let ps = synthetic::clustered_points(5, 2000, 10_000.0, 6, 0.1, 7).unwrap();
        let m = correlation_matrix(&ps);
        for i in 0..5 {
            assert!((m[i * 5 + i] - 1.0).abs() < 1e-12);
            for j in 0..5 {
                assert!((m[i * 5 + j] - m[j * 5 + i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn constant_dimension_yields_nan_off_diagonal() {
        let ps = PointSet::from_flat(2, 10.0, &[5.0, 1.0, 5.0, 2.0, 5.0, 3.0]).unwrap();
        let m = correlation_matrix(&ps);
        assert!(m[1].is_nan());
        assert_eq!(m[0], 1.0);
    }
}
