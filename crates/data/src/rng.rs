//! Self-contained deterministic PRNG (no `rand` crate: the build sandbox
//! is offline).
//!
//! [`SplitMix64`] expands a `u64` seed into well-mixed state;
//! [`Xoshiro256PlusPlus`] is the workhorse generator (the same algorithm
//! `rand`'s `SmallRng` used on 64-bit targets). [`StdRng`] is an alias so
//! existing call sites keep reading naturally — determinism across runs
//! is what the experiments need, not cryptographic quality.

use std::ops::Range;

/// SplitMix64: seed expander (Steele, Lea & Flood 2014 public-domain
/// constants). One round per output; passes BigCrush on its own.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna, public domain reference
/// implementation): 256-bit state, 64-bit output, period 2^256 − 1.
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Seeds the full 256-bit state from one `u64` via SplitMix64, as the
    /// xoshiro authors recommend. Identical seeds yield identical
    /// streams on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }
}

/// Uniform pseudo-random source. Mirrors the slice of the `rand` API the
/// workspace uses, so generators stay generic over the concrete engine.
pub trait Rng {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)`, using the top 53 bits (full mantissa
    /// precision, never 1.0).
    #[inline]
    fn gen_f64(&mut self) -> f64 {
        // 2^-53; (u >> 11) has 53 significant bits.
        (self.next_u64() >> 11) as f64 * 1.110_223_024_625_156_5e-16
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    ///
    /// Panics on an empty range. Uses Lemire's multiply-shift reduction
    /// with rejection, so the result is exactly uniform.
    #[inline]
    fn gen_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = (range.end - range.start) as u64;
        // Widening multiply maps [0, 2^64) onto [0, span); reject the
        // bottom sliver that would bias small residues.
        let threshold = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let wide = (x as u128) * (span as u128);
            if (wide as u64) >= threshold {
                return range.start + (wide >> 64) as usize;
            }
        }
    }
}

impl Rng for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Default deterministic generator for data synthesis and sampling.
pub type StdRng = Xoshiro256PlusPlus;

/// Alias kept for call sites that want to signal "cheap, not crypto".
pub type SmallRng = Xoshiro256PlusPlus;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_matches_reference_vectors() {
        // Reference implementation seeded with SplitMix64(0) state; the
        // first outputs are fixed by the algorithm, so this pins our
        // implementation (and therefore every generated dataset) forever.
        let mut sm = SplitMix64::new(0);
        // SplitMix64(0) first outputs (public-domain reference).
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);

        let mut a = Xoshiro256PlusPlus::seed_from_u64(12345);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(12345);
        let first: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let again: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(first, again, "same seed, same stream");
        assert!(
            first.windows(2).any(|w| w[0] != w[1]),
            "stream is not constant"
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        let mut below_half = 0usize;
        for _ in 0..n {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x), "out of range: {x}");
            sum += x;
            if x < 0.5 {
                below_half += 1;
            }
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let frac = below_half as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "below-half fraction {frac}");
    }

    #[test]
    fn gen_range_covers_bounds_exactly() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(3..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
        // Singleton range is fine; empty range panics (checked below).
        assert_eq!(rng.gen_range(5..6), 5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(4..4);
    }

    #[test]
    fn rng_usable_through_mut_reference() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_f64()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let via_ref = draw(&mut rng);
        assert!((0.0..1.0).contains(&via_ref));
    }
}
