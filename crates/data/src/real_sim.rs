//! Statistically-matched simulators for the paper's real data sets.
//!
//! The paper (§6.1) evaluates on three real data sets we cannot
//! redistribute or obtain:
//!
//! * **HOUSE** — 201,760 6-d tuples: percentages of an American family's
//!   annual spending on gas, electricity, water, heating, insurance and
//!   property tax.
//! * **COLOR** — 68,040 9-d tuples: HSV colour features of images.
//! * **DIANPING** — 3,605,300 reviews by 510,071 users of 209,132
//!   restaurants, averaged into 6-d restaurant attribute vectors (`P`) and
//!   6-d user preference vectors (`W`).
//!
//! Per the substitution policy (DESIGN.md §7) each simulator reproduces the
//! *structure* that matters to the algorithms — dimensionality,
//! cardinality, value range, correlation/skew shape — so every code path
//! (quantisation, bound filtering, refinement, tree descent) is exercised
//! the same way; only absolute constants differ from the originals.

use crate::dist;
use crate::rng::{Rng, StdRng};
use crate::synthetic;
use rrq_types::{PointSet, RrqResult, WeightSet};

/// Full cardinality of the HOUSE data set in the paper.
pub const HOUSE_FULL: usize = 201_760;
/// Dimensionality of HOUSE.
pub const HOUSE_DIM: usize = 6;
/// Full cardinality of COLOR.
pub const COLOR_FULL: usize = 68_040;
/// Dimensionality of COLOR.
pub const COLOR_DIM: usize = 9;
/// Full restaurant cardinality of DIANPING.
pub const DIANPING_RESTAURANTS_FULL: usize = 209_132;
/// Full user cardinality of DIANPING.
pub const DIANPING_USERS_FULL: usize = 510_071;
/// Dimensionality of DIANPING (rate, flavor, cost, service, environment,
/// waiting time).
pub const DIANPING_DIM: usize = 6;

/// Simulated HOUSE: `n` 6-d expenditure-percentage tuples.
///
/// Structure: household budget shares are positively correlated with a
/// household "size" latent factor and individually skewed (heating and
/// insurance heavy-tailed). Values land in `[0, 100)` (percent).
///
/// # Errors
///
/// Propagates data set construction errors.
pub fn house(n: usize, seed: u64) -> RrqResult<PointSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let range = 100.0;
    let mut set = PointSet::with_capacity(HOUSE_DIM, range, n)?;
    let mut row = [0.0; HOUSE_DIM];
    // Mean budget shares (loosely based on utility-survey shapes) and
    // per-category dispersion.
    const MEANS: [f64; HOUSE_DIM] = [18.0, 22.0, 8.0, 15.0, 12.0, 25.0];
    const SIGMAS: [f64; HOUSE_DIM] = [6.0, 7.0, 3.0, 8.0, 6.0, 10.0];
    for _ in 0..n {
        // Latent affluence factor couples the categories (ρ > 0).
        let latent = dist::normal(&mut rng, 0.0, 1.0);
        for i in 0..HOUSE_DIM {
            let idio = dist::normal(&mut rng, 0.0, 1.0);
            let v = MEANS[i] + SIGMAS[i] * (0.6 * latent + 0.8 * idio);
            row[i] = v.clamp(0.0, range - 1e-9);
        }
        set.push_slice(&row)?;
    }
    Ok(set)
}

/// Simulated COLOR: `n` 9-d HSV feature tuples in `[0, 1)`.
///
/// Structure: natural-image colour moments are heavily skewed toward low
/// saturation/value moments; we mix an exponential-skew component and a
/// clustered component (images from similar scenes cluster).
///
/// # Errors
///
/// Propagates data set construction errors.
pub fn color(n: usize, seed: u64) -> RrqResult<PointSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let range = 1.0;
    let mut set = PointSet::with_capacity(COLOR_DIM, range, n)?;
    // A handful of scene clusters in HSV moment space.
    let n_clusters = 16;
    let centroids: Vec<[f64; COLOR_DIM]> = (0..n_clusters)
        .map(|_| {
            let mut c = [0.0; COLOR_DIM];
            for v in &mut c {
                *v = dist::truncated_exponential(&mut rng, 3.0, 1.0);
            }
            c
        })
        .collect();
    let mut row = [0.0; COLOR_DIM];
    for _ in 0..n {
        let c = &centroids[rng.gen_range(0..n_clusters)];
        for i in 0..COLOR_DIM {
            let v = c[i] + dist::normal(&mut rng, 0.0, 0.08);
            row[i] = v.clamp(0.0, range - 1e-12);
        }
        set.push_slice(&row)?;
    }
    Ok(set)
}

/// Simulated DIANPING restaurants: `n` 6-d average review-score vectors on
/// a `[0, 5)` star scale (rate, flavor, cost, service, environment,
/// waiting time). The paper uses the restaurant side as `P`.
///
/// Structure: per-restaurant quality latent factor (good restaurants score
/// well across criteria), criteria-specific noise, mild clustering by
/// cuisine. Scores are *inverted* so that smaller is better, matching the
/// workspace convention (paper assumes minimum values preferable).
///
/// # Errors
///
/// Propagates data set construction errors.
pub fn dianping_restaurants(n: usize, seed: u64) -> RrqResult<PointSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let range = 5.0;
    let mut set = PointSet::with_capacity(DIANPING_DIM, range, n)?;
    let mut row = [0.0; DIANPING_DIM];
    for _ in 0..n {
        // Quality in [1, 5) star units; most restaurants cluster at 3–4.
        let quality = dist::truncated_normal(&mut rng, 3.6, 0.7, 1.0, 5.0);
        for v in &mut row {
            let raw = dist::truncated_normal(&mut rng, quality, 0.4, 0.0, 5.0);
            // Invert: 0 = perfect 5-star average, matching minimum-is-best.
            *v = (range - raw).clamp(0.0, range - 1e-12);
        }
        set.push_slice(&row)?;
    }
    Ok(set)
}

/// Simulated DIANPING user preferences: `n` 6-d normalised weighting
/// vectors. Users emphasise a small number of criteria (flavour and cost
/// dominate), mirroring averaged per-user review emphasis.
///
/// # Errors
///
/// Propagates data set construction errors.
pub fn dianping_users(n: usize, seed: u64) -> RrqResult<WeightSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = WeightSet::with_capacity(DIANPING_DIM, n)?;
    // Population-level criterion emphasis (flavor & rate dominate).
    const EMPHASIS: [f64; DIANPING_DIM] = [1.8, 2.4, 1.4, 1.0, 0.8, 0.6];
    let mut row = [0.0; DIANPING_DIM];
    for _ in 0..n {
        let mut sum = 0.0;
        for (v, &e) in row.iter_mut().zip(&EMPHASIS) {
            // Gamma-like skew via product of emphasis and Exp(1) keeps the
            // simplex sample concentrated on the emphasised criteria.
            *v = (e * dist::exponential(&mut rng, 1.0)).max(f64::MIN_POSITIVE);
            sum += *v;
        }
        for v in &mut row {
            *v /= sum;
        }
        let drift: f64 = 1.0 - row.iter().sum::<f64>();
        row[0] += drift;
        set.push_slice(&row)?;
    }
    Ok(set)
}

/// Convenience: a scaled bundle of the three simulated real data sets with
/// matching weight sets, used by the Figure 12 experiment.
#[derive(Debug)]
pub struct RealBundle {
    /// Simulated HOUSE points.
    pub house: PointSet,
    /// Simulated COLOR points.
    pub color: PointSet,
    /// Simulated DIANPING restaurant points.
    pub dianping_p: PointSet,
    /// Simulated DIANPING user preferences.
    pub dianping_w: WeightSet,
    /// Uniform weights for HOUSE/COLOR (the paper generates `W` as UN data
    /// for those two sets).
    pub house_w: WeightSet,
    /// Uniform weights for COLOR.
    pub color_w: WeightSet,
}

/// Builds the bundle at `scale ∈ (0, 1]` of the paper's full cardinalities.
///
/// # Errors
///
/// Returns an error for a non-positive or >1 scale, or on construction
/// failure.
pub fn real_bundle(scale: f64, weights_n: usize, seed: u64) -> RrqResult<RealBundle> {
    if !(scale > 0.0 && scale <= 1.0) {
        return Err(rrq_types::RrqError::InvalidParameter {
            name: "scale",
            message: format!("must be in (0, 1], got {scale}"),
        });
    }
    let scaled = |full: usize| ((full as f64 * scale).round() as usize).max(1);
    Ok(RealBundle {
        house: house(scaled(HOUSE_FULL), seed)?,
        color: color(scaled(COLOR_FULL), seed.wrapping_add(1))?,
        dianping_p: dianping_restaurants(scaled(DIANPING_RESTAURANTS_FULL), seed.wrapping_add(2))?,
        dianping_w: dianping_users(scaled(DIANPING_USERS_FULL), seed.wrapping_add(3))?,
        house_w: synthetic::uniform_weights(HOUSE_DIM, weights_n, seed.wrapping_add(4))?,
        color_w: synthetic::uniform_weights(COLOR_DIM, weights_n, seed.wrapping_add(5))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn house_has_paper_shape() {
        let ps = house(1000, 1).unwrap();
        assert_eq!(ps.dim(), HOUSE_DIM);
        assert_eq!(ps.len(), 1000);
        assert_eq!(ps.value_range(), 100.0);
        for &v in ps.as_flat() {
            assert!((0.0..100.0).contains(&v));
        }
    }

    #[test]
    fn house_categories_are_positively_correlated() {
        let ps = house(20_000, 2).unwrap();
        // Correlation between gas (0) and electricity (1) driven by the
        // latent factor should be clearly positive.
        let flat = ps.as_flat();
        let n = ps.len() as f64;
        let (mut mx, mut my) = (0.0, 0.0);
        for row in flat.chunks_exact(HOUSE_DIM) {
            mx += row[0];
            my += row[1];
        }
        mx /= n;
        my /= n;
        let (mut cov, mut vx, mut vy) = (0.0, 0.0, 0.0);
        for row in flat.chunks_exact(HOUSE_DIM) {
            let (dx, dy) = (row[0] - mx, row[1] - my);
            cov += dx * dy;
            vx += dx * dx;
            vy += dy * dy;
        }
        let corr = cov / (vx.sqrt() * vy.sqrt());
        assert!(corr > 0.15, "expected positive correlation, got {corr}");
    }

    #[test]
    fn color_has_paper_shape_and_skew() {
        let ps = color(20_000, 3).unwrap();
        assert_eq!(ps.dim(), COLOR_DIM);
        assert_eq!(ps.value_range(), 1.0);
        let mean = ps.as_flat().iter().sum::<f64>() / ps.as_flat().len() as f64;
        assert!(mean < 0.5, "HSV moments skew low, mean {mean}");
        for &v in ps.as_flat() {
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn dianping_restaurants_in_star_range() {
        let ps = dianping_restaurants(5000, 4).unwrap();
        assert_eq!(ps.dim(), DIANPING_DIM);
        assert_eq!(ps.value_range(), 5.0);
        for &v in ps.as_flat() {
            assert!((0.0..5.0).contains(&v));
        }
    }

    #[test]
    fn dianping_users_are_normalised_and_skewed() {
        let ws = dianping_users(10_000, 5).unwrap();
        assert_eq!(ws.dim(), DIANPING_DIM);
        let mut means = [0.0f64; DIANPING_DIM];
        for (_, w) in ws.iter() {
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            for (m, &v) in means.iter_mut().zip(w) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= ws.len() as f64;
        }
        // Flavor (index 1) should dominate waiting time (index 5).
        assert!(means[1] > means[5] * 2.0, "means {means:?}");
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(house(100, 9).unwrap(), house(100, 9).unwrap());
        assert_eq!(color(100, 9).unwrap(), color(100, 9).unwrap());
        assert_eq!(
            dianping_restaurants(100, 9).unwrap(),
            dianping_restaurants(100, 9).unwrap()
        );
        assert_eq!(
            dianping_users(100, 9).unwrap(),
            dianping_users(100, 9).unwrap()
        );
    }

    #[test]
    fn real_bundle_scales_cardinalities() {
        let b = real_bundle(0.001, 50, 7).unwrap();
        assert_eq!(b.house.len(), (HOUSE_FULL as f64 * 0.001).round() as usize);
        assert_eq!(b.color.len(), (COLOR_FULL as f64 * 0.001).round() as usize);
        assert_eq!(b.house_w.len(), 50);
        assert_eq!(b.color_w.len(), 50);
        assert_eq!(b.house_w.dim(), HOUSE_DIM);
        assert_eq!(b.color_w.dim(), COLOR_DIM);
        assert_eq!(b.dianping_p.dim(), b.dianping_w.dim());
    }

    #[test]
    fn real_bundle_rejects_bad_scale() {
        assert!(real_bundle(0.0, 10, 1).is_err());
        assert!(real_bundle(1.5, 10, 1).is_err());
    }
}
