//! Minimal binary persistence for data sets.
//!
//! The paper's Table 2 measures the time to *read data files* against the
//! time to *process* reverse rank queries, concluding that I/O is
//! negligible and CPU (pairwise multiplication) dominates. To reproduce
//! that experiment we need real files; this module provides a compact
//! little-endian binary format:
//!
//! ```text
//! magic  (4 bytes)  "RRQP" for points, "RRQW" for weights
//! dim    (u32 LE)
//! rows   (u64 LE)
//! range  (f64 LE)   points only
//! data   (rows × dim × f64 LE)
//! ```

use rrq_types::{PointSet, RrqError, RrqResult, WeightSet};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const POINT_MAGIC: &[u8; 4] = b"RRQP";
const WEIGHT_MAGIC: &[u8; 4] = b"RRQW";

fn io_error(e: io::Error) -> RrqError {
    RrqError::InvalidParameter {
        name: "io",
        message: e.to_string(),
    }
}

fn write_header<W: Write>(out: &mut W, magic: &[u8; 4], dim: usize, rows: usize) -> io::Result<()> {
    out.write_all(magic)?;
    out.write_all(&(dim as u32).to_le_bytes())?;
    out.write_all(&(rows as u64).to_le_bytes())?;
    Ok(())
}

fn read_exact_array<const N: usize, R: Read>(input: &mut R) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    input.read_exact(&mut buf)?;
    Ok(buf)
}

/// Serialises a point set to `path`.
///
/// # Errors
///
/// Wraps any I/O failure in [`RrqError::InvalidParameter`].
pub fn write_points(points: &PointSet, path: &Path) -> RrqResult<()> {
    let file = std::fs::File::create(path).map_err(io_error)?;
    let mut out = BufWriter::new(file);
    (|| -> io::Result<()> {
        write_header(&mut out, POINT_MAGIC, points.dim(), points.len())?;
        out.write_all(&points.value_range().to_le_bytes())?;
        for &v in points.as_flat() {
            out.write_all(&v.to_le_bytes())?;
        }
        out.flush()
    })()
    .map_err(io_error)
}

/// Deserialises a point set from `path`.
///
/// # Errors
///
/// Fails on I/O errors, a bad magic number, or invalid payload values.
pub fn read_points(path: &Path) -> RrqResult<PointSet> {
    let file = std::fs::File::open(path).map_err(io_error)?;
    let mut input = BufReader::new(file);
    let (dim, rows, range, data) = (|| -> io::Result<(usize, usize, f64, Vec<f64>)> {
        let magic: [u8; 4] = read_exact_array(&mut input)?;
        if &magic != POINT_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad point-file magic",
            ));
        }
        let dim = u32::from_le_bytes(read_exact_array(&mut input)?) as usize;
        let rows = u64::from_le_bytes(read_exact_array(&mut input)?) as usize;
        let range = f64::from_le_bytes(read_exact_array(&mut input)?);
        let mut data = vec![0.0f64; dim * rows];
        for v in &mut data {
            *v = f64::from_le_bytes(read_exact_array(&mut input)?);
        }
        Ok((dim, rows, range, data))
    })()
    .map_err(io_error)?;
    debug_assert_eq!(data.len(), dim * rows);
    PointSet::from_flat(dim, range, &data)
}

/// Serialises a weight set to `path`.
///
/// # Errors
///
/// Wraps any I/O failure in [`RrqError::InvalidParameter`].
pub fn write_weights(weights: &WeightSet, path: &Path) -> RrqResult<()> {
    let file = std::fs::File::create(path).map_err(io_error)?;
    let mut out = BufWriter::new(file);
    (|| -> io::Result<()> {
        write_header(&mut out, WEIGHT_MAGIC, weights.dim(), weights.len())?;
        for &v in weights.as_flat() {
            out.write_all(&v.to_le_bytes())?;
        }
        out.flush()
    })()
    .map_err(io_error)
}

/// Deserialises a weight set from `path`.
///
/// # Errors
///
/// Fails on I/O errors, a bad magic number, or invalid payload values.
pub fn read_weights(path: &Path) -> RrqResult<WeightSet> {
    let file = std::fs::File::open(path).map_err(io_error)?;
    let mut input = BufReader::new(file);
    let (dim, data) = (|| -> io::Result<(usize, Vec<f64>)> {
        let magic: [u8; 4] = read_exact_array(&mut input)?;
        if &magic != WEIGHT_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad weight-file magic",
            ));
        }
        let dim = u32::from_le_bytes(read_exact_array(&mut input)?) as usize;
        let rows = u64::from_le_bytes(read_exact_array(&mut input)?) as usize;
        let mut data = vec![0.0f64; dim * rows];
        for v in &mut data {
            *v = f64::from_le_bytes(read_exact_array(&mut input)?);
        }
        Ok((dim, data))
    })()
    .map_err(io_error)?;
    WeightSet::from_flat(dim, &data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rrq_io_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn points_round_trip() {
        let ps = synthetic::uniform_points(5, 200, 10_000.0, 1).unwrap();
        let path = tmp("points.bin");
        write_points(&ps, &path).unwrap();
        let back = read_points(&path).unwrap();
        assert_eq!(ps, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn weights_round_trip() {
        let ws = synthetic::uniform_weights(5, 200, 2).unwrap();
        let path = tmp("weights.bin");
        write_weights(&ws, &path).unwrap();
        let back = read_weights(&path).unwrap();
        assert_eq!(ws, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_sets_round_trip() {
        let ps = synthetic::uniform_points(3, 0, 1.0, 1).unwrap();
        let path = tmp("empty_points.bin");
        write_points(&ps, &path).unwrap();
        assert_eq!(read_points(&path).unwrap().len(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let ws = synthetic::uniform_weights(3, 10, 3).unwrap();
        let path = tmp("cross.bin");
        write_weights(&ws, &path).unwrap();
        let err = read_points(&path).unwrap_err();
        assert!(err.to_string().contains("magic"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let ps = synthetic::uniform_points(3, 10, 1.0, 4).unwrap();
        let path = tmp("trunc.bin");
        write_points(&ps, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(read_points(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(read_points(Path::new("/nonexistent/rrq.bin")).is_err());
        assert!(read_weights(Path::new("/nonexistent/rrq.bin")).is_err());
    }
}

/// Reads a point set from a delimited text file (comma and/or whitespace
/// separated), one vector per line. Lines that are empty or start with
/// `#` are skipped. This is the format the paper's real data sets
/// (HOUSE, COLOR) circulate in; users holding the originals can load
/// them directly instead of the simulators.
///
/// `value_range` must exceed every attribute in the file.
///
/// # Errors
///
/// Fails on I/O errors, parse errors, ragged rows, or out-of-range
/// values.
pub fn read_points_csv(path: &Path, value_range: f64) -> RrqResult<PointSet> {
    let rows = read_rows(path)?;
    let dim = rows
        .first()
        .map(|r| r.len())
        .ok_or(RrqError::EmptyDataset)?;
    let mut set = PointSet::with_capacity(dim, value_range, rows.len())?;
    for row in &rows {
        set.push_slice(row)?;
    }
    Ok(set)
}

/// Reads a weight set from a delimited text file, one vector per line.
/// With `normalize = true` each row is rescaled to sum to 1 (raw survey
/// or preference data rarely arrives normalised); with `false`, rows
/// must already sum to 1.
///
/// # Errors
///
/// Fails on I/O errors, parse errors, ragged rows, all-zero rows (when
/// normalising) or unnormalised rows (when not).
pub fn read_weights_csv(path: &Path, normalize: bool) -> RrqResult<WeightSet> {
    let rows = read_rows(path)?;
    let dim = rows
        .first()
        .map(|r| r.len())
        .ok_or(RrqError::EmptyDataset)?;
    let mut set = WeightSet::with_capacity(dim, rows.len())?;
    for row in rows {
        if normalize {
            let sum: f64 = row.iter().sum();
            if sum <= 0.0 {
                return Err(RrqError::InvalidParameter {
                    name: "row",
                    message: "cannot normalise an all-zero weight row".into(),
                });
            }
            let mut scaled: Vec<f64> = row.iter().map(|v| v / sum).collect();
            let drift: f64 = 1.0 - scaled.iter().sum::<f64>();
            scaled[0] += drift;
            set.push_slice(&scaled)?;
        } else {
            set.push_slice(&row)?;
        }
    }
    Ok(set)
}

/// Parses a delimited text file into float rows, validating rectangular
/// shape.
fn read_rows(path: &Path) -> RrqResult<Vec<Vec<f64>>> {
    let content = std::fs::read_to_string(path).map_err(io_error)?;
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let row: Result<Vec<f64>, _> = line
            .split(|c: char| c == ',' || c.is_whitespace() || c == ';')
            .filter(|tok| !tok.is_empty())
            .map(str::parse::<f64>)
            .collect();
        let row = row.map_err(|e| RrqError::InvalidParameter {
            name: "csv",
            message: format!("line {}: {e}", lineno + 1),
        })?;
        if let Some(first) = rows.first() {
            if row.len() != first.len() {
                return Err(RrqError::DimensionMismatch {
                    expected: first.len(),
                    actual: row.len(),
                });
            }
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(RrqError::EmptyDataset);
    }
    Ok(rows)
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rrq_csv_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn reads_comma_and_space_mixed() {
        let path = tmp("mixed.csv");
        std::fs::write(&path, "# header comment\n1.0, 2.5 3\n4;5,6\n\n7 8 9\n").unwrap();
        let ps = read_points_csv(&path, 100.0).unwrap();
        assert_eq!(ps.len(), 3);
        assert_eq!(ps.dim(), 3);
        assert_eq!(ps.point(rrq_types::PointId(1)), &[4.0, 5.0, 6.0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_ragged_rows() {
        let path = tmp("ragged.csv");
        std::fs::write(&path, "1 2 3\n4 5\n").unwrap();
        assert!(matches!(
            read_points_csv(&path, 100.0),
            Err(RrqError::DimensionMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage.csv");
        std::fs::write(&path, "1 2\nx y\n").unwrap();
        assert!(read_points_csv(&path, 100.0).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_an_error() {
        let path = tmp("empty.csv");
        std::fs::write(&path, "# only comments\n").unwrap();
        assert!(matches!(
            read_points_csv(&path, 100.0),
            Err(RrqError::EmptyDataset)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn weights_normalise_on_request() {
        let path = tmp("weights.csv");
        std::fs::write(&path, "2 6\n1 1\n").unwrap();
        let ws = read_weights_csv(&path, true).unwrap();
        let w0 = ws.weight(rrq_types::WeightId(0));
        assert!((w0[0] - 0.25).abs() < 1e-12);
        assert!((w0[1] - 0.75).abs() < 1e-12);
        // Raw mode rejects the same file.
        assert!(read_weights_csv(&path, false).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn weights_raw_mode_accepts_normalised() {
        let path = tmp("weights_norm.csv");
        std::fs::write(&path, "0.25 0.75\n0.5 0.5\n").unwrap();
        let ws = read_weights_csv(&path, false).unwrap();
        assert_eq!(ws.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn weights_reject_all_zero_row_in_normalise_mode() {
        let path = tmp("weights_zero.csv");
        std::fs::write(&path, "0 0\n").unwrap();
        assert!(read_weights_csv(&path, true).is_err());
        std::fs::remove_file(&path).ok();
    }
}
