//! Synthetic point and weight generators (paper §6.1, Table 5).
//!
//! Point distributions follow the classic skyline/top-k literature the
//! paper cites ([13, 17]): uniform (UN), clustered (CL) and anti-correlated
//! (AC). Weights are sampled on the probability simplex. Normal and
//! exponential marginals support the Table 4 filtering study.

use crate::dist;
use crate::rng::{Rng, StdRng};
use rrq_types::{PointSet, RrqResult, WeightSet};

/// Uniform (UN) points: every attribute i.i.d. `U[0, range)`.
///
/// # Errors
///
/// Propagates construction errors for invalid `dim`/`range`.
pub fn uniform_points(dim: usize, n: usize, range: f64, seed: u64) -> RrqResult<PointSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = PointSet::with_capacity(dim, range, n)?;
    let mut row = vec![0.0; dim];
    for _ in 0..n {
        for v in &mut row {
            *v = rng.gen_f64() * range;
        }
        set.push_slice(&row)?;
    }
    Ok(set)
}

/// Clustered (CL) points: `n_clusters` centroids drawn uniformly, points
/// normal around a random centroid with standard deviation
/// `sigma * range`, truncated to `[0, range)`.
///
/// The paper's defaults are `n_clusters = ⌈n^(1/3)⌉` and `sigma = 0.1`
/// (Table 5).
///
/// # Errors
///
/// Propagates construction errors; `n_clusters == 0` is rejected.
pub fn clustered_points(
    dim: usize,
    n: usize,
    range: f64,
    n_clusters: usize,
    sigma: f64,
    seed: u64,
) -> RrqResult<PointSet> {
    if n_clusters == 0 {
        return Err(rrq_types::RrqError::InvalidParameter {
            name: "n_clusters",
            message: "must be positive".into(),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let centroids: Vec<Vec<f64>> = (0..n_clusters)
        .map(|_| (0..dim).map(|_| rng.gen_f64() * range).collect())
        .collect();
    let sd = sigma * range;
    let mut set = PointSet::with_capacity(dim, range, n)?;
    let mut row = vec![0.0; dim];
    for _ in 0..n {
        let c = &centroids[rng.gen_range(0..n_clusters)];
        for (v, &center) in row.iter_mut().zip(c) {
            *v = dist::truncated_normal(&mut rng, center, sd, 0.0, range);
        }
        set.push_slice(&row)?;
    }
    Ok(set)
}

/// Anti-correlated (AC) points: attributes negatively correlated across
/// dimensions — points concentrate around the hyperplane
/// `Σ p[i] = d·range/2`, so a point good in one dimension is bad in others.
///
/// Follows the standard construction of the skyline literature: draw a
/// plane offset `base ~ N(0.5, 0.05)` (normalised; the offset spread is
/// kept small so the zero-sum perturbation dominates — pairwise
/// correlation of perfect plane data is `−1/(d−1)`, and a large offset
/// variance washes it out), then spread zero-sum perturbations across
/// the dimensions, clamping to `[0, range)`.
///
/// # Errors
///
/// Propagates construction errors for invalid `dim`/`range`.
pub fn anticorrelated_points(dim: usize, n: usize, range: f64, seed: u64) -> RrqResult<PointSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = PointSet::with_capacity(dim, range, n)?;
    let mut row = vec![0.0; dim];
    let mut delta = vec![0.0; dim];
    let eps = range * 1e-12;
    for _ in 0..n {
        let base = dist::truncated_normal(&mut rng, 0.5, 0.05, 0.0, 1.0);
        // Zero-sum perturbation: uniform offsets recentred to mean zero.
        let mut mean = 0.0;
        for d in delta.iter_mut() {
            *d = rng.gen_f64() - 0.5;
            mean += *d;
        }
        mean /= dim as f64;
        for (v, d) in row.iter_mut().zip(&delta) {
            let x = (base + (d - mean)).clamp(0.0, 1.0 - 1e-12);
            *v = (x * range).min(range - eps);
        }
        set.push_slice(&row)?;
    }
    Ok(set)
}

/// Points with truncated-normal marginals `N(range/2, (sigma·range)²)`
/// (used in the Table 4 distribution study with `sigma = 0.1`).
///
/// # Errors
///
/// Propagates construction errors for invalid `dim`/`range`.
pub fn normal_points(
    dim: usize,
    n: usize,
    range: f64,
    sigma: f64,
    seed: u64,
) -> RrqResult<PointSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = PointSet::with_capacity(dim, range, n)?;
    let mut row = vec![0.0; dim];
    let (mean, sd) = (range * 0.5, sigma * range);
    for _ in 0..n {
        for v in &mut row {
            *v = dist::truncated_normal(&mut rng, mean, sd, 0.0, range);
        }
        set.push_slice(&row)?;
    }
    Ok(set)
}

/// Points with exponential marginals `Exp(lambda)` scaled into `[0, range)`
/// (Table 4 uses `lambda = 2`). The raw exponential is sampled on a unit
/// scale and multiplied by `range`, then folded into the range.
///
/// # Errors
///
/// Propagates construction errors for invalid `dim`/`range`.
pub fn exponential_points(
    dim: usize,
    n: usize,
    range: f64,
    lambda: f64,
    seed: u64,
) -> RrqResult<PointSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = PointSet::with_capacity(dim, range, n)?;
    let mut row = vec![0.0; dim];
    for _ in 0..n {
        for v in &mut row {
            *v = dist::truncated_exponential(&mut rng, lambda, 1.0) * range;
        }
        set.push_slice(&row)?;
    }
    Ok(set)
}

/// Uniform (UN) weights: uniform on the probability simplex
/// (`Dirichlet(1, …, 1)`, sampled by normalising i.i.d. exponentials).
///
/// # Errors
///
/// Propagates construction errors for invalid `dim`.
pub fn uniform_weights(dim: usize, n: usize, seed: u64) -> RrqResult<WeightSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = WeightSet::with_capacity(dim, n)?;
    let mut row = vec![0.0; dim];
    for _ in 0..n {
        fill_simplex_uniform(&mut rng, &mut row);
        set.push_slice(&row)?;
    }
    Ok(set)
}

/// Clustered (CL) weights: centroids drawn uniformly on the simplex,
/// members perturbed with `N(0, sigma²)` per component, floored at 0 and
/// re-normalised.
///
/// # Errors
///
/// Propagates construction errors; `n_clusters == 0` is rejected.
pub fn clustered_weights(
    dim: usize,
    n: usize,
    n_clusters: usize,
    sigma: f64,
    seed: u64,
) -> RrqResult<WeightSet> {
    if n_clusters == 0 {
        return Err(rrq_types::RrqError::InvalidParameter {
            name: "n_clusters",
            message: "must be positive".into(),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut centroids = vec![vec![0.0; dim]; n_clusters];
    for c in &mut centroids {
        fill_simplex_uniform(&mut rng, c);
    }
    let mut set = WeightSet::with_capacity(dim, n)?;
    let mut row = vec![0.0; dim];
    for _ in 0..n {
        let c = &centroids[rng.gen_range(0..n_clusters)];
        let mut sum = 0.0;
        for (v, &center) in row.iter_mut().zip(c) {
            *v = (center + dist::normal(&mut rng, 0.0, sigma)).max(0.0);
            sum += *v;
        }
        if sum <= 0.0 {
            row.copy_from_slice(c);
        } else {
            for v in &mut row {
                *v /= sum;
            }
        }
        set.push_slice(&row)?;
    }
    Ok(set)
}

/// Sparse weights (paper §7, future-work extension 2): each vector has at
/// most `nonzero` non-zero components (positions chosen uniformly), values
/// uniform on the sub-simplex. Models users interested in only a few
/// attributes.
///
/// # Errors
///
/// Rejects `nonzero == 0` or `nonzero > dim`; propagates construction
/// errors otherwise.
pub fn sparse_weights(dim: usize, n: usize, nonzero: usize, seed: u64) -> RrqResult<WeightSet> {
    if nonzero == 0 || nonzero > dim {
        return Err(rrq_types::RrqError::InvalidParameter {
            name: "nonzero",
            message: format!("must be in 1..={dim}, got {nonzero}"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = WeightSet::with_capacity(dim, n)?;
    let mut row = vec![0.0; dim];
    let mut positions: Vec<usize> = (0..dim).collect();
    let mut sub = vec![0.0; nonzero];
    for _ in 0..n {
        row.iter_mut().for_each(|v| *v = 0.0);
        // Partial Fisher–Yates: choose `nonzero` distinct positions.
        for i in 0..nonzero {
            let j = rng.gen_range(i..dim);
            positions.swap(i, j);
        }
        fill_simplex_uniform(&mut rng, &mut sub);
        for (i, &pos) in positions[..nonzero].iter().enumerate() {
            row[pos] = sub[i];
        }
        set.push_slice(&row)?;
    }
    Ok(set)
}

/// Fills `row` with a uniform sample from the probability simplex by
/// normalising i.i.d. `Exp(1)` variates.
fn fill_simplex_uniform<R: Rng + ?Sized>(rng: &mut R, row: &mut [f64]) {
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = dist::exponential(rng, 1.0).max(f64::MIN_POSITIVE);
        sum += *v;
    }
    for v in row.iter_mut() {
        *v /= sum;
    }
    // Guard against rounding drift beyond the WeightSet tolerance.
    let drift: f64 = 1.0 - row.iter().sum::<f64>();
    row[0] += drift;
}

#[cfg(test)]
mod tests {
    use super::*;

    const RANGE: f64 = 10_000.0;

    #[test]
    fn uniform_points_in_range_and_deterministic() {
        let a = uniform_points(4, 500, RANGE, 1).unwrap();
        let b = uniform_points(4, 500, RANGE, 1).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        for (_, p) in a.iter() {
            for &v in p {
                assert!((0.0..RANGE).contains(&v));
            }
        }
    }

    #[test]
    fn uniform_points_different_seeds_differ() {
        let a = uniform_points(4, 100, RANGE, 1).unwrap();
        let b = uniform_points(4, 100, RANGE, 2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_points_cover_the_range() {
        let a = uniform_points(2, 5000, RANGE, 3).unwrap();
        let max = a.as_flat().iter().cloned().fold(0.0, f64::max);
        let min = a.as_flat().iter().cloned().fold(RANGE, f64::min);
        assert!(max > 0.95 * RANGE);
        assert!(min < 0.05 * RANGE);
    }

    #[test]
    fn clustered_points_concentrate_near_centroids() {
        // With 1 cluster and tiny sigma all points hug one centroid.
        let ps = clustered_points(3, 200, RANGE, 1, 0.01, 7).unwrap();
        let first = ps.point(rrq_types::PointId(0)).to_vec();
        for (_, p) in ps.iter() {
            for (a, b) in p.iter().zip(&first) {
                assert!((a - b).abs() < 0.2 * RANGE, "points spread too far");
            }
        }
    }

    #[test]
    fn clustered_points_rejects_zero_clusters() {
        assert!(clustered_points(3, 10, RANGE, 0, 0.1, 7).is_err());
    }

    #[test]
    fn anticorrelated_points_have_negative_cross_correlation() {
        let ps = anticorrelated_points(2, 20_000, RANGE, 11).unwrap();
        let flat = ps.as_flat();
        let n = ps.len() as f64;
        let (mut mx, mut my) = (0.0, 0.0);
        for row in flat.chunks_exact(2) {
            mx += row[0];
            my += row[1];
        }
        mx /= n;
        my /= n;
        let (mut cov, mut vx, mut vy) = (0.0, 0.0, 0.0);
        for row in flat.chunks_exact(2) {
            let (dx, dy) = (row[0] - mx, row[1] - my);
            cov += dx * dy;
            vx += dx * dx;
            vy += dy * dy;
        }
        let corr = cov / (vx.sqrt() * vy.sqrt());
        assert!(corr < -0.3, "expected anti-correlation, got r = {corr}");
    }

    #[test]
    fn anticorrelated_points_stay_in_range() {
        let ps = anticorrelated_points(5, 2000, RANGE, 13).unwrap();
        for &v in ps.as_flat() {
            assert!((0.0..RANGE).contains(&v));
        }
    }

    #[test]
    fn normal_points_center_on_half_range() {
        let ps = normal_points(1, 20_000, RANGE, 0.1, 17).unwrap();
        let mean = ps.as_flat().iter().sum::<f64>() / ps.len() as f64;
        assert!((mean - RANGE * 0.5).abs() < 0.01 * RANGE, "mean {mean}");
    }

    #[test]
    fn exponential_points_skew_low() {
        let ps = exponential_points(1, 20_000, RANGE, 2.0, 19).unwrap();
        let mean = ps.as_flat().iter().sum::<f64>() / ps.len() as f64;
        // Exp(2) truncated below 1 has mean slightly under 0.5.
        assert!(mean < 0.5 * RANGE, "mean {mean}");
        assert!(mean > 0.2 * RANGE, "mean {mean}");
    }

    #[test]
    fn uniform_weights_normalised_and_deterministic() {
        let a = uniform_weights(6, 300, 23).unwrap();
        let b = uniform_weights(6, 300, 23).unwrap();
        assert_eq!(a, b);
        for (_, w) in a.iter() {
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(w.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn uniform_weights_mean_is_symmetric() {
        let ws = uniform_weights(4, 20_000, 29).unwrap();
        let mut means = [0.0f64; 4];
        for (_, w) in ws.iter() {
            for (m, &v) in means.iter_mut().zip(w) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= ws.len() as f64;
        }
        for &m in &means {
            assert!((m - 0.25).abs() < 0.01, "component mean {m}");
        }
    }

    #[test]
    fn clustered_weights_normalised() {
        let ws = clustered_weights(5, 500, 8, 0.05, 31).unwrap();
        for (_, w) in ws.iter() {
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn clustered_weights_rejects_zero_clusters() {
        assert!(clustered_weights(5, 10, 0, 0.05, 31).is_err());
    }

    #[test]
    fn sparse_weights_have_requested_support() {
        let ws = sparse_weights(10, 200, 3, 37).unwrap();
        for (_, w) in ws.iter() {
            let nz = w.iter().filter(|&&v| v > 0.0).count();
            assert!(nz <= 3, "support {nz}");
            assert!(nz >= 1);
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sparse_weights_rejects_bad_support() {
        assert!(sparse_weights(4, 10, 0, 1).is_err());
        assert!(sparse_weights(4, 10, 5, 1).is_err());
    }

    #[test]
    fn sparse_weights_full_support_equals_dim() {
        let ws = sparse_weights(4, 50, 4, 41).unwrap();
        for (_, w) in ws.iter() {
            assert!(w.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn generators_support_zero_cardinality() {
        assert_eq!(uniform_points(3, 0, RANGE, 1).unwrap().len(), 0);
        assert_eq!(uniform_weights(3, 0, 1).unwrap().len(), 0);
    }
}
