//! Scalar sampling primitives built on top of a uniform RNG.
//!
//! The build runs fully offline (no `rand`, no `rand_distr`), so the
//! normal and exponential samplers the paper's Table 4 needs are
//! implemented here from first principles (Box–Muller and inverse CDF)
//! over the in-workspace [`Rng`](crate::rng::Rng).

use crate::rng::Rng;

/// Samples a standard normal `N(0, 1)` variate via the Box–Muller
/// transform.
///
/// Uses the polar-free classic form: `sqrt(-2 ln u1) * cos(2π u2)`, with
/// `u1` drawn from `(0, 1]` so the logarithm is finite.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // gen_f64() yields [0, 1); flip to (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen_f64();
    let u2: f64 = rng.gen_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples `N(mean, sigma²)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    mean + sigma * standard_normal(rng)
}

/// Samples `N(mean, sigma²)` truncated (by rejection) to `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`. Falls back to clamping after 1000 rejections so a
/// pathological `(mean, sigma)` cannot loop forever.
pub fn truncated_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    sigma: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    assert!(lo < hi, "empty truncation interval [{lo}, {hi})");
    for _ in 0..1000 {
        let x = normal(rng, mean, sigma);
        if x >= lo && x < hi {
            return x;
        }
    }
    // Clamp into the half-open interval; nudge below hi.
    let eps = (hi - lo) * 1e-12;
    mean.clamp(lo, hi - eps)
}

/// Samples `Exp(lambda)` via inverse CDF: `-ln(1 - u) / lambda`.
///
/// # Panics
///
/// Panics if `lambda <= 0`.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    assert!(lambda > 0.0, "exponential rate must be positive");
    let u: f64 = rng.gen_f64(); // [0, 1); 1 - u in (0, 1] keeps ln finite.
    -(1.0 - u).ln() / lambda
}

/// Samples `Exp(lambda)` folded (by rejection) into `[0, hi)`.
///
/// # Panics
///
/// Panics if `lambda <= 0` or `hi <= 0`.
pub fn truncated_exponential<R: Rng + ?Sized>(rng: &mut R, lambda: f64, hi: f64) -> f64 {
    assert!(hi > 0.0, "truncation bound must be positive");
    for _ in 0..1000 {
        let x = exponential(rng, lambda);
        if x < hi {
            return x;
        }
    }
    hi * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;

    const N: usize = 50_000;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let samples: Vec<f64> = (0..N).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / N as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / N as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..N).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / N as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / N as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "variance {var}");
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = truncated_normal(&mut rng, 0.5, 0.3, 0.0, 1.0);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn truncated_normal_pathological_falls_back_to_clamp() {
        let mut rng = StdRng::seed_from_u64(3);
        // Mean far outside the interval with tiny sigma: rejection will
        // never succeed, so the clamp path must return an in-range value.
        let x = truncated_normal(&mut rng, 100.0, 1e-9, 0.0, 1.0);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    #[should_panic(expected = "empty truncation interval")]
    fn truncated_normal_rejects_empty_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        truncated_normal(&mut rng, 0.5, 0.1, 1.0, 1.0);
    }

    #[test]
    fn exponential_mean_is_reciprocal_rate() {
        let mut rng = StdRng::seed_from_u64(11);
        let lambda = 2.0;
        let mean = (0..N).map(|_| exponential(&mut rng, lambda)).sum::<f64>() / N as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn exponential_is_non_negative() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            assert!(exponential(&mut rng, 0.5) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_non_positive_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        exponential(&mut rng, 0.0);
    }

    #[test]
    fn truncated_exponential_respects_bound() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            assert!(truncated_exponential(&mut rng, 2.0, 1.0) < 1.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }
}
