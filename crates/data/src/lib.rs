//! Workload generators for reverse rank query experiments.
//!
//! Provides every data set the paper's evaluation (§6.1) uses:
//!
//! * **Synthetic points** `P`: uniform (UN), clustered (CL),
//!   anti-correlated (AC), plus normal and exponential marginals for the
//!   filtering-performance study (Table 4). Attribute range `[0, 10K)` by
//!   default, matching the paper.
//! * **Synthetic weights** `W`: uniform on the probability simplex (UN),
//!   clustered on the simplex (CL), and skewed variants; every vector is
//!   non-negative and sums to 1.
//! * **Simulated real data** ([`real_sim`]): the paper evaluates on three
//!   proprietary/real data sets (HOUSE, COLOR, DIANPING) we do not have;
//!   statistically-matched simulators with identical dimensionality and
//!   cardinality exercise the same code paths (see DESIGN.md §7).
//! * **File I/O** ([`io`]): a minimal binary format used to reproduce the
//!   read-vs-compute cost measurement of Table 2.
//!
//! All generators are deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod io;
pub mod real_sim;
pub mod rng;
pub mod spec;
pub mod stats;
pub mod synthetic;

pub use rng::{Rng, SmallRng, SplitMix64, StdRng, Xoshiro256PlusPlus};
pub use spec::{DataSpec, PointDistribution, WeightDistribution};
pub use synthetic::{
    anticorrelated_points, clustered_points, clustered_weights, exponential_points, normal_points,
    sparse_weights, uniform_points, uniform_weights,
};

/// Attribute value range used by the paper's synthetic data: `[0, 10_000)`.
pub const PAPER_VALUE_RANGE: f64 = 10_000.0;

/// The paper's default cluster count rule: `⌈|X|^(1/3)⌉` (Table 5).
pub fn default_cluster_count(cardinality: usize) -> usize {
    (cardinality as f64).cbrt().ceil().max(1.0) as usize
}

/// The paper's default cluster standard deviation as a fraction of the value
/// range (Table 5 lists variance `0.1²` in normalised space).
pub const PAPER_CLUSTER_SIGMA: f64 = 0.1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_count_is_cbrt() {
        assert_eq!(default_cluster_count(1), 1);
        assert_eq!(default_cluster_count(1000), 10);
        assert_eq!(default_cluster_count(100_000), 47); // ⌈46.4⌉
    }

    #[test]
    fn cluster_count_never_zero() {
        assert_eq!(default_cluster_count(0), 1);
    }
}
