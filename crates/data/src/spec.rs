//! Declarative workload specifications used by the benchmark harness.
//!
//! The paper's experiments sweep `(distribution of P, distribution of W,
//! d, |P|, |W|)` (Table 5); a [`DataSpec`] captures one cell of that sweep
//! and generates it reproducibly.

use crate::{real_sim, synthetic, PAPER_CLUSTER_SIGMA, PAPER_VALUE_RANGE};
use rrq_types::{PointSet, RrqResult, WeightSet};

/// Distribution of the product data set `P`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointDistribution {
    /// Uniform (UN).
    Uniform,
    /// Clustered (CL): `⌈n^(1/3)⌉` clusters, `σ = 0.1` of the range.
    Clustered,
    /// Anti-correlated (AC).
    AntiCorrelated,
    /// Truncated normal marginals (Table 4).
    Normal,
    /// Exponential marginals with `λ = 2` (Table 4).
    Exponential,
    /// Simulated HOUSE (6-d household spending percentages).
    House,
    /// Simulated COLOR (9-d HSV image features).
    Color,
    /// Simulated DIANPING restaurants (6-d review scores).
    Dianping,
}

impl PointDistribution {
    /// Short label used in experiment output, matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PointDistribution::Uniform => "UN",
            PointDistribution::Clustered => "CL",
            PointDistribution::AntiCorrelated => "AC",
            PointDistribution::Normal => "NORM",
            PointDistribution::Exponential => "EXP",
            PointDistribution::House => "HOUSE",
            PointDistribution::Color => "COLOR",
            PointDistribution::Dianping => "DIANPING",
        }
    }

    /// Whether this distribution has a fixed intrinsic dimensionality
    /// (the simulated real data sets do).
    pub fn fixed_dim(self) -> Option<usize> {
        match self {
            PointDistribution::House => Some(real_sim::HOUSE_DIM),
            PointDistribution::Color => Some(real_sim::COLOR_DIM),
            PointDistribution::Dianping => Some(real_sim::DIANPING_DIM),
            _ => None,
        }
    }
}

/// Distribution of the preference data set `W`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightDistribution {
    /// Uniform on the probability simplex (UN).
    Uniform,
    /// Clustered on the simplex (CL).
    Clustered,
    /// Truncated-normal component magnitudes, re-normalised (Table 4).
    Normal,
    /// Skewed components, re-normalised (Table 4's "Exponential" row).
    /// Normalising `Exp(λ)` magnitudes is λ-invariant (it always yields
    /// the flat Dirichlet), so this uses `Gamma(1/2)` magnitudes —
    /// `Dirichlet(1/2)` — which concentrates mass on few attributes.
    Exponential,
    /// Sparse support (paper §7 extension): at most `max_nonzero`
    /// components non-zero.
    Sparse {
        /// Maximum number of non-zero components per vector.
        max_nonzero: usize,
    },
    /// Simulated DIANPING users.
    Dianping,
}

impl WeightDistribution {
    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            WeightDistribution::Uniform => "UN",
            WeightDistribution::Clustered => "CL",
            WeightDistribution::Normal => "NORM",
            WeightDistribution::Exponential => "EXP",
            WeightDistribution::Sparse { .. } => "SPARSE",
            WeightDistribution::Dianping => "DIANPING",
        }
    }
}

/// One experiment workload: distributions, dimensionality and
/// cardinalities, generated deterministically from `seed`.
///
/// ```
/// use rrq_data::{DataSpec, PointDistribution, WeightDistribution};
///
/// let spec = DataSpec {
///     points: PointDistribution::AntiCorrelated,
///     weights: WeightDistribution::Clustered,
///     dim: 6,
///     n_points: 500,
///     n_weights: 100,
///     seed: 7,
/// };
/// let (p, w) = spec.generate()?;
/// assert_eq!((p.len(), w.len()), (500, 100));
/// assert_eq!(spec.label(), "AC/CL d=6 |P|=500 |W|=100");
/// # Ok::<(), rrq_types::RrqError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataSpec {
    /// Distribution of `P`.
    pub points: PointDistribution,
    /// Distribution of `W`.
    pub weights: WeightDistribution,
    /// Dimensionality `d` (ignored when the point distribution has a fixed
    /// intrinsic dimensionality).
    pub dim: usize,
    /// `|P|`.
    pub n_points: usize,
    /// `|W|`.
    pub n_weights: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DataSpec {
    /// The paper's default workload shape: UN×UN, `d = 6`,
    /// `|P| = |W| = n`, seeded.
    pub fn uniform_default(dim: usize, n: usize, seed: u64) -> Self {
        Self {
            points: PointDistribution::Uniform,
            weights: WeightDistribution::Uniform,
            dim,
            n_points: n,
            n_weights: n,
            seed,
        }
    }

    /// Effective dimensionality after accounting for fixed-dimension
    /// distributions.
    pub fn effective_dim(&self) -> usize {
        self.points.fixed_dim().unwrap_or(self.dim)
    }

    /// Generates the point set.
    ///
    /// # Errors
    ///
    /// Propagates generator errors (invalid dims, etc.).
    pub fn generate_points(&self) -> RrqResult<PointSet> {
        let d = self.effective_dim();
        let n = self.n_points;
        let r = PAPER_VALUE_RANGE;
        let seed = self.seed;
        match self.points {
            PointDistribution::Uniform => synthetic::uniform_points(d, n, r, seed),
            PointDistribution::Clustered => synthetic::clustered_points(
                d,
                n,
                r,
                crate::default_cluster_count(n),
                PAPER_CLUSTER_SIGMA,
                seed,
            ),
            PointDistribution::AntiCorrelated => synthetic::anticorrelated_points(d, n, r, seed),
            PointDistribution::Normal => synthetic::normal_points(d, n, r, 0.1, seed),
            PointDistribution::Exponential => synthetic::exponential_points(d, n, r, 2.0, seed),
            PointDistribution::House => real_sim::house(n, seed),
            PointDistribution::Color => real_sim::color(n, seed),
            PointDistribution::Dianping => real_sim::dianping_restaurants(n, seed),
        }
    }

    /// Generates the weight set (seed offset so `P` and `W` are
    /// independent).
    ///
    /// # Errors
    ///
    /// Propagates generator errors.
    pub fn generate_weights(&self) -> RrqResult<WeightSet> {
        let d = self.effective_dim();
        let n = self.n_weights;
        let seed = self.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        match self.weights {
            WeightDistribution::Uniform => synthetic::uniform_weights(d, n, seed),
            WeightDistribution::Clustered => {
                synthetic::clustered_weights(d, n, crate::default_cluster_count(n), 0.05, seed)
            }
            WeightDistribution::Normal => normal_weights(d, n, seed),
            WeightDistribution::Exponential => exponential_weights(d, n, seed),
            WeightDistribution::Sparse { max_nonzero } => {
                synthetic::sparse_weights(d, n, max_nonzero.min(d), seed)
            }
            WeightDistribution::Dianping => real_sim::dianping_users(n, seed),
        }
    }

    /// Generates both sets.
    ///
    /// # Errors
    ///
    /// Propagates generator errors.
    pub fn generate(&self) -> RrqResult<(PointSet, WeightSet)> {
        Ok((self.generate_points()?, self.generate_weights()?))
    }

    /// Human-readable label, e.g. `UN/UN d=6 |P|=100000 |W|=100000`.
    pub fn label(&self) -> String {
        format!(
            "{}/{} d={} |P|={} |W|={}",
            self.points.label(),
            self.weights.label(),
            self.effective_dim(),
            self.n_points,
            self.n_weights
        )
    }
}

/// Weights with truncated-normal magnitudes (`N(0.5, 0.1²)` per component)
/// re-normalised onto the simplex — the "Normal" row/column of Table 4.
fn normal_weights(dim: usize, n: usize, seed: u64) -> RrqResult<WeightSet> {
    use crate::rng::StdRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = WeightSet::with_capacity(dim, n)?;
    let mut row = vec![0.0; dim];
    for _ in 0..n {
        let mut sum = 0.0;
        for v in &mut row {
            *v = crate::dist::truncated_normal(&mut rng, 0.5, 0.1, f64::MIN_POSITIVE, 1.0);
            sum += *v;
        }
        for v in &mut row {
            *v /= sum;
        }
        let drift: f64 = 1.0 - row.iter().sum::<f64>();
        row[0] += drift;
        set.push_slice(&row)?;
    }
    Ok(set)
}

/// Weights with `Gamma(1/2)` magnitudes re-normalised onto the simplex
/// (`Dirichlet(1/2)`) — the "Exponential" row/column of Table 4. Note
/// that normalising `Exp(λ)` magnitudes is λ-invariant and reproduces
/// the *uniform* simplex distribution, so a skewed Dirichlet is the
/// meaningful interpretation of the paper's skewed-weight setting.
fn exponential_weights(dim: usize, n: usize, seed: u64) -> RrqResult<WeightSet> {
    use crate::rng::StdRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = WeightSet::with_capacity(dim, n)?;
    let mut row = vec![0.0; dim];
    for _ in 0..n {
        let mut sum = 0.0;
        for v in &mut row {
            // Gamma(1/2, 2) = N(0,1)²; the scale cancels in normalisation.
            let g = crate::dist::standard_normal(&mut rng);
            *v = (g * g).max(f64::MIN_POSITIVE);
            sum += *v;
        }
        for v in &mut row {
            *v /= sum;
        }
        let drift: f64 = 1.0 - row.iter().sum::<f64>();
        row[0] += drift;
        set.push_slice(&row)?;
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_default_round_trips() {
        let spec = DataSpec::uniform_default(6, 100, 42);
        let (p, w) = spec.generate().unwrap();
        assert_eq!(p.len(), 100);
        assert_eq!(w.len(), 100);
        assert_eq!(p.dim(), 6);
        assert_eq!(w.dim(), 6);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DataSpec::uniform_default(4, 50, 7);
        assert_eq!(spec.generate().unwrap(), spec.generate().unwrap());
    }

    #[test]
    fn points_and_weights_use_independent_seeds() {
        // With the same nominal seed, P and W must not be correlated copies.
        let spec = DataSpec::uniform_default(3, 10, 1);
        let (p, w) = spec.generate().unwrap();
        // Normalised first point != first weight (overwhelmingly likely).
        let p0: Vec<f64> = p.point(rrq_types::PointId(0)).to_vec();
        let sum: f64 = p0.iter().sum();
        let normalised: Vec<f64> = p0.iter().map(|v| v / sum).collect();
        let w0 = w.weight(rrq_types::WeightId(0));
        assert!(normalised.iter().zip(w0).any(|(a, b)| (a - b).abs() > 1e-6));
    }

    #[test]
    fn every_point_distribution_generates() {
        for dist in [
            PointDistribution::Uniform,
            PointDistribution::Clustered,
            PointDistribution::AntiCorrelated,
            PointDistribution::Normal,
            PointDistribution::Exponential,
            PointDistribution::House,
            PointDistribution::Color,
            PointDistribution::Dianping,
        ] {
            let spec = DataSpec {
                points: dist,
                weights: WeightDistribution::Uniform,
                dim: 5,
                n_points: 30,
                n_weights: 10,
                seed: 3,
            };
            let (p, w) = spec.generate().unwrap();
            assert_eq!(p.len(), 30, "{dist:?}");
            assert_eq!(p.dim(), w.dim(), "{dist:?}");
        }
    }

    #[test]
    fn every_weight_distribution_generates() {
        for dist in [
            WeightDistribution::Uniform,
            WeightDistribution::Clustered,
            WeightDistribution::Normal,
            WeightDistribution::Exponential,
            WeightDistribution::Sparse { max_nonzero: 2 },
            WeightDistribution::Dianping,
        ] {
            let spec = DataSpec {
                points: PointDistribution::Dianping,
                weights: dist,
                dim: 6,
                n_points: 10,
                n_weights: 30,
                seed: 3,
            };
            let (_, w) = spec.generate().unwrap();
            assert_eq!(w.len(), 30, "{dist:?}");
            for (_, row) in w.iter() {
                let sum: f64 = row.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "{dist:?}");
            }
        }
    }

    #[test]
    fn exponential_weights_are_sparser_than_uniform() {
        // Dirichlet(1/2) concentrates mass: the mean largest component
        // must clearly exceed the flat Dirichlet's.
        let mk = |wd| DataSpec {
            points: PointDistribution::Uniform,
            weights: wd,
            dim: 6,
            n_points: 1,
            n_weights: 4000,
            seed: 99,
        };
        let mean_max = |wd| {
            let (_, w) = mk(wd).generate().unwrap();
            let total: f64 = w
                .iter()
                .map(|(_, row)| row.iter().cloned().fold(0.0, f64::max))
                .sum();
            total / w.len() as f64
        };
        let un = mean_max(WeightDistribution::Uniform);
        let exp = mean_max(WeightDistribution::Exponential);
        assert!(
            exp > un + 0.05,
            "Dirichlet(1/2) max component {exp:.3} should exceed uniform's {un:.3}"
        );
    }

    #[test]
    fn fixed_dim_overrides_requested_dim() {
        let spec = DataSpec {
            points: PointDistribution::Color,
            weights: WeightDistribution::Uniform,
            dim: 3, // ignored
            n_points: 10,
            n_weights: 10,
            seed: 1,
        };
        assert_eq!(spec.effective_dim(), 9);
        let (p, w) = spec.generate().unwrap();
        assert_eq!(p.dim(), 9);
        assert_eq!(w.dim(), 9);
    }

    #[test]
    fn label_is_descriptive() {
        let spec = DataSpec::uniform_default(6, 1000, 1);
        assert_eq!(spec.label(), "UN/UN d=6 |P|=1000 |W|=1000");
    }

    #[test]
    fn labels_cover_all_variants() {
        assert_eq!(PointDistribution::AntiCorrelated.label(), "AC");
        assert_eq!(PointDistribution::House.label(), "HOUSE");
        assert_eq!(
            WeightDistribution::Sparse { max_nonzero: 1 }.label(),
            "SPARSE"
        );
        assert_eq!(WeightDistribution::Dianping.label(), "DIANPING");
    }
}
