//! Experiment-level metrics registry and exporters.
//!
//! One [`ExperimentMetrics`] per experiment run; one [`AlgoMetrics`] per
//! (algorithm, query kind, configuration label) cell. The registry knows
//! nothing about `QueryStats` — counters arrive as generic name/value
//! pairs so this crate stays a zero-dependency leaf.

use crate::hist::LatencySummary;
use crate::json::Json;
use crate::span::PhaseStat;

/// Decoding helpers shared by [`AlgoMetrics::from_json`] and
/// [`ExperimentMetrics::from_json`]. Errors carry the member path so a
/// malformed `BENCH_*.json` pinpoints itself.
fn req<'a>(j: &'a Json, key: &str) -> Result<&'a Json, String> {
    j.get(key).ok_or_else(|| format!("missing member `{key}`"))
}

fn req_str(j: &Json, key: &str) -> Result<String, String> {
    req(j, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("member `{key}` is not a string"))
}

fn req_u64(j: &Json, key: &str) -> Result<u64, String> {
    req(j, key)?
        .as_u64()
        .ok_or_else(|| format!("member `{key}` is not an unsigned integer"))
}

fn req_f64(j: &Json, key: &str) -> Result<f64, String> {
    req(j, key)?
        .as_f64()
        .ok_or_else(|| format!("member `{key}` is not a number"))
}

/// Metrics for one algorithm under one configuration of an experiment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AlgoMetrics {
    /// Algorithm display name, e.g. `"GIR"`.
    pub algorithm: String,
    /// `"rtk"` or `"rkr"`.
    pub query_kind: String,
    /// Configuration label within the experiment, e.g. `"d=10"`. Empty
    /// when the experiment has a single configuration.
    pub label: String,
    /// Number of queries timed.
    pub queries: u64,
    /// Mean wall time per query in milliseconds (untraced pass).
    pub mean_ms: f64,
    /// Machine-independent counters (from `QueryStats::counters()` plus
    /// any recorder counters), summed over the timed queries.
    pub counters: Vec<(String, u64)>,
    /// Per-query latency distribution (untraced pass).
    pub latency: Option<LatencySummary>,
    /// Merged phase tree rows (traced pass), preorder.
    pub phases: Vec<PhaseStat>,
}

impl AlgoMetrics {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("algorithm".into(), Json::str(&self.algorithm)),
            ("query_kind".into(), Json::str(&self.query_kind)),
            ("label".into(), Json::str(&self.label)),
            ("queries".into(), Json::UInt(self.queries)),
            ("mean_ms".into(), Json::Num(self.mean_ms)),
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
        ];
        if let Some(lat) = &self.latency {
            pairs.push((
                "latency_ns".into(),
                Json::obj([
                    ("count", Json::UInt(lat.count)),
                    ("mean", Json::Num(lat.mean_ns)),
                    ("min", Json::UInt(lat.min_ns)),
                    ("p50", Json::UInt(lat.p50_ns)),
                    ("p90", Json::UInt(lat.p90_ns)),
                    ("p99", Json::UInt(lat.p99_ns)),
                    ("p999", Json::UInt(lat.p999_ns)),
                    ("max", Json::UInt(lat.max_ns)),
                ]),
            ));
        }
        pairs.push((
            "phases".into(),
            Json::Arr(
                self.phases
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("path", Json::str(&p.path)),
                            ("depth", Json::UInt(p.depth as u64)),
                            ("calls", Json::UInt(p.calls)),
                            ("total_ns", Json::UInt(p.total_ns)),
                            ("self_ns", Json::UInt(p.self_ns)),
                        ])
                    })
                    .collect(),
            ),
        ));
        Json::Obj(pairs)
    }

    /// Decodes one `runs[]` entry of a `BENCH_*.json` document — the
    /// exact inverse of the serialisation above, pinned by the
    /// round-trip tests.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let counters = req(j, "counters")?
            .entries()
            .ok_or("member `counters` is not an object")?
            .iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|v| (k.clone(), v))
                    .ok_or_else(|| format!("counter `{k}` is not an unsigned integer"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let latency = match j.get("latency_ns") {
            None => None,
            Some(lat) => Some(LatencySummary {
                count: req_u64(lat, "count")?,
                mean_ns: req_f64(lat, "mean")?,
                min_ns: req_u64(lat, "min")?,
                p50_ns: req_u64(lat, "p50")?,
                p90_ns: req_u64(lat, "p90")?,
                p99_ns: req_u64(lat, "p99")?,
                // `p999` joined the schema after the first snapshots were
                // committed; older documents fall back to the exact max,
                // which is what p999 degenerates to at low sample counts.
                p999_ns: match lat.get("p999") {
                    Some(v) => v
                        .as_u64()
                        .ok_or("member `p999` is not an unsigned integer")?,
                    None => req_u64(lat, "max")?,
                },
                max_ns: req_u64(lat, "max")?,
            }),
        };
        let phases = req(j, "phases")?
            .items()
            .ok_or("member `phases` is not an array")?
            .iter()
            .map(|p| {
                Ok(PhaseStat {
                    path: req_str(p, "path")?,
                    depth: req_u64(p, "depth")? as usize,
                    calls: req_u64(p, "calls")?,
                    total_ns: req_u64(p, "total_ns")?,
                    self_ns: req_u64(p, "self_ns")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self {
            algorithm: req_str(j, "algorithm")?,
            query_kind: req_str(j, "query_kind")?,
            label: req_str(j, "label")?,
            queries: req_u64(j, "queries")?,
            mean_ms: req_f64(j, "mean_ms")?,
            counters,
            latency,
            phases,
        })
    }
}

/// All metrics captured while running one experiment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExperimentMetrics {
    /// Experiment id, e.g. `"fig11"`.
    pub experiment: String,
    /// Experiment configuration as name/value pairs (cardinalities, k,
    /// seed, ...), stringified for stability.
    pub config: Vec<(String, String)>,
    /// One entry per timed (algorithm, kind, label) cell, in run order.
    pub runs: Vec<AlgoMetrics>,
}

impl ExperimentMetrics {
    /// A fresh registry for the named experiment.
    pub fn new(experiment: impl Into<String>) -> Self {
        Self {
            experiment: experiment.into(),
            config: Vec::new(),
            runs: Vec::new(),
        }
    }

    /// Appends a configuration pair.
    pub fn config_pair(&mut self, key: impl Into<String>, value: impl ToString) {
        self.config.push((key.into(), value.to_string()));
    }

    /// Records one algorithm run.
    pub fn push(&mut self, run: AlgoMetrics) {
        self.runs.push(run);
    }

    /// Serialises the registry to the `BENCH_<exp>.json` document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::UInt(1)),
            ("experiment", Json::str(&self.experiment)),
            (
                "config",
                Json::Obj(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::str(v)))
                        .collect(),
                ),
            ),
            (
                "runs",
                Json::Arr(self.runs.iter().map(AlgoMetrics::to_json).collect()),
            ),
        ])
    }

    /// Decodes a `BENCH_<exp>.json` document produced by
    /// [`ExperimentMetrics::to_json`]. Rejects unknown schema versions so
    /// downstream tooling (`rrq-benchdiff`) fails loudly instead of
    /// comparing incompatible documents.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        match req_u64(j, "schema")? {
            1 => {}
            other => return Err(format!("unsupported schema version {other} (expected 1)")),
        }
        let config = req(j, "config")?
            .entries()
            .ok_or("member `config` is not an object")?
            .iter()
            .map(|(k, v)| {
                v.as_str()
                    .map(|v| (k.clone(), v.to_string()))
                    .ok_or_else(|| format!("config `{k}` is not a string"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let runs = req(j, "runs")?
            .items()
            .ok_or("member `runs` is not an array")?
            .iter()
            .enumerate()
            .map(|(i, r)| AlgoMetrics::from_json(r).map_err(|e| format!("runs[{i}]: {e}")))
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self {
            experiment: req_str(j, "experiment")?,
            config,
            runs,
        })
    }

    /// Parses serialised JSON text straight into metrics — the loader
    /// `rrq-benchdiff` and the tests use.
    pub fn from_json_text(text: &str) -> Result<Self, String> {
        Self::from_json(&crate::json::parse(text)?)
    }

    /// Renders a human-readable summary (per run: headline counters, tail
    /// latency, and the phase profile).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("experiment: {}\n", self.experiment));
        for (k, v) in &self.config {
            out.push_str(&format!("  {k} = {v}\n"));
        }
        for run in &self.runs {
            let label = if run.label.is_empty() {
                String::new()
            } else {
                format!(" [{}]", run.label)
            };
            out.push_str(&format!(
                "\n{} ({}){}: {} queries, mean {:.3} ms\n",
                run.algorithm, run.query_kind, label, run.queries, run.mean_ms
            ));
            if let Some(lat) = &run.latency {
                out.push_str(&format!(
                    "  latency p50 {:.3} ms  p90 {:.3} ms  p99 {:.3} ms  p999 {:.3} ms  max {:.3} ms\n",
                    lat.p50_ns as f64 / 1e6,
                    lat.p90_ns as f64 / 1e6,
                    lat.p99_ns as f64 / 1e6,
                    lat.p999_ns as f64 / 1e6,
                    lat.max_ns as f64 / 1e6,
                ));
            }
            if let Some(muls) = run.counter("multiplications") {
                out.push_str(&format!("  multiplications: {muls}\n"));
            }
            for p in &run.phases {
                let name = p.path.rsplit('/').next().unwrap_or(&p.path);
                out.push_str(&format!(
                    "  {:indent$}{name:<22} {:>10.3} ms ({} calls)\n",
                    "",
                    p.total_ns as f64 / 1e6,
                    p.calls,
                    indent = p.depth * 2,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample() -> ExperimentMetrics {
        let mut exp = ExperimentMetrics::new("fig11");
        exp.config_pair("p_card", 600);
        exp.config_pair("k", 10);
        exp.push(AlgoMetrics {
            algorithm: "GIR".into(),
            query_kind: "rtk".into(),
            label: "d=10".into(),
            queries: 5,
            mean_ms: 1.25,
            counters: vec![("multiplications".into(), 42_000), ("refined".into(), 17)],
            latency: Some(LatencySummary {
                count: 5,
                mean_ns: 1_250_000.0,
                min_ns: 900_000,
                p50_ns: 1_200_000,
                p90_ns: 1_500_000,
                p99_ns: 1_500_000,
                p999_ns: 1_500_000,
                max_ns: 1_500_000,
            }),
            phases: vec![PhaseStat {
                path: "scan/refine".into(),
                depth: 1,
                calls: 17,
                total_ns: 300_000,
                self_ns: 300_000,
            }],
        });
        exp
    }

    #[test]
    fn json_document_shape() {
        let j = sample().to_json();
        assert_eq!(j.get("schema").unwrap().as_u64(), Some(1));
        assert_eq!(j.get("experiment").unwrap().as_str(), Some("fig11"));
        let runs = j.get("runs").unwrap().items().unwrap();
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        assert_eq!(run.get("algorithm").unwrap().as_str(), Some("GIR"));
        assert_eq!(
            run.get("counters")
                .unwrap()
                .get("multiplications")
                .unwrap()
                .as_u64(),
            Some(42_000)
        );
        assert_eq!(
            run.get("latency_ns").unwrap().get("p99").unwrap().as_u64(),
            Some(1_500_000)
        );
        let phase = &run.get("phases").unwrap().items().unwrap()[0];
        assert_eq!(phase.get("path").unwrap().as_str(), Some("scan/refine"));
    }

    #[test]
    fn json_round_trips_through_parser() {
        let j = sample().to_json();
        assert_eq!(parse(&j.to_pretty()).unwrap(), j);
    }

    #[test]
    fn text_summary_mentions_key_facts() {
        let text = sample().to_text();
        assert!(text.contains("experiment: fig11"));
        assert!(text.contains("GIR (rtk) [d=10]"));
        assert!(text.contains("multiplications: 42000"));
        assert!(text.contains("p99"));
        assert!(text.contains("refine"));
    }

    #[test]
    fn metrics_round_trip_through_json_text() {
        let exp = sample();
        let text = exp.to_json().to_pretty();
        let back = ExperimentMetrics::from_json_text(&text).unwrap();
        assert_eq!(back, exp, "decode inverts encode exactly");
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        let mut doc = sample().to_json();
        // Unknown schema version.
        if let Json::Obj(pairs) = &mut doc {
            pairs[0].1 = Json::UInt(99);
        }
        let err = ExperimentMetrics::from_json(&doc).unwrap_err();
        assert!(err.contains("schema"), "{err}");

        for (mutilate, want) in [
            (r#"{"experiment":"x"}"#, "schema"),
            (r#"{"schema":1,"experiment":"x","config":{}}"#, "runs"),
            (
                r#"{"schema":1,"experiment":"x","config":{"k":"10"},"runs":[{}]}"#,
                "runs[0]",
            ),
            (
                r#"{"schema":1,"experiment":"x","config":{"k":"10"},"runs":[]}"#,
                "", // minimal valid document: must NOT error
            ),
        ] {
            let res = ExperimentMetrics::from_json_text(mutilate);
            if want.is_empty() {
                assert!(res.is_ok(), "rejected valid doc: {res:?}");
            } else {
                let err = res.unwrap_err();
                assert!(err.contains(want), "error `{err}` lacks `{want}`");
            }
        }
    }

    #[test]
    fn latency_p999_falls_back_to_max_for_old_documents() {
        // Snapshots predating the `p999` member must still decode; the
        // fallback is the exact max (what p999 degenerates to at low
        // sample counts).
        let text = r#"{"schema":1,"experiment":"x","config":{},"runs":[{
            "algorithm":"A","query_kind":"rtk","label":"","queries":1,
            "mean_ms":1.0,"counters":{},
            "latency_ns":{"count":1,"mean":5.0,"min":1,"p50":2,"p90":3,"p99":4,"max":9},
            "phases":[]}]}"#;
        let exp = ExperimentMetrics::from_json_text(text).unwrap();
        assert_eq!(exp.runs[0].latency.as_ref().map(|l| l.p999_ns), Some(9));
    }

    #[test]
    fn counter_lookup() {
        let exp = sample();
        assert_eq!(exp.runs[0].counter("refined"), Some(17));
        assert_eq!(exp.runs[0].counter("missing"), None);
    }
}
