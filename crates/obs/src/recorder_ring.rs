//! Flight recorder: a fixed-capacity ring buffer of per-query records.
//!
//! A crash or a latency spike is only diagnosable if the *recent past*
//! survives it, so the load generator (and, later, the query server)
//! deposits one small [`FlightRecord`] per completed query into a
//! [`FlightRecorder`]. The ring keeps the last `capacity` records and
//! overwrites the oldest beyond that — memory use is fixed at
//! construction time and recording never allocates: one mutex lock and a
//! `Copy` of a plain-old-data struct per query (pinned by the
//! `alloc-track` test `ring_alloc.rs` and by `noop_alloc.rs`).
//!
//! Dumping is explicit (`snapshot`/`dump_text`/`to_json`) or automatic
//! on panic: [`FlightRecorder::panic_guard`] returns an RAII guard that
//! prints the ring to stderr from its `Drop` impl when the thread is
//! unwinding, so the records covering the failure are not lost with it.

use crate::json::Json;
use std::sync::Mutex;

/// Which query algorithm a [`FlightRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryKind {
    /// Reverse top-k.
    #[default]
    Rtk,
    /// Reverse k-rank.
    Rkr,
}

impl QueryKind {
    /// Short display name (`"rtk"` / `"rkr"`), matching the exporter's
    /// `query_kind` vocabulary.
    pub fn as_str(self) -> &'static str {
        match self {
            QueryKind::Rtk => "rtk",
            QueryKind::Rkr => "rkr",
        }
    }
}

/// One per-query record. Plain `Copy` data: depositing it into the ring
/// moves no heap memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlightRecord {
    /// Monotone sequence number assigned by the recorder (0-based order
    /// of deposit); lets a dump show how many records were overwritten.
    pub seq: u64,
    /// Query algorithm.
    pub kind: QueryKind,
    /// Grid cell the query point quantised into, `u32::MAX` when the
    /// caller does not know it.
    pub cell: u32,
    /// `k` (rtk) or the rank bound (rkr) the query ran with.
    pub k: u32,
    /// Offset of the query's start from the run origin, in nanoseconds.
    pub start_ns: u64,
    /// Wall time the query spent end-to-end, in nanoseconds.
    pub total_ns: u64,
    /// Weight–point multiplications performed (the paper's cost model).
    pub multiplications: u64,
    /// Result-set size the query produced.
    pub results: u64,
}

struct Ring {
    /// Pre-sized at construction; slots beyond `next_seq` are unused.
    slots: Vec<FlightRecord>,
    /// Total records ever deposited; `next_seq % slots.len()` is the
    /// slot the next record lands in.
    next_seq: u64,
}

/// Fixed-capacity, allocation-free ring of the last N [`FlightRecord`]s.
///
/// Interior-mutable behind a [`Mutex`] so worker threads can deposit
/// records through a shared reference; the critical section is a single
/// struct copy, far below the cost of the query it describes.
pub struct FlightRecorder {
    ring: Mutex<Ring>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish()
    }
}

/// Unwraps a mutex lock. The only way the lock is poisoned is a panic
/// *inside* the single-copy critical section, which copies plain data
/// and cannot panic; recovering the data regardless keeps the panic
/// dump path working even mid-unwind.
fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` records (`capacity >= 1`;
    /// 0 is bumped to 1 so `record` never divides by zero).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            ring: Mutex::new(Ring {
                slots: vec![FlightRecord::default(); capacity],
                next_seq: 0,
            }),
        }
    }

    /// Deposits one record, overwriting the oldest when full. Assigns
    /// and returns the record's sequence number. Never allocates.
    pub fn record(&self, mut rec: FlightRecord) -> u64 {
        let mut ring = locked(&self.ring);
        let seq = ring.next_seq;
        rec.seq = seq;
        let cap = ring.slots.len();
        ring.slots[(seq % cap as u64) as usize] = rec;
        ring.next_seq = seq + 1;
        seq
    }

    /// Ring capacity (maximum records retained).
    pub fn capacity(&self) -> usize {
        locked(&self.ring).slots.len()
    }

    /// Total records ever deposited (not capped by capacity).
    pub fn recorded(&self) -> u64 {
        locked(&self.ring).next_seq
    }

    /// The retained records, oldest first. Allocates the result vector —
    /// for dumps and exports, not the hot path.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let ring = locked(&self.ring);
        let cap = ring.slots.len() as u64;
        let total = ring.next_seq;
        let first = total.saturating_sub(cap);
        (first..total)
            .map(|seq| ring.slots[(seq % cap) as usize])
            .collect()
    }

    /// Renders the retained records as one line each, oldest first.
    pub fn dump_text(&self) -> String {
        let records = self.snapshot();
        let mut out = format!(
            "flight recorder: {} of {} records retained (capacity {})\n",
            records.len(),
            self.recorded(),
            self.capacity()
        );
        for r in &records {
            out.push_str(&format!(
                "  #{} {} cell={} k={} start={}ns total={}ns muls={} results={}\n",
                r.seq,
                r.kind.as_str(),
                r.cell,
                r.k,
                r.start_ns,
                r.total_ns,
                r.multiplications,
                r.results,
            ));
        }
        out
    }

    /// The retained records as a JSON array, oldest first.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.snapshot()
                .iter()
                .map(|r| {
                    Json::obj([
                        ("seq", Json::UInt(r.seq)),
                        ("kind", Json::str(r.kind.as_str())),
                        ("cell", Json::UInt(r.cell as u64)),
                        ("k", Json::UInt(r.k as u64)),
                        ("start_ns", Json::UInt(r.start_ns)),
                        ("total_ns", Json::UInt(r.total_ns)),
                        ("multiplications", Json::UInt(r.multiplications)),
                        ("results", Json::UInt(r.results)),
                    ])
                })
                .collect(),
        )
    }

    /// An RAII guard that dumps the ring to stderr if the current scope
    /// unwinds (and stays silent otherwise). Hold it across the region
    /// whose failures should come with flight data:
    ///
    /// ```
    /// let ring = rrq_obs::FlightRecorder::new(64);
    /// {
    ///     let _dump = ring.panic_guard("loadgen");
    ///     // ... queries recording into `ring` ...
    /// } // no panic: guard drops silently
    /// ```
    pub fn panic_guard<'a>(&'a self, label: &'static str) -> PanicDump<'a> {
        PanicDump { ring: self, label }
    }
}

/// See [`FlightRecorder::panic_guard`].
pub struct PanicDump<'a> {
    ring: &'a FlightRecorder,
    label: &'static str,
}

impl Drop for PanicDump<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("[{}] panic — dumping flight recorder", self.label);
            eprintln!("{}", self.ring.dump_text());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cell: u32, total_ns: u64) -> FlightRecord {
        FlightRecord {
            kind: QueryKind::Rtk,
            cell,
            k: 10,
            total_ns,
            multiplications: total_ns / 10,
            results: 3,
            ..FlightRecord::default()
        }
    }

    #[test]
    fn keeps_everything_below_capacity() {
        let ring = FlightRecorder::new(8);
        for i in 0..5 {
            let seq = ring.record(rec(i, 100 + i as u64));
            assert_eq!(seq, i as u64);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 5);
        assert_eq!(ring.recorded(), 5);
        for (i, r) in snap.iter().enumerate() {
            assert_eq!(r.seq, i as u64, "oldest first");
            assert_eq!(r.cell, i as u32);
        }
    }

    #[test]
    fn overwrites_oldest_beyond_capacity() {
        let ring = FlightRecorder::new(4);
        for i in 0..10u32 {
            ring.record(rec(i, i as u64));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 4, "capped at capacity");
        assert_eq!(ring.recorded(), 10);
        let seqs: Vec<u64> = snap.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "last four, oldest first");
    }

    #[test]
    fn zero_capacity_is_bumped_to_one() {
        let ring = FlightRecorder::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.record(rec(1, 1));
        ring.record(rec(2, 2));
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].cell, 2);
    }

    #[test]
    fn dump_text_mentions_every_retained_record() {
        let ring = FlightRecorder::new(8);
        ring.record(rec(7, 1234));
        ring.record(FlightRecord {
            kind: QueryKind::Rkr,
            ..rec(9, 777)
        });
        let text = ring.dump_text();
        assert!(text.contains("2 of 2 records"), "{text}");
        assert!(text.contains("rtk cell=7"), "{text}");
        assert!(text.contains("rkr cell=9"), "{text}");
    }

    #[test]
    fn json_round_trips_through_parser() {
        let ring = FlightRecorder::new(8);
        ring.record(rec(3, 999));
        let j = ring.to_json();
        let parsed = crate::json::parse(&j.to_pretty()).expect("valid JSON");
        assert_eq!(parsed, j);
        let items = parsed.items().expect("array");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].get("cell").and_then(|v| v.as_u64()), Some(3));
    }

    #[test]
    fn panic_guard_is_silent_without_panic() {
        // Only checks the no-panic path doesn't disturb the ring; the
        // unwinding path is exercised via catch_unwind.
        let ring = FlightRecorder::new(2);
        {
            let _g = ring.panic_guard("test");
            ring.record(rec(1, 1));
        }
        assert_eq!(ring.recorded(), 1);

        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = ring.panic_guard("test");
            ring.record(rec(2, 2));
            panic!("boom");
        }));
        assert!(caught.is_err());
        // Guard ran during unwind; the ring is still usable after.
        assert_eq!(ring.recorded(), 2);
        ring.record(rec(3, 3));
        assert_eq!(ring.recorded(), 3);
    }
}
