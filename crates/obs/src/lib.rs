//! `rrq-obs`: zero-dependency observability for the reverse-rank-query
//! workspace.
//!
//! Four pieces, layered bottom-up:
//!
//! 1. [`Recorder`] — the sink trait instrumentation sites talk to.
//!    [`NoopRecorder`] makes tracing free on untraced paths (its
//!    `enabled()` is a monomorphised `false`, so guards hold no timestamp
//!    and read no clock); [`MetricsRecorder`] aggregates spans into a
//!    merged phase tree plus named counters.
//! 2. [`span!`] / [`span`] / [`timed_leaf`] — RAII phase timing over
//!    `std::time::Instant`. Spans nest lexically and sibling spans with
//!    the same name merge, so a whole benchmark run folds into one small
//!    tree (`query → filter → refine`, ...).
//! 3. [`LogHistogram`] — HDR-style log-linear latency histogram
//!    (power-of-two octaves, 64 linear sub-buckets each, ≤ 1/64 relative
//!    error) with `record`/`merge`/`p50`/`p90`/`p99`.
//! 4. [`ExperimentMetrics`] — the per-experiment registry tying counters,
//!    latency summaries and phase trees together, with text and JSON
//!    exporters ([`json::Json`] is hand-rolled: the sandbox is offline).
//!
//! The crate deliberately knows nothing about the query types; counters
//! cross the boundary as `(&str, u64)` pairs.
//!
//! A fifth, concurrency-facing layer sits beside them:
//! [`SharedRecorder`] / [`AtomicRegistry`] ([`shared`]) let many query
//! threads drive the same `*_traced` path — counters are lock-free
//! atomics, spans and histograms shard per thread and merge into exactly
//! the output a sequential run would produce. The opt-in `alloc-track`
//! feature adds [`alloc`]: a counting global allocator whose
//! peak/total-byte snapshots the bench harness exports per experiment.
//!
//! A sixth, streaming layer serves sustained-load telemetry:
//! [`FlightRecorder`] ([`recorder_ring`]) keeps the last N per-query
//! records in a fixed, allocation-free ring and dumps them on panic or
//! on demand; [`Sampler`] ([`sampler`]) collects caller-clocked
//! time-series rows (pool queue depth, in-flight jobs, per-worker
//! utilisation); and [`TraceBuilder`] ([`trace_export`]) exports span
//! trees, counter series and flight slices as Chrome/Perfetto
//! `trace_event` JSON that re-parses losslessly via
//! [`span_tree_from_trace`].
//!
//! A seventh, provenance layer records *why* the engine pruned what it
//! pruned: [`ExplainSink`] ([`explain`]) is threaded through the grid
//! scan loops ([`NoopSink`] keeps untraced paths free), and
//! [`ExplainDoc`] collects one query's per-cell classification map,
//! filter→refine [`Funnel`] and [`BoundEvent`] timeline into a
//! versioned, diffable JSON artifact (`rrq-explain render/diff`).

// `unsafe` exists solely inside the feature-gated `alloc` module (the
// `GlobalAlloc` contract requires it); without the feature the whole
// crate forbids it outright.
#![cfg_attr(not(feature = "alloc-track"), forbid(unsafe_code))]
#![deny(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "alloc-track")]
pub mod alloc;
pub mod explain;
pub mod hist;
pub mod json;
pub mod recorder;
pub mod recorder_ring;
pub mod registry;
pub mod sampler;
pub mod shared;
pub mod span;
pub mod trace_export;

pub use explain::{
    BoundEvent, BoundSource, CellExplain, ClassTally, Divergence, ExplainClass, ExplainDoc,
    ExplainKind, ExplainSink, Funnel, NoopSink, RANK_CERTIFIED,
};
pub use hist::{LatencySummary, LogHistogram};
pub use recorder::{span, timed_leaf, MetricsRecorder, NoopRecorder, Recorder, SpanGuard};
pub use recorder_ring::{FlightRecord, FlightRecorder, QueryKind};
pub use registry::{AlgoMetrics, ExperimentMetrics};
pub use sampler::Sampler;
pub use shared::{AtomicRegistry, SharedRecorder};
pub use span::{PhaseStat, SpanNode, SpanTree};
pub use trace_export::{span_tree_from_trace, TraceBuilder};
