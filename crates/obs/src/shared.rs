//! Thread-safe telemetry: [`AtomicRegistry`] counters and the
//! shard-per-thread [`SharedRecorder`].
//!
//! [`MetricsRecorder`](crate::MetricsRecorder) is `RefCell`-based and
//! single-threaded; driving an algorithm's `*_traced` path from a pool of
//! query threads needs a sink whose writes never contend and whose merged
//! output equals what one thread would have recorded. Two pieces:
//!
//! * [`AtomicRegistry`] — a fixed-capacity, append-only counter table.
//!   After a name's one-time registration (the only code path that takes
//!   a lock), every increment is a single relaxed `fetch_add`: lock-free,
//!   wait-free, and shared by all threads.
//! * [`SharedRecorder`] — spans, leaf timings and value histograms go to
//!   a *shard* private to the calling thread (one uncontended mutex per
//!   shard, locked only by its owner until snapshot time), while
//!   counters go straight to the shared registry. Snapshots merge the
//!   shard span trees with [`SpanTree::merge`] and the shard histograms
//!   with [`LogHistogram::merge`], so a 4-thread traced run reports the
//!   same calls, counters and histogram counts as the sequential run —
//!   the `shared_concurrency` integration test pins exactly that.

use crate::hist::LogHistogram;
use crate::recorder::{Recorder, SpanArena};
use crate::span::{PhaseStat, SpanTree};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum number of distinct counter names per registry. The workspace
/// uses a few dozen; overflow folds into a designated spill slot rather
/// than panicking inside instrumentation.
const REGISTRY_CAPACITY: usize = 256;

/// Name of the spill slot that absorbs increments once
/// [`REGISTRY_CAPACITY`] distinct names are registered.
pub const OVERFLOW_COUNTER: &str = "__overflow";

/// Locks a telemetry mutex, treating poisoning as fatal: a poisoned
/// lock means a recording thread panicked mid-write, and continuing
/// would report partial measurements as truth.
fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // rrq-lint: allow(no-unwrap-in-lib) -- poisoning means a recording thread panicked; propagate
    m.lock().expect("telemetry mutex poisoned")
}

struct Slot {
    name: OnceLock<&'static str>,
    value: AtomicU64,
}

/// A lock-free, fixed-capacity table of named `u64` counters.
///
/// `add` is wait-free after a name's first use: readers scan the
/// published prefix (an `Acquire` load of `len` synchronises with the
/// `Release` store that publishes a new slot), and increments are relaxed
/// `fetch_add`s. Registration of a *new* name takes a mutex, once per
/// name per registry lifetime.
pub struct AtomicRegistry {
    slots: Vec<Slot>,
    len: AtomicUsize,
    register: Mutex<()>,
}

impl Default for AtomicRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for AtomicRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicRegistry")
            .field("counters", &self.snapshot())
            .finish()
    }
}

impl AtomicRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            slots: (0..REGISTRY_CAPACITY)
                .map(|_| Slot {
                    name: OnceLock::new(),
                    value: AtomicU64::new(0),
                })
                .collect(),
            len: AtomicUsize::new(0),
            register: Mutex::new(()),
        }
    }

    /// Adds `n` to the counter `name`, registering it on first use.
    pub fn add(&self, name: &'static str, n: u64) {
        let idx = self.index_of(name);
        // ORDERING: relaxed — counter exactness needs atomicity only;
        // publication of the slot itself is the acquire/release pair in
        // `index_of`.
        self.slots[idx].value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of `name` (`None` if never incremented).
    pub fn get(&self, name: &str) -> Option<u64> {
        // ORDERING: acquire on `len` synchronises with the release store
        // in `index_of`, making every published slot's name visible;
        // the value read itself is a relaxed monitoring load.
        let len = self.len.load(Ordering::Acquire);
        self.slots[..len]
            .iter()
            .find(|s| s.name.get().is_some_and(|&n| n == name))
            .map(|s| s.value.load(Ordering::Relaxed)) // ORDERING: relaxed monitoring read
    }

    /// All counters, sorted by name (merge-friendly and deterministic
    /// regardless of registration order).
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        // ORDERING: acquire on `len` pairs with the release store in
        // `index_of`, publishing every slot name in the prefix.
        let len = self.len.load(Ordering::Acquire);
        let mut out: Vec<(String, u64)> = self.slots[..len]
            .iter()
            .filter_map(|s| {
                s.name
                    .get()
                    .map(|&n| (n.to_string(), s.value.load(Ordering::Relaxed))) // ORDERING: relaxed monitoring read
            })
            .collect();
        out.sort();
        out
    }

    fn index_of(&self, name: &'static str) -> usize {
        // ORDERING: acquire — see `get`; the published prefix must be
        // fully visible before we scan it.
        let len = self.len.load(Ordering::Acquire);
        if let Some(idx) = self.slots[..len]
            .iter()
            .position(|s| s.name.get().is_some_and(|&n| n == name))
        {
            return idx;
        }
        // Slow path: register under the lock, re-checking slots that
        // appeared while we waited.
        let _guard = locked(&self.register);
        // ORDERING: acquire — re-read under the lock to see slots other
        // registrants published while we waited for it.
        let published = self.len.load(Ordering::Acquire);
        if let Some(idx) = self.slots[..published]
            .iter()
            .position(|s| s.name.get().is_some_and(|&n| n == name))
        {
            return idx;
        }
        if published == REGISTRY_CAPACITY {
            // Saturated: every name past capacity folds into the spill
            // slot registered below, so increments inflate `__overflow`
            // instead of disappearing.
            return REGISTRY_CAPACITY - 1;
        }
        // The last slot is reserved as the spill slot: the first name
        // that would fill the table registers `__overflow` instead.
        let slot_name = if published == REGISTRY_CAPACITY - 1 {
            OVERFLOW_COUNTER
        } else {
            name
        };
        self.slots[published]
            .name
            .set(slot_name)
            // rrq-lint: allow(no-unwrap-in-lib) -- slot at `published` is provably unset under the registration lock
            .expect("fresh slot is unset");
        // ORDERING: release — publishes the slot's name to the acquire
        // loads of `len` on the fast paths above.
        self.len.store(published + 1, Ordering::Release);
        published
    }
}

/// One thread's private recording surface. Only its owning thread writes
/// to it; the mutex exists so snapshots (taken from the coordinating
/// thread) are race-free, and it is uncontended on the hot path.
#[derive(Debug, Default)]
struct Shard {
    inner: Mutex<ShardInner>,
}

#[derive(Debug, Default)]
struct ShardInner {
    arena: SpanArena,
    hists: BTreeMap<&'static str, LogHistogram>,
}

/// Monotonic id source distinguishing recorder instances in the
/// thread-local shard cache.
static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Shards this thread has opened, keyed by recorder id. Entries whose
    /// recorder has been dropped (we hold the only remaining `Arc`) are
    /// pruned on the next access from this thread.
    static LOCAL_SHARDS: RefCell<Vec<(u64, Arc<Shard>)>> = const { RefCell::new(Vec::new()) };
}

/// A thread-safe [`Recorder`]: counters are lock-free in a shared
/// [`AtomicRegistry`]; spans, leaf timings and histograms shard per
/// thread and merge at snapshot time.
///
/// Share it by reference (`&SharedRecorder` implements [`Recorder`] via
/// the blanket `&T` impl and is `Send + Sync`), e.g. across a
/// `std::thread::scope`. Snapshots may be taken while worker threads are
/// still recording; they see a consistent prefix of each shard.
#[derive(Debug)]
pub struct SharedRecorder {
    id: u64,
    counters: AtomicRegistry,
    shards: Mutex<Vec<Arc<Shard>>>,
}

impl Default for SharedRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self {
            // ORDERING: relaxed — a unique-id ticket; only atomicity of
            // the increment matters.
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            counters: AtomicRegistry::new(),
            shards: Mutex::new(Vec::new()),
        }
    }

    /// The calling thread's shard, created and registered on first use.
    fn shard(&self) -> Arc<Shard> {
        LOCAL_SHARDS.with(|cell| {
            let mut local = cell.borrow_mut();
            // Drop cache entries whose recorder is gone: the registry's
            // `Arc` died with it, leaving ours as the only one.
            local.retain(|(_, shard)| Arc::strong_count(shard) > 1);
            if let Some((_, shard)) = local.iter().find(|(id, _)| *id == self.id) {
                return Arc::clone(shard);
            }
            let shard = Arc::new(Shard::default());
            locked(&self.shards).push(Arc::clone(&shard));
            local.push((self.id, Arc::clone(&shard)));
            shard
        })
    }

    /// Records `value` into the named histogram of this thread's shard.
    /// Not part of the [`Recorder`] trait — callers that want merged
    /// distributions (e.g. per-query latency across worker threads) use
    /// the concrete type.
    pub fn record_value(&self, name: &'static str, value: u64) {
        let shard = self.shard();
        let mut inner = locked(&shard.inner);
        inner.hists.entry(name).or_default().record(value);
    }

    /// Merged span tree across every thread that recorded so far.
    pub fn span_tree(&self) -> SpanTree {
        let shards = locked(&self.shards);
        let mut tree = SpanTree::default();
        for shard in shards.iter() {
            tree.merge(&locked(&shard.inner).arena.snapshot());
        }
        tree
    }

    /// Per-thread span trees, one per shard in registration order —
    /// the unmerged view a trace exporter lays out on separate viewer
    /// threads ([`crate::TraceBuilder::add_span_tree`] with one `tid`
    /// per shard).
    pub fn shard_trees(&self) -> Vec<SpanTree> {
        let shards = locked(&self.shards);
        shards
            .iter()
            .map(|shard| locked(&shard.inner).arena.snapshot())
            .collect()
    }

    /// Flattened phase rows of the merged tree.
    pub fn phases(&self) -> Vec<PhaseStat> {
        self.span_tree().flatten()
    }

    /// Counter snapshot, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.counters.snapshot()
    }

    /// One counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name)
    }

    /// The merged histogram recorded under `name` via
    /// [`SharedRecorder::record_value`] (`None` if no thread recorded it).
    pub fn histogram(&self, name: &str) -> Option<LogHistogram> {
        let shards = locked(&self.shards);
        let mut merged: Option<LogHistogram> = None;
        for shard in shards.iter() {
            let inner = locked(&shard.inner);
            if let Some(h) = inner.hists.get(name) {
                match &mut merged {
                    Some(m) => m.merge(h),
                    None => merged = Some(h.clone()),
                }
            }
        }
        merged
    }

    /// Number of threads that have recorded into this recorder.
    pub fn shard_count(&self) -> usize {
        locked(&self.shards).len()
    }
}

impl Recorder for SharedRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn span_enter(&self, name: &'static str) {
        let shard = self.shard();
        locked(&shard.inner).arena.enter(name);
    }

    fn span_exit(&self, elapsed_ns: u64) {
        let shard = self.shard();
        locked(&shard.inner).arena.exit(elapsed_ns);
    }

    fn add_ns(&self, name: &'static str, ns: u64) {
        let shard = self.shard();
        locked(&shard.inner).arena.add_leaf_ns(name, ns);
    }

    fn add_count(&self, name: &'static str, n: u64) {
        self.counters.add(name, n);
    }

    #[inline]
    fn as_sync(&self) -> Option<&(dyn Recorder + Sync)> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::span;

    #[test]
    fn shared_recorder_hands_itself_off_through_dyn() {
        let rec = SharedRecorder::new();
        let dynamic: &dyn Recorder = &rec;
        let sync = dynamic.as_sync().expect("shared recorder is Sync");
        // Records made through the handoff land in the same recorder.
        sync.add_count("via_handoff", 7);
        assert_eq!(rec.counter("via_handoff"), Some(7));
    }

    #[test]
    fn registry_accumulates_and_snapshots_sorted() {
        let reg = AtomicRegistry::new();
        reg.add("zeta", 1);
        reg.add("alpha", 2);
        reg.add("zeta", 3);
        assert_eq!(reg.get("zeta"), Some(4));
        assert_eq!(reg.get("missing"), None);
        assert_eq!(
            reg.snapshot(),
            vec![("alpha".to_string(), 2), ("zeta".to_string(), 4)]
        );
    }

    #[test]
    fn registry_concurrent_increments_are_exact() {
        let reg = AtomicRegistry::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let reg = &reg;
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        reg.add("shared", 1);
                        if i % 2 == t % 2 {
                            reg.add("half", 1);
                        }
                    }
                });
            }
        });
        assert_eq!(reg.get("shared"), Some(80_000));
        assert_eq!(reg.get("half"), Some(40_000));
    }

    #[test]
    fn registry_overflow_spills_instead_of_panicking() {
        // 300 distinct names exceed the 256-slot capacity; the excess
        // folds into the spill slot without losing the total.
        let reg = AtomicRegistry::new();
        for i in 0..300 {
            // Bounded test-only leak: 'static names are the trait contract.
            let name: &'static str = Box::leak(format!("c{i:03}").into_boxed_str());
            reg.add(name, 1);
        }
        let total: u64 = reg.snapshot().iter().map(|(_, v)| v).sum();
        assert_eq!(total, 300, "no increment lost to overflow");
        assert_eq!(
            reg.get(OVERFLOW_COUNTER),
            Some(45),
            "spill slot absorbs excess"
        );
    }

    #[test]
    fn shared_recorder_single_thread_matches_metrics_recorder_shape() {
        let rec = SharedRecorder::new();
        {
            let _q = span(&rec, "query");
            let _f = span(&rec, "filter");
            rec.add_ns("refine", 25);
            rec.add_count("pairs", 3);
        }
        rec.record_value("lat", 1000);
        let paths: Vec<String> = rec.phases().into_iter().map(|p| p.path).collect();
        assert_eq!(paths, vec!["query", "query/filter", "query/filter/refine"]);
        assert_eq!(rec.counter("pairs"), Some(3));
        assert_eq!(rec.histogram("lat").unwrap().count(), 1);
        assert_eq!(rec.shard_count(), 1);
    }

    #[test]
    fn two_recorders_on_one_thread_do_not_cross_talk() {
        let a = SharedRecorder::new();
        let b = SharedRecorder::new();
        {
            let _g = span(&a, "only-a");
        }
        {
            let _g = span(&b, "only-b");
        }
        a.add_count("c", 1);
        b.add_count("c", 10);
        assert_eq!(a.phases().len(), 1);
        assert_eq!(a.phases()[0].path, "only-a");
        assert_eq!(b.phases()[0].path, "only-b");
        assert_eq!((a.counter("c"), b.counter("c")), (Some(1), Some(10)));
    }

    #[test]
    fn dropped_recorder_shard_is_pruned_from_thread_cache() {
        let before = LOCAL_SHARDS.with(|c| c.borrow().len());
        {
            let rec = SharedRecorder::new();
            rec.add_ns("x", 1);
            assert!(LOCAL_SHARDS.with(|c| c.borrow().len()) > before);
        }
        // Next use of any shared recorder prunes the dead entry.
        let rec = SharedRecorder::new();
        rec.add_ns("y", 1);
        let after = LOCAL_SHARDS.with(|c| {
            c.borrow()
                .iter()
                .filter(|(_, s)| Arc::strong_count(s) > 1)
                .count()
        });
        assert_eq!(after, before + 1, "only the live recorder's shard remains");
    }
}
