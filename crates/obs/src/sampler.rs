//! Periodic time-series sampler for pool / load-generator telemetry.
//!
//! A [`Sampler`] holds a fixed set of named gauge columns (queue depth,
//! in-flight jobs, per-worker job counts, histogram totals, ...) and a
//! bounded series of rows, each stamped with a caller-supplied
//! nanosecond offset from the run origin. The *caller* owns the clock
//! and drives [`Sampler::tick`] from its own loop — this crate never
//! spawns threads or reads wall time on its own, so sampling composes
//! with the workspace's determinism rules (`rrq-lint` confines thread
//! spawns to the engines) and stays trivially testable.
//!
//! Capacity is fixed up front: beyond `capacity` rows the sampler stops
//! recording and counts the dropped rows instead of reallocating — a
//! telemetry layer must not perturb the workload it watches. Export
//! goes two ways: a JSON document ([`Sampler::to_json`]) and Perfetto
//! counter tracks (via `trace_export`).

use crate::json::Json;

/// A bounded, named-column time series. See the module docs.
#[derive(Debug, Clone)]
pub struct Sampler {
    names: Vec<String>,
    interval_ns: u64,
    capacity: usize,
    /// `(t_ns, one value per column)` rows, in recording order.
    rows: Vec<(u64, Vec<u64>)>,
    dropped: u64,
}

impl Sampler {
    /// A sampler with the given gauge columns, a minimum spacing between
    /// rows of `interval_ns`, and room for `capacity` rows.
    pub fn new<S: AsRef<str>>(names: &[S], interval_ns: u64, capacity: usize) -> Self {
        Self {
            names: names.iter().map(|s| s.as_ref().to_string()).collect(),
            interval_ns,
            capacity,
            rows: Vec::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Column names, in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Whether enough time has passed since the last recorded row that
    /// [`Sampler::tick`] would record a new one.
    pub fn ready(&self, now_ns: u64) -> bool {
        match self.rows.last() {
            None => true,
            Some((last, _)) => now_ns.saturating_sub(*last) >= self.interval_ns,
        }
    }

    /// Records one row if at least `interval_ns` has elapsed since the
    /// previous row (the values closure is only invoked when it has).
    /// Returns whether a row was recorded. Call this opportunistically
    /// from the driver loop — pacing waits, completion drains — and the
    /// series self-regulates to the configured interval.
    pub fn tick(&mut self, now_ns: u64, values: impl FnOnce() -> Vec<u64>) -> bool {
        if !self.ready(now_ns) {
            return false;
        }
        self.sample(now_ns, &values())
    }

    /// Unconditionally records one row (truncating or zero-padding the
    /// values to the column count). Returns false and counts a drop when
    /// the series is full.
    pub fn sample(&mut self, now_ns: u64, values: &[u64]) -> bool {
        if self.rows.len() >= self.capacity {
            self.dropped += 1;
            return false;
        }
        let mut row = vec![0u64; self.names.len()];
        for (slot, v) in row.iter_mut().zip(values) {
            *slot = *v;
        }
        self.rows.push((now_ns, row));
        true
    }

    /// Recorded rows, in time order.
    pub fn rows(&self) -> &[(u64, Vec<u64>)] {
        &self.rows
    }

    /// Rows rejected because the series was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The values of one named column across all rows, with timestamps.
    pub fn series(&self, name: &str) -> Option<Vec<(u64, u64)>> {
        let col = self.names.iter().position(|n| n == name)?;
        Some(self.rows.iter().map(|(t, row)| (*t, row[col])).collect())
    }

    /// Exports the series as a JSON document:
    /// `{"interval_ns":..,"dropped":..,"columns":[..],"rows":[[t,v0,v1,..],..]}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("interval_ns", Json::UInt(self.interval_ns)),
            ("dropped", Json::UInt(self.dropped)),
            (
                "columns",
                Json::Arr(self.names.iter().map(Json::str).collect()),
            ),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|(t, row)| {
                            let mut cells = vec![Json::UInt(*t)];
                            cells.extend(row.iter().map(|v| Json::UInt(*v)));
                            Json::Arr(cells)
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_respects_the_interval() {
        let mut s = Sampler::new(&["depth", "in_flight"], 1000, 16);
        assert!(s.tick(0, || vec![5, 2]), "first row always records");
        assert!(!s.tick(999, || panic!("values must not be computed")));
        assert!(s.tick(1000, || vec![7, 1]));
        assert!(s.tick(2500, || vec![0, 0]));
        assert_eq!(s.rows().len(), 3);
        assert_eq!(
            s.series("depth").unwrap(),
            vec![(0, 5), (1000, 7), (2500, 0)]
        );
        assert_eq!(s.series("in_flight").unwrap()[1], (1000, 1));
        assert_eq!(s.series("bogus"), None);
    }

    #[test]
    fn capacity_bounds_the_series_and_counts_drops() {
        let mut s = Sampler::new(&["x"], 0, 2);
        assert!(s.sample(0, &[1]));
        assert!(s.sample(1, &[2]));
        assert!(!s.sample(2, &[3]), "third row dropped");
        assert!(!s.sample(3, &[4]));
        assert_eq!(s.rows().len(), 2);
        assert_eq!(s.dropped(), 2);
    }

    #[test]
    fn short_and_long_value_rows_are_normalised() {
        let mut s = Sampler::new(&["a", "b", "c"], 0, 8);
        s.sample(0, &[1]); // padded
        s.sample(1, &[1, 2, 3, 4]); // truncated
        assert_eq!(s.rows()[0].1, vec![1, 0, 0]);
        assert_eq!(s.rows()[1].1, vec![1, 2, 3]);
    }

    #[test]
    fn json_export_round_trips_and_carries_rows() {
        let mut s = Sampler::new(&["depth"], 100, 4);
        s.sample(0, &[3]);
        s.sample(100, &[9]);
        let j = s.to_json();
        let parsed = crate::json::parse(&j.to_pretty()).expect("valid JSON");
        assert_eq!(parsed, j);
        let rows = parsed.get("rows").unwrap().items().unwrap();
        assert_eq!(rows.len(), 2);
        let row1 = rows[1].items().unwrap();
        assert_eq!(row1[0].as_u64(), Some(100));
        assert_eq!(row1[1].as_u64(), Some(9));
        let cols = parsed.get("columns").unwrap().items().unwrap();
        assert_eq!(cols[0].as_str(), Some("depth"));
    }
}
